//! Offline, deterministic stand-in for the `rand` crate (0.8 API subset).
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors this minimal implementation of exactly the surface
//! its code uses: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], and
//! the [`Rng`] extension methods `gen`, `gen_bool` and `gen_range`.
//!
//! The generator is xoshiro256** seeded through SplitMix64. Streams are
//! fully deterministic and stable across platforms, but they are **not**
//! the upstream `StdRng` (ChaCha12) streams — seeds reproduce results
//! within this workspace only.

/// A low-level source of random 32/64-bit words.
pub trait RngCore {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly distributed bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of a generator from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Builds a generator from `seed` (deterministic, platform-stable).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator standing in for `StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, the recommended seeding procedure.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Types producible uniformly from raw generator output (the stand-in for
/// rand's `Standard` distribution).
pub trait Standard: Sized {
    /// Draws one uniformly distributed value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges a value can be drawn uniformly from.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128) - (self.start as u128);
                self.start + (rng.next_u64() as u128 % span) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u128) - (lo as u128) + 1;
                lo + (rng.next_u64() as u128 % span) as $t
            }
        }
    )*};
}
impl_sample_range!(u8, u16, u32, u64, usize, i32, i64);

/// Convenience extension methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// A uniformly distributed value of `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool p out of range: {p}");
        f64::sample(self) < p
    }

    /// A uniform draw from `range`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }
}

impl<R: RngCore> Rng for R {}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_and_seed_sensitive() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let va: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        let vc: Vec<u64> = (0..8).map(|_| c.gen()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: u32 = rng.gen_range(3..17);
            assert!((3..17).contains(&x));
            let y: usize = rng.gen_range(0..=4);
            assert!(y <= 4);
            let z: u64 = rng.gen_range(1..u64::MAX);
            assert!(z >= 1);
        }
    }

    #[test]
    fn gen_bool_respects_extremes() {
        let mut rng = StdRng::seed_from_u64(2);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }
}
