//! Offline, deterministic stand-in for the `proptest` crate (API subset).
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors this minimal property-testing harness implementing
//! exactly what its tests use: the [`proptest!`] macro with an optional
//! `#![proptest_config(...)]` header, `prop_assert!`/`prop_assert_eq!`,
//! [`strategy::Strategy`] implementations for integer ranges, tuples and
//! [`arbitrary::any`], and [`collection::vec`].
//!
//! Differences from upstream, by design:
//!
//! * Cases are generated from a **fixed default seed** so runs are
//!   reproducible by default (CI-friendly); `PROPTEST_RNG_SEED` overrides
//!   the base seed and `PROPTEST_CASES` the case count.
//! * Failing inputs are reported (with their per-case seed) but **not
//!   shrunk**.
//! * `*.proptest-regressions` files are honored: each `cc <hex>` entry is
//!   replayed as an extra leading case seeded from its first 16 hex
//!   digits, before any generated cases run.

/// Test-runner configuration and the per-test execution loop.
pub mod test_runner {
    use std::panic::{catch_unwind, AssertUnwindSafe};

    /// Configuration accepted by `#![proptest_config(...)]`.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` generated cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// A failed property assertion (an `Err` returned by the case body).
    #[derive(Debug)]
    pub struct TestCaseError(pub String);

    /// Deterministic per-case random source handed to strategies.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        s: [u64; 4],
    }

    impl TestRng {
        /// A generator for one case, derived from `seed` via SplitMix64.
        pub fn new(seed: u64) -> Self {
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            TestRng {
                s: [next(), next(), next(), next()],
            }
        }

        /// The next 64 uniform bits (xoshiro256**).
        pub fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    fn env_u64(name: &str) -> Option<u64> {
        std::env::var(name).ok().and_then(|v| {
            let v = v.trim();
            if let Some(hex) = v.strip_prefix("0x") {
                u64::from_str_radix(hex, 16).ok()
            } else {
                v.parse().ok()
            }
        })
    }

    /// Seeds replayed from a checked-in `*.proptest-regressions` file, if
    /// one exists next to the test source (`cc <hex>` lines; the first 16
    /// hex digits become the case seed).
    fn regression_seeds(source_file: &str) -> Vec<u64> {
        let base = source_file.strip_suffix(".rs").unwrap_or(source_file);
        let name = format!("{base}.proptest-regressions");
        // `file!()` is workspace-root-relative while the test binary's cwd
        // is the package root; probe both and the workspace root above us.
        let mut seeds = Vec::new();
        for prefix in ["", "../", "../../"] {
            let path = format!("{prefix}{name}");
            if let Ok(text) = std::fs::read_to_string(&path) {
                for line in text.lines() {
                    let line = line.trim();
                    if let Some(rest) = line.strip_prefix("cc ") {
                        let hex: String = rest.chars().take(16).collect();
                        if let Ok(seed) = u64::from_str_radix(&hex, 16) {
                            seeds.push(seed);
                        }
                    }
                }
                break;
            }
        }
        seeds
    }

    /// Runs one property: regression cases first, then `cases` generated
    /// cases (count overridable via `PROPTEST_CASES`, base seed via
    /// `PROPTEST_RNG_SEED`). `case` returns the formatted inputs and the
    /// body result. Panics — with the case seed and inputs — on the first
    /// failure; no shrinking is attempted.
    pub fn run_cases<F>(config: &ProptestConfig, test_name: &str, source_file: &str, mut case: F)
    where
        F: FnMut(u64) -> (String, Result<(), TestCaseError>),
    {
        let cases = env_u64("PROPTEST_CASES")
            .map(|n| n as u32)
            .unwrap_or(config.cases);
        let base = env_u64("PROPTEST_RNG_SEED").unwrap_or(0x7E57_5EED_2009_0000);
        // Mix the test name in so sibling properties see distinct streams.
        let name_hash = test_name.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
            (h ^ b as u64).wrapping_mul(0x1000_0000_01b3)
        });

        let mut all: Vec<(u64, bool)> = regression_seeds(source_file)
            .into_iter()
            .map(|s| (s, true))
            .collect();
        all.extend((0..cases as u64).map(|i| {
            (
                base ^ name_hash ^ (i.wrapping_mul(0x9E37_79B9_7F4A_7C15)),
                false,
            )
        }));

        for (seed, from_regression) in all {
            let outcome = catch_unwind(AssertUnwindSafe(|| case(seed)));
            let origin = if from_regression {
                "regression case"
            } else {
                "case"
            };
            match outcome {
                Ok((_, Ok(()))) => {}
                Ok((inputs, Err(TestCaseError(msg)))) => panic!(
                    "proptest property `{test_name}` failed ({origin} seed \
                     {seed:#018x}):\n  inputs: {inputs}\n  {msg}\n\
                     (re-run with PROPTEST_RNG_SEED={seed:#x} PROPTEST_CASES=1)"
                ),
                Err(payload) => {
                    let msg = payload
                        .downcast_ref::<String>()
                        .map(String::as_str)
                        .or_else(|| payload.downcast_ref::<&str>().copied())
                        .unwrap_or("<non-string panic>");
                    panic!(
                        "proptest property `{test_name}` panicked ({origin} \
                         seed {seed:#018x}): {msg}"
                    );
                }
            }
        }
    }
}

/// Value-generation strategies.
pub mod strategy {
    use crate::test_runner::TestRng;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;
        /// Draws one value from `rng`.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as u128) - (self.start as u128);
                    self.start + (rng.next_u64() as u128 % span) as $t
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as u128) - (lo as u128) + 1;
                    lo + (rng.next_u64() as u128 % span) as $t
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize, i32, i64);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }
    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
}

/// `any::<T>()` — uniform generation over a whole type.
pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary {
        /// Draws one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    /// The strategy returned by [`any`].
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The full-domain strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

/// Collection strategies.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy for `Vec<S::Value>` with a length drawn from a range.
    pub struct VecStrategy<S> {
        element: S,
        len: core::ops::Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            assert!(self.len.start < self.len.end, "empty size range");
            let span = (self.len.end - self.len.start) as u64;
            let n = self.len.start + (rng.next_u64() % span) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A vector strategy: `len` elements (exclusive upper bound) of
    /// `element`.
    pub fn vec<S: Strategy>(element: S, len: core::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }
}

/// The customary glob import.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Fails the enclosing property case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

/// Fails the enclosing property case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "assertion failed: {:?} == {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: {:?} == {:?}: {}",
            l,
            r,
            ::std::format!($($fmt)+)
        );
    }};
}

/// Fails the enclosing property case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l != r, "assertion failed: {:?} != {:?}", l, r);
    }};
}

/// Declares deterministic property tests; see the crate docs for the
/// supported subset (named `ident in strategy` bindings, optional
/// `#![proptest_config(...)]` header, doc comments on properties).
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_items! { config = ($cfg); $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_items! {
            config = ($crate::test_runner::ProptestConfig::default());
            $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`].
#[macro_export]
macro_rules! __proptest_items {
    ( config = ($cfg:expr); ) => {};
    (
        config = ($cfg:expr);
        $(#[doc $($doc:tt)*])*
        #[test]
        fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
        $($rest:tt)*
    ) => {
        $(#[doc $($doc)*])*
        #[test]
        fn $name() {
            let __config = $cfg;
            $crate::test_runner::run_cases(
                &__config,
                stringify!($name),
                file!(),
                |__seed| {
                    let mut __rng = $crate::test_runner::TestRng::new(__seed);
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
                    let __inputs = ::std::format!(
                        concat!($(stringify!($arg), " = {:?}; "),+),
                        $(&$arg),+
                    );
                    let __result: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| -> ::core::result::Result<(), $crate::test_runner::TestCaseError> {
                            $body
                            ::core::result::Result::Ok(())
                        })();
                    (__inputs, __result)
                },
            );
        }
        $crate::__proptest_items! { config = ($cfg); $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Ranges respect their bounds.
        #[test]
        fn range_bounds(x in 3u32..17, y in 0usize..5, z in 1u64..u64::MAX) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(y < 5);
            prop_assert!(z >= 1);
        }

        #[test]
        fn vec_lengths(v in crate::collection::vec(any::<bool>(), 2..9)) {
            prop_assert!(v.len() >= 2 && v.len() < 9);
        }

        #[test]
        fn tuples_generate(t in (0u64..10, 1u64..5, 0u8..4)) {
            prop_assert!(t.0 < 10 && t.1 >= 1 && t.2 < 4);
        }
    }

    #[test]
    fn cases_are_reproducible() {
        let mut a = Vec::new();
        let mut b = Vec::new();
        for out in [&mut a, &mut b] {
            crate::test_runner::run_cases(
                &ProptestConfig::with_cases(5),
                "repro",
                file!(),
                |seed| {
                    out.push(crate::test_runner::TestRng::new(seed).next_u64());
                    (String::new(), Ok(()))
                },
            );
        }
        assert_eq!(a, b);
    }
}
