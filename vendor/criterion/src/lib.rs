//! Offline stand-in for the `criterion` crate (API subset).
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors this minimal benchmarking harness implementing the
//! surface its benches use: [`Criterion::benchmark_group`], group
//! `sample_size`/`throughput`/`bench_function`/`bench_with_input`/
//! `finish`, [`Bencher::iter`], [`BenchmarkId::from_parameter`],
//! [`Throughput`], [`black_box`], and the [`criterion_group!`]/
//! [`criterion_main!`] macros.
//!
//! Differences from upstream: no statistical analysis, plots or saved
//! baselines — each benchmark point is timed as `sample_size` samples
//! (bounded by a wall-clock budget) and reported as min/median/mean on
//! stdout. Passing `--test` (as `cargo test --benches` does) runs every
//! closure once without timing.

use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting a
/// computation under measurement.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Units of work per iteration, for throughput annotation.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Logical elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark point identifier.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id naming both a function and a parameter value.
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function.into(), parameter),
        }
    }

    /// An id from a parameter value alone.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// The per-point measurement driver handed to bench closures.
pub struct Bencher<'a> {
    mode: Mode,
    samples: usize,
    budget: Duration,
    report: &'a mut Vec<Duration>,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum Mode {
    Measure,
    /// `--test`: run the closure once, skip timing.
    Smoke,
}

impl Bencher<'_> {
    /// Times `f`, collecting up to the configured number of samples
    /// within the wall-clock budget.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        if self.mode == Mode::Smoke {
            black_box(f());
            return;
        }
        // Warm-up: one untimed call (fills caches, resolves lazy state).
        black_box(f());
        let started = Instant::now();
        for _ in 0..self.samples {
            let t0 = Instant::now();
            black_box(f());
            self.report.push(t0.elapsed());
            if started.elapsed() > self.budget {
                break;
            }
        }
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", ns as f64 / 1e9)
    }
}

/// A named group of related benchmark points.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the target number of samples per point.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Declares the work performed per iteration.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Benchmarks `f` under `id`.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        self.run_point(&id.id, |b| f(b));
        self
    }

    /// Benchmarks `f` under `id` with a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        self.run_point(&id.id, |b| f(b, input));
        self
    }

    fn run_point(&mut self, id: &str, f: impl FnOnce(&mut Bencher)) {
        let mut samples = Vec::new();
        let mut bencher = Bencher {
            mode: self.criterion.mode,
            samples: self.sample_size,
            budget: self.criterion.point_budget,
            report: &mut samples,
        };
        f(&mut bencher);
        let label = format!("{}/{}", self.name, id);
        if self.criterion.mode == Mode::Smoke {
            println!("{label}: ok (smoke)");
            return;
        }
        if samples.is_empty() {
            println!("{label}: no samples collected");
            return;
        }
        samples.sort();
        let min = samples[0];
        let median = samples[samples.len() / 2];
        let mean = samples.iter().sum::<Duration>() / samples.len() as u32;
        let thr = match self.throughput {
            Some(Throughput::Elements(n)) => {
                let per_sec = n as f64 / median.as_secs_f64();
                format!("   {:.3} Melem/s", per_sec / 1e6)
            }
            Some(Throughput::Bytes(n)) => {
                let per_sec = n as f64 / median.as_secs_f64();
                format!("   {:.3} MiB/s", per_sec / (1024.0 * 1024.0))
            }
            None => String::new(),
        };
        println!(
            "{label:<55} time: [{} {} {}]{thr}   ({} samples)",
            fmt_duration(min),
            fmt_duration(median),
            fmt_duration(mean),
            samples.len()
        );
    }

    /// Ends the group (upstream finalizes reports here; a no-op barrier
    /// in this stand-in).
    pub fn finish(self) {}
}

/// The benchmark harness entry object.
pub struct Criterion {
    mode: Mode,
    point_budget: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            mode: Mode::Measure,
            point_budget: Duration::from_secs(3),
        }
    }
}

impl Criterion {
    /// Applies command-line flags (`--test` switches to smoke mode; other
    /// harness flags are accepted and ignored).
    pub fn configure_from_args(mut self) -> Self {
        if std::env::args().any(|a| a == "--test") {
            self.mode = Mode::Smoke;
        }
        if let Some(ms) = std::env::var("CRITERION_POINT_BUDGET_MS")
            .ok()
            .and_then(|v| v.parse().ok())
        {
            self.point_budget = Duration::from_millis(ms);
        }
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            throughput: None,
            criterion: self,
        }
    }

    /// Benchmarks a single free-standing function.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut g = self.benchmark_group(id.to_string());
        g.bench_function("base", f);
        g.finish();
        self
    }
}

/// Bundles benchmark functions into one registration function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
