//! The negative-path contract of schedule construction and execution:
//! which malformed inputs produce which `ScheduleError`, and that the
//! error path is total — no partial execution, and the same contract at
//! every API layer (`Schedule::validate`, `execute_schedule`,
//! `run_scenario`).

use tve::core::{execute_schedule, Schedule, ScheduleError, TestOutcome, TestRun};
use tve::sim::{Duration, SimHandle, Simulation};
use tve::soc::{run_scenario, SocConfig, SocTestPlan};

fn dummy_test(h: &SimHandle, name: &str, cycles: u64) -> TestRun {
    let h = h.clone();
    let name_owned = name.to_string();
    TestRun::new(name, async move {
        let mut out = TestOutcome::begin(name_owned, h.now());
        h.wait(Duration::cycles(cycles)).await;
        out.end = h.now();
        out
    })
}

fn two_tests(sim: &Simulation) -> Vec<TestRun> {
    let h = sim.handle();
    vec![dummy_test(&h, "a", 10), dummy_test(&h, "b", 10)]
}

#[test]
fn construction_is_infallible_validation_is_not() {
    // Schedule::new accepts any shape — well-formedness is a property of
    // (schedule, test list) pairs and is checked at execution time.
    let bogus = Schedule::new("bogus", vec![vec![42, 42], vec![]]);
    assert_eq!(bogus.name, "bogus");
    assert_eq!(bogus.phases.len(), 2);
    assert_eq!(bogus.validate(1), Err(ScheduleError::IndexOutOfRange(42)));
}

#[test]
fn empty_schedule_is_rejected() {
    let mut sim = Simulation::new();
    let tests = two_tests(&sim);
    let err = execute_schedule(&mut sim, tests, &Schedule::new("none", vec![])).unwrap_err();
    assert_eq!(err, ScheduleError::Empty);
    assert_eq!(err.to_string(), "schedule has no phases");
}

#[test]
fn empty_phase_is_rejected() {
    let mut sim = Simulation::new();
    let tests = two_tests(&sim);
    let sched = Schedule::new("hole", vec![vec![0], vec![], vec![1]]);
    let err = execute_schedule(&mut sim, tests, &sched).unwrap_err();
    assert_eq!(err, ScheduleError::EmptyPhase);
    assert_eq!(err.to_string(), "schedule contains an empty phase");
}

#[test]
fn out_of_range_index_is_rejected_and_nothing_runs() {
    let mut sim = Simulation::new();
    let tests = two_tests(&sim);
    let sched = Schedule::new("oob", vec![vec![0], vec![7]]);
    let err = execute_schedule(&mut sim, tests, &sched).unwrap_err();
    assert_eq!(err, ScheduleError::IndexOutOfRange(7));
    assert_eq!(err.to_string(), "test index 7 out of range");
    // Validation precedes execution: the kernel never advanced, so even
    // the in-range test 0 was not started.
    assert_eq!(sim.run().cycles(), 0, "no test was launched");
}

#[test]
fn duplicate_test_is_rejected_across_phases_and_within_a_phase() {
    let mut sim = Simulation::new();
    let tests = two_tests(&sim);
    let sched = Schedule::new("dup", vec![vec![0], vec![1, 0]]);
    let err = execute_schedule(&mut sim, tests, &sched).unwrap_err();
    assert_eq!(err, ScheduleError::DuplicateTest(0));
    assert_eq!(err.to_string(), "test 0 scheduled twice");

    let mut sim = Simulation::new();
    let tests = two_tests(&sim);
    let sched = Schedule::new("dup2", vec![vec![1, 1]]);
    let err = execute_schedule(&mut sim, tests, &sched).unwrap_err();
    assert_eq!(err, ScheduleError::DuplicateTest(1));
}

#[test]
fn first_violation_in_phase_order_wins() {
    // Validation walks phases in order: an empty phase ahead of an
    // out-of-range index is the reported error, and vice versa.
    let s = Schedule::new("x", vec![vec![], vec![9]]);
    assert_eq!(s.validate(2), Err(ScheduleError::EmptyPhase));
    let s = Schedule::new("y", vec![vec![9], vec![]]);
    assert_eq!(s.validate(2), Err(ScheduleError::IndexOutOfRange(9)));
}

#[test]
fn run_scenario_propagates_the_same_contract() {
    // The SoC-level scenario runner (seven tests) surfaces the identical
    // error values for malformed schedules.
    let mut cfg = SocConfig::small();
    cfg.memory_words = 64;
    let plan = SocTestPlan::small();
    for (sched, want) in [
        (Schedule::new("none", vec![]), ScheduleError::Empty),
        (
            Schedule::new("hole", vec![vec![0], vec![]]),
            ScheduleError::EmptyPhase,
        ),
        (
            Schedule::new("oob", vec![vec![7]]),
            ScheduleError::IndexOutOfRange(7),
        ),
        (
            Schedule::new("dup", vec![vec![0, 0]]),
            ScheduleError::DuplicateTest(0),
        ),
    ] {
        assert_eq!(
            run_scenario(&cfg, &plan, &sched).unwrap_err(),
            want,
            "schedule '{}'",
            sched.name
        );
    }
}
