//! Power-profile validation: the effect the paper cites power-aware
//! scheduling for — concurrent schedules trade peak power for test time,
//! while total test energy stays (nearly) schedule-invariant.

use tve::soc::{paper_schedules, run_scenario, PowerParams, SocConfig, SocTestPlan};

fn powered_config() -> SocConfig {
    let mut config = SocConfig::paper();
    config.memory_words = 2622;
    config.power = Some(PowerParams {
        window: 16_384,
        ..PowerParams::default()
    });
    config
}

#[test]
fn concurrency_raises_peak_power_but_not_energy() {
    let config = powered_config();
    let plan = SocTestPlan::paper_scaled(200);
    let metrics: Vec<_> = paper_schedules()
        .iter()
        .map(|s| run_scenario(&config, &plan, s).expect("well-formed"))
        .collect();
    let power: Vec<_> = metrics
        .iter()
        .map(|m| m.power.as_ref().expect("power metering enabled"))
        .collect();

    // Peak power: each concurrent schedule peaks above its sequential
    // counterpart (same tests, overlapped).
    assert!(
        power[2].peak > power[0].peak * 1.15,
        "schedule 3 peak {} vs schedule 1 peak {}",
        power[2].peak,
        power[0].peak
    );
    assert!(
        power[3].peak > power[1].peak * 1.15,
        "schedule 4 peak {} vs schedule 2 peak {}",
        power[3].peak,
        power[1].peak
    );

    // Average power rises with concurrency (same energy, less time).
    assert!(power[3].average > power[1].average);

    // Energy is schedule-invariant for the same test set (schedules 1 and
    // 3 run tests {1,2,4,5,7}; 2 and 4 run {1,3,4,5,6}).
    let rel = |a: f64, b: f64| (a - b).abs() / b;
    assert!(
        rel(power[0].energy, power[2].energy) < 0.02,
        "energy 1 vs 3: {} vs {}",
        power[0].energy,
        power[2].energy
    );
    assert!(
        rel(power[1].energy, power[3].energy) < 0.02,
        "energy 2 vs 4: {} vs {}",
        power[1].energy,
        power[3].energy
    );

    // Every scenario attributes energy to the bus, the wrappers and the
    // memory.
    for p in &power {
        let sources: Vec<&str> = p.per_source.iter().map(|(k, _)| k.as_str()).collect();
        assert!(sources.contains(&"system-bus/TAM"), "{sources:?}");
        assert!(sources.contains(&"proc-wrapper"), "{sources:?}");
        assert!(sources.contains(&"memory"), "{sources:?}");
    }
}

#[test]
fn power_metering_does_not_change_timing() {
    let plan = SocTestPlan::paper_scaled(200);
    let mut with = SocConfig::paper();
    with.memory_words = 1311;
    let mut without = with.clone();
    with.power = Some(PowerParams::default());
    without.power = None;
    let schedule = &paper_schedules()[3];
    let a = run_scenario(&with, &plan, schedule).unwrap();
    let b = run_scenario(&without, &plan, schedule).unwrap();
    assert_eq!(a.total_cycles, b.total_cycles);
    assert!(a.power.is_some());
    assert!(b.power.is_none());
}
