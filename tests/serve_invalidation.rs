//! Property-based pinning of the incremental re-validation contract:
//! the *prediction* layer (`edit_impact` from lint plan facts) and the
//! *correctness* layer (content-addressed cell keys with plan
//! projection) must agree on every possible plan edit.
//!
//! Three properties, over random edits:
//!
//! 1. a predicted-affected schedule's cell keys always move; a
//!    predicted-unaffected schedule's never do,
//! 2. mask-based eviction reclaims exactly the affected entries —
//!    never a stale affected cell left behind, never an unaffected
//!    cell thrown away,
//! 3. the predicted touched tests are exactly the edit's own
//!    field-to-test mapping, and schedule membership follows it.

use proptest::prelude::*;

use tve::campaign::CellOutcome;
use tve::lint::soc_facts;
use tve::serve::{cell_key, edit_impact, schedule_tests, test_mask, CachedValue, ResultCache};
use tve::soc::{paper_schedules, PlanOverrides, Workload, PLAN_OVERRIDE_KEYS};

/// Builds a non-empty plan edit from raw generated inputs, with values
/// guaranteed to differ from the current plan's (an "edit" to the
/// present value is a no-op and legitimately moves no key).
fn make_edit(fields: &[usize], value: u64) -> PlanOverrides {
    let (_, plan) = Workload::small().build();
    let current = [
        plan.bist_proc_patterns,
        plan.det_proc_patterns,
        plan.comp_proc_patterns,
        plan.bist_color_patterns,
        plan.det_dct_patterns,
        plan.seed,
    ];
    let mut edit = PlanOverrides::default();
    for &f in fields {
        let v = if value == current[f] {
            value + 1
        } else {
            value
        };
        edit.set(PLAN_OVERRIDE_KEYS[f], v);
    }
    edit
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // Property 1: key movement agrees with the prediction, for golden
    // and faulty cells alike.
    #[test]
    fn affected_keys_always_move_and_unaffected_never_do(
        fields in proptest::collection::vec(0usize..6, 1..4),
        value in 1u64..100_000,
    ) {
        let edit = make_edit(&fields, value);
        let workload = Workload::small();
        let (config, plan) = workload.build();
        let (_, edited_plan) = workload.clone().with_overrides(edit).build();
        let facts = soc_facts(&config, &plan);
        let impact = edit_impact(&facts, &edit, &paper_schedules());
        for schedule in &paper_schedules() {
            let affected = impact.affected_schedules.contains(&schedule.name);
            for fault in ["golden", "scan:processor:3"] {
                let before = cell_key(&config, &plan, schedule, fault, "");
                let after = cell_key(&config, &edited_plan, schedule, fault, "");
                if affected {
                    prop_assert!(
                        before != after,
                        "stale hit: edit {:?} left the key of affected '{}' in place",
                        edit, schedule.name
                    );
                } else {
                    prop_assert!(
                        before == after,
                        "lost hit: edit {:?} moved the key of unaffected '{}'",
                        edit, schedule.name
                    );
                }
            }
        }
    }

    // Property 2: eviction is exact. Populate a cache with one golden
    // and two faulty cells per schedule plus one mask-0 entry (the
    // diagnosis class), evict by the edit's mask, and check membership
    // entry by entry.
    #[test]
    fn eviction_reclaims_exactly_the_affected_entries(
        fields in proptest::collection::vec(0usize..6, 1..4),
        value in 1u64..100_000,
    ) {
        let edit = make_edit(&fields, value);
        let workload = Workload::small();
        let (config, plan) = workload.build();
        let facts = soc_facts(&config, &plan);
        let impact = edit_impact(&facts, &edit, &paper_schedules());

        let cache = ResultCache::new();
        let stand_in = || CachedValue::Cell(CellOutcome::Escape);
        let mut keys: Vec<(u64, bool)> = Vec::new(); // (key, affected)
        for schedule in &paper_schedules() {
            let mask = test_mask(&schedule_tests(schedule));
            let affected = impact.affected_schedules.contains(&schedule.name);
            for fault in ["golden", "scan:processor:3", "mem:word:7"] {
                let key = cell_key(&config, &plan, schedule, fault, "");
                cache.insert(key, stand_in(), mask);
                keys.push((key, affected));
            }
        }
        // Diagnosis-class entry: mask 0, must survive every edit.
        cache.insert(0xD1A6, stand_in(), 0);

        let evicted = cache.evict_tests(impact.touched_mask);
        let expected: u64 = keys.iter().filter(|(_, a)| *a).count() as u64;
        prop_assert!(
            evicted == expected,
            "evicted {} entries, predicted {}",
            evicted,
            expected
        );
        for (key, affected) in keys {
            prop_assert!(
                cache.lookup(key).is_none() == affected,
                "entry affected={} has the wrong post-eviction state",
                affected
            );
        }
        prop_assert!(cache.lookup(0xD1A6).is_some(), "mask-0 entry was evicted");
    }

    // Property 3: the prediction itself is structural — touched tests
    // come straight from the edit, and a schedule is affected iff it
    // runs one of them.
    #[test]
    fn prediction_is_exactly_the_field_to_test_mapping(
        fields in proptest::collection::vec(0usize..6, 1..4),
        value in 1u64..100_000,
    ) {
        let edit = make_edit(&fields, value);
        let (config, plan) = Workload::small().build();
        let facts = soc_facts(&config, &plan);
        let impact = edit_impact(&facts, &edit, &paper_schedules());
        prop_assert_eq!(&impact.touched_tests, &edit.touched_tests());
        prop_assert_eq!(impact.touched_mask, test_mask(&edit.touched_tests()));
        for schedule in &paper_schedules() {
            let runs_touched =
                test_mask(&schedule_tests(schedule)) & impact.touched_mask != 0;
            prop_assert_eq!(
                impact.affected_schedules.contains(&schedule.name),
                runs_touched
            );
        }
    }
}
