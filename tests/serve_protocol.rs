//! Protocol robustness: every way a client or the infrastructure can
//! misbehave at the socket gets a typed error or a clean disconnect —
//! never a hang, never a daemon panic, never a poisoned accept loop.
//!
//! The malformed-frame cases share one daemon on purpose: each case
//! must leave it healthy enough to answer the next one's `ping`, which
//! is exactly the "one bad client cannot take the service down"
//! invariant. Deadlines, load shedding, drain, and client retry get
//! their own daemons because they configure admission control.

use std::io::Write as _;
use std::os::unix::net::UnixStream;
use std::path::PathBuf;
use std::sync::OnceLock;
use std::time::{Duration, Instant};

use proptest::prelude::*;
use tve::obs::JsonValue;
use tve::serve::{
    read_frame, spawn, submit_with_retry, write_frame, Client, JobKind, JobSpec, RetryPolicy,
    ServeOptions,
};
use tve::soc::Workload;

fn test_socket(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("tve-proto-{tag}-{}.sock", std::process::id()))
}

/// The shared malformed-frame daemon: short read timeout so an idle or
/// half-written connection is dropped quickly, one worker because no
/// frame in these tests ever reaches a simulation.
fn frames_daemon() -> &'static PathBuf {
    static SOCKET: OnceLock<PathBuf> = OnceLock::new();
    SOCKET.get_or_init(|| {
        let daemon = spawn(&ServeOptions {
            socket: test_socket("frames"),
            workers: Some(1),
            quiet: true,
            read_timeout_ms: 750,
            ..ServeOptions::default()
        })
        .expect("frames daemon spawns");
        let socket = daemon.socket.clone();
        // Lives for the whole test binary; the OS reaps it.
        std::mem::forget(daemon);
        socket
    })
}

fn raw_connect(socket: &PathBuf) -> UnixStream {
    let stream = UnixStream::connect(socket).expect("raw connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("read timeout");
    stream
}

/// Daemon must still answer a well-formed ping — the previous abuse did
/// not take it down.
fn assert_alive(socket: &PathBuf) {
    let mut client = Client::connect(socket).expect("daemon still accepts");
    let pong = client.ping().expect("daemon still answers");
    assert_eq!(pong.get("ok").and_then(JsonValue::as_bool), Some(true));
}

/// Reads response frames until the daemon closes the connection.
/// Every frame received must be well-formed JSON; a read timeout —
/// i.e. a hang — fails the test. A reset counts as a close: the daemon
/// dropping the socket while our unread bytes are still in flight is a
/// disconnect, not a hang.
fn drain_responses(stream: &mut UnixStream) -> Vec<JsonValue> {
    let mut responses = Vec::new();
    loop {
        match read_frame(stream) {
            Ok(Some(text)) => {
                responses.push(tve::obs::parse_json(&text).unwrap_or_else(|e| {
                    panic!("daemon sent a malformed response frame: {e}\n{text}")
                }));
            }
            Ok(None) => return responses,
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::ConnectionReset | std::io::ErrorKind::ConnectionAborted
                ) =>
            {
                return responses
            }
            Err(e) => panic!("connection neither answered nor closed cleanly: {e}"),
        }
    }
}

#[test]
fn oversized_length_prefix_gets_typed_protocol_error() {
    let socket = frames_daemon();
    let mut stream = raw_connect(socket);
    stream
        .write_all(&u32::MAX.to_le_bytes())
        .expect("prefix written");
    let responses = drain_responses(&mut stream);
    assert_eq!(responses.len(), 1, "exactly one error frame");
    assert_eq!(
        responses[0].get("error_kind").and_then(JsonValue::as_str),
        Some("protocol"),
        "oversized prefix must be a typed protocol error: {responses:?}"
    );
    assert_alive(socket);
}

#[test]
fn truncated_frame_disconnects_cleanly() {
    let socket = frames_daemon();
    let mut stream = raw_connect(socket);
    // Announce 64 bytes, deliver 3, hang up the write side: the daemon
    // sees EOF mid-frame and must drop the connection without a reply.
    stream.write_all(&64u32.to_le_bytes()).expect("prefix");
    stream.write_all(b"abc").expect("partial body");
    stream
        .shutdown(std::net::Shutdown::Write)
        .expect("half-close");
    let responses = drain_responses(&mut stream);
    assert!(
        responses.is_empty(),
        "a half-frame deserves no reply: {responses:?}"
    );
    assert_alive(socket);
}

#[test]
fn non_utf8_frame_gets_typed_protocol_error() {
    let socket = frames_daemon();
    let mut stream = raw_connect(socket);
    let body = [0xFFu8, 0xFE, 0x20, 0x09];
    stream
        .write_all(&(body.len() as u32).to_le_bytes())
        .expect("prefix");
    stream.write_all(&body).expect("body");
    let responses = drain_responses(&mut stream);
    assert_eq!(responses.len(), 1);
    assert_eq!(
        responses[0].get("error_kind").and_then(JsonValue::as_str),
        Some("protocol")
    );
    assert_alive(socket);
}

#[test]
fn non_json_frame_gets_typed_error_and_connection_survives() {
    let socket = frames_daemon();
    let mut stream = raw_connect(socket);
    write_frame(&mut stream, "this is not json").expect("frame written");
    let response = read_frame(&mut stream)
        .expect("response readable")
        .expect("daemon answers");
    let parsed = tve::obs::parse_json(&response).expect("well-formed error frame");
    assert_eq!(
        parsed.get("error_kind").and_then(JsonValue::as_str),
        Some("protocol")
    );
    // A parse error is the client's bug, not a transport fault: the
    // same connection must still serve a well-formed request.
    write_frame(&mut stream, "{\"cmd\":\"ping\"}").expect("ping written");
    let pong = read_frame(&mut stream)
        .expect("pong readable")
        .expect("daemon answers the same connection");
    assert!(pong.contains("\"ok\":true"), "{pong}");
}

#[test]
fn silent_connection_is_dropped_at_the_read_timeout() {
    let socket = frames_daemon();
    let mut stream = raw_connect(socket);
    let t = Instant::now();
    // Send nothing. The daemon's 750 ms read timeout must reclaim the
    // connection thread; a daemon that waits forever fails here.
    let responses = drain_responses(&mut stream);
    assert!(responses.is_empty());
    let elapsed = t.elapsed();
    assert!(
        elapsed < Duration::from_secs(8),
        "connection lingered {elapsed:?} past the 750 ms read timeout"
    );
    assert_alive(socket);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Arbitrary bytes at the socket: the daemon may answer with typed
    /// error frames (each well-formed JSON) or close silently, but it
    /// must reach EOF — no hang — and stay alive for the next client.
    #[test]
    fn arbitrary_bytes_never_hang_or_kill_the_daemon(
        bytes in proptest::collection::vec(any::<u8>(), 0..256),
    ) {
        let socket = frames_daemon();
        let mut stream = raw_connect(socket);
        let _ = stream.write_all(&bytes);
        let _ = stream.shutdown(std::net::Shutdown::Write);
        for response in drain_responses(&mut stream) {
            prop_assert_eq!(
                response.get("ok").and_then(JsonValue::as_bool),
                Some(false),
                "garbage input produced a success frame"
            );
        }
        assert_alive(socket);
    }
}

fn campaign_job(seed: u64, deadline_ms: Option<u64>) -> JobSpec {
    JobSpec {
        workload: Workload::small(),
        kind: JobKind::Campaign {
            schedules: vec![1, 2, 3, 4],
            seed,
            faults: 2,
            diagnosis: true,
            shard: None,
        },
        verify: None,
        deadline_ms,
    }
}

#[test]
fn overrun_job_is_cancelled_with_typed_deadline_error() {
    let daemon = spawn(&ServeOptions {
        socket: test_socket("deadline"),
        workers: Some(2),
        quiet: true,
        ..ServeOptions::default()
    })
    .expect("daemon spawns");
    let mut client = Client::connect(&daemon.socket).expect("client connects");

    let job = campaign_job(0xDEAD_11FE, Some(1));
    let t = Instant::now();
    let error = client
        .request_typed(&format!(
            "{{\"cmd\":\"submit\",\"wait\":true,\"job\":{}}}",
            job.to_json()
        ))
        .expect_err("a 1 ms campaign deadline must be exceeded");
    let elapsed = t.elapsed();
    assert_eq!(error.kind, "deadline", "untyped failure: {error:?}");
    assert!(
        elapsed < Duration::from_secs(20),
        "cancellation took {elapsed:?} — the deadline did not interrupt the job"
    );

    // The daemon is unharmed and the same job without a deadline runs
    // to completion — cancellation poisoned nothing.
    let result = client
        .submit(&campaign_job(0xDEAD_11FE, None))
        .expect("job succeeds without a deadline");
    assert!(result.get("csv_digest").is_some());
    client.shutdown().expect("clean shutdown");
    daemon.join().expect("daemon joins");
}

#[test]
fn full_queue_sheds_with_retry_hint_and_retry_eventually_succeeds() {
    let daemon = spawn(&ServeOptions {
        socket: test_socket("shed"),
        workers: Some(2),
        quiet: true,
        max_running: 1,
        max_queue: 1,
        ..ServeOptions::default()
    })
    .expect("daemon spawns");
    let socket = daemon.socket.clone();

    // Occupy the single run slot with one campaign and the single
    // queue slot with a second; both block their connections, so each
    // gets its own thread.
    let runner = {
        let socket = socket.clone();
        std::thread::spawn(move || {
            let mut client = Client::connect(&socket).expect("runner connects");
            client.submit(&campaign_job(0x5EED_0001, None))
        })
    };
    std::thread::sleep(Duration::from_millis(200));
    let queued = {
        let socket = socket.clone();
        std::thread::spawn(move || {
            let mut client = Client::connect(&socket).expect("queuer connects");
            client.submit(&campaign_job(0x5EED_0002, None))
        })
    };
    std::thread::sleep(Duration::from_millis(200));

    // Slot busy, queue full: the next submission must be shed with a
    // typed `overloaded` error carrying a back-off hint — and a client
    // honouring that hint with seeded backoff must eventually land.
    let bounds = JobSpec {
        workload: Workload::small(),
        kind: JobKind::Bounds {
            schedules: vec![1, 2, 3, 4],
        },
        verify: None,
        deadline_ms: None,
    };
    let mut probe = Client::connect(&socket).expect("probe connects");
    let shed = probe
        .request_typed(&format!(
            "{{\"cmd\":\"submit\",\"wait\":true,\"job\":{}}}",
            bounds.to_json()
        ))
        .expect_err("a full queue must shed");
    assert_eq!(shed.kind, "overloaded", "untyped shed: {shed:?}");
    assert!(
        shed.retry_after_ms.is_some(),
        "overloaded rejection without a retry hint: {shed:?}"
    );

    let policy = RetryPolicy {
        retries: 60,
        base_ms: 50,
        cap_ms: 250,
        ..RetryPolicy::default()
    };
    let result =
        submit_with_retry(&socket, &bounds, &policy).expect("backoff outlasts the overload");
    assert!(result.get("report").is_some(), "bounds result: {result:?}");

    runner.join().expect("runner thread").expect("campaign 1");
    queued.join().expect("queuer thread").expect("campaign 2");

    let mut client = Client::connect(&socket).expect("stats connects");
    let stats = client.stats().expect("stats");
    assert!(
        stats.get("shed").and_then(JsonValue::as_u64).unwrap_or(0) >= 1,
        "admission control never shed: {stats:?}"
    );
    client.shutdown().expect("clean shutdown");
    daemon.join().expect("daemon joins");
}

#[test]
fn drain_refuses_new_work_finishes_running_and_persists_the_cache() {
    let cache = std::env::temp_dir().join(format!("tve-proto-drain-{}.cache", std::process::id()));
    let _ = std::fs::remove_file(&cache);
    let daemon = spawn(&ServeOptions {
        socket: test_socket("drain"),
        workers: Some(2),
        quiet: true,
        cache_file: Some(cache.clone()),
        ..ServeOptions::default()
    })
    .expect("daemon spawns");
    let socket = daemon.socket.clone();

    let mut client = Client::connect(&socket).expect("client connects");
    let id = client
        .submit_async(&campaign_job(0x0D12_A1A0, None))
        .expect("async campaign admitted");
    client.drain().expect("drain accepted");

    // Submissions after drain are refused with the typed error; the
    // running campaign is NOT cancelled.
    let mut late = Client::connect(&socket).expect("late client connects");
    let refused = late
        .request_typed(&format!(
            "{{\"cmd\":\"submit\",\"wait\":true,\"job\":{}}}",
            campaign_job(0x0D12_A1A1, None).to_json()
        ))
        .expect_err("draining daemon accepted new work");
    assert_eq!(refused.kind, "draining", "untyped refusal: {refused:?}");
    drop(late);

    // The daemon exits on its own once the running job finishes, and
    // the cache snapshot lands on disk.
    daemon.join().expect("drained daemon exits cleanly");
    assert!(
        cache.exists(),
        "drain did not persist the cache snapshot to {}",
        cache.display()
    );
    let text = std::fs::read_to_string(&cache).expect("snapshot readable");
    assert!(
        !text.is_empty(),
        "drain persisted an empty cache snapshot despite job {id}"
    );
    let _ = std::fs::remove_file(&cache);
}
