//! Built-in repair, end-to-end through the TLM: the ATE runs the memory
//! test, learns the failing addresses from the test responses, "executes
//! repair actions" (paper Section III.E) by remapping those words to
//! spares, and the retest ships the part — Fig. 1's Repair strategy.

use tve::core::{execute_schedule, Schedule, TestOutcome};
use tve::memtest::Fault;
use tve::sim::Simulation;
use tve::soc::{build_test_runs, JpegEncoderSoc, SocConfig, SocTestPlan};

fn mini() -> SocConfig {
    let mut c = SocConfig::small();
    c.memory_words = 128;
    c.memory_spares = 4;
    c
}

fn run_t6(soc: &JpegEncoderSoc, sim: &mut Simulation) -> TestOutcome {
    let tests = build_test_runs(soc, &SocTestPlan::small());
    let schedule = Schedule::new("t6 only", vec![vec![5]]);
    let result = execute_schedule(sim, tests, &schedule).unwrap();
    result.slots[0].outcome.clone()
}

#[test]
fn detect_repair_retest_ships_the_part() {
    let mut sim = Simulation::new();
    let soc = JpegEncoderSoc::build(&sim.handle(), mini());
    soc.memory.inject(Fault::stuck_at(17, 9, true));
    soc.memory.inject(Fault::stuck_at(90, 0, false));

    // 1. Detect: the march reports mismatches with their addresses.
    let first = run_t6(&soc, &mut sim);
    assert!(first.mismatches > 0);
    assert!(first.failing_addresses.contains(&17), "{first}");
    assert!(first.failing_addresses.contains(&90), "{first}");

    // 2. Repair: the ATE remaps every failing word to a spare.
    for &addr in &first.failing_addresses {
        assert!(soc.memory.repair(addr), "spares must suffice");
    }
    assert_eq!(soc.memory.spares_used(), first.failing_addresses.len());

    // 3. Retest: the repaired part passes.
    let second = run_t6(&soc, &mut sim);
    assert_eq!(second.mismatches, 0, "{second}");
    assert!(second.failing_addresses.is_empty());
}

#[test]
fn unrepairable_part_stays_failing() {
    let mut sim = Simulation::new();
    let mut config = mini();
    config.memory_spares = 1;
    let soc = JpegEncoderSoc::build(&sim.handle(), config);
    for addr in [3u32, 40, 77] {
        soc.memory.inject(Fault::stuck_at(addr, 5, true));
    }
    let first = run_t6(&soc, &mut sim);
    assert!(first.failing_addresses.len() >= 3);
    let repaired = first
        .failing_addresses
        .iter()
        .filter(|&&a| soc.memory.repair(a))
        .count();
    assert_eq!(repaired, 1, "only one spare available");
    let second = run_t6(&soc, &mut sim);
    assert!(second.mismatches > 0, "two faults remain: scrap the part");
}

#[test]
fn repair_does_not_change_test_timing() {
    // Repair is a data-path remap; the schedule's timing (the exploration
    // currency) is untouched.
    let mut sim = Simulation::new();
    let soc = JpegEncoderSoc::build(&sim.handle(), mini());
    let clean = run_t6(&soc, &mut sim);

    let mut sim = Simulation::new();
    let soc = JpegEncoderSoc::build(&sim.handle(), mini());
    soc.memory.inject(Fault::stuck_at(17, 9, true));
    let faulty = run_t6(&soc, &mut sim);
    assert_eq!(clean.duration(), faulty.duration());
}
