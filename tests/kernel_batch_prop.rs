//! Property-based proof that the kernel's batched same-timestamp timer
//! drain is semantically inert: for any workload, the observable event
//! trace is identical whether a batch fires one timer at a time
//! (`set_timer_batch_limit(1)`), a few at a time, or drains whole
//! buckets (the default). See DESIGN.md § Kernel architecture.

use std::cell::RefCell;
use std::rc::Rc;

use proptest::prelude::*;

use tve::sim::{Duration, Simulation};

/// One observable event: (simulated cycle, task index, step index).
type Trace = Vec<(u64, usize, usize)>;

/// Runs `workload` (per-task wait sequences, in cycles) under the given
/// timer batch limit and returns the trace of every completed wait in
/// execution order.
fn run(workload: &[Vec<u64>], batch_limit: usize) -> (Trace, u64) {
    let mut sim = Simulation::new();
    sim.set_timer_batch_limit(batch_limit);
    let trace: Rc<RefCell<Trace>> = Rc::new(RefCell::new(Vec::new()));
    for (ti, waits) in workload.iter().enumerate() {
        let h = sim.handle();
        let trace = Rc::clone(&trace);
        let waits = waits.clone();
        sim.spawn(async move {
            for (si, &w) in waits.iter().enumerate() {
                h.wait(Duration::cycles(w)).await;
                trace.borrow_mut().push((h.now().cycles(), ti, si));
            }
        });
    }
    let end = sim.run().cycles();
    let t = trace.borrow().clone();
    (t, end)
}

/// Wait sequences drawn from a tiny duration range so many timers land
/// on the same cycle — exactly the bucket shapes batching reorders if
/// it is ever wrong.
fn workloads() -> impl Strategy<Value = Vec<Vec<u64>>> {
    proptest::collection::vec(proptest::collection::vec(1u64..6, 1..12), 1..10)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn batch_limit_one_is_trace_identical(workload in workloads()) {
        let (full, end_full) = run(&workload, usize::MAX);
        let (one, end_one) = run(&workload, 1);
        prop_assert_eq!(&one, &full);
        prop_assert_eq!(end_one, end_full);
    }

    #[test]
    fn any_batch_limit_is_trace_identical(workload in workloads(), limit in 2usize..5) {
        let (full, end_full) = run(&workload, usize::MAX);
        let (k, end_k) = run(&workload, limit);
        prop_assert_eq!(&k, &full);
        prop_assert_eq!(end_k, end_full);
    }
}
