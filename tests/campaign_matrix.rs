//! End-to-end checks of the fault-injection campaign engine: the
//! acceptance criteria of the campaign subsystem, on a small population.
//!
//! * every injected stuck scan-cell and memory fault is detected by the
//!   union of the four Table-I schedules,
//! * every detected scan-cell fault is confirmed by diagnosis at exactly
//!   the injected (chain, position),
//! * the emitted matrix is byte-identical regardless of farm worker
//!   count,
//! * infrastructure faults (stuck WIR bits, broken config-ring segments,
//!   corrupting TAM channels) are detected or appear as named escapes —
//!   never silently absorbed.

use tve::campaign::{
    generate, run_campaign, CampaignConfig, CellOutcome, FaultSpec, PopulationSpec,
};
use tve::core::{StuckCell, StuckWirBit};
use tve::sched::Farm;
use tve::soc::{paper_schedules, SocConfig, SocTestPlan, WrappedCore, RING_EBI};

fn small_soc() -> SocConfig {
    let mut cfg = SocConfig::small();
    cfg.memory_words = 64;
    cfg
}

fn campaign_config(population: Vec<FaultSpec>) -> CampaignConfig {
    CampaignConfig::new(
        small_soc(),
        SocTestPlan::small(),
        paper_schedules().to_vec(),
        population,
    )
}

#[test]
fn all_core_faults_detected_and_diagnosis_confirms() {
    let spec = PopulationSpec {
        seed: 20090417,
        scan_cells_per_core: 1,
        memory_faults: 2,
        ..PopulationSpec::default()
    };
    let population = generate(&spec, &small_soc());
    let config = campaign_config(population);
    let report = run_campaign(&config, &Farm::with_workers(2));

    assert_eq!(
        report.cells.len(),
        config.population.len() * 4,
        "one cell per (fault x schedule)"
    );

    // 100 % detection of core faults by the schedule union.
    assert!(
        report.union_escapes().is_empty(),
        "core faults escaped every schedule: {:?}",
        report.union_escapes()
    );
    // In this SoC every schedule runs all seven tests, so each schedule
    // individually reaches full core-fault coverage as well.
    for s in &report.schedules {
        assert_eq!(
            report.core_coverage(s),
            1.0,
            "schedule '{s}' missed core faults: {:?}",
            report.escapes(s)
        );
    }

    // Every detected scan-cell fault went to diagnosis and was located
    // at exactly the injected (chain, position).
    let scan_faults = config
        .population
        .iter()
        .filter(|f| matches!(f, FaultSpec::ScanCell { .. }))
        .count();
    assert_eq!(report.diagnosis.len(), scan_faults);
    for d in &report.diagnosis {
        assert!(
            d.confirmed,
            "{}: diagnosis located {:?}, injected {:?}",
            d.fault_id, d.located, d.injected
        );
        assert!(d.first_failing_pattern.is_some());
    }

    // Infrastructure faults never vanish: each is noticed somewhere
    // (detected or infra-failure) or is present as a per-schedule escape
    // row in the matrix.
    for fault in config.population.iter().filter(|f| f.is_infrastructure()) {
        let rows: Vec<_> = report
            .cells
            .iter()
            .filter(|c| c.fault_id == fault.id())
            .collect();
        assert_eq!(rows.len(), 4, "{fault}: one row per schedule");
        let noticed = rows.iter().any(|c| c.outcome.noticed());
        let named_escape = rows.iter().any(|c| c.outcome == CellOutcome::Escape);
        assert!(
            noticed || named_escape,
            "{fault}: absent from both detections and escapes"
        );
    }
}

#[test]
fn matrix_is_byte_identical_across_worker_counts() {
    let spec = PopulationSpec {
        seed: 7,
        scan_cells_per_core: 1,
        memory_faults: 1,
        infrastructure: false,
        ..PopulationSpec::default()
    };
    let population = generate(&spec, &small_soc());
    let mut config = campaign_config(population);
    config.diagnosis = false;

    let serial = run_campaign(&config, &Farm::with_workers(1));
    let parallel = run_campaign(&config, &Farm::with_workers(8));
    assert_eq!(serial, parallel, "reports diverge across worker counts");
    assert_eq!(serial.to_csv(), parallel.to_csv());
    assert_eq!(serial.to_json(), parallel.to_json());
    tve::obs::check_json(&serial.to_json()).expect("campaign JSON is well-formed");
}

#[test]
fn wir_stuck_bit_fault_is_caught() {
    // WIR bit 0 stuck at 1 turns the BIST opcode (100) into an invalid
    // one (101), dropping the wrapper to functional mode: pattern writes
    // land in the functional sink and the signature read returns zeros,
    // so the BIST outcome must deviate from the golden run.
    let fault = FaultSpec::WirStuck {
        core: WrappedCore::Processor,
        fault: StuckWirBit {
            bit: 0,
            value: true,
        },
    };
    let mut config = campaign_config(vec![fault]);
    config.diagnosis = false;
    let report = run_campaign(&config, &Farm::with_workers(2));
    assert_eq!(report.cells.len(), 4);
    for cell in &report.cells {
        assert!(
            matches!(cell.outcome, CellOutcome::Detected { .. }),
            "WIR stuck bit escaped '{}': {:?}",
            cell.schedule,
            cell.outcome
        );
    }
}

#[test]
fn ring_breaks_and_tam_corruption_are_never_silent() {
    let population = vec![
        FaultSpec::RingBreak { index: 0 },
        FaultSpec::RingBreak { index: RING_EBI },
        FaultSpec::TamCorruption {
            policy: tve::tlm::FaultyTamPolicy::corrupt(99, 3),
        },
    ];
    let mut config = campaign_config(population);
    config.diagnosis = false;
    let report = run_campaign(&config, &Farm::with_workers(2));
    for cell in &report.cells {
        assert!(
            cell.outcome.noticed(),
            "infrastructure fault {} slipped through '{}' unnoticed",
            cell.fault_id,
            cell.schedule
        );
    }
}

#[test]
fn prescreen_skips_defective_schedules_instead_of_panicking() {
    // A duplicate-test schedule would panic the golden baseline; with the
    // static pre-screen it runs zero simulations and is reported instead.
    let fault = FaultSpec::ScanCell {
        core: WrappedCore::Processor,
        cell: StuckCell {
            chain: 0,
            position: 1,
            value: true,
        },
    };
    let mut schedules = paper_schedules().to_vec();
    schedules.push(tve::core::Schedule::new(
        "defective (dup)",
        vec![vec![0], vec![0]],
    ));
    let mut config = CampaignConfig::new(small_soc(), SocTestPlan::small(), schedules, vec![fault])
        .with_prescreen();
    config.diagnosis = false;
    let report = run_campaign(&config, &Farm::with_workers(2));
    // The defective schedule is gone from the matrix but named in the
    // report, with the diagnostic code that condemned it.
    assert_eq!(report.schedules.len(), 4);
    assert_eq!(report.cells.len(), 4, "one cell per surviving schedule");
    assert_eq!(report.prescreened.len(), 1);
    assert_eq!(report.prescreened[0].schedule, "defective (dup)");
    assert_eq!(report.prescreened[0].codes, vec!["sched-dup-test"]);
    let json = report.to_json();
    assert!(
        json.contains("defective (dup)"),
        "prescreen missing in JSON"
    );
    tve::obs::check_json(&json).expect("campaign JSON is well-formed");
}

#[test]
fn scan_fault_detection_latency_is_plausible() {
    // A processor scan fault is caught by T1 (the first proc test in
    // every schedule), so its detection latency must be well below the
    // schedule's total length.
    let fault = FaultSpec::ScanCell {
        core: WrappedCore::Processor,
        cell: StuckCell {
            chain: 0,
            position: 3,
            value: true,
        },
    };
    let mut config = campaign_config(vec![fault]);
    config.diagnosis = false;
    let report = run_campaign(&config, &Farm::with_workers(1));
    for cell in &report.cells {
        match &cell.outcome {
            CellOutcome::Detected {
                latency_cycles,
                deviating,
            } => {
                assert!(*latency_cycles > 0);
                assert!(
                    deviating.iter().any(|n| n.contains("proc")),
                    "'{}': deviation blamed on {deviating:?}",
                    cell.schedule
                );
            }
            other => panic!(
                "'{}': proc scan fault not detected: {other:?}",
                cell.schedule
            ),
        }
    }
}
