//! Checkpoint/resume under real process death: a campaign child is
//! `SIGKILL`ed mid-matrix, the parent resumes from the journal, and the
//! final artifact must be byte-identical to an uninterrupted run. The
//! journal is self-validating — a truncated or bit-flipped record is
//! detected, reported, and resimulated, never silently absorbed — and a
//! journal written by a different campaign configuration is refused
//! outright.

use std::path::PathBuf;
use std::process::{Command, Stdio};
use std::time::{Duration, Instant};

use tve::campaign::{
    generate, merge_shards, run_campaign, run_campaign_journaled, run_campaign_journaled_with_io,
    CampaignConfig, PopulationSpec, ShardSpec,
};
use tve::obs::{IoPolicy, WriteFault};
use tve::sched::Farm;
use tve::soc::{paper_schedules, SocConfig, SocTestPlan};

/// The campaign both processes run: parent and child must agree on the
/// fingerprint, so everything is derived from this one function.
fn config() -> CampaignConfig {
    let mut soc = SocConfig::small();
    soc.memory_words = 128;
    let population = generate(
        &PopulationSpec {
            scan_cells_per_core: 2,
            memory_faults: 2,
            ..PopulationSpec::default()
        },
        &soc,
    );
    CampaignConfig::new(
        soc,
        SocTestPlan::small(),
        paper_schedules().to_vec(),
        population,
    )
}

fn temp_journal(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("tve-resume-{tag}-{}.journal", std::process::id()))
}

const CHILD_ENV: &str = "TVE_RESUME_CHILD_JOURNAL";

/// Not a test of its own: this is the campaign child. It only does work
/// when the parent re-invokes this test binary with the journal path in
/// the environment — in a normal test run it returns immediately.
#[test]
fn resume_child() {
    let Ok(path) = std::env::var(CHILD_ENV) else {
        return;
    };
    let farm = Farm::with_workers(1);
    run_campaign_journaled(&config(), &farm, ShardSpec::full(), &path).expect("child campaign");
}

#[test]
fn sigkilled_campaign_resumes_to_identical_artifact() {
    let journal = temp_journal("kill");
    let _ = std::fs::remove_file(&journal);
    let config = config();
    let cells = config.population.len() * config.schedules.len();

    // Run the campaign in a real child process (this same test binary,
    // filtered to `resume_child`), one worker so the journal grows one
    // cell at a time.
    let mut child = Command::new(std::env::current_exe().expect("own path"))
        .args(["resume_child", "--exact", "--nocapture"])
        .env(CHILD_ENV, &journal)
        .env("TVE_JOBS", "1")
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("child spawns");

    // Wait until the journal holds the header plus a few cells — the
    // child is mid-matrix — then SIGKILL it. No cooperation, no flush.
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let lines = std::fs::read_to_string(&journal)
            .map(|t| t.lines().count())
            .unwrap_or(0);
        if lines >= 4 {
            break;
        }
        if let Some(status) = child.try_wait().expect("child pollable") {
            panic!("child exited ({status}) before the journal reached 4 records");
        }
        assert!(Instant::now() < deadline, "child produced no journal");
        std::thread::sleep(Duration::from_millis(2));
    }
    child.kill().expect("SIGKILL delivered");
    child.wait().expect("child reaped");

    // Resume in this process and compare against an uninterrupted run.
    let farm = Farm::with_workers(2);
    let (report, resume) =
        run_campaign_journaled(&config, &farm, ShardSpec::full(), &journal).expect("resume");
    assert!(
        resume.resumed_cells >= 3,
        "journal prefix vanished: {resume:?}"
    );
    assert!(
        resume.simulated_cells > 0,
        "nothing left to resume — the kill landed after the matrix finished"
    );
    assert_eq!(resume.resumed_cells + resume.simulated_cells, cells);
    let merged = merge_shards(&config, &[report]).expect("full shard merges");
    let baseline = run_campaign(&config, &farm);
    assert_eq!(merged.to_csv(), baseline.to_csv(), "CSV differs");
    assert_eq!(merged.to_json(), baseline.to_json(), "JSON differs");
    let _ = std::fs::remove_file(&journal);
}

/// A complete journal for `config()`, built in-process.
fn completed_journal(tag: &str) -> (CampaignConfig, PathBuf, String, String) {
    let journal = temp_journal(tag);
    let _ = std::fs::remove_file(&journal);
    let config = config();
    let farm = Farm::with_workers(2);
    let (report, _) =
        run_campaign_journaled(&config, &farm, ShardSpec::full(), &journal).expect("cold run");
    let merged = merge_shards(&config, &[report]).expect("full shard merges");
    (config, journal, merged.to_csv(), merged.to_json())
}

#[test]
fn bit_flipped_record_is_reported_and_resimulated() {
    let (config, journal, csv, json) = completed_journal("flip");
    let mut bytes = std::fs::read(&journal).expect("journal readable");
    // Corrupt one byte inside the third line's payload.
    let third_line_start = bytes
        .iter()
        .enumerate()
        .filter(|(_, &b)| b == b'\n')
        .map(|(i, _)| i + 1)
        .nth(1)
        .expect("journal has three lines");
    let target = third_line_start + 20;
    bytes[target] = if bytes[target] == b'x' { b'y' } else { b'x' };
    std::fs::write(&journal, &bytes).expect("journal writable");

    let farm = Farm::with_workers(2);
    let (report, resume) =
        run_campaign_journaled(&config, &farm, ShardSpec::full(), &journal).expect("resume");
    let defect = resume
        .defect
        .expect("damage must be reported, not absorbed");
    assert_eq!(defect.line, 3, "defect not located at the flipped record");
    assert!(defect.dropped > 0);
    // Only the records before the flip survived; the rest resimulated.
    assert_eq!(resume.resumed_cells, 1);
    assert!(resume.simulated_cells > 0);
    let merged = merge_shards(&config, &[report]).expect("full shard merges");
    assert_eq!(merged.to_csv(), csv, "artifact differs after damage");
    assert_eq!(merged.to_json(), json);
    let _ = std::fs::remove_file(&journal);
}

#[test]
fn short_write_torn_tail_is_reported_and_resimulated() {
    let journal = temp_journal("shortwrite");
    let _ = std::fs::remove_file(&journal);
    let config = config();
    let farm = Farm::with_workers(2);

    // Tear the record on the write path, not by editing the file
    // afterwards: the 4th journal append (header plus two cells land
    // intact) stops 10 bytes in, and every write after it fails with
    // `StorageFull` — exactly what a full disk mid-append looks like.
    // The failed append must surface as an error from the run.
    let policy = IoPolicy::new();
    policy.fail_nth_write(4, WriteFault::Short { keep: 10 });
    let err = run_campaign_journaled_with_io(&config, &farm, ShardSpec::full(), &journal, &policy)
        .expect_err("a torn append must fail the run, not be absorbed");
    assert!(err.contains("journal"), "untyped journal error: {err}");

    // The journal on disk now ends mid-record. A clean rerun must
    // report the torn tail as a defect, keep the intact prefix,
    // resimulate the rest, and produce the exact artifact of an
    // uninterrupted run.
    let (report, resume) =
        run_campaign_journaled(&config, &farm, ShardSpec::full(), &journal).expect("resume");
    let defect = resume.defect.expect("torn tail must be reported");
    assert_eq!(defect.dropped, 1, "exactly the torn record was dropped");
    assert_eq!(resume.resumed_cells, 2, "the intact prefix must survive");
    let merged = merge_shards(&config, &[report]).expect("full shard merges");
    let baseline = run_campaign(&config, &farm);
    assert_eq!(merged.to_csv(), baseline.to_csv(), "artifact differs");
    assert_eq!(merged.to_json(), baseline.to_json(), "artifact differs");
    let _ = std::fs::remove_file(&journal);
}

#[test]
fn foreign_journal_is_refused() {
    let (_, journal, _, _) = completed_journal("foreign");
    // A different population seed is a different matrix; its journal
    // must be a hard error, not a silent partial reuse.
    let mut other = config();
    other.population = generate(
        &PopulationSpec {
            seed: 0xDEAD_BEEF,
            scan_cells_per_core: 2,
            memory_faults: 2,
            ..PopulationSpec::default()
        },
        &other.soc,
    );
    let farm = Farm::with_workers(1);
    let err = run_campaign_journaled(&other, &farm, ShardSpec::full(), &journal)
        .expect_err("foreign journal accepted");
    assert!(err.contains("refusing to mix matrices"), "{err}");
    let _ = std::fs::remove_file(&journal);
}
