//! The two-sided contract between `tve-lint` and the dynamic layer.
//!
//! **Soundness**: a schedule with no error-severity diagnostics never
//! produces a `ScheduleError` or an unclean run when actually simulated —
//! checked over the four Table-I schedules and a population of generated
//! conflict-free schedules farmed in one parallel batch.
//!
//! **Usefulness**: every `ScheduleError` variant, and every seeded
//! structural defect (core race, WIR conflict, stale ring config, power
//! overcommit, dead test), is caught *statically* with the right
//! diagnostic code — before any simulator exists.

use tve::core::{Schedule, ScheduleError};
use tve::lint::{
    codes, lint_program, lint_schedule, lint_schedule_report, soc_facts, Severity, WirWrite,
};
use tve::sched::{Farm, JobError, ScenarioJob};
use tve::soc::{paper_schedules, run_scenario, SocConfig, SocTestPlan, RING_MEM};

fn small_soc() -> SocConfig {
    let mut cfg = SocConfig::small();
    cfg.memory_words = 64;
    cfg
}

/// The deterministic splittable RNG used across the workspace for
/// reproducible populations (same update as `tve-campaign`'s sampler).
struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }
}

/// Generates a conflict-free schedule over the seven tests: a random
/// permutation greedily packed into phases whose members never claim a
/// common core (which, for this plan, also implies WIR compatibility),
/// with random phase breaks for shape diversity. Every test appears
/// exactly once, so the result must lint clean and execute clean.
fn random_conflict_free_schedule(rng: &mut SplitMix64, name: String) -> Schedule {
    let facts = soc_facts(&SocConfig::small(), &SocTestPlan::small());
    let mut order: Vec<usize> = (0..facts.tests.len()).collect();
    for i in (1..order.len()).rev() {
        order.swap(i, rng.below(i as u64 + 1) as usize);
    }
    let mut phases: Vec<Vec<usize>> = Vec::new();
    for t in order {
        let compatible = |phase: &[usize]| {
            phase.iter().all(|&other| {
                facts.tests[t]
                    .cores
                    .iter()
                    .all(|c| !facts.tests[other].cores.contains(c))
            })
        };
        // Half the time try to join an existing compatible phase.
        let slot = (rng.below(2) == 0)
            .then(|| phases.iter().position(|p| compatible(p)))
            .flatten();
        match slot {
            Some(i) => phases[i].push(t),
            None => phases.push(vec![t]),
        }
    }
    Schedule::new(name, phases)
}

#[test]
fn soundness_paper_schedules_lint_clean_and_execute_clean() {
    let cfg = small_soc();
    let plan = SocTestPlan::small();
    let facts = soc_facts(&cfg, &plan);
    let jobs: Vec<ScenarioJob> = paper_schedules()
        .into_iter()
        .inspect(|s| {
            let report = lint_schedule_report(s, &facts);
            assert!(report.clean(), "'{}' has lint errors:\n{report}", s.name);
        })
        .map(|s| ScenarioJob::new(cfg.clone(), plan.clone(), s))
        .collect();
    let batch = Farm::new().run_prescreened(&jobs);
    assert_eq!(batch.rejected_count(), 0);
    for outcome in &batch.outcomes {
        let metrics = outcome.expect_metrics();
        assert!(
            metrics.result.clean(),
            "lint-clean '{}' executed unclean: {}",
            outcome.label,
            metrics.result
        );
    }
}

#[test]
fn soundness_holds_over_generated_conflict_free_schedules() {
    // >= 100 generated schedules: all lint clean, then the whole
    // population is validated dynamically in one parallel farm batch.
    const POPULATION: usize = 120;
    let cfg = small_soc();
    let plan = SocTestPlan::small();
    let facts = soc_facts(&cfg, &plan);
    let mut rng = SplitMix64(0x2009_0417);
    let jobs: Vec<ScenarioJob> = (0..POPULATION)
        .map(|i| {
            let s = random_conflict_free_schedule(&mut rng, format!("generated {i}"));
            let report = lint_schedule_report(&s, &facts);
            assert!(report.clean(), "'{}' has lint errors:\n{report}", s.name);
            ScenarioJob::new(cfg.clone(), plan.clone(), s)
        })
        .collect();
    let batch = Farm::new().run(&jobs);
    assert!(batch.all_ok(), "a lint-clean schedule failed dynamically");
    for outcome in &batch.outcomes {
        assert!(
            outcome.expect_metrics().result.clean(),
            "lint-clean '{}' executed unclean",
            outcome.label
        );
    }
}

#[test]
fn usefulness_every_schedule_error_variant_is_predicted_statically() {
    // For each ScheduleError variant: the analyzer reports a diagnostic
    // whose code is exactly `err.code()`, and the dynamic layer then
    // fails with exactly that error.
    let cfg = small_soc();
    let plan = SocTestPlan::small();
    let facts = soc_facts(&cfg, &plan);
    let cases = [
        (Schedule::new("none", vec![]), ScheduleError::Empty),
        (
            Schedule::new("hole", vec![vec![0], vec![]]),
            ScheduleError::EmptyPhase,
        ),
        (
            Schedule::new("oob", vec![vec![9]]),
            ScheduleError::IndexOutOfRange(9),
        ),
        (
            Schedule::new("dup", vec![vec![0], vec![0]]),
            ScheduleError::DuplicateTest(0),
        ),
    ];
    for (schedule, want) in cases {
        let diags = lint_schedule(&schedule, &facts);
        let hit = diags
            .iter()
            .find(|d| d.code == want.code())
            .unwrap_or_else(|| panic!("'{}': no {} diagnostic", schedule.name, want.code()));
        assert_eq!(hit.severity, Severity::Error);
        assert_eq!(
            run_scenario(&cfg, &plan, &schedule).unwrap_err(),
            want,
            "'{}': dynamic error differs from the static prediction",
            schedule.name
        );
    }
}

#[test]
fn usefulness_merged_phases_of_any_paper_schedule_race_on_a_core() {
    // Merging the first two phases of every Table-I schedule puts two
    // processor tests in one phase — the analyzer must call the race.
    let facts = soc_facts(&SocConfig::small(), &SocTestPlan::small());
    for s in paper_schedules() {
        let mut phases = s.phases.clone();
        assert!(phases.len() >= 2);
        let merged_tail = phases.remove(1);
        phases[0].extend(merged_tail);
        let merged = Schedule::new(format!("{} (merged)", s.name), phases);
        let diags = lint_schedule(&merged, &facts);
        assert!(
            diags
                .iter()
                .any(|d| d.code == codes::CORE_RACE && d.severity == Severity::Error),
            "'{}': merged phases not flagged: {diags:?}",
            merged.name
        );
    }
}

#[test]
fn usefulness_remaining_defect_classes_have_codes() {
    let base = soc_facts(&SocConfig::small(), &SocTestPlan::small());

    // Power overcommit: a budget below any phase's summed peak power.
    let hot = Schedule::new(
        "hot",
        vec![vec![0, 3], vec![1], vec![2], vec![4], vec![5], vec![6]],
    );
    let diags = lint_schedule(&hot, &base.clone().with_budget(200.0));
    assert!(
        diags
            .iter()
            .any(|d| d.code == codes::POWER_OVERCOMMIT && d.severity == Severity::Error),
        "{diags:?}"
    );

    // Stale ring config: a test latches a test mode into the memory
    // wrapper's client, then a march test needs it functional.
    let mut facts = base.clone();
    facts.tests[0].wir.push(WirWrite {
        client: RING_MEM,
        value: 3,
    });
    let stale = Schedule::new("stale", vec![vec![0], vec![5]]);
    let diags = lint_schedule(&stale, &facts);
    assert!(
        diags
            .iter()
            .any(|d| d.code == codes::RING_STALE && d.severity == Severity::Error),
        "{diags:?}"
    );

    // WIR conflict: two tests configuring one client differently.
    let mut facts = base.clone();
    facts.tests[3].wir = vec![WirWrite {
        client: 5,
        value: 7,
    }];
    let conflict = Schedule::new("wir", vec![vec![1, 3]]);
    let diags = lint_schedule(&conflict, &facts);
    assert!(
        diags
            .iter()
            .any(|d| d.code == codes::WIR_CONFLICT && d.severity == Severity::Error),
        "{diags:?}"
    );

    // Dead test: a warning, never an error (the schedule still runs).
    let partial = Schedule::new("partial", vec![vec![0]]);
    let diags = lint_schedule(&partial, &base);
    let dead: Vec<_> = diags
        .iter()
        .filter(|d| d.code == codes::DEAD_TEST)
        .collect();
    assert_eq!(dead.len(), 6);
    assert!(dead.iter().all(|d| d.severity == Severity::Warning));
}

#[test]
fn usefulness_program_defects_are_caught_with_spans() {
    let facts = soc_facts(&SocConfig::small(), &SocTestPlan::small());
    let text = "config 9 bist\nrun 0\nrun 0\nexpect 7 0x1\n";
    let diags = lint_program("defects", text, &facts);
    for code in [
        codes::PROG_UNKNOWN_CLIENT,
        codes::PROG_DUP_RUN,
        codes::PROG_UNKNOWN_WRAPPER,
    ] {
        assert!(
            diags.iter().any(|d| d.code == code),
            "missing {code}: {diags:?}"
        );
    }
    // A parse failure carries the parser's exact span.
    let diags = lint_program("broken", "wait 5\nfrobnicate 1\n", &facts);
    assert_eq!(diags.len(), 1);
    assert_eq!(diags[0].code, codes::PROG_PARSE);
    assert_eq!(
        diags[0].location,
        tve::lint::Location::Span { line: 2, column: 1 }
    );
}

#[test]
fn prescreen_rejections_predict_dynamic_schedule_errors() {
    // Every statically-rejected structural schedule, had it been
    // simulated, would have failed with the ScheduleError its diagnostic
    // code names — the pre-screen skips work, never results.
    let cfg = small_soc();
    let plan = SocTestPlan::small();
    let bad = [
        Schedule::new("none", vec![]),
        Schedule::new("hole", vec![vec![0], vec![]]),
        Schedule::new("oob", vec![vec![9]]),
        Schedule::new("dup", vec![vec![0], vec![0]]),
    ];
    let jobs: Vec<ScenarioJob> = bad
        .iter()
        .map(|s| ScenarioJob::new(cfg.clone(), plan.clone(), s.clone()))
        .collect();
    let batch = Farm::with_workers(2).run_prescreened(&jobs);
    assert_eq!(batch.rejected_count(), bad.len());
    for (outcome, schedule) in batch.outcomes.iter().zip(&bad) {
        let Err(JobError::Rejected(report)) = &outcome.result else {
            panic!("'{}' was not rejected", outcome.label);
        };
        let dynamic = run_scenario(&cfg, &plan, schedule).unwrap_err();
        assert!(
            report.has(dynamic.code()),
            "'{}': dynamic {dynamic:?} ({}) not among static codes {:?}",
            outcome.label,
            dynamic.code(),
            report.codes()
        );
    }
}
