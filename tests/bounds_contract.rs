//! The soundness contract of the certified static bounds.
//!
//! **Soundness**: for every generated (SoC config × plan × schedule ×
//! quantum), the simulated `ScenarioMetrics` lands inside the static
//! [`ScheduleEnvelope`] — total cycles, per-TAM-channel busy cycles and
//! (when the power model is on) peak windowed power. Both TAM backends are
//! exercised in every case: the generated schedules always contain the
//! bus-fed tests (T1/T4/T6/T7) and the serial-fed ones (T2/T3/T5).
//!
//! **Exactness of pruning**: `explore_certified` with pruning returns a
//! Pareto front byte-identical to exhaustive exploration, and no pruned
//! candidate ever appears on the exhaustive front.

use proptest::prelude::*;

use tve::core::Schedule;
use tve::lint::{observe_metrics, schedule_envelope, soc_facts, task_bounds};
use tve::sched::{
    enumerate_schedules, estimate_tasks, explore_certified, CertifiedOutcome, Constraints,
};
use tve::sim::Duration;
use tve::soc::{
    paper_schedules, run_scenario, run_scenario_quantum, PowerParams, SocConfig, SocTestPlan,
};
use tve::tlm::ArbiterPolicy;
use tve::tpg::ScanConfig;

/// Deterministic splittable RNG (same update as the other contract tests).
struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }
}

/// A generated SoC + plan, small enough to simulate in milliseconds but
/// varied across chain geometry, bus and ATE-channel shape, data policy,
/// march composition and power metering.
fn generate_workload(rng: &mut SplitMix64) -> (SocConfig, SocTestPlan) {
    let mut cfg = SocConfig::small();
    let chains = 1 + rng.below(6) as u32;
    // >= 24 bits per pattern: T3's cube generator needs that many care
    // positions.
    let chain_len = 24 + rng.below(73) as u32;
    cfg.proc_scan = ScanConfig::new(chains, chain_len);
    cfg.color_scan = ScanConfig::new(1 + rng.below(4) as u32, 8 + rng.below(57) as u32);
    cfg.dct_scan = ScanConfig::new(1 + rng.below(3) as u32, 8 + rng.below(41) as u32);
    cfg.bus_width_bits = [16, 32, 48, 64][rng.below(4) as usize];
    cfg.bus_overhead = rng.below(4);
    cfg.capture_cycles = rng.below(9);
    cfg.arbiter = [
        ArbiterPolicy::Fcfs,
        ArbiterPolicy::RoundRobin,
        ArbiterPolicy::Priority,
    ][rng.below(3) as usize];
    cfg.ate_down_rate = (1 + rng.below(16), 1);
    cfg.ate_up_rate = (1 + rng.below(16), 1);
    cfg.decompress_ratio = (4 + rng.below(61)) as f64;
    cfg.compact_ratio = 2 + rng.below(15) as u32;
    cfg.controller_op_overhead = 1 + rng.below(8);
    cfg.processor_op_overhead = 1 + rng.below(8);
    cfg.memory_words = 32 + rng.below(225) as u32;
    cfg.power = (rng.below(2) == 0).then(|| PowerParams {
        window: [1024, 65_536][rng.below(2) as usize],
        ..PowerParams::default()
    });

    let mut plan = SocTestPlan::small();
    plan.bist_proc_patterns = 1 + rng.below(30);
    plan.det_proc_patterns = 1 + rng.below(30);
    plan.comp_proc_patterns = 1 + rng.below(30);
    plan.bist_color_patterns = 1 + rng.below(30);
    plan.det_dct_patterns = 1 + rng.below(30);
    plan.policy = if rng.below(2) == 0 {
        tve::core::DataPolicy::Volume
    } else {
        tve::core::DataPolicy::Full
    };
    (cfg, plan)
}

/// A random conflict-free schedule over all seven tests: a shuffled
/// permutation greedily packed into core-disjoint phases (the same
/// construction `tests/lint_contract.rs` proves lints and executes clean).
fn generate_schedule(
    rng: &mut SplitMix64,
    cfg: &SocConfig,
    plan: &SocTestPlan,
    name: String,
) -> Schedule {
    let facts = soc_facts(cfg, plan);
    let mut order: Vec<usize> = (0..facts.tests.len()).collect();
    for i in (1..order.len()).rev() {
        order.swap(i, rng.below(i as u64 + 1) as usize);
    }
    let mut phases: Vec<Vec<usize>> = Vec::new();
    for t in order {
        let compatible = |phase: &[usize]| {
            phase.iter().all(|&other| {
                facts.tests[t]
                    .cores
                    .iter()
                    .all(|c| !facts.tests[other].cores.contains(c))
            })
        };
        let slot = (rng.below(2) == 0)
            .then(|| phases.iter().position(|p| compatible(p)))
            .flatten();
        match slot {
            Some(i) => phases[i].push(t),
            None => phases.push(vec![t]),
        }
    }
    Schedule::new(name, phases)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // The tentpole contract: simulation always lands inside the envelope,
    // in accurate mode and at every loosely-timed quantum.
    #[test]
    fn simulation_lands_inside_the_static_envelope(seed in any::<u64>(), q_idx in 0usize..4) {
        let quantum = [0u64, 64, 1024, 4096][q_idx];
        let mut rng = SplitMix64(seed);
        let (cfg, plan) = generate_workload(&mut rng);
        let schedule = generate_schedule(&mut rng, &cfg, &plan, format!("gen {seed:#x}"));
        let env = schedule_envelope(&cfg, &plan, &schedule, quantum);
        let metrics = if quantum == 0 {
            run_scenario(&cfg, &plan, &schedule)
        } else {
            run_scenario_quantum(&cfg, &plan, &schedule, Duration::cycles(quantum))
        }
        .expect("conflict-free schedules execute");
        let obs = observe_metrics(&metrics, &task_bounds(&cfg, &plan, quantum));
        let violations = env.check(&obs);
        prop_assert!(
            violations.is_empty(),
            "envelope violated for {:?} (quantum {quantum}):\n{}",
            schedule.phases,
            violations.join("\n")
        );
        if cfg.power.is_some() {
            prop_assert!(obs.peak_power.is_some(), "power model must be metered");
        }
    }

    // Pruning exactness on the mini workload: the certified front is
    // byte-identical to the exhaustive one for arbitrary power budgets and
    // extra candidate pools, and no pruned candidate is on the front.
    #[test]
    fn certified_front_is_byte_identical_to_exhaustive(seed in any::<u64>(), budget_sel in 0usize..4) {
        let mut cfg = SocConfig::small();
        cfg.memory_words = 32;
        let plan = SocTestPlan::small();
        let tasks = estimate_tasks(&cfg, &plan);
        let constraints = Constraints {
            tam_capacity: 1.0,
            power_budget: [u32::MAX, 500, 350, 250][budget_sel],
        };
        let mut rng = SplitMix64(seed);
        let mut extra: Vec<Schedule> = paper_schedules().into_iter().collect();
        extra.extend(enumerate_schedules(&tasks, &constraints, 4));
        for i in 0..3 {
            extra.push(generate_schedule(&mut rng, &cfg, &plan, format!("rand {seed:#x}/{i}")));
        }
        let exhaustive =
            explore_certified(&cfg, &plan, &tasks, &constraints, &extra, false);
        let certified =
            explore_certified(&cfg, &plan, &tasks, &constraints, &extra, true);
        prop_assert!(exhaustive.violations.is_empty(), "{:?}", exhaustive.violations);
        prop_assert!(certified.violations.is_empty(), "{:?}", certified.violations);
        prop_assert_eq!(exhaustive.pruned(), 0);
        let front = exhaustive.front_signature();
        prop_assert_eq!(
            &certified.front_signature(),
            &front,
            "pruning changed the front"
        );
        // No pruned candidate appears on the exhaustive front.
        for c in &certified.candidates {
            if let CertifiedOutcome::Pruned(p) = &c.outcome {
                prop_assert!(
                    !front.split(';').any(|pt| pt.starts_with(&format!("{}=", p.candidate))),
                    "pruned '{}' is on the exhaustive front {front}",
                    p.candidate
                );
            }
        }
    }
}

#[test]
fn paper_workload_sits_inside_its_envelopes_accurate_and_quantum() {
    // The reference workload at reduced pattern counts (and a matching
    // memory reduction, as the bench preset does), both TAM backends,
    // accurate and loosely-timed — the concrete anchor for the proptests.
    let mut cfg = SocConfig::paper();
    cfg.memory_words = 2622;
    let plan = SocTestPlan::paper_scaled(200);
    for quantum in [0u64, 1024] {
        for schedule in paper_schedules() {
            let env = schedule_envelope(&cfg, &plan, &schedule, quantum);
            let metrics = if quantum == 0 {
                run_scenario(&cfg, &plan, &schedule)
            } else {
                run_scenario_quantum(&cfg, &plan, &schedule, Duration::cycles(quantum))
            }
            .unwrap();
            let obs = observe_metrics(&metrics, &task_bounds(&cfg, &plan, quantum));
            let violations = env.check(&obs);
            assert!(
                violations.is_empty(),
                "{} (quantum {quantum}):\n{}",
                schedule.name,
                violations.join("\n")
            );
        }
    }
}
