//! Fig. 3 of the paper as executable behaviour: the test wrapper's WIR is
//! written over the dedicated configuration scan bus, and transactions are
//! forwarded to the core in functional/bypass mode or interpreted as test
//! data in test modes.

use std::rc::Rc;

use tve::core::{
    ConfigClient, ConfigScanRing, SyntheticLogicCore, TestWrapper, WrapperConfig, WrapperMode,
};
use tve::sim::Simulation;
use tve::tlm::{InitiatorId, SinkTarget, TamIf, TamIfExt};
use tve::tpg::ScanConfig;

struct Rig {
    sim: Simulation,
    wrapper: Rc<TestWrapper>,
    ring: Rc<ConfigScanRing>,
    func: Rc<SinkTarget>,
}

fn rig() -> Rig {
    let sim = Simulation::new();
    let h = sim.handle();
    let core = Rc::new(SyntheticLogicCore::new("core", ScanConfig::new(2, 64), 9));
    let wrapper = Rc::new(TestWrapper::new(&h, WrapperConfig::default(), core));
    let func = Rc::new(SinkTarget::new("core-functional"));
    wrapper.bind_functional(Rc::clone(&func) as Rc<dyn TamIf>);
    let ring = Rc::new(ConfigScanRing::new(
        &h,
        vec![Rc::clone(&wrapper) as Rc<dyn ConfigClient>],
        1,
    ));
    Rig {
        sim,
        wrapper,
        ring,
        func,
    }
}

#[test]
fn wir_is_loaded_serially_over_the_config_bus() {
    let mut r = rig();
    assert_eq!(r.wrapper.mode(), WrapperMode::Functional);
    let ring = Rc::clone(&r.ring);
    r.sim.spawn(async move {
        ring.write(0, WrapperMode::IntTest.encode()).await;
    });
    let end = r.sim.run();
    assert_eq!(r.wrapper.mode(), WrapperMode::IntTest);
    // One ring rotation of 8 WIR bits.
    assert_eq!(end.cycles(), 8);
}

#[test]
fn functional_mode_forwards_and_test_mode_interprets() {
    let mut r = rig();
    let wrapper = Rc::clone(&r.wrapper);
    let ring = Rc::clone(&r.ring);
    r.sim.spawn(async move {
        // Functional: forwarded to the core's functional interface.
        wrapper.write(InitiatorId(0), 0, &[1, 2], 64).await.unwrap();
        // Switch to internal test over the config bus.
        ring.write(0, WrapperMode::IntTest.encode()).await;
        // The same transaction shape is now interpreted as a scan pattern.
        wrapper
            .write(InitiatorId(0), 0, &[0xAB, 0xCD, 0xEF, 0x12], 128)
            .await
            .unwrap();
        wrapper.drain().await;
    });
    r.sim.run();
    assert_eq!(r.func.transaction_count(), 1, "one forwarded access");
    assert_eq!(r.wrapper.stats().patterns, 1, "one scan pattern");
    assert_eq!(r.wrapper.stats().forwarded, 1);
}

#[test]
fn bypass_mode_costs_one_cycle_and_forwards() {
    let mut r = rig();
    r.wrapper.load_config(WrapperMode::Bypass.encode());
    let wrapper = Rc::clone(&r.wrapper);
    r.sim.spawn(async move {
        wrapper.write(InitiatorId(0), 0, &[7], 32).await.unwrap();
    });
    let end = r.sim.run();
    assert_eq!(end.cycles(), 1, "bypass register delay");
    assert_eq!(r.func.transaction_count(), 1);
}

#[test]
fn wrapper_generated_from_ctl_matches_hand_built() {
    use tve::core::CtlDescription;
    let sim = Simulation::new();
    let ctl =
        CtlDescription::parse("core dsp scan 2x64\nin a 16\nout b 16\nscanin si 2\nscanout so 2\n")
            .unwrap();
    let core = Rc::new(SyntheticLogicCore::new("dsp", ScanConfig::new(2, 64), 3));
    let generated = ctl.generate_wrapper(&sim.handle(), core).unwrap();
    assert_eq!(TamIf::name(&generated), "dsp_wrapper");
    assert_eq!(generated.scan_config(), ScanConfig::new(2, 64));
}
