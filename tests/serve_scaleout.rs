//! Scale-out through the daemon: shard jobs submitted over the real
//! socket protocol merge byte-identical to an unsharded campaign job,
//! and the result cache survives a daemon restart bit-for-bit — proven
//! by `verify` re-execution of every reloaded hit, not by trusting the
//! snapshot.

use std::path::PathBuf;

use tve::campaign::{merge_shards, ShardReport, ShardSpec};
use tve::obs::JsonValue;
use tve::sched::Farm;
use tve::serve::{spawn, Client, DaemonHandle, JobKind, JobSpec, ServeOptions};
use tve::soc::Workload;

fn test_path(tag: &str, ext: &str) -> PathBuf {
    std::env::temp_dir().join(format!("tve-scaleout-{tag}-{}.{ext}", std::process::id()))
}

fn start(tag: &str, cache_file: Option<PathBuf>, verify: Option<f64>) -> (DaemonHandle, Client) {
    let daemon = spawn(&ServeOptions {
        socket: test_path(tag, "sock"),
        workers: Some(2),
        verify,
        quiet: true,
        cache_file,
        ..ServeOptions::default()
    })
    .expect("daemon spawns");
    let client = Client::connect(&daemon.socket).expect("client connects");
    (daemon, client)
}

fn campaign_job(shard: Option<ShardSpec>) -> JobSpec {
    JobSpec {
        workload: Workload::small(),
        kind: JobKind::Campaign {
            schedules: vec![1, 2, 3, 4],
            seed: 0x20090417,
            faults: 2,
            diagnosis: true,
            shard,
        },
        verify: None,
        deadline_ms: None,
    }
}

fn field<'v>(result: &'v JsonValue, key: &str) -> &'v str {
    result
        .get(key)
        .and_then(JsonValue::as_str)
        .unwrap_or_else(|| panic!("no string field {key:?} in response"))
}

#[test]
fn shard_jobs_merge_byte_identical_to_the_unsharded_job() {
    let (daemon, mut client) = start("shard", None, None);

    let full = client
        .submit(&campaign_job(None))
        .expect("unsharded campaign succeeds");
    let (full_csv, full_json) = (
        field(&full, "csv").to_string(),
        field(&full, "json").to_string(),
    );

    let count = 3;
    let reports: Vec<ShardReport> = (0..count)
        .map(|k| {
            let job = campaign_job(Some(ShardSpec::new(k, count).unwrap()));
            let result = client.submit(&job).expect("shard campaign succeeds");
            assert_eq!(
                result.get("kind").and_then(JsonValue::as_str),
                Some("campaign-shard")
            );
            ShardReport::from_json(field(&result, "shard_json")).expect("shard report parses")
        })
        .collect();

    // The client rebuilds the campaign configuration the same way the
    // daemon does, so the merge fingerprint-checks the daemon's output.
    let config = campaign_job(None)
        .campaign_config()
        .expect("campaign jobs have a config");
    let merged = merge_shards(&config, &reports).expect("shard set merges");
    assert_eq!(merged.to_csv(), full_csv, "daemon shard CSV differs");
    assert_eq!(merged.to_json(), full_json, "daemon shard JSON differs");

    // Sanity: the shard jobs hit the cells the unsharded job populated.
    let stats = client.stats().expect("stats");
    assert!(
        stats.get("hits").and_then(JsonValue::as_u64).unwrap_or(0) > 0,
        "shard jobs shared no cache with the unsharded run"
    );

    client.shutdown().expect("clean shutdown");
    daemon.join().expect("daemon joins");
}

#[test]
fn cache_survives_restart_bit_for_bit() {
    let cache_file = test_path("persist", "journal");
    let _ = std::fs::remove_file(&cache_file);

    // Cold daemon: simulate everything, persist on shutdown.
    let (daemon, mut client) = start("persist-cold", Some(cache_file.clone()), None);
    let cold = client
        .submit(&campaign_job(None))
        .expect("cold campaign succeeds");
    let cold_csv = field(&cold, "csv").to_string();
    assert!(
        cold.get("cells_simulated")
            .and_then(JsonValue::as_u64)
            .unwrap_or(0)
            > 0,
        "cold run simulated nothing"
    );
    client.shutdown().expect("clean shutdown");
    daemon.join().expect("daemon joins");
    assert!(cache_file.exists(), "shutdown did not persist the cache");

    // Warm daemon from the snapshot, with verify 1.0: every reloaded
    // hit is re-executed and compared bit-for-bit, so a passing job IS
    // the proof that the warm state survived the restart intact.
    let (daemon, mut client) = start("persist-warm", Some(cache_file.clone()), Some(1.0));
    let warm = client
        .submit(&campaign_job(None))
        .expect("warm campaign succeeds");
    assert_eq!(
        field(&warm, "csv"),
        cold_csv,
        "artifact changed across restart"
    );
    assert_eq!(
        warm.get("cells_simulated").and_then(JsonValue::as_u64),
        Some(0),
        "warm run resimulated cells the snapshot should carry"
    );
    let stats = client.stats().expect("stats");
    assert!(
        stats
            .get("verified")
            .and_then(JsonValue::as_u64)
            .unwrap_or(0)
            > 0,
        "verification did not sample any reloaded hits"
    );
    assert_eq!(
        stats.get("verify_failures").and_then(JsonValue::as_u64),
        Some(0),
        "a reloaded cache entry diverged from fresh simulation"
    );
    client.shutdown().expect("clean shutdown");
    daemon.join().expect("daemon joins");
    let _ = std::fs::remove_file(&cache_file);
}

#[test]
fn damaged_cache_snapshot_degrades_to_the_valid_prefix() {
    let cache_file = test_path("damage", "journal");
    let _ = std::fs::remove_file(&cache_file);

    let (daemon, mut client) = start("damage-cold", Some(cache_file.clone()), None);
    client
        .submit(&campaign_job(None))
        .expect("cold campaign succeeds");
    client.shutdown().expect("clean shutdown");
    daemon.join().expect("daemon joins");

    // Flip a byte near the end: the tail entries fail their checksums.
    let mut bytes = std::fs::read(&cache_file).expect("snapshot readable");
    let n = bytes.len();
    bytes[n - 9] ^= 0x01;
    std::fs::write(&cache_file, &bytes).expect("snapshot writable");

    // The daemon must come up (valid prefix loaded, damage reported on
    // stderr) and still serve the correct artifact — the dropped tail
    // is simply resimulated.
    let (daemon, mut client) = start("damage-warm", Some(cache_file.clone()), Some(1.0));
    let result = client
        .submit(&campaign_job(None))
        .expect("campaign succeeds on the damaged cache");
    assert!(
        result
            .get("cells_simulated")
            .and_then(JsonValue::as_u64)
            .unwrap_or(0)
            > 0
            || result
                .get("diagnoses_simulated")
                .and_then(JsonValue::as_u64)
                .unwrap_or(0)
                > 0,
        "nothing was resimulated — the damaged tail was silently kept"
    );
    let stats = client.stats().expect("stats");
    assert_eq!(
        stats.get("verify_failures").and_then(JsonValue::as_u64),
        Some(0)
    );
    client.shutdown().expect("clean shutdown");
    daemon.join().expect("daemon joins");
    let _ = std::fs::remove_file(&cache_file);
}

#[test]
fn fan_out_partition_matches_the_library_partition() {
    // The daemon's ownership rule and the library's must be the same
    // function of the flat cell index; otherwise fan-out merges would
    // depend on which side computed a cell. One shard job per spec,
    // library shard run locally, reports must be equal.
    let (daemon, mut client) = start("partition", None, None);
    let config = campaign_job(None)
        .campaign_config()
        .expect("campaign jobs have a config");
    let farm = Farm::with_workers(2);
    for k in 0..2 {
        let shard = ShardSpec::new(k, 2).unwrap();
        let result = client
            .submit(&campaign_job(Some(shard)))
            .expect("shard campaign succeeds");
        let from_daemon =
            ShardReport::from_json(field(&result, "shard_json")).expect("shard report parses");
        let local = tve::campaign::run_campaign_shard(&config, &farm, shard);
        assert_eq!(
            from_daemon, local,
            "daemon and library shard {shard} differ"
        );
    }
    client.shutdown().expect("clean shutdown");
    daemon.join().expect("daemon joins");
}
