//! End-to-end: a *textual* ATE test program — parsed from the assembly the
//! paper's "complex piece of software" deserves — executed by the Virtual
//! ATE against the SoC TLM.

use std::rc::Rc;

use tve::core::{AteError, TestProgram};
use tve::sim::Simulation;
use tve::soc::{build_test_runs, JpegEncoderSoc, SocConfig, SocTestPlan};

fn execute(text: &str) -> tve::core::ProgramReport {
    let program = TestProgram::parse("textual", text).expect("program parses");
    let mut sim = Simulation::new();
    let soc = JpegEncoderSoc::build(&sim.handle(), SocConfig::small());
    let runs = build_test_runs(&soc, &SocTestPlan::small());
    let ate = Rc::new(soc.virtual_ate());
    let report = sim.spawn(async move { ate.execute(&program, runs).await });
    sim.run();
    report.try_take().expect("program completed")
}

#[test]
fn textual_program_drives_a_clean_session() {
    // Configure everything in one ring rotation (proc bist, others
    // functional, dct int-test, codec+EBI on), then run tests 0 and 4
    // concurrently — the first phase of the paper's schedule 3.
    let report = execute(
        "# schedule 3, phase 1\n\
         ring bist,0,inttest,0,1,1\n\
         run 0 4\n\
         wait 100\n",
    );
    assert!(report.passed(), "{:?}", report.errors);
    assert_eq!(report.outcomes.len(), 2);
    assert!(report.outcomes.iter().all(|o| o.clean()));
    let names: Vec<&str> = report.outcomes.iter().map(|o| o.name.as_str()).collect();
    assert!(names.contains(&"T1 proc BIST"));
    assert!(names.contains(&"T5 dct det"));
}

#[test]
fn textual_program_with_wrong_golden_signature_fails_validation() {
    let report = execute(
        "ring bist,0,0,0,1,1\n\
         run 0\n\
         expect 0 0x1234\n",
    );
    assert!(!report.passed());
    assert!(matches!(
        report.errors[0],
        AteError::SignatureMismatch { wrapper: 0, .. }
    ));
}

#[test]
fn textual_round_trip_preserves_behaviour() {
    let text = "ring bist,0,inttest,0,1,1\nrun 0 4\nwait 100\n";
    let program = TestProgram::parse("p", text).unwrap();
    let reparsed = TestProgram::parse("p", &program.to_string()).unwrap();
    assert_eq!(program, reparsed);
}
