//! Serving determinism: the `tve-serve` daemon must return the same
//! bytes whether a result is freshly simulated or served from cache,
//! for any farm worker count, and for any number of concurrent clients.
//!
//! These are the properties that make caching *sound*: a hit is only
//! indistinguishable from a fresh run because the whole stack is
//! deterministic, and these tests drive that claim through the real
//! socket protocol rather than through library calls.

use std::path::PathBuf;

use tve::obs::JsonValue;
use tve::serve::{spawn, Client, JobKind, JobSpec, ServeOptions};
use tve::soc::Workload;

/// A unique socket path per test (tests in one binary run in parallel).
fn test_socket(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("tve-serve-{tag}-{}.sock", std::process::id()))
}

fn start(tag: &str, workers: Option<usize>) -> (tve::serve::DaemonHandle, Client) {
    let daemon = spawn(&ServeOptions {
        socket: test_socket(tag),
        workers,
        quiet: true,
        ..ServeOptions::default()
    })
    .expect("daemon spawns");
    let client = Client::connect(&daemon.socket).expect("client connects");
    (daemon, client)
}

fn schedule_digest(client: &mut Client, workload: &Workload, index: usize) -> (String, bool) {
    let result = client
        .submit(&JobSpec {
            workload: workload.clone(),
            kind: JobKind::Schedule { index },
            verify: None,
            deadline_ms: None,
        })
        .expect("schedule job succeeds");
    (
        result
            .get("digest")
            .and_then(JsonValue::as_str)
            .expect("digest on the wire")
            .to_string(),
        result.get("cached").and_then(JsonValue::as_bool) == Some(true),
    )
}

fn campaign_artifacts(client: &mut Client, workload: &Workload) -> (String, String) {
    let result = client
        .submit(&JobSpec {
            workload: workload.clone(),
            kind: JobKind::Campaign {
                schedules: vec![1, 2, 3, 4],
                seed: 0x20090417,
                faults: 2,
                diagnosis: true,
                shard: None,
            },
            verify: None,
            deadline_ms: None,
        })
        .expect("campaign job succeeds");
    let field = |key: &str| {
        result
            .get(key)
            .and_then(JsonValue::as_str)
            .expect("campaign artifact on the wire")
            .to_string()
    };
    (field("csv"), field("csv_digest"))
}

/// Runs the full job set on a daemon with `workers` farm workers and
/// returns every byte-level observable.
fn serve_all(tag: &str, workers: usize) -> (Vec<String>, String, String) {
    let (daemon, mut client) = start(tag, Some(workers));
    let workload = Workload::small();
    let digests = (1..=4)
        .map(|i| schedule_digest(&mut client, &workload, i).0)
        .collect();
    let (csv, csv_digest) = campaign_artifacts(&mut client, &workload);
    client.shutdown().expect("clean shutdown");
    daemon.join().expect("daemon joins");
    (digests, csv, csv_digest)
}

#[test]
fn results_are_identical_for_any_worker_count() {
    let (d1, csv1, dig1) = serve_all("w1", 1);
    let (d4, csv4, dig4) = serve_all("w4", 4);
    assert_eq!(d1, d4, "schedule digests depend on the worker count");
    assert_eq!(csv1, csv4, "campaign CSV depends on the worker count");
    assert_eq!(dig1, dig4);
}

#[test]
fn cached_results_are_byte_identical_to_fresh_and_survive_verification() {
    let (daemon, mut client) = start("warm", None);
    let workload = Workload::small();
    let cold: Vec<(String, bool)> = (1..=4)
        .map(|i| schedule_digest(&mut client, &workload, i))
        .collect();
    for (i, (_, cached)) in cold.iter().enumerate() {
        assert!(!cached, "schedule {} hit an empty cache", i + 1);
    }
    let (cold_csv, _) = campaign_artifacts(&mut client, &workload);

    // Warm repeats with verify 1.0: the daemon re-executes every hit
    // and fails the job on any byte-level divergence — so a passing
    // submit IS the cached-equals-fresh assertion.
    for (i, (cold_digest, _)) in cold.iter().enumerate() {
        let result = client
            .submit(&JobSpec {
                workload: workload.clone(),
                kind: JobKind::Schedule { index: i + 1 },
                verify: Some(1.0),
                deadline_ms: None,
            })
            .expect("verified warm job succeeds");
        assert_eq!(
            result.get("cached").and_then(JsonValue::as_bool),
            Some(true),
            "warm schedule {} missed",
            i + 1
        );
        assert_eq!(
            result.get("digest").and_then(JsonValue::as_str),
            Some(cold_digest.as_str())
        );
    }
    let (warm_csv, _) = campaign_artifacts(&mut client, &workload);
    assert_eq!(cold_csv, warm_csv, "cached campaign CSV differs from fresh");

    let stats = client.stats().expect("stats");
    assert!(
        stats
            .get("verified")
            .and_then(JsonValue::as_u64)
            .unwrap_or(0)
            >= 4,
        "verification did not run"
    );
    assert_eq!(
        stats.get("verify_failures").and_then(JsonValue::as_u64),
        Some(0),
        "cache verification found divergence"
    );
    client.shutdown().expect("clean shutdown");
    daemon.join().expect("daemon joins");
}

#[test]
fn bounds_reports_are_byte_identical_served_or_computed_locally() {
    let (daemon, mut client) = start("bounds", None);
    let workload = Workload::small();

    // The served report must be the exact bytes of the local pure
    // computation: same config, plan, schedules and (accurate) quantum
    // through the same `bounds_reports_to_json` renderer.
    let (config, plan) = workload.build();
    let schedules: Vec<_> = tve::soc::paper_schedules().into_iter().collect();
    let local = tve::lint::bounds_reports_to_json(&tve::lint::schedule_envelopes(
        &config, &plan, &schedules, 0,
    ));

    let submit = |client: &mut Client, verify| {
        let result = client
            .submit(&JobSpec {
                workload: workload.clone(),
                kind: JobKind::Bounds {
                    schedules: vec![1, 2, 3, 4],
                },
                verify,
                deadline_ms: None,
            })
            .expect("bounds job succeeds");
        (
            result
                .get("report")
                .and_then(JsonValue::as_str)
                .expect("report on the wire")
                .to_string(),
            result.get("cached").and_then(JsonValue::as_bool) == Some(true),
        )
    };

    let (cold, cold_cached) = submit(&mut client, None);
    assert!(!cold_cached, "bounds hit an empty cache");
    assert_eq!(cold, local, "served bounds differ from local computation");

    // Warm repeat with verify 1.0: the daemon recomputes the hit and
    // fails the job on any byte-level divergence.
    let (warm, warm_cached) = submit(&mut client, Some(1.0));
    assert!(warm_cached, "warm bounds job missed");
    assert_eq!(warm, cold, "cached bounds differ from fresh");

    let stats = client.stats().expect("stats");
    assert_eq!(
        stats.get("verify_failures").and_then(JsonValue::as_u64),
        Some(0),
        "bounds verification found divergence"
    );
    client.shutdown().expect("clean shutdown");
    daemon.join().expect("daemon joins");
}

#[test]
fn concurrent_clients_get_identical_bytes() {
    let (daemon, mut control) = start("conc", None);
    let socket = daemon.socket.clone();

    // Four clients race the same cold cache: some will simulate, some
    // will hit entries the others just inserted — every combination
    // must produce the same bytes.
    let handles: Vec<_> = (0..4)
        .map(|_| {
            let socket = socket.clone();
            std::thread::spawn(move || {
                let mut client = Client::connect(&socket).expect("client connects");
                let workload = Workload::small();
                let digests: Vec<String> = (1..=4)
                    .map(|i| schedule_digest(&mut client, &workload, i).0)
                    .collect();
                let (csv, _) = campaign_artifacts(&mut client, &workload);
                (digests, csv)
            })
        })
        .collect();
    let results: Vec<(Vec<String>, String)> = handles
        .into_iter()
        .map(|h| h.join().expect("client thread"))
        .collect();
    for other in &results[1..] {
        assert_eq!(
            results[0], *other,
            "two concurrent clients saw different bytes"
        );
    }
    control.shutdown().expect("clean shutdown");
    daemon.join().expect("daemon joins");
}
