//! Shape assertions for Table I, at 1/100 scale so the test stays fast:
//! the orderings and crossovers the paper reports must hold —
//! schedule 4 < 2 < 3 < 1 in test length, concurrency raises peak and
//! average utilization, and the concurrent compressed schedule saturates
//! the TAM.

use tve::soc::{paper_schedules, run_scenario, ScenarioMetrics, SocConfig, SocTestPlan};

fn scaled_run() -> Vec<ScenarioMetrics> {
    let mut config = SocConfig::paper();
    // Scale the memory with the pattern counts so the test mix keeps the
    // paper's proportions.
    config.memory_words = 2622;
    let plan = SocTestPlan::paper_scaled(100);
    paper_schedules()
        .iter()
        .map(|s| run_scenario(&config, &plan, s).expect("well-formed"))
        .collect()
}

#[test]
fn table1_shape_holds_at_reduced_scale() {
    let m = scaled_run();
    for metrics in &m {
        assert!(metrics.result.clean(), "{}", metrics.result);
    }

    // Test length ordering: 4 < 2 < 3 < 1 (paper: 167 < 184 < 263 < 281).
    assert!(m[3].total_cycles < m[1].total_cycles, "4 < 2");
    assert!(m[1].total_cycles < m[2].total_cycles, "2 < 3");
    assert!(m[2].total_cycles < m[0].total_cycles, "3 < 1");

    // Concurrency shortens: schedule 3 vs 1 and 4 vs 2.
    assert!(m[2].total_cycles < m[0].total_cycles);
    assert!(m[3].total_cycles < m[1].total_cycles);

    // Peak utilization: sequential schedules peak alike (the BIST's share),
    // concurrency raises the peak, schedule 4 saturates.
    assert!((m[0].peak_utilization - m[1].peak_utilization).abs() < 0.1);
    assert!(m[2].peak_utilization > m[0].peak_utilization + 0.05);
    assert!(
        m[3].peak_utilization > 0.9,
        "schedule 4 must saturate the TAM"
    );

    // Average utilization: the compressed+concurrent schedule works the
    // TAM hardest on average (paper: 64 % vs 45/58/47).
    assert!(m[3].avg_utilization > m[0].avg_utilization);
    assert!(m[3].avg_utilization > m[2].avg_utilization);

    // Peak >= average always.
    for metrics in &m {
        assert!(metrics.peak_utilization >= metrics.avg_utilization - 1e-9);
    }
}

#[test]
fn scenarios_are_deterministic() {
    let a = scaled_run();
    let b = scaled_run();
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.total_cycles, y.total_cycles);
        assert_eq!(x.peak_utilization, y.peak_utilization);
    }
}
