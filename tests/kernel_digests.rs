//! Pinned-digest regression contract for the simulation kernel.
//!
//! The kernel rework (slab arena, batched wakeups) must not change what
//! any shipped scenario *computes*: these digests were recorded on the
//! pre-rework Rc/RefCell + `BinaryHeap` kernel and are pinned as
//! constants. Every future kernel change has to reproduce them byte for
//! byte in the default (cycle-accurate) mode. Only the opt-in
//! loosely-timed quantum mode (`TVE_QUANTUM` / `Simulation::with_quantum`)
//! is allowed to diverge, and it is never enabled here.
//!
//! Pinned surfaces:
//! * the four Table I schedules at the benchmark workload
//!   (`--scale 100 --mem-words 2622`), via [`ScenarioMetrics::digest`],
//! * one campaign detection matrix (seeded population x 4 schedules),
//!   via an FNV-1a digest of the emitted CSV,
//! * traced vs untraced runs of the same scenario (must agree with each
//!   other *and* with the pinned value).

use tve::campaign::{generate, run_campaign, CampaignConfig, PopulationSpec};
use tve::obs::StoragePolicy;
use tve::sched::Farm;
use tve::sim::Duration;
use tve::soc::{
    paper_schedules, run_scenario, run_scenario_quantum, run_scenario_traced, SocConfig,
    SocTestPlan,
};

/// Digests of schedules 1-4 on the benchmark workload, recorded on the
/// pre-rework kernel (commit f665d55 lineage). Do not update these to
/// "fix" a kernel change: a mismatch means the kernel changed observable
/// scheduling behavior.
const TABLE1_DIGESTS: [u64; 4] = [
    0x01c61020aad3c538,
    0xd50650152762ea03,
    0x629381307a4d099a,
    0x57b67ecd2b7a9b5c,
];

/// FNV-1a digest of the campaign matrix CSV for the pinned population
/// below, recorded on the pre-rework kernel.
const CAMPAIGN_CSV_DIGEST: u64 = 0x09239e0fc894db27;

/// Digests of schedules 1-4 on the benchmark workload in loosely-timed
/// mode with a 1024-cycle quantum, recorded *before* the DMI fast path
/// for memory marches existed. DMI skips the per-op transactional chain
/// but must replicate every observable side effect (simulated time, bus
/// utilization, power, counters) exactly, so these digests are pinned:
/// a mismatch means the DMI path diverged from the transactional one.
const QUANTUM_1024_DIGESTS: [u64; 4] = [
    0x572dc3e2a3afbe29,
    0xffa1d33ae1a86a69,
    0xb61a4dd285f7c1c8,
    0xa5aed2cd5ed4c260,
];

fn bench_workload() -> (SocConfig, SocTestPlan) {
    let mut config = SocConfig::paper();
    config.memory_words = 2622;
    (config, SocTestPlan::paper_scaled(100))
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h = (h ^ b as u64).wrapping_mul(0x100_0000_01b3);
    }
    h
}

#[test]
fn table1_digests_are_pinned() {
    let (config, plan) = bench_workload();
    let got: Vec<u64> = paper_schedules()
        .iter()
        .map(|s| {
            run_scenario(&config, &plan, s)
                .expect("well-formed")
                .digest()
        })
        .collect();
    println!(
        "table1 digests: [{}]",
        got.iter()
            .map(|d| format!("{d:#018x}"))
            .collect::<Vec<_>>()
            .join(", ")
    );
    assert_eq!(
        got,
        TABLE1_DIGESTS.to_vec(),
        "kernel rework changed default-mode scenario results"
    );
}

#[test]
fn quantum_digests_are_pinned_across_dmi() {
    let (config, plan) = bench_workload();
    let got: Vec<u64> = paper_schedules()
        .iter()
        .map(|s| {
            run_scenario_quantum(&config, &plan, s, Duration::cycles(1024))
                .expect("well-formed")
                .digest()
        })
        .collect();
    println!(
        "quantum-1024 digests: [{}]",
        got.iter()
            .map(|d| format!("{d:#018x}"))
            .collect::<Vec<_>>()
            .join(", ")
    );
    assert_eq!(
        got,
        QUANTUM_1024_DIGESTS.to_vec(),
        "the loosely-timed DMI fast path changed quantum-mode results"
    );
}

#[test]
fn traced_run_matches_pinned_digest() {
    let (config, plan) = bench_workload();
    let schedule = &paper_schedules()[3];
    let (traced, _log) = run_scenario_traced(&config, &plan, schedule, StoragePolicy::Ring(1024))
        .expect("well-formed");
    let untraced = run_scenario(&config, &plan, schedule).expect("well-formed");
    assert_eq!(
        traced.digest(),
        untraced.digest(),
        "tracing perturbed the simulation"
    );
    assert_eq!(
        traced.digest(),
        TABLE1_DIGESTS[3],
        "traced run diverged from the pinned pre-rework digest"
    );
}

#[test]
fn campaign_matrix_digest_is_pinned() {
    let mut config = SocConfig::small();
    config.memory_words = 64;
    let spec = PopulationSpec {
        seed: 20090417,
        scan_cells_per_core: 1,
        memory_faults: 2,
        ..PopulationSpec::default()
    };
    let population = generate(&spec, &config);
    let campaign = CampaignConfig::new(
        config,
        SocTestPlan::small(),
        paper_schedules().to_vec(),
        population,
    );
    let report = run_campaign(&campaign, &Farm::with_workers(2));
    let got = fnv1a(report.to_csv().as_bytes());
    println!("campaign csv digest: {got:#018x}");
    assert_eq!(
        got, CAMPAIGN_CSV_DIGEST,
        "kernel rework changed the campaign detection matrix"
    );
}
