//! Functional validation of the wrapped SoC: an image's blocks encoded
//! through the bus/wrapper/core data path must equal the pure-software
//! JPEG reference — the wrappers are transparent in functional mode, and
//! test infrastructure does not disturb the mission function.

use std::rc::Rc;

use tve::sim::Simulation;
use tve::soc::{jpeg, pipeline::encode_block_on_soc, JpegEncoderSoc, SocConfig, MEM_BASE};
use tve::tlm::TamIfExt;

fn gradient_block(seed: u8) -> [[u8; 3]; 64] {
    let mut block = [[0u8; 3]; 64];
    for (i, px) in block.iter_mut().enumerate() {
        let x = (i % 8) as u8;
        let y = (i / 8) as u8;
        *px = [
            seed.wrapping_add(x * 16),
            seed.wrapping_add(y * 16),
            seed.wrapping_add(x * 8 + y * 8),
        ];
    }
    block
}

#[test]
fn multi_block_image_encodes_identically_to_reference() {
    let mut sim = Simulation::new();
    let soc = Rc::new(JpegEncoderSoc::build(&sim.handle(), SocConfig::small()));
    let blocks: Vec<[[u8; 3]; 64]> = (0..4).map(|k| gradient_block(k * 37)).collect();
    let s = Rc::clone(&soc);
    let blocks2 = blocks.clone();
    let got = sim.spawn(async move {
        let mut all = Vec::new();
        for (k, block) in blocks2.iter().enumerate() {
            let zz = encode_block_on_soc(&s, block, (k * 64) as u32)
                .await
                .expect("functional pipeline");
            all.push(zz);
        }
        all
    });
    sim.run();
    let got = got.try_take().unwrap();
    for (k, block) in blocks.iter().enumerate() {
        assert_eq!(
            got[k],
            jpeg::encode_block_reference(block),
            "block {k} diverged from the software reference"
        );
    }
    assert_eq!(soc.dct_core.block_count(), 4);
    assert_eq!(soc.color_core.converted_count(), 4 * 64);
}

#[test]
fn encoded_data_lands_in_the_memory_core() {
    let mut sim = Simulation::new();
    let soc = Rc::new(JpegEncoderSoc::build(&sim.handle(), SocConfig::small()));
    let block = gradient_block(5);
    let s = Rc::clone(&soc);
    let roundtrip = sim.spawn(async move {
        let zz = encode_block_on_soc(&s, &block, 0).await.unwrap();
        let stored = s
            .bus
            .read(s.processor_initiator(), MEM_BASE, 64 * 32)
            .await
            .unwrap();
        (zz, stored)
    });
    sim.run();
    let (zz, stored) = roundtrip.try_take().unwrap();
    assert_eq!(stored, zz.iter().map(|&c| c as u32).collect::<Vec<u32>>());
}

#[test]
fn functional_flow_takes_simulated_time_on_the_bus() {
    // The communication-centric view: the block pipeline's cost is bus
    // transfers; encoding must advance simulated time accordingly.
    let mut sim = Simulation::new();
    let soc = Rc::new(JpegEncoderSoc::build(&sim.handle(), SocConfig::small()));
    let block = gradient_block(1);
    let s = Rc::clone(&soc);
    sim.spawn(async move {
        encode_block_on_soc(&s, &block, 0).await.unwrap();
    });
    let end = sim.run();
    // 5 transfers x 2048 bits over the 48-bit bus ≈ 215+ cycles.
    assert!(end.cycles() > 200, "took {} cycles", end.cycles());
    assert_eq!(
        soc.bus.monitor().total_busy_cycles(),
        end.cycles(),
        "the pipeline is strictly bus-serialized"
    );
}
