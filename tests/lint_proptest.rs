//! Property-based half of the lint contract: random mutations of valid
//! schedules must be flagged with the right diagnostic code, while
//! behavior-preserving rewrites (and the unmutated schedules themselves)
//! must stay lint-clean. Complements `tests/lint_contract.rs`, which
//! pins the static/dynamic agreement on concrete populations.

use proptest::prelude::*;

use tve::core::{Schedule, ScheduleError};
use tve::lint::{codes, lint_schedule, lint_schedule_report, soc_facts, Severity};
use tve::soc::{paper_schedules, SocConfig, SocTestPlan};

fn facts() -> tve::lint::PlanFacts {
    soc_facts(&SocConfig::small(), &SocTestPlan::small())
}

fn pick_paper(idx: usize) -> Schedule {
    let mut all = paper_schedules();
    all.swap(0, idx);
    all.into_iter().next().unwrap()
}

fn has_error(diags: &[tve::lint::Diagnostic], code: &str) -> bool {
    diags
        .iter()
        .any(|d| d.code == code && d.severity == Severity::Error)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // Baseline: every unmutated Table-I schedule is error-free.
    #[test]
    fn paper_schedules_lint_clean(idx in 0usize..4) {
        let report = lint_schedule_report(&pick_paper(idx), &facts());
        prop_assert!(report.clean(), "{report}");
    }

    // Duplicating any already-scheduled test is caught as sched-dup-test.
    #[test]
    fn duplicated_test_is_flagged(idx in 0usize..4, pos in 0usize..7) {
        let mut s = pick_paper(idx);
        let flat: Vec<usize> = s.phases.iter().flatten().copied().collect();
        let dup = flat[pos % flat.len()];
        s.phases.push(vec![dup]);
        let code = ScheduleError::DuplicateTest(dup).code();
        prop_assert!(has_error(&lint_schedule(&s, &facts()), code));
    }

    // Referencing a test index past the plan is caught as sched-index-range.
    #[test]
    fn out_of_range_index_is_flagged(idx in 0usize..4, extra in 7usize..64) {
        let mut s = pick_paper(idx);
        s.phases.push(vec![extra]);
        let code = ScheduleError::IndexOutOfRange(extra).code();
        prop_assert!(has_error(&lint_schedule(&s, &facts()), code));
    }

    // Inserting an empty phase anywhere is caught as sched-empty-phase.
    #[test]
    fn inserted_empty_phase_is_flagged(idx in 0usize..4, at in 0usize..8) {
        let mut s = pick_paper(idx);
        let at = at % (s.phases.len() + 1);
        s.phases.insert(at, vec![]);
        prop_assert!(has_error(&lint_schedule(&s, &facts()), ScheduleError::EmptyPhase.code()));
    }

    // Deleting every phase is caught as sched-empty.
    #[test]
    fn emptied_schedule_is_flagged(idx in 0usize..4) {
        let mut s = pick_paper(idx);
        s.phases.clear();
        prop_assert!(has_error(&lint_schedule(&s, &facts()), ScheduleError::Empty.code()));
    }

    // Merging the first two phases of a Table-I schedule always collides:
    // each opens with two processor tests that the paper's phase breaks
    // exist precisely to serialize.
    #[test]
    fn merged_leading_phases_race(idx in 0usize..4) {
        let mut s = pick_paper(idx);
        let tail = s.phases.remove(1);
        s.phases[0].extend(tail);
        let diags = lint_schedule(&s, &facts());
        prop_assert!(has_error(&diags, codes::CORE_RACE), "merge undetected: {diags:?}");
    }

    // A power budget below the hottest phase is flagged; one at or above
    // the whole plan's ceiling never is.
    #[test]
    fn power_budget_flags_exactly_the_overcommit(idx in 0usize..4, pct in 10u64..300) {
        let s = pick_paper(idx);
        let base = facts();
        let hottest: f64 = s
            .phases
            .iter()
            .map(|p| p.iter().map(|&t| base.tests[t].peak_power).sum::<f64>())
            .fold(0.0, f64::max);
        let budget = hottest * (pct as f64) / 100.0;
        let diags = lint_schedule(&s, &base.with_budget(budget));
        let flagged = has_error(&diags, codes::POWER_OVERCOMMIT);
        prop_assert_eq!(flagged, budget < hottest - 1e-9, "budget {} vs hottest {}", budget, hottest);
    }

    // Swapping whole phases is behavior-preserving for these schedules
    // (no cross-phase ring hazards in the plan): still error-free.
    #[test]
    fn phase_swap_preserves_cleanliness(
        idx in 0usize..4,
        a in 0usize..8,
        b in 0usize..8,
    ) {
        let mut s = pick_paper(idx);
        let n = s.phases.len();
        s.phases.swap(a % n, b % n);
        let report = lint_schedule_report(&s, &facts());
        prop_assert!(report.clean(), "{report}");
    }
}
