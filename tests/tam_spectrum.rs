//! The TAM spectrum of paper Section III.A, as assertions: the same
//! concurrent test workload over a serial daisy chain, a shared bus, and a
//! mesh NoC must order serial ≫ bus > NoC in test time, and all three must
//! deliver the identical pattern counts through the same `TamIf` interface.

use std::rc::Rc;

use tve::core::{
    BistSource, ConfigClient, DataPolicy, SyntheticLogicCore, TestWrapper, WrapperConfig,
    WrapperMode,
};
use tve::noc::{MeshConfig, MeshNoc, NodeId};
use tve::sim::Simulation;
use tve::tlm::{AddrRange, BusConfig, BusTam, InitiatorId, SerialTam, TamIf};
use tve::tpg::ScanConfig;

const PATTERNS: u64 = 100;
const SCAN_A: (u32, u32) = (8, 64);
const SCAN_B: (u32, u32) = (4, 32);

fn wrapped_cores(sim: &Simulation) -> (Rc<TestWrapper>, Rc<TestWrapper>) {
    let mk = |name: &str, (chains, len): (u32, u32), seed| {
        let w = Rc::new(TestWrapper::new(
            &sim.handle(),
            WrapperConfig {
                name: name.to_string(),
                ..WrapperConfig::default()
            },
            Rc::new(SyntheticLogicCore::new(
                name,
                ScanConfig::new(chains, len),
                seed,
            )),
        ));
        w.load_config(WrapperMode::Bist.encode());
        w
    };
    (mk("a", SCAN_A, 1), mk("b", SCAN_B, 2))
}

fn run(sim: &mut Simulation, pa: Rc<dyn TamIf>, pb: Rc<dyn TamIf>) -> (u64, u64, u64) {
    let h = sim.handle();
    let sa = BistSource::new(
        &h,
        "a",
        pa,
        0x100,
        InitiatorId(1),
        ScanConfig::new(SCAN_A.0, SCAN_A.1),
        PATTERNS,
        DataPolicy::Volume,
        1,
    );
    let sb = BistSource::new(
        &h,
        "b",
        pb,
        0x200,
        InitiatorId(2),
        ScanConfig::new(SCAN_B.0, SCAN_B.1),
        PATTERNS,
        DataPolicy::Volume,
        2,
    );
    let ja = sim.spawn(async move { sa.run().await });
    let jb = sim.spawn(async move { sb.run().await });
    let end = sim.run().cycles();
    let (a, b) = (ja.try_take().unwrap(), jb.try_take().unwrap());
    assert!(a.clean() && b.clean());
    (end, a.patterns, b.patterns)
}

fn serial_time() -> u64 {
    let mut sim = Simulation::new();
    let (wa, wb) = wrapped_cores(&sim);
    let tam = Rc::new(SerialTam::new(&sim.handle(), "serial", 8));
    tam.bind(AddrRange::new(0x100, 0x10), 1, wa as Rc<dyn TamIf>)
        .unwrap();
    tam.bind(AddrRange::new(0x200, 0x10), 1, wb as Rc<dyn TamIf>)
        .unwrap();
    let (t, pa, pb) = run(
        &mut sim,
        Rc::clone(&tam) as Rc<dyn TamIf>,
        tam as Rc<dyn TamIf>,
    );
    assert_eq!((pa, pb), (PATTERNS, PATTERNS));
    t
}

fn bus_time() -> u64 {
    let mut sim = Simulation::new();
    let (wa, wb) = wrapped_cores(&sim);
    let bus = Rc::new(BusTam::new(
        &sim.handle(),
        BusConfig {
            width_bits: 8,
            ..BusConfig::default()
        },
    ));
    bus.bind(AddrRange::new(0x100, 0x10), wa as Rc<dyn TamIf>)
        .unwrap();
    bus.bind(AddrRange::new(0x200, 0x10), wb as Rc<dyn TamIf>)
        .unwrap();
    let (t, pa, pb) = run(
        &mut sim,
        Rc::clone(&bus) as Rc<dyn TamIf>,
        Rc::clone(&bus) as Rc<dyn TamIf>,
    );
    assert_eq!((pa, pb), (PATTERNS, PATTERNS));
    // The narrow shared bus is the bottleneck: it saturates.
    assert!(bus.monitor().peak_utilization() > 0.95);
    t
}

fn noc_time() -> u64 {
    let mut sim = Simulation::new();
    let (wa, wb) = wrapped_cores(&sim);
    let noc = Rc::new(MeshNoc::new(
        &sim.handle(),
        MeshConfig {
            cols: 2,
            rows: 2,
            link_width_bits: 8,
            hop_overhead: 2,
        },
    ));
    noc.bind(
        NodeId::new(1, 0),
        AddrRange::new(0x100, 0x10),
        wa as Rc<dyn TamIf>,
    )
    .unwrap();
    noc.bind(
        NodeId::new(1, 1),
        AddrRange::new(0x200, 0x10),
        wb as Rc<dyn TamIf>,
    )
    .unwrap();
    let pa = Rc::new(noc.port(NodeId::new(0, 0)));
    let pb = Rc::new(noc.port(NodeId::new(0, 1)));
    let (t, ca, cb) = run(&mut sim, pa, pb);
    assert_eq!((ca, cb), (PATTERNS, PATTERNS));
    t
}

#[test]
fn tam_spectrum_orders_serial_bus_noc() {
    let serial = serial_time();
    let bus = bus_time();
    let noc = noc_time();
    assert!(
        serial > 5 * bus,
        "serial chain must be far slower: {serial} vs {bus}"
    );
    assert!(
        noc < bus,
        "disjoint NoC paths must beat the contended bus: {noc} vs {bus}"
    );
}

#[test]
fn all_tams_are_deterministic() {
    assert_eq!(serial_time(), serial_time());
    assert_eq!(bus_time(), bus_time());
    assert_eq!(noc_time(), noc_time());
}
