//! Statistical contracts of the budgeted campaign modes: the stratified
//! estimator's pinned-seed confidence intervals must bracket the
//! exhaustive truth, the whole estimate must be bit-deterministic for
//! any farm worker count, every skipped fault must be enumerated (a
//! budget never silently narrows coverage), and the coverage-guided
//! selector must recover the exhaustive escape set within half the cell
//! budget.

use std::collections::BTreeSet;
use std::sync::OnceLock;

use tve::campaign::{
    generate, run_campaign, run_guided_campaign, run_sampled_campaign, stratum_of, CampaignConfig,
    CampaignReport, PopulationSpec,
};
use tve::sched::Farm;
use tve::soc::{paper_schedules, SocConfig, SocTestPlan};

/// A population with guaranteed escapes: scan cells on the unscanned
/// memory-periphery core are undetectable by construction, so the true
/// union coverage is strictly below 1 and the estimator has something
/// nontrivial to bracket. Infrastructure faults are excluded — they are
/// not part of the coverage denominator.
fn config() -> CampaignConfig {
    let mut soc = SocConfig::small();
    soc.memory_words = 64;
    // 3 scan cells on each of 4 cores + 2 memory faults = 14 faults,
    // big enough that the guided pilot (one fault per stratum) leaves
    // the selector budget to actually chase the escape-prone stratum.
    let population = generate(
        &PopulationSpec {
            scan_cells_per_core: 3,
            memory_faults: 2,
            infrastructure: false,
            include_unscanned: true,
            ..PopulationSpec::default()
        },
        &soc,
    );
    let mut config = CampaignConfig::new(
        soc,
        SocTestPlan::small(),
        paper_schedules().to_vec(),
        population,
    );
    config.diagnosis = false;
    config
}

/// The exhaustive run, computed once: ground truth for every property.
fn exhaustive() -> &'static (CampaignConfig, CampaignReport, f64) {
    static TRUTH: OnceLock<(CampaignConfig, CampaignReport, f64)> = OnceLock::new();
    TRUTH.get_or_init(|| {
        let config = config();
        let report = run_campaign(&config, &Farm::with_workers(2));
        let escapes = report.union_escapes().len();
        let truth = 1.0 - escapes as f64 / config.population.len() as f64;
        assert!(
            escapes > 0,
            "escape-seeded population produced no escapes — these tests are vacuous"
        );
        (config, report, truth)
    })
}

#[test]
fn pinned_seed_intervals_bracket_the_exhaustive_truth() {
    let (config, _, truth) = exhaustive();
    let farm = Farm::with_workers(2);
    let budget = config.population.len() / 2;
    for seed in [1u64, 0x5EED_CA3A, 0xFFFF_FFFF_FFFF_FFFF] {
        let sampled = run_sampled_campaign(config, &farm, budget, seed);
        let estimate = sampled.estimate.expect("stratified mode estimates");
        assert!(
            estimate.ci_low <= *truth && *truth <= estimate.ci_high,
            "seed {seed:#x}: 95% CI [{:.4}, {:.4}] misses the truth {truth:.4}",
            estimate.ci_low,
            estimate.ci_high
        );
        assert!(estimate.ci_low <= estimate.coverage && estimate.coverage <= estimate.ci_high);
        assert!(
            sampled.spent_cells <= budget * config.schedules.len(),
            "selector overspent its budget"
        );
    }
}

#[test]
fn estimate_is_deterministic_for_any_worker_count() {
    let (config, _, _) = exhaustive();
    let a = run_sampled_campaign(config, &Farm::with_workers(1), 5, 42);
    let b = run_sampled_campaign(config, &Farm::with_workers(3), 5, 42);
    assert_eq!(a, b, "the sampled campaign depends on the worker count");
    assert_eq!(a.to_json(), b.to_json());

    let g1 = run_guided_campaign(config, &Farm::with_workers(1), 24, 1, 42);
    let g3 = run_guided_campaign(config, &Farm::with_workers(3), 24, 1, 42);
    assert_eq!(g1, g3, "the guided campaign depends on the worker count");
}

#[test]
fn every_skipped_fault_is_enumerated() {
    let (config, _, _) = exhaustive();
    let sampled = run_sampled_campaign(config, &Farm::with_workers(2), 4, 7);

    // sampled + skipped, across all strata, must tile the population
    // exactly — a budget narrows the run, never the accounting.
    let mut seen = BTreeSet::new();
    for stratum in &sampled.strata {
        for id in stratum.sampled.iter().chain(&stratum.skipped) {
            assert!(seen.insert(id.clone()), "fault {id} accounted twice");
        }
        // Core faults never break the test infrastructure, so every
        // sampled fault is either detected or an escape.
        assert_eq!(stratum.sampled.len(), stratum.detected + stratum.escapes);
    }
    let population: BTreeSet<String> = config.population.iter().map(|f| f.id()).collect();
    assert_eq!(seen, population, "accounting does not tile the population");

    // The JSON artifact carries the same enumeration.
    let json = sampled.to_json();
    tve::obs::check_json(&json).expect("sample JSON well-formed");
    for stratum in &sampled.strata {
        for id in &stratum.skipped {
            assert!(
                json.contains(&format!("\"{id}\"")),
                "skipped {id} not in JSON"
            );
        }
    }
}

#[test]
fn strata_names_cover_the_population() {
    let (config, _, _) = exhaustive();
    let sampled = run_sampled_campaign(config, &Farm::with_workers(2), 4, 7);
    let names: BTreeSet<&str> = sampled.strata.iter().map(|s| s.name.as_str()).collect();
    for fault in &config.population {
        assert!(
            names.contains(stratum_of(fault).as_str()),
            "fault {} has no stratum row",
            fault.id()
        );
    }
}

#[test]
fn guided_selector_recovers_the_escape_set_within_half_budget() {
    let (config, report, _) = exhaustive();
    let total_cells = config.population.len() * config.schedules.len();
    let truth: BTreeSet<&str> = report.union_escapes().into_iter().collect();

    let guided = run_guided_campaign(config, &Farm::with_workers(2), total_cells / 2, 1, 42);
    let found: BTreeSet<&str> = guided.report.union_escapes().into_iter().collect();
    assert_eq!(
        found, truth,
        "guided selector missed escapes within 50% of the cell budget"
    );
    assert!(guided.spent_cells <= total_cells / 2);
    assert!(
        guided.estimate.is_none(),
        "adaptive selection must not report a confidence interval"
    );
}
