//! Tier-2 cross-check of the observability subsystem against the live
//! TLM instrumentation: utilization recomputed from recorded transfer
//! spans must agree *exactly* (same f64 bits) with the
//! `UtilizationMonitor` figures of the same run, tracing must never
//! perturb the simulation, and the exporters must emit well-formed
//! output.

use tve::obs::{
    check_json, utilization_from_spans, write_chrome_trace, write_metrics_csv, write_spans_csv,
    SpanKind, StoragePolicy,
};
use tve::sched::{run_scenarios, run_scenarios_traced, ScenarioJob};
use tve::soc::{paper_schedules, run_scenario, run_scenario_traced, SocConfig, SocTestPlan};

fn workload() -> (SocConfig, SocTestPlan) {
    let mut config = SocConfig::paper();
    config.memory_words = 2622;
    (config, SocTestPlan::paper_scaled(100))
}

#[test]
fn trace_derived_utilization_matches_monitor_exactly() {
    let (config, plan) = workload();
    let window = config.monitor_window.as_cycles();
    for schedule in &paper_schedules() {
        let (metrics, log) =
            run_scenario_traced(&config, &plan, schedule, StoragePolicy::Unbounded)
                .expect("well-formed");
        assert!(metrics.result.clean());
        let u = utilization_from_spans(
            log.spans_on("system-bus/TAM", SpanKind::Transfer),
            window,
            log.observed_end,
        );
        // Exact equality, not approximate: both sides split busy intervals
        // on the same window boundaries and normalize by the same observed
        // span, so any divergence is a double-count or a missed transfer.
        assert_eq!(
            u.peak(),
            metrics.peak_utilization,
            "{}: span-derived peak != monitor peak",
            schedule.name
        );
        assert_eq!(
            u.average(),
            metrics.avg_utilization,
            "{}: span-derived average != monitor average",
            schedule.name
        );
        assert!(u.transfers > 0, "no transfer spans recorded");
    }
}

#[test]
fn tracing_never_changes_the_simulation() {
    let (config, plan) = workload();
    for schedule in &paper_schedules() {
        let plain = run_scenario(&config, &plan, schedule).expect("well-formed");
        for storage in [
            StoragePolicy::Off,
            StoragePolicy::Unbounded,
            StoragePolicy::Ring(64),
        ] {
            let (traced, _) =
                run_scenario_traced(&config, &plan, schedule, storage).expect("well-formed");
            assert_eq!(
                plain.digest(),
                traced.digest(),
                "{}: tracing with {storage:?} perturbed the run",
                schedule.name
            );
        }
    }
}

#[test]
fn exporters_emit_wellformed_output() {
    let (config, plan) = workload();
    let schedule = &paper_schedules()[3];
    let (_, log) = run_scenario_traced(&config, &plan, schedule, StoragePolicy::Unbounded)
        .expect("well-formed");

    let mut chrome = Vec::new();
    write_chrome_trace(&log, &mut chrome).unwrap();
    let chrome = String::from_utf8(chrome).unwrap();
    check_json(&chrome).expect("chrome trace must be valid JSON");
    assert!(chrome.contains("\"traceEvents\""));
    assert!(chrome.contains("system-bus/TAM"));

    let mut spans = Vec::new();
    write_spans_csv(&log, &mut spans).unwrap();
    let spans = String::from_utf8(spans).unwrap();
    let header = spans.lines().next().unwrap();
    assert_eq!(
        header,
        "track,kind,name,start_cycles,end_cycles,duration_cycles,initiator,bits"
    );
    let cols = header.split(',').count();
    for line in spans.lines().skip(1).take(100) {
        assert_eq!(line.split(',').count(), cols, "ragged CSV row: {line}");
    }

    let mut metrics_csv = Vec::new();
    write_metrics_csv(&log, &mut metrics_csv).unwrap();
    let metrics_csv = String::from_utf8(metrics_csv).unwrap();
    assert!(metrics_csv.starts_with("metric,kind,value"));
    assert!(metrics_csv.lines().count() > 1, "no metrics exported");
}

#[test]
fn ring_policy_bounds_retained_spans() {
    let (config, plan) = workload();
    let schedule = &paper_schedules()[0];
    let cap = 128;
    let (_, log) = run_scenario_traced(&config, &plan, schedule, StoragePolicy::Ring(cap))
        .expect("well-formed");
    assert!(
        log.spans.len() <= cap,
        "ring retained {} > {cap}",
        log.spans.len()
    );
    assert!(
        log.dropped > 0,
        "this workload must overflow a {cap}-span ring"
    );
}

#[test]
fn farm_traced_batch_merges_per_job_timelines() {
    let (config, plan) = workload();
    let jobs: Vec<ScenarioJob> = paper_schedules()
        .into_iter()
        .take(2)
        .map(|s| ScenarioJob::new(config.clone(), plan.clone(), s))
        .collect();
    let plain = run_scenarios(&jobs);
    let traced = run_scenarios_traced(&jobs, StoragePolicy::Unbounded);
    for (a, b) in plain.outcomes.iter().zip(&traced.report.outcomes) {
        assert_eq!(
            a.expect_metrics().digest(),
            b.expect_metrics().digest(),
            "farm tracing perturbed job '{}'",
            a.label
        );
    }
    let merged = traced.merged();
    let farm_jobs = merged.spans_on("farm", SpanKind::Job).count();
    assert_eq!(farm_jobs, jobs.len(), "one Job span per farmed scenario");
    for job in &jobs {
        let prefixed = format!("{}/system-bus/TAM", job.label);
        assert!(
            merged.tracks().iter().any(|t| *t == prefixed),
            "missing merged track {prefixed}"
        );
    }
}
