//! Fig. 4 of the paper as executable structure: the JPEG encoder SoC with
//! its test infrastructure — wrapped cores on a system bus reused as TAM,
//! decompressor/compactor, test controller, EBI/ATE and the configuration
//! scan bus.

use std::rc::Rc;

use tve::core::WrapperMode;
use tve::sim::Simulation;
use tve::soc::{initiators, JpegEncoderSoc, SocConfig, COLOR_WRAPPER_ADDR, MEM_BASE, RING_EBI};
use tve::tlm::TamIfExt;

#[test]
fn topology_matches_figure_4() {
    let sim = Simulation::new();
    let soc = JpegEncoderSoc::build(&sim.handle(), SocConfig::paper());
    // Bus targets: memory, processor, color conversion, DCT (all wrapped)
    // plus the decompressor/compactor.
    assert_eq!(soc.bus.target_count(), 5);
    // Configuration ring: four wrappers, the codec, the EBI.
    assert_eq!(soc.ring.client_count(), 6);
    // The case-study memory is 1 MiB.
    assert_eq!(soc.memory.words() * 4, 1 << 20);
    // Paper scan geometries: 32 processor chains, 8 DCT chains.
    assert_eq!(soc.proc_wrapper.scan_config().chains(), 32);
    assert_eq!(soc.dct_wrapper.scan_config().chains(), 8);
}

#[test]
fn system_bus_carries_functional_and_test_traffic() {
    let mut sim = Simulation::new();
    let soc = JpegEncoderSoc::build(&sim.handle(), SocConfig::small());
    let bus = Rc::clone(&soc.bus);
    let ring = Rc::clone(&soc.ring);
    sim.spawn(async move {
        // Functional traffic: processor writes to memory.
        bus.write(initiators::PROCESSOR, MEM_BASE + 1, &[0x1234], 32)
            .await
            .unwrap();
        // Test traffic over the *same* bus: configure and stream a pattern
        // into the color wrapper.
        ring.write(1, WrapperMode::Bist.encode()).await;
        let bits = 4 * 48; // small() geometry: 4 chains x 48
        bus.transfer_volume(
            initiators::BIST_COLOR,
            tve::tlm::Command::Write,
            COLOR_WRAPPER_ADDR,
            bits as u64,
        )
        .await
        .unwrap();
    });
    sim.run();
    let monitor = soc.bus.monitor();
    assert!(monitor.busy_cycles_of(initiators::PROCESSOR) > 0);
    assert!(monitor.busy_cycles_of(initiators::BIST_COLOR) > 0);
    assert_eq!(soc.color_wrapper.stats().patterns, 1);
}

#[test]
fn ate_reaches_the_soc_only_through_the_ebi() {
    let mut sim = Simulation::new();
    let soc = JpegEncoderSoc::build(&sim.handle(), SocConfig::small());
    let ebi = Rc::clone(&soc.ebi);
    let ring = Rc::clone(&soc.ring);
    let outcome = sim.spawn(async move {
        let before = ebi.read(initiators::ATE, MEM_BASE, 32).await.is_err();
        ring.write(RING_EBI, 1).await;
        let after = ebi.read(initiators::ATE, MEM_BASE, 32).await.is_ok();
        (before, after)
    });
    sim.run();
    assert_eq!(outcome.try_take(), Some((true, true)));
    assert!(soc.ebi.uplink_bits() > 0, "responses travel the ATE uplink");
}

#[test]
fn test_controller_uses_the_config_ring_and_bus() {
    let mut sim = Simulation::new();
    let soc = JpegEncoderSoc::build(&sim.handle(), SocConfig::small());
    let ring = Rc::clone(&soc.ring);
    sim.spawn(async move {
        // The controller (here: the ATE process) configures the whole
        // session in one ring rotation.
        ring.write_all(&[
            WrapperMode::Bist.encode(),
            WrapperMode::Functional.encode(),
            WrapperMode::IntTest.encode(),
            WrapperMode::Functional.encode(),
            1, // codec active
            1, // EBI enabled
        ])
        .await;
    });
    sim.run();
    assert_eq!(soc.proc_wrapper.mode(), WrapperMode::Bist);
    assert_eq!(soc.dct_wrapper.mode(), WrapperMode::IntTest);
    assert!(soc.codec.is_active());
    assert!(soc.ebi.is_enabled());
    assert_eq!(soc.ring.rotation_count(), 1);
}
