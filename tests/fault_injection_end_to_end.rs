//! End-to-end test *validation*: injected defects must change what the
//! test strategy observes — a stuck scan cell flips the BIST signature
//! through the full TAM path, and memory faults surface as march
//! mismatches through the bus.

use tve::core::{execute_schedule, DataPolicy, Schedule, StuckCell};
use tve::memtest::Fault;
use tve::sim::Simulation;
use tve::soc::{build_test_runs, JpegEncoderSoc, SocConfig, SocTestPlan};

fn run_t1_signature(fault: Option<StuckCell>) -> u64 {
    let mut sim = Simulation::new();
    let soc = JpegEncoderSoc::build(&sim.handle(), SocConfig::small());
    soc.proc_wrapper.inject_fault(fault);
    let tests = build_test_runs(&soc, &SocTestPlan::small());
    let schedule = Schedule::new("t1 only", vec![vec![0]]);
    let result = execute_schedule(&mut sim, tests, &schedule).unwrap();
    result.slots[0]
        .outcome
        .signature
        .expect("full-data run yields a signature")
}

#[test]
fn stuck_scan_cell_changes_the_bist_signature() {
    let clean = run_t1_signature(None);
    let faulty = run_t1_signature(Some(StuckCell {
        chain: 1,
        position: 30,
        value: false,
    }));
    assert_ne!(clean, faulty, "the defect must be observable");
    assert_eq!(clean, run_t1_signature(None), "clean runs are reproducible");
}

#[test]
fn different_defects_give_different_signatures() {
    let a = run_t1_signature(Some(StuckCell {
        chain: 0,
        position: 1,
        value: true,
    }));
    let b = run_t1_signature(Some(StuckCell {
        chain: 3,
        position: 60,
        value: true,
    }));
    assert_ne!(a, b, "signatures carry diagnostic information");
}

#[test]
fn memory_fault_surfaces_as_march_mismatches_through_the_bus() {
    let mut config = SocConfig::small();
    config.memory_words = 128;
    let mut sim = Simulation::new();
    let soc = JpegEncoderSoc::build(&sim.handle(), config);
    soc.memory.inject(Fault::stuck_at(77, 13, true));
    soc.memory.inject(Fault::address_alias(3, 99));
    let tests = build_test_runs(&soc, &SocTestPlan::small());
    // Test 6 = index 5: controller-driven march.
    let schedule = Schedule::new("t6 only", vec![vec![5]]);
    let result = execute_schedule(&mut sim, tests, &schedule).unwrap();
    let outcome = &result.slots[0].outcome;
    assert!(outcome.mismatches > 0, "{outcome}");
    assert_eq!(outcome.errors, 0, "faults are data errors, not bus errors");
}

#[test]
fn fault_free_soc_passes_the_full_test_suite() {
    let mut config = SocConfig::small();
    config.memory_words = 64;
    let mut sim = Simulation::new();
    let soc = JpegEncoderSoc::build(&sim.handle(), config);
    let tests = build_test_runs(&soc, &SocTestPlan::small());
    let schedule = Schedule::sequential("all", 7);
    let result = execute_schedule(&mut sim, tests, &schedule).unwrap();
    assert!(result.clean(), "{result}");
    assert_eq!(result.slots.len(), 7);
}

#[test]
fn policy_volume_and_full_agree_on_timing() {
    // The exploration mode (volume) and the validation mode (full) must
    // report identical schedule timing — only data differs.
    fn total(policy: DataPolicy) -> u64 {
        let mut config = SocConfig::small();
        config.memory_words = 64;
        config.policy = policy;
        let mut sim = Simulation::new();
        let soc = JpegEncoderSoc::build(&sim.handle(), config);
        let plan = SocTestPlan {
            policy,
            ..SocTestPlan::small()
        };
        let tests = build_test_runs(&soc, &plan);
        // Compressed full-data streams differ in size from the 50x volume
        // model, so compare on the uncompressed subset {T1, T2, T4, T5}.
        let schedule = Schedule::new("subset", vec![vec![0], vec![1], vec![3], vec![4]]);
        execute_schedule(&mut sim, tests, &schedule)
            .unwrap()
            .total_cycles
    }
    assert_eq!(total(DataPolicy::Volume), total(DataPolicy::Full));
}
