//! Gate level under the test infrastructure: a real combinational netlist
//! behind a test wrapper (the paper allows wrapped cores "even at gate
//! level"). A stuck-at defect injected into the *gates* must propagate
//! through the scan response and flip the BIST MISR signature the ATE
//! checks — the full defect-to-detection chain at transaction level.

use std::rc::Rc;

use tve::core::{BistSource, ConfigClient, DataPolicy, TestWrapper, WrapperConfig, WrapperMode};
use tve::netlist::{c17, full_fault_list, NetlistCore, StuckAtFault};
use tve::sim::Simulation;
use tve::tlm::{InitiatorId, TamIf};
use tve::tpg::ScanConfig;

const SCAN: (u32, u32) = (5, 16); // 80-bit pattern = 16 c17 input frames

fn bist_signature(fault: Option<StuckAtFault>, patterns: u64) -> u64 {
    let mut sim = Simulation::new();
    let scan = ScanConfig::new(SCAN.0, SCAN.1);
    let core = Rc::new(NetlistCore::new(c17(), scan));
    core.inject_fault(fault);
    let wrapper = Rc::new(TestWrapper::new(
        &sim.handle(),
        WrapperConfig::default(),
        core,
    ));
    wrapper.load_config(WrapperMode::Bist.encode());
    let src = BistSource::new(
        &sim.handle(),
        "gate-level BIST",
        wrapper as Rc<dyn TamIf>,
        0,
        InitiatorId(0),
        scan,
        patterns,
        DataPolicy::Full,
        0x17,
    );
    let jh = sim.spawn(async move { src.run().await });
    sim.run();
    let out = jh.try_take().expect("BIST completed");
    assert!(out.clean());
    out.signature.expect("full-data run")
}

#[test]
fn every_c17_stuck_at_fault_flips_the_bist_signature() {
    let golden = bist_signature(None, 50);
    let faults = full_fault_list(&c17());
    assert_eq!(faults.len(), 22);
    let mut detected = 0;
    for fault in &faults {
        if bist_signature(Some(*fault), 50) != golden {
            detected += 1;
        }
    }
    // c17 is fully single-stuck-at testable; 50 pseudo-random 80-bit
    // patterns (800 input frames) detect every fault through the MISR.
    assert_eq!(
        detected,
        faults.len(),
        "all gate-level faults must reach the signature"
    );
}

#[test]
fn golden_signature_is_stable() {
    assert_eq!(bist_signature(None, 20), bist_signature(None, 20));
    assert_ne!(bist_signature(None, 20), bist_signature(None, 21));
}
