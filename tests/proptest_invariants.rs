//! Property-based tests over the workspace's core data structures and
//! invariants (see DESIGN.md § Testing strategy).

use proptest::prelude::*;
use std::rc::Rc;

use tve::core::{
    diagnose_bist, ConfigClient, CoreModel, FailingCell, ScheduleResult, StuckCell,
    SyntheticLogicCore, TestOutcome, TestWrapper, WrapperConfig, WrapperMode,
};
use tve::memtest::{MarchTest, MemoryArray};
use tve::sim::{Duration, Simulation, Time};
use tve::soc::{scan_view, ScenarioMetrics, SocConfig, WrappedCore};
use tve::tlm::{
    AddrRange, BusConfig, BusTam, Command, InitiatorId, SerialTam, SinkTarget, TamIf, TamIfExt,
    UtilizationMonitor,
};
use tve::tpg::{
    BitVec, Compressor, Lfsr, Prpg, ReseedingCodec, RunLengthCodec, ScanConfig, TestCube,
};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // ----- BitVec ---------------------------------------------------------

    #[test]
    fn bitvec_push_get_roundtrip(bits in proptest::collection::vec(any::<bool>(), 0..200)) {
        let v = BitVec::from_bits(bits.clone());
        prop_assert_eq!(v.len(), bits.len());
        for (i, &b) in bits.iter().enumerate() {
            prop_assert_eq!(v.get(i), Some(b));
        }
        prop_assert_eq!(v.count_ones(), bits.iter().filter(|&&b| b).count());
    }

    #[test]
    fn bitvec_xor_is_involutive(bits in proptest::collection::vec(any::<bool>(), 1..200)) {
        let a = BitVec::from_bits(bits.clone());
        let b = BitVec::from_bits(bits.iter().map(|&x| !x));
        let x = &a ^ &b;
        prop_assert_eq!(&(&x ^ &b), &a);
        prop_assert_eq!(a.hamming_distance(&b), bits.len());
    }

    #[test]
    fn bitvec_words_roundtrip(words in proptest::collection::vec(any::<u32>(), 1..16),
                              tail in 1usize..32) {
        let len = (words.len() - 1) * 32 + tail;
        let v = BitVec::from_words(words, len);
        let back = BitVec::from_words(v.words().to_vec(), len);
        prop_assert_eq!(v, back);
    }

    // ----- LFSR -----------------------------------------------------------

    #[test]
    fn lfsr_word_stepping_equals_bit_stepping(seed in 1u64..u64::MAX, n in 1u32..64) {
        let mut a = Lfsr::maximal(32, seed).unwrap();
        let mut b = a.clone();
        let w = a.step_word(n);
        let mut expect = 0u64;
        for i in 0..n {
            if b.step() {
                expect |= 1 << i;
            }
        }
        prop_assert_eq!(w, expect);
        prop_assert_eq!(a.state(), b.state());
    }

    // ----- Compression codecs ---------------------------------------------

    #[test]
    fn run_length_roundtrip_any_cube(cares in 0usize..64, seed in any::<u64>()) {
        let cfg = ScanConfig::new(4, 32);
        let cube = TestCube::random(cfg, cares, seed);
        let codec = RunLengthCodec::new(cfg, 5).unwrap();
        let stream = codec.compress(&cube).unwrap();
        let pattern = codec.decompress(&stream).unwrap();
        let zero_filled = cube.zero_fill();
        prop_assert_eq!(pattern.stimulus(), zero_filled.stimulus());
        prop_assert!(cube.is_satisfied_by(&pattern));
    }

    #[test]
    fn reseeding_expansion_satisfies_sparse_cubes(cares in 0usize..24, seed in any::<u64>()) {
        let cfg = ScanConfig::new(4, 32);
        let cube = TestCube::random(cfg, cares, seed);
        let codec = ReseedingCodec::new(cfg, 48).unwrap();
        match codec.compress(&cube) {
            Ok(stream) => {
                let pattern = codec.decompress(&stream).unwrap();
                prop_assert!(cube.is_satisfied_by(&pattern));
            }
            Err(_) => {
                // Unsolvable cubes are allowed (rare at this density), but
                // then the care count must be non-trivial.
                prop_assert!(cares > 0);
            }
        }
    }

    // ----- March engine -----------------------------------------------------

    #[test]
    fn march_ops_count_is_exact_and_clean_memory_passes(
        words in 1usize..128,
        extra_ops in proptest::collection::vec(0u8..4, 1..5),
    ) {
        // Build a random-but-valid march test: init element plus a random
        // ascending element whose reads always match the value last
        // written (state-consistent by construction; the element must end
        // in the state it started in so later cells see the same state).
        let mut state = false; // after the any(w0) init element
        let mut ops = Vec::new();
        for k in &extra_ops {
            match k {
                0 => ops.push(if state { "r1" } else { "r0" }),
                1 => {
                    ops.push("w1");
                    state = true;
                }
                2 => {
                    ops.push("w0");
                    state = false;
                }
                _ => {
                    ops.push(if state { "r1" } else { "r0" });
                }
            }
        }
        if state {
            ops.push("w0"); // restore the per-cell invariant
        }
        let t =
            MarchTest::parse("fuzz", &format!("any(w0); asc({})", ops.join(","))).unwrap();
        let mut mem = MemoryArray::new(words);
        let report = t.run(&mut mem);
        prop_assert!(report.passed(), "clean memory failed: {:?}", report.mismatches);
        prop_assert_eq!(report.operations, t.total_ops(words as u64));
    }

    // ----- Utilization monitor ---------------------------------------------

    #[test]
    fn monitor_conserves_busy_cycles(
        intervals in proptest::collection::vec((0u64..10_000, 1u64..500, 0u8..4), 1..50)
    ) {
        let mut m = UtilizationMonitor::new(Duration::cycles(256));
        let mut sorted = intervals.clone();
        sorted.sort();
        let mut expected_total = 0u64;
        for (start, len, init) in sorted {
            m.record_busy(Time::from_cycles(start), Duration::cycles(len), InitiatorId(init));
            expected_total += len;
        }
        prop_assert_eq!(m.total_busy_cycles(), expected_total);
        let per_init: u64 = m.per_initiator().map(|(_, b)| b).sum();
        prop_assert_eq!(per_init, expected_total);
        let windows: u64 = m.window_busy().map(|(_, b)| b).sum();
        prop_assert_eq!(windows, expected_total);
    }
}

// Bus conservation needs a simulation, which proptest drives fine but we
// keep the case count low.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn bus_accounts_every_transferred_bit(
        volumes in proptest::collection::vec(1u64..2000, 1..30)
    ) {
        let mut sim = Simulation::new();
        let h = sim.handle();
        let bus = Rc::new(BusTam::new(&h, BusConfig::default()));
        bus.bind(AddrRange::new(0, 0x100), Rc::new(SinkTarget::new("sink"))).unwrap();
        let expected: u64 = volumes
            .iter()
            .map(|&bits| 1 + bits.div_ceil(32))
            .sum();
        for (i, &bits) in volumes.iter().enumerate() {
            let bus = Rc::clone(&bus);
            sim.spawn(async move {
                bus.transfer_volume(InitiatorId((i % 4) as u8), Command::Write, 0, bits)
                    .await
                    .unwrap();
            });
        }
        let end = sim.run();
        prop_assert_eq!(bus.monitor().total_busy_cycles(), expected);
        // One shared channel: end time equals total busy (no idle gaps
        // when all requests are issued at time zero).
        prop_assert_eq!(end.cycles(), expected);
    }
}

// The span-based aggregation of tve-obs deliberately re-implements the
// monitor's windowing; this property pins the two to each other on
// arbitrary interval soups (overlap allowed — both sides double-count
// identically).
proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn span_aggregation_matches_utilization_monitor(
        intervals in proptest::collection::vec(
            (0u64..10_000, 1u64..600, 0u8..4), 1..40),
        window in 16u64..2048,
        slack in 0u64..5000,
    ) {
        use tve::obs::{utilization_from_spans, SpanKind, SpanRecord};

        let mut monitor = UtilizationMonitor::new(Duration::cycles(window));
        let mut spans = Vec::new();
        let mut max_end = 0u64;
        for &(start, len, who) in &intervals {
            monitor.record_busy(
                Time::from_cycles(start),
                Duration::cycles(len),
                InitiatorId(who),
            );
            spans.push(
                SpanRecord::new(
                    SpanKind::Transfer,
                    "bus",
                    "xfer",
                    Time::from_cycles(start),
                    Time::from_cycles(start + len),
                )
                .with_initiator(who),
            );
            max_end = max_end.max(start + len);
        }
        let observe = Time::from_cycles(max_end + slack);
        monitor.observe_until(observe);

        let u = utilization_from_spans(spans.iter(), window, observe);
        prop_assert_eq!(u.total_busy, monitor.total_busy_cycles());
        prop_assert_eq!(u.transfers, monitor.transfer_count());
        prop_assert_eq!(u.observed_end, monitor.last_activity_end().cycles());
        // Bit-exact, not approximate: same chunking, same normalization.
        prop_assert_eq!(u.peak(), monitor.peak_utilization());
        prop_assert_eq!(u.average(), monitor.average_utilization(observe));
        let window_busy: Vec<(u64, u64)> = monitor.window_busy().collect();
        prop_assert_eq!(&u.window_busy, &window_busy);
        for &(who, busy) in &u.per_initiator {
            prop_assert_eq!(busy, monitor.busy_cycles_of(InitiatorId(who)));
        }
    }
}

// Diagnosis round-trip: for ANY stuck cell injected into ANY of the four
// wrapped cores, BIST diagnosis must locate exactly the injected
// (chain, position), and two runs over the same part must produce the
// identical report (first_failing_pattern included) — the reproducibility
// the paper's debug/diagnosis strategy rests on. Each run is a full
// two-wrapper simulation, so the case count is kept moderate.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn diagnosis_locates_any_injected_cell_reproducibly(
        core_idx in 0usize..4,
        chain_r in any::<u32>(),
        pos_r in any::<u32>(),
        value in any::<bool>(),
        bist_seed in any::<u64>(),
    ) {
        let core = WrappedCore::ALL[core_idx];
        let cfg = SocConfig::small();
        let model = Rc::new(scan_view(&cfg, core));
        let scan = model.scan_config();
        let cell = StuckCell {
            chain: chain_r % scan.chains(),
            position: pos_r % scan.max_chain_len(),
            value,
        };
        let run = || {
            let mut sim = Simulation::new();
            let h = sim.handle();
            let mk = |name: &str| {
                Rc::new(TestWrapper::new(
                    &h,
                    WrapperConfig { name: name.into(), ..WrapperConfig::default() },
                    Rc::clone(&model) as Rc<dyn CoreModel>,
                ))
            };
            let golden = mk("g");
            let dut = mk("d");
            dut.inject_fault(Some(cell));
            let h2 = h.clone();
            let jh = sim.spawn(async move {
                diagnose_bist(&h2, &golden, &dut, scan, bist_seed, 96, 16).await
            });
            sim.run();
            jh.try_take().expect("diagnosis completes")
        };
        let first = run();
        let second = run();
        prop_assert_eq!(&first, &second, "diagnosis must be reproducible");
        prop_assert!(first.first_failing_pattern.is_some(), "defect unobserved for {}", cell);
        prop_assert_eq!(
            first.failing_cells,
            vec![FailingCell { chain: cell.chain, position: cell.position }],
            "diagnosis must name exactly the injected cell ({})",
            cell
        );
    }
}

// Serial-vs-bus TAM differential: the TAM choice trades wires against
// cycles but must never change the test DATA. The same wrapped core,
// driven with the same patterns through a serial daisy chain and through
// the shared bus, must return byte-identical response images and
// signatures — and hence identical timing-normalized scenario digests —
// while the serial chain pays measurably more cycles.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn serial_and_bus_tams_move_identical_test_data(
        chains in 3u32..6,
        len in 24u32..48,
        core_seed in any::<u64>(),
        prpg_seed in any::<u64>(),
        patterns in 1u64..5,
        overhead in 1u64..16,
        bypass in 1u32..24,
    ) {
        // chains * len >= 72 > 64 bits per pattern, so a full-length read
        // is unambiguously a response-image readout on either TAM.
        let scan = ScanConfig::new(chains, len);
        let bits = scan.bits_per_pattern();
        let stims: Vec<Vec<u32>> = {
            let mut prpg = Prpg::new(32, prpg_seed | 1, scan).unwrap();
            (0..patterns)
                .map(|_| prpg.next_pattern().stimulus().words().to_vec())
                .collect()
        };
        let run = |serial: bool| {
            let mut sim = Simulation::new();
            let h = sim.handle();
            let model = Rc::new(SyntheticLogicCore::new("c", scan, core_seed));
            let w = Rc::new(TestWrapper::new(&h, WrapperConfig::default(), model));
            w.load_config(WrapperMode::IntTest.encode());
            let chan: Rc<dyn TamIf> = if serial {
                let s = SerialTam::new(&h, "chain", overhead);
                s.bind(AddrRange::new(0, 0x10), 1, Rc::clone(&w) as Rc<dyn TamIf>)
                    .unwrap();
                s.bind(AddrRange::new(0x10, 0x10), bypass, Rc::new(SinkTarget::new("other")))
                    .unwrap();
                Rc::new(s)
            } else {
                let b = BusTam::new(&h, BusConfig::default());
                b.bind(AddrRange::new(0, 0x10), Rc::clone(&w) as Rc<dyn TamIf>)
                    .unwrap();
                b.bind(AddrRange::new(0x10, 0x10), Rc::new(SinkTarget::new("other")))
                    .unwrap();
                Rc::new(b)
            };
            let stims = stims.clone();
            let jh = sim.spawn(async move {
                let mut resps = Vec::new();
                for stim in &stims {
                    chan.write(InitiatorId(0), 0, stim, bits).await.unwrap();
                    resps.push(chan.read(InitiatorId(0), 0, bits).await.unwrap());
                }
                let sig = chan.read(InitiatorId(0), 0, 64).await.unwrap();
                (resps, sig)
            });
            let end = sim.run().cycles();
            let (resps, sig) = jh.try_take().expect("drive loop completes");
            (resps, sig, end)
        };
        let (bus_resps, bus_sig, bus_end) = run(false);
        let (ser_resps, ser_sig, ser_end) = run(true);
        prop_assert_eq!(&bus_resps, &ser_resps, "response images must not depend on the TAM");
        prop_assert_eq!(&bus_sig, &ser_sig, "signatures must not depend on the TAM");
        prop_assert!(
            ser_end > bus_end,
            "one-bit-per-cycle chain ({ser_end}) must be slower than the bus ({bus_end})"
        );

        // Timing-normalized scenario digests agree: the digest sees only
        // data, so equal data means equal digests whichever TAM moved it.
        let digest_of = |resps: &[Vec<u32>], sig: &[u32]| {
            let mut outcome = TestOutcome::begin("differential", Time::ZERO);
            outcome.patterns = patterns;
            outcome.stimulus_bits = patterns * bits;
            outcome.response_bits = resps.iter().map(|r| r.len() as u64 * 32).sum();
            outcome.signature = Some((sig[0] as u64) | ((sig[1] as u64) << 32));
            ScenarioMetrics {
                schedule: "tam-differential".into(),
                peak_utilization: 0.0,
                avg_utilization: 0.0,
                total_cycles: 0,
                cpu: std::time::Duration::ZERO,
                power: None,
                result: ScheduleResult {
                    schedule: "tam-differential".into(),
                    total_cycles: 0,
                    slots: vec![tve::core::TestSlot { phase: 0, outcome }],
                    wall: std::time::Duration::ZERO,
                },
            }
            .digest()
        };
        prop_assert_eq!(digest_of(&bus_resps, &bus_sig), digest_of(&ser_resps, &ser_sig));
    }
}
