//! Shard-merge equivalence, property-tested: for *any* shard count,
//! *any* farm worker count per shard, and *any* merge order — including
//! uneven tilings and shards that own a single cell or none at all —
//! the merged campaign artifacts must be byte-identical to the
//! unsharded run. This is the contract that makes scale-out free:
//! `run_campaign` *is* the single-shard merge, so these properties pin
//! the partition/merge layer against the engine itself.

use std::sync::OnceLock;

use proptest::prelude::*;

use tve::campaign::{
    generate, merge_shards, run_campaign, run_campaign_shard, CampaignConfig, PopulationSpec,
    ShardReport, ShardSpec,
};
use tve::sched::Farm;
use tve::soc::{paper_schedules, SocConfig, SocTestPlan};

/// A deliberately small matrix — 4 faults x 2 schedules = 8 cells — so
/// shard counts beyond the cell count leave some shards empty and odd
/// counts tile unevenly.
fn config() -> CampaignConfig {
    let mut soc = SocConfig::small();
    soc.memory_words = 48;
    let population = generate(
        &PopulationSpec {
            scan_cells_per_core: 1,
            memory_faults: 1,
            infrastructure: false,
            ..PopulationSpec::default()
        },
        &soc,
    );
    let schedules = paper_schedules()[..2].to_vec();
    let mut config = CampaignConfig::new(soc, SocTestPlan::small(), schedules, population);
    config.diagnosis = false;
    config
}

/// The unsharded artifacts, computed once per process.
fn baseline() -> &'static (String, String) {
    static BASELINE: OnceLock<(String, String)> = OnceLock::new();
    BASELINE.get_or_init(|| {
        let report = run_campaign(&config(), &Farm::with_workers(2));
        (report.to_csv(), report.to_json())
    })
}

/// Fisher–Yates driven by a splitmix-style step, so the merge order is
/// an arbitrary permutation of the shard set.
fn shuffle<T>(items: &mut [T], mut seed: u64) {
    for i in (1..items.len()).rev() {
        seed = seed
            .wrapping_mul(0x5851_f42d_4c95_7f2d)
            .wrapping_add(0x1405_7b7e_f767_814f);
        items.swap(i, (seed >> 33) as usize % (i + 1));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    // The tentpole equivalence: shards of any count, simulated with any
    // worker count, merged in any order, reproduce the unsharded bytes.
    #[test]
    fn any_shard_set_merges_byte_identical(
        count in 1usize..=10,
        workers in 1usize..=3,
        order_seed in any::<u64>(),
    ) {
        let config = config();
        let farm = Farm::with_workers(workers);
        let mut reports: Vec<ShardReport> = (0..count)
            .map(|k| run_campaign_shard(&config, &farm, ShardSpec::new(k, count).unwrap()))
            .collect();
        shuffle(&mut reports, order_seed);
        let merged = merge_shards(&config, &reports).expect("complete shard set merges");
        let (csv, json) = baseline();
        prop_assert_eq!(&merged.to_csv(), csv, "CSV differs from the unsharded run");
        prop_assert_eq!(&merged.to_json(), json, "JSON differs from the unsharded run");
    }

    // The same equivalence through the process boundary: every report
    // serialized to its JSON wire form and parsed back before merging.
    #[test]
    fn merge_survives_the_json_wire(count in 2usize..=5) {
        let config = config();
        let farm = Farm::with_workers(1);
        let reports: Vec<ShardReport> = (0..count)
            .map(|k| {
                let report = run_campaign_shard(&config, &farm, ShardSpec::new(k, count).unwrap());
                ShardReport::from_json(&report.to_json()).expect("wire round-trip")
            })
            .collect();
        let merged = merge_shards(&config, &reports).expect("round-tripped set merges");
        prop_assert_eq!(&merged.to_csv(), &baseline().0);
    }

    // Dropping any one shard must fail the merge loudly — a partial
    // set can never masquerade as a complete campaign.
    #[test]
    fn missing_shard_is_rejected(count in 2usize..=6, drop in 0usize..6) {
        let config = config();
        let farm = Farm::with_workers(1);
        let reports: Vec<ShardReport> = (0..count)
            .filter(|&k| k != drop % count)
            .map(|k| run_campaign_shard(&config, &farm, ShardSpec::new(k, count).unwrap()))
            .collect();
        // With 8 cells, shards beyond the cell count may own nothing;
        // dropping an empty shard legitimately still merges. Dropping a
        // non-empty one must not.
        let dropped_owned = (0..config.population.len() * config.schedules.len())
            .any(|i| ShardSpec::new(drop % count, count).unwrap().owns(i));
        let merged = merge_shards(&config, &reports);
        if dropped_owned {
            let err = merged.expect_err("incomplete set must not merge");
            prop_assert!(err.contains("covered by no shard"), "{}", err);
        } else {
            prop_assert!(merged.is_ok());
        }
    }
}

/// Diagnosis checks merge too: with diagnosis on, a scan fault detected
/// by several shards is diagnosed by each, and the merged report
/// carries the deduplicated checks in population order — byte-identical
/// to the unsharded run.
#[test]
fn diagnosis_merges_deduplicated_and_identical() {
    let mut config = config();
    config.diagnosis = true;
    let farm = Farm::with_workers(2);
    let unsharded = run_campaign(&config, &farm);
    assert!(
        !unsharded.diagnosis.is_empty(),
        "workload produced no diagnosis checks — the test is vacuous"
    );
    let reports: Vec<ShardReport> = (0..3)
        .map(|k| run_campaign_shard(&config, &farm, ShardSpec::new(k, 3).unwrap()))
        .collect();
    let merged = merge_shards(&config, &reports).expect("shard set merges");
    assert_eq!(merged.to_csv(), unsharded.to_csv());
    assert_eq!(merged.to_json(), unsharded.to_json());
}
