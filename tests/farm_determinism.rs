//! The farm contract the whole PR rests on: fanning scenario validation
//! across workers must not change a single bit of any simulation result.
//! Each worker owns its own single-threaded simulator, so the only thing
//! parallelism may alter is host-side timing — never `ScenarioMetrics`.

use tve::sched::{default_workers, Farm, ScenarioJob};
use tve::soc::{paper_schedules, SocConfig, SocTestPlan};

/// A batch that exercises all four paper schedules twice (two scales), so
/// jobs of different lengths interleave across workers.
fn batch() -> Vec<ScenarioJob> {
    let mut config = SocConfig::paper();
    config.memory_words = 2622;
    let schedules = paper_schedules();
    let mut jobs = Vec::new();
    for scale in [100u64, 200] {
        let plan = SocTestPlan::paper_scaled(scale);
        for s in &schedules {
            jobs.push(ScenarioJob::labeled(
                format!("{} @ 1/{scale}", s.name),
                config.clone(),
                plan.clone(),
                s.clone(),
            ));
        }
    }
    jobs
}

fn digests(farm: &Farm, jobs: &[ScenarioJob]) -> Vec<(String, u64)> {
    let report = farm.run(jobs);
    assert!(report.all_ok(), "every job in the batch must validate");
    assert_eq!(report.outcomes.len(), jobs.len());
    report
        .outcomes
        .iter()
        .map(|o| {
            // Results must come back in submission order regardless of
            // which worker finished first.
            assert_eq!(o.label, jobs[o.index].label);
            (o.label.clone(), o.expect_metrics().digest())
        })
        .collect()
}

#[test]
fn worker_count_is_invisible_in_the_results() {
    let jobs = batch();
    let serial = digests(&Farm::with_workers(1), &jobs);
    let wide = digests(&Farm::with_workers(8), &jobs);
    assert_eq!(
        serial, wide,
        "1-worker and 8-worker runs must produce identical metrics in \
         identical order"
    );
    // And an in-between width, for good measure.
    assert_eq!(serial, digests(&Farm::with_workers(3), &jobs));
}

#[test]
fn tve_jobs_env_drives_the_default_farm() {
    // Serialize with any other test touching the variable.
    std::env::set_var("TVE_JOBS", "5");
    assert_eq!(default_workers(), 5);
    let farm = Farm::new();
    assert_eq!(farm.workers(), 5);
    std::env::remove_var("TVE_JOBS");

    // Nonsense values fall back to the detected parallelism.
    std::env::set_var("TVE_JOBS", "not-a-number");
    assert!(default_workers() >= 1);
    std::env::remove_var("TVE_JOBS");
}
