//! Fig. 2 of the paper as executable structure: the `TAM_IF` interface
//! (`read`/`write`/`write_read`) is implemented by the TAM channel *and* by
//! the infrastructure blocks accessed via the TAM, and components are
//! composed with a bind mechanism.

use std::rc::Rc;

use tve::core::{
    CodecConfig, ConfigClient, DecompressorCompactor, SyntheticLogicCore, TestWrapper,
    WrapperConfig, WrapperMode,
};
use tve::sim::Simulation;
use tve::tlm::{AddrRange, BusConfig, BusTam, InitiatorId, TamIf, TamIfExt};
use tve::tpg::ScanConfig;

fn wrapper(sim: &Simulation, mode: WrapperMode) -> Rc<TestWrapper> {
    let core = Rc::new(SyntheticLogicCore::new("c", ScanConfig::new(4, 32), 1));
    let w = Rc::new(TestWrapper::new(
        &sim.handle(),
        WrapperConfig::default(),
        core,
    ));
    w.load_config(mode.encode());
    w
}

#[test]
fn tam_if_is_object_safe_and_shared_by_all_blocks() {
    let sim = Simulation::new();
    let h = sim.handle();
    // Every block of Fig. 2 is usable through the same dyn interface.
    let blocks: Vec<Rc<dyn TamIf>> = vec![
        Rc::new(BusTam::new(&h, BusConfig::default())),
        wrapper(&sim, WrapperMode::IntTest) as Rc<dyn TamIf>,
        Rc::new(DecompressorCompactor::new(
            CodecConfig::default(),
            wrapper(&sim, WrapperMode::IntTest),
            None,
        )),
    ];
    let names: Vec<&str> = blocks.iter().map(|b| b.name()).collect();
    assert_eq!(names.len(), 3);
}

#[test]
fn write_read_shifts_concurrently_through_bus_and_wrapper() {
    let mut sim = Simulation::new();
    let h = sim.handle();
    let bus = Rc::new(BusTam::new(&h, BusConfig::default()));
    let w = wrapper(&sim, WrapperMode::IntTest);
    bus.bind(AddrRange::new(0x100, 0x10), Rc::clone(&w) as Rc<dyn TamIf>)
        .unwrap();

    let bus2 = Rc::clone(&bus);
    let result = sim.spawn(async move {
        let first = bus2
            .write_read(InitiatorId(0), 0x100, vec![0xAAAA_AAAA; 4], 128)
            .await
            .unwrap();
        let second = bus2
            .write_read(InitiatorId(0), 0x100, vec![0x5555_5555; 4], 128)
            .await
            .unwrap();
        (first, second)
    });
    sim.run();
    let (first, second) = result.try_take().unwrap();
    // Pipelined scan: the first shift-out is empty, the second carries the
    // response to the first stimulus.
    assert_eq!(first, vec![0; 4]);
    assert_ne!(second, vec![0; 4]);
}

#[test]
fn bind_mechanism_rejects_conflicts_and_routes_by_address() {
    let mut sim = Simulation::new();
    let h = sim.handle();
    let bus = Rc::new(BusTam::new(&h, BusConfig::default()));
    let a = wrapper(&sim, WrapperMode::IntTest);
    let b = wrapper(&sim, WrapperMode::IntTest);
    bus.bind(AddrRange::new(0x100, 0x10), Rc::clone(&a) as Rc<dyn TamIf>)
        .unwrap();
    bus.bind(AddrRange::new(0x200, 0x10), Rc::clone(&b) as Rc<dyn TamIf>)
        .unwrap();
    assert!(bus
        .bind(AddrRange::new(0x105, 0x10), Rc::clone(&b) as Rc<dyn TamIf>)
        .is_err());

    let bus2 = Rc::clone(&bus);
    sim.spawn(async move {
        bus2.write(InitiatorId(0), 0x200, &[0; 4], 128)
            .await
            .unwrap();
    });
    sim.run();
    assert_eq!(a.stats().patterns, 0);
    assert_eq!(b.stats().patterns, 1);
}

#[test]
fn decompressor_is_a_plug_and_play_adaptor_between_tam_and_wrapper() {
    // "Plug & play deployment": the same wrapper works bare or behind the
    // codec, with the TAM-side data volume shrinking accordingly.
    let mut sim = Simulation::new();
    let h = sim.handle();
    let bus = Rc::new(BusTam::new(&h, BusConfig::default()));
    let w = wrapper(&sim, WrapperMode::IntTest);
    let dc = Rc::new(DecompressorCompactor::new(
        CodecConfig {
            name: "dc".to_string(),
            decompress_ratio: 16.0,
            compact_ratio: 4,
        },
        Rc::clone(&w),
        None,
    ));
    dc.load_config(1);
    bus.bind(AddrRange::new(0x300, 0x10), Rc::clone(&dc) as Rc<dyn TamIf>)
        .unwrap();

    let bus2 = Rc::clone(&bus);
    sim.spawn(async move {
        // 128-bit pattern compressed 16x = 8 bits on the TAM.
        bus2.transfer_volume(InitiatorId(0), tve::tlm::Command::Write, 0x300, 8)
            .await
            .unwrap();
    });
    sim.run();
    assert_eq!(w.stats().patterns, 1);
    // The TAM moved 8 bits (2 occupancy cycles incl. overhead), not 128.
    assert_eq!(bus.monitor().total_busy_cycles(), 2);
}
