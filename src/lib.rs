#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! # tve — Test Exploration and Validation using Transaction Level Models
//!
//! Umbrella crate re-exporting the whole workspace: a Rust reproduction of
//! Kochte et al., *"Test Exploration and Validation Using Transaction Level
//! Models"* (DATE 2009).
//!
//! The workspace layers are:
//!
//! * [`sim`] — deterministic discrete-event kernel with async processes,
//! * [`obs`] — observability: span/event recorder, metrics registry,
//!   Chrome-trace/CSV exporters and span-based aggregation,
//! * [`tlm`] — transaction-level modeling layer (payloads, TAM interface,
//!   bus channel, utilization monitors),
//! * [`tpg`] — test pattern generation (LFSR/PRPG/MISR, compression),
//! * [`memtest`] — memory fault models and march tests,
//! * [`core`] — the paper's contribution: TLMs of test infrastructure
//!   (wrappers, TAMs, pattern sources, codecs, test controller, ATE),
//! * [`soc`] — the JPEG encoder SoC case study of Section IV,
//! * [`lint`] — static analysis of schedules and ATE programs:
//!   diagnostics without simulation, sound against the dynamic layer,
//! * [`sched`] — test scheduling and design-space exploration,
//! * [`campaign`] — systematic fault-injection campaigns validating
//!   every schedule against a fault population,
//! * [`serve`] — validation as a service: the `tve-serve` daemon, its
//!   wire protocol, and the content-addressed result cache with
//!   incremental re-validation.
//!
//! See `DESIGN.md` for the system inventory and `EXPERIMENTS.md` for the
//! paper-versus-measured record.

pub use tve_campaign as campaign;
pub use tve_core as core;
pub use tve_lint as lint;
pub use tve_memtest as memtest;
pub use tve_netlist as netlist;
pub use tve_noc as noc;
pub use tve_obs as obs;
pub use tve_sched as sched;
pub use tve_serve as serve;
pub use tve_sim as sim;
pub use tve_soc as soc;
pub use tve_tlm as tlm;
pub use tve_tpg as tpg;
