//! Quickstart: wrap a core, configure its WIR over the configuration scan
//! ring, run a logic BIST through a bus TAM, and read the signature.
//!
//! Run with `cargo run --example quickstart`.

use std::rc::Rc;

use tve::core::{
    BistSource, ConfigClient, ConfigScanRing, DataPolicy, SyntheticLogicCore, TestWrapper,
    WrapperConfig, WrapperMode,
};
use tve::sim::Simulation;
use tve::tlm::{AddrRange, BusConfig, BusTam, InitiatorId, TamIf};
use tve::tpg::ScanConfig;

fn main() {
    // 1. A simulation and a core with 8 scan chains of 128 cells.
    let mut sim = Simulation::new();
    let h = sim.handle();
    let scan = ScanConfig::new(8, 128);
    let core = Rc::new(SyntheticLogicCore::new("my-core", scan, 42));

    // 2. Wrap it and put the wrapper behind a bus TAM.
    let wrapper = Rc::new(TestWrapper::new(&h, WrapperConfig::default(), core));
    let bus = Rc::new(BusTam::new(&h, BusConfig::default()));
    bus.bind(
        AddrRange::new(0x1000, 0x100),
        Rc::clone(&wrapper) as Rc<dyn TamIf>,
    )
    .expect("fresh address map");

    // 3. The WIR is loaded over the configuration scan ring.
    let ring = Rc::new(ConfigScanRing::new(
        &h,
        vec![Rc::clone(&wrapper) as Rc<dyn ConfigClient>],
        1,
    ));

    // 4. A BIST pattern source streaming 500 pseudo-random patterns.
    let source = BistSource::new(
        &h,
        "quickstart BIST",
        Rc::clone(&bus) as Rc<dyn TamIf>,
        0x1000,
        InitiatorId(1),
        scan,
        500,
        DataPolicy::Full,
        0xBEEF,
    );

    let outcome = sim.spawn(async move {
        ring.write(0, WrapperMode::Bist.encode()).await;
        source.run().await
    });
    let end = sim.run();

    let outcome = outcome.try_take().expect("process completed");
    println!("{outcome}");
    println!(
        "simulated {} cycles; wrapper accepted {} patterns; \
         bus peak utilization {:.1}%",
        end.cycles(),
        wrapper.stats().patterns,
        bus.monitor().peak_utilization() * 100.0
    );
    assert!(outcome.clean());
    assert_eq!(outcome.signature, Some(wrapper.signature()));
}
