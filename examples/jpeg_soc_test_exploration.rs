//! Test design-space exploration on the JPEG encoder SoC (the paper's
//! Section IV): simulates the four test schedules and prints the Table I
//! metrics, at a reduced pattern scale so the example finishes in seconds.
//!
//! Run with `cargo run --release --example jpeg_soc_test_exploration`.
//! For the full paper-scale run use the dedicated harness:
//! `cargo run --release -p tve-bench --bin table1`.

use tve::soc::{paper_schedules, run_scenario, SocConfig, SocTestPlan};

fn main() {
    let config = SocConfig::paper();
    let plan = SocTestPlan::paper_scaled(50);

    println!("JPEG encoder SoC — exploring the paper's four test schedules");
    println!("(pattern counts scaled 1/50; memory tests at full 1 MiB)\n");

    let mut results = Vec::new();
    for schedule in paper_schedules() {
        let metrics = run_scenario(&config, &plan, &schedule).expect("well-formed schedule");
        assert!(metrics.result.clean(), "{}", metrics.result);
        println!("{metrics}");
        for slot in &metrics.result.slots {
            println!(
                "    phase {}: {} — {:.2} Mcycles",
                slot.phase,
                slot.outcome.name,
                slot.outcome.duration().as_cycles() as f64 / 1e6
            );
        }
        results.push(metrics);
    }

    // The exploration conclusion the paper draws from Table I.
    let best = results
        .iter()
        .min_by_key(|m| m.total_cycles)
        .expect("four scenarios");
    println!(
        "\nshortest schedule: {} ({:.1} Mcycles at {:.0}% peak TAM utilization)",
        best.schedule,
        best.total_cycles as f64 / 1e6,
        best.peak_utilization * 100.0
    );
    println!(
        "concurrency + compression win: they trade TAM headroom for test time, \
         exactly the trend of Table I."
    );
}
