//! Defect diagnosis at the transaction level (the "Debug/Diagnosis"
//! strategy of the paper's Fig. 1): a part fails its production BIST; the
//! diagnosis station replays the reproducible pseudo-random patterns
//! against a golden model, bisecting by signature windows down to the
//! failing pattern and the defective scan cells.
//!
//! Run with `cargo run --example defect_diagnosis`.

use std::rc::Rc;

use tve::core::{diagnose_bist, StuckCell, SyntheticLogicCore, TestWrapper, WrapperConfig};
use tve::sim::Simulation;
use tve::tpg::ScanConfig;

fn main() {
    let scan = ScanConfig::new(8, 96);
    let defect = StuckCell {
        chain: 5,
        position: 42,
        value: true,
    };
    println!("injected defect (unknown to the diagnosis flow): {defect}\n");

    let mut sim = Simulation::new();
    let mk = |name: &str| {
        Rc::new(TestWrapper::new(
            &sim.handle(),
            WrapperConfig {
                name: name.to_string(),
                ..WrapperConfig::default()
            },
            Rc::new(SyntheticLogicCore::new("asic-core", scan, 0xFAB)),
        ))
    };
    let golden = mk("golden-model");
    let dut = mk("device-under-diagnosis");
    dut.inject_fault(Some(defect));

    let h = sim.handle();
    let g = Rc::clone(&golden);
    let d = Rc::clone(&dut);
    let report = sim.spawn(async move { diagnose_bist(&h, &g, &d, scan, 0xBEEF, 2000, 100).await });
    let end = sim.run();
    let report = report.try_take().expect("diagnosis completed");

    println!("diagnosis: {report}");
    println!("simulated diagnosis time: {} cycles", end.cycles());
    assert!(report.defective());
    assert_eq!(report.failing_cells.len(), 1);
    assert_eq!(report.failing_cells[0].chain, defect.chain);
    assert_eq!(report.failing_cells[0].position, defect.position);
    println!(
        "\nthe located cell matches the injected defect — pseudo-random \
         reproducibility turns a failing signature into a named scan cell."
    );
}
