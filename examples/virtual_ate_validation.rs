//! Virtual-ATE test program validation (paper Section III.E): execute a
//! correct and a buggy ATE test program against the SoC TLM; the Virtual
//! ATE catches the bug (a forgotten WIR configuration) and a defect
//! (a stuck scan cell changing the BIST signature).
//!
//! Run with `cargo run --example virtual_ate_validation`.

use std::rc::Rc;

use tve::core::{AteOp, BistSource, DataPolicy, StuckCell, TestProgram, TestRun, WrapperMode};
use tve::sim::Simulation;
use tve::soc::{JpegEncoderSoc, SocConfig, PROC_WRAPPER_ADDR, RING_PROC};
use tve::tlm::TamIf;

fn bist_run(soc: &JpegEncoderSoc) -> TestRun {
    let src = BistSource::new(
        &soc.handle,
        "proc BIST",
        Rc::clone(&soc.bus) as Rc<dyn TamIf>,
        PROC_WRAPPER_ADDR,
        tve::soc::initiators::BIST_PROC,
        soc.config.proc_scan,
        200,
        DataPolicy::Full,
        0xA7E,
    );
    TestRun::new("proc BIST", async move { src.run().await })
}

fn execute(program: TestProgram, fault: Option<StuckCell>) -> tve::core::ProgramReport {
    let mut sim = Simulation::new();
    let soc = JpegEncoderSoc::build(&sim.handle(), SocConfig::small());
    soc.proc_wrapper.inject_fault(fault);
    let run = bist_run(&soc);
    let ate = Rc::new(soc.virtual_ate());
    let report = sim.spawn(async move { ate.execute(&program, vec![run]).await });
    sim.run();
    report.try_take().expect("program completed")
}

fn main() {
    // Golden run: configure the WIR, run the BIST, learn the signature.
    let golden = execute(
        TestProgram {
            name: "golden".to_string(),
            ops: vec![
                AteOp::SetConfig {
                    client: RING_PROC,
                    value: WrapperMode::Bist.encode(),
                },
                AteOp::RunTests(vec![0]),
            ],
        },
        None,
    );
    assert!(golden.passed());
    let signature = golden.outcomes[0].signature.expect("full-data run");
    println!("golden signature: {signature:#018x}\n");

    // A correct production test program.
    let good_program = |expected: u64| TestProgram {
        name: "production".to_string(),
        ops: vec![
            AteOp::SetConfig {
                client: RING_PROC,
                value: WrapperMode::Bist.encode(),
            },
            AteOp::RunTests(vec![0]),
            AteOp::ExpectSignature {
                wrapper: 0,
                expected,
            },
        ],
    };
    let ok = execute(good_program(signature), None);
    println!("correct program on a good die:    passed = {}", ok.passed());
    assert!(ok.passed());

    // The same program on a die with a stuck scan cell: caught.
    let defective = execute(
        good_program(signature),
        Some(StuckCell {
            chain: 2,
            position: 17,
            value: true,
        }),
    );
    println!(
        "correct program on a faulty die:   passed = {} ({})",
        defective.passed(),
        defective
            .errors
            .first()
            .map(ToString::to_string)
            .unwrap_or_default()
    );
    assert!(!defective.passed());

    // A buggy test program that forgets to configure the WIR: every
    // pattern is rejected by the wrapper, and validation catches it
    // before silicon ever sees the program.
    let buggy = execute(
        TestProgram {
            name: "buggy (no WIR setup)".to_string(),
            ops: vec![
                AteOp::RunTests(vec![0]),
                AteOp::ExpectSignature {
                    wrapper: 0,
                    expected: signature,
                },
            ],
        },
        None,
    );
    println!(
        "buggy program on a good die:       passed = {} ({} validation errors)",
        buggy.passed(),
        buggy.errors.len()
    );
    assert!(!buggy.passed());
    for e in &buggy.errors {
        println!("    caught: {e}");
    }
}
