//! Waveform export: run a test schedule, export the TAM-utilization
//! profile as a VCD file for any standard waveform viewer — the visual
//! counterpart of Table I's peak/average figures.
//!
//! Run with `cargo run --release --example waveform_export`.

use tve::core::execute_schedule;
use tve::sim::{write_vcd, Simulation};
use tve::soc::{build_test_runs, paper_schedules, JpegEncoderSoc, SocConfig, SocTestPlan};

fn main() -> std::io::Result<()> {
    let mut config = SocConfig::paper();
    config.memory_words = 2622;
    config.monitor_window = tve::sim::Duration::cycles(16_384);
    let plan = SocTestPlan::paper_scaled(100);

    // Schedule 4: the concurrent, compressed scenario with the 100 % peak.
    let schedule = &paper_schedules()[3];
    let mut sim = Simulation::new();
    let soc = JpegEncoderSoc::build(&sim.handle(), config);
    let tests = build_test_runs(&soc, &plan);
    let result = execute_schedule(&mut sim, tests, schedule).expect("well-formed schedule");
    assert!(result.clean());

    let trace = soc.bus.monitor().to_trace("tam_utilization_permille");
    let path = std::env::temp_dir().join("tve_schedule4_utilization.vcd");
    let mut file = std::fs::File::create(&path)?;
    write_vcd(&[&trace], &mut file)?;

    println!(
        "{}: {} cycles simulated, {} utilization samples",
        schedule.name,
        result.total_cycles,
        trace.len()
    );
    println!("VCD written to {}", path.display());
    println!(
        "peak window: {} permille    open it in GTKWave or any VCD viewer",
        trace.max().unwrap_or(0)
    );
    assert!(trace.max().unwrap_or(0) > 900, "schedule 4 saturates");
    Ok(())
}
