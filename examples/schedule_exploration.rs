//! Scheduler design-space exploration with simulation-based validation:
//! generate candidate schedules from coarse task descriptions, rank them,
//! then validate the finalists on the SoC TLM and report the estimate
//! error — the workflow the paper's title describes.
//!
//! Run with `cargo run --release --example schedule_exploration`.

use tve::sched::{default_workers, estimate_tasks, explore, validate_schedules, Constraints};
use tve::soc::{paper_schedules, SocConfig, SocTestPlan};

fn main() {
    let config = SocConfig::paper();
    // Exploration works on the full-scale plan (estimates are free);
    // validation simulates at 1/20 scale to stay fast.
    let plan = SocTestPlan::paper();
    let tasks = estimate_tasks(&config, &plan);

    println!("coarse task descriptions (what the scheduler sees):");
    for t in &tasks {
        println!("  {t}");
    }

    let constraints = Constraints {
        tam_capacity: 1.0,
        power_budget: 400,
    };
    let report = explore(&tasks, &constraints, &paper_schedules());
    println!("\nexplored candidates (fastest first):");
    for c in &report.candidates {
        println!("  {c}");
    }

    // Validate the two finalists by simulation (scaled plan).
    let sim_plan = SocTestPlan::paper_scaled(20);
    let sim_tasks = estimate_tasks(&config, &sim_plan);
    println!(
        "\nsimulation-based validation of the finalists \
         (1/20 scale, farm of {} workers):",
        default_workers()
    );
    // Both finalist simulations run as one farm batch; results return in
    // submission order.
    let finalists: Vec<_> = report
        .candidates
        .iter()
        .take(2)
        .map(|c| c.schedule.clone())
        .collect();
    for (schedule, validation) in finalists.iter().zip(validate_schedules(
        &config, &sim_plan, &sim_tasks, &finalists,
    )) {
        let v = validation.expect("explored schedules are well-formed");
        println!("  {}: {v}", schedule.name);
        assert!(v.simulated.result.clean());
    }
    println!(
        "\nthe coarse estimates rank schedules correctly but misjudge \
         absolute lengths — the gap only simulation closes (the paper's \
         point)."
    );
}
