//! Test 7 as real software, plus Fig. 1's Repair strategy: the embedded
//! processor executes the march as a *program* (paper: "using a program
//! stored in L1 cache"), the failing addresses feed the ATE's repair
//! action, and the retest ships the part.
//!
//! Run with `cargo run --example software_march_and_repair`.

use std::rc::Rc;

use tve::core::{execute_schedule, Schedule};
use tve::memtest::{Fault, MarchTest};
use tve::sim::Simulation;
use tve::soc::cpu::{assemble_march, march_regs, Cpu};
use tve::soc::{build_test_runs, initiators, JpegEncoderSoc, SocConfig, SocTestPlan, MEM_BASE};
use tve::tlm::TamIf;

const WORDS: u32 = 128;

fn soc_with_fault(sim: &Simulation) -> JpegEncoderSoc {
    let mut config = SocConfig::small();
    config.memory_words = WORDS;
    config.memory_spares = 4;
    let soc = JpegEncoderSoc::build(&sim.handle(), config);
    soc.memory.inject(Fault::stuck_at(77, 13, true));
    soc
}

fn main() {
    // 1. The march as software on the embedded CPU.
    let mut sim = Simulation::new();
    let soc = soc_with_fault(&sim);
    let cpu = Cpu::new(
        &sim.handle(),
        Rc::clone(&soc.bus) as Rc<dyn TamIf>,
        initiators::PROCESSOR,
    );
    let program = assemble_march(&MarchTest::mats_plus(), MEM_BASE, WORDS);
    println!(
        "MATS+ assembled to {} instructions (the 'program stored in L1 cache')",
        program.len()
    );
    let outcome = sim.spawn(async move { cpu.run(&program).await });
    sim.run();
    let outcome = outcome.try_take().expect("program halted");
    let sw_errors = outcome.regs[march_regs::ERRORS as usize];
    println!(
        "software march: {outcome}; {} mismatching reads ({:.1} cycles/op)",
        sw_errors,
        outcome.cycles as f64 / outcome.regs[march_regs::OPS as usize] as f64
    );
    assert!(sw_errors > 0, "the injected defect must be caught");

    // 2. The same detection through the hardware BIST engine (test 6),
    //    which also reports the failing addresses the ATE needs.
    let mut sim = Simulation::new();
    let soc = soc_with_fault(&sim);
    let tests = build_test_runs(&soc, &SocTestPlan::small());
    let result = execute_schedule(&mut sim, tests, &Schedule::new("t6", vec![vec![5]])).unwrap();
    let t6 = &result.slots[0].outcome;
    println!("hardware engine: {t6}");
    println!("failing addresses: {:?}", t6.failing_addresses);

    // 3. Repair and retest.
    for &addr in &t6.failing_addresses {
        assert!(soc.memory.repair(addr), "spares must suffice");
    }
    println!(
        "repaired {} word(s) ({} spares used)",
        t6.failing_addresses.len(),
        soc.memory.spares_used()
    );
    let tests = build_test_runs(&soc, &SocTestPlan::small());
    let retest =
        execute_schedule(&mut sim, tests, &Schedule::new("retest", vec![vec![5]])).unwrap();
    let again = &retest.slots[0].outcome;
    println!("retest: {again}");
    assert_eq!(again.mismatches, 0, "the repaired part must pass");
    println!("\ndetect (software or hardware) -> repair -> retest: the part ships.");
}
