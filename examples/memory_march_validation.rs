//! Memory test validation: inject functional faults into the SoC's
//! embedded memory and check which test strategies detect them — first
//! algorithmically (fault-coverage campaign), then end-to-end through the
//! TLM (controller-driven march over the system bus).
//!
//! Run with `cargo run --example memory_march_validation`.

use std::rc::Rc;

use tve::core::{DataPolicy, MemoryTestPlan};
use tve::memtest::{evaluate_coverage, Fault, MarchTest, PatternTest};
use tve::sim::{Duration, Simulation};
use tve::soc::{JpegEncoderSoc, SocConfig, MEM_BASE};

fn campaign(words: u32) -> Vec<Fault> {
    let mut faults = Vec::new();
    for k in 0..24u32 {
        let addr = (k * 7) % words;
        let bit = (k % 32) as u8;
        faults.push(match k % 6 {
            0 => Fault::stuck_at(addr, bit, k % 2 == 0),
            1 => Fault::transition(addr, bit, true),
            2 => Fault::transition(addr, bit, false),
            3 => Fault::coupling_inversion((addr, bit), ((addr + 3) % words, bit), k % 2 == 0),
            4 => Fault::coupling_idempotent((addr, bit), ((addr + 5) % words, bit), true, true),
            _ => Fault::address_alias(addr, (addr + 11) % words),
        });
    }
    faults
}

fn main() {
    let words = 128u32;
    let faults = campaign(words);

    // 1. Algorithm-level exploration: which march algorithm should the BIST
    //    controller run?
    println!(
        "fault-coverage exploration over {} injected faults:\n",
        faults.len()
    );
    for march in [
        MarchTest::mats(),
        MarchTest::mats_plus(),
        MarchTest::mats_plus_plus(),
        MarchTest::march_c_minus(),
    ] {
        let alone = evaluate_coverage(&march, &[], words as usize, &faults);
        let with_patterns = evaluate_coverage(
            &march,
            &[PatternTest::Checkerboard, PatternTest::AddressInData],
            words as usize,
            &faults,
        );
        println!(
            "  {:<9} ({} ops/cell): {}   | with pattern tests: {:.1}%",
            march.name(),
            march.ops_per_cell(),
            alone,
            with_patterns.coverage() * 100.0
        );
    }

    // 2. End-to-end validation through the TLM: the same faults, detected
    //    by the test controller over the system bus.
    let mut config = SocConfig::small();
    config.memory_words = words;
    let mut sim = Simulation::new();
    let soc = JpegEncoderSoc::build(&sim.handle(), config);
    for &f in &faults {
        soc.memory.inject(f);
    }
    let plan = MemoryTestPlan {
        name: "validation march".to_string(),
        march: MarchTest::march_c_minus(),
        patterns: vec![PatternTest::Checkerboard, PatternTest::AddressInData],
        base_addr: MEM_BASE,
        words,
        op_overhead: Duration::cycles(4),
        posted_depth: 8,
        policy: DataPolicy::Full,
    };
    let controller = Rc::clone(&soc.controller);
    let outcome = sim.spawn(async move { controller.run_memory_test(&plan).await });
    sim.run();
    let outcome = outcome.try_take().expect("controller finished");

    println!("\nend-to-end TLM run: {outcome}");
    assert!(
        outcome.mismatches > 0,
        "the injected faults must be visible through the bus"
    );
    println!(
        "the march detected the faulty memory through the full \
         bus/wrapper/memory TLM path ({} mismatching reads).",
        outcome.mismatches
    );
}
