//! Interconnect (EXTEST) validation: drive pseudo-random boundary patterns
//! from one wrapped core across the inter-core nets into a neighbor and
//! catch wiring defects — the "test of external interconnects" mode of the
//! paper's IEEE-1500-style wrappers (Section III.B).
//!
//! Run with `cargo run --example interconnect_test`.

use std::rc::Rc;

use tve::core::{
    run_interconnect_test, ConfigClient, Interconnect, NetFault, SyntheticLogicCore, TestWrapper,
    WrapperConfig, WrapperMode,
};
use tve::sim::Simulation;
use tve::tpg::ScanConfig;

const WIDTH: u32 = 32;

fn wrapped(sim: &Simulation, name: &str) -> Rc<TestWrapper> {
    let w = Rc::new(TestWrapper::new(
        &sim.handle(),
        WrapperConfig {
            name: name.to_string(),
            boundary_cells: WIDTH,
            ..WrapperConfig::default()
        },
        Rc::new(SyntheticLogicCore::new(name, ScanConfig::new(4, 32), 1)),
    ));
    w.load_config(WrapperMode::ExtTest.encode());
    w
}

fn run(interconnect: Interconnect) -> (u64, u64) {
    let mut sim = Simulation::new();
    let driver = wrapped(&sim, "color-conv");
    let receiver = wrapped(&sim, "dct");
    let h = sim.handle();
    let outcome = sim.spawn(async move {
        run_interconnect_test(&h, &driver, &receiver, &interconnect, 32, 0xE57).await
    });
    sim.run();
    let outcome = outcome.try_take().expect("test completed");
    (outcome.patterns, outcome.mismatches)
}

fn main() {
    println!(
        "EXTEST between the color conversion and DCT wrappers ({WIDTH} nets, \
         32 pseudo-random boundary patterns)\n"
    );

    let (patterns, mismatches) = run(Interconnect::straight(WIDTH));
    println!("fault-free nets:         {patterns} patterns, {mismatches} mismatches");
    assert_eq!(mismatches, 0);

    for (label, fault) in [
        ("net 7 stuck-at-0", NetFault::StuckAt(false)),
        ("net 7 open", NetFault::Open),
        ("nets 7/8 wired-AND", NetFault::BridgeAnd(8)),
        ("nets 7/8 wired-OR", NetFault::BridgeOr(8)),
    ] {
        let mut ic = Interconnect::straight(WIDTH);
        ic.inject(7, fault);
        let (_, mismatches) = run(ic);
        println!("{label:<24} -> {mismatches} failing captures");
        assert!(mismatches > 0, "{label} must be detected");
    }
    println!(
        "\nevery injected net defect is caught at the receiving boundary \
         register — interconnect test validated at transaction level."
    );
}
