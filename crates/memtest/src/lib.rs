#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! # tve-memtest — memory models, fault injection and march tests
//!
//! Substrate for the paper's memory test sequences (tests 6 and 7 of the
//! case study: "Array BIST of the embedded memory core (1 MByte) using a
//! MATS+ march and pattern tests"). Provides:
//!
//! * [`MemoryArray`] — a word-organized memory with injectable functional
//!   fault models (stuck-at, transition, inversion/idempotent coupling,
//!   address decoder aliasing),
//! * a march-test notation engine ([`MarchTest`], parseable from the
//!   standard `⇑/⇓/⇕` notation in ASCII form) with the classic algorithm
//!   library (MATS, MATS+, MATS++, March X, March Y, March C−),
//! * background [`PatternTest`]s (checkerboard, solid, address-in-data),
//! * a fault-coverage evaluation harness.
//!
//! ```
//! use tve_memtest::{MemoryArray, MarchTest, Fault};
//!
//! let mut mem = MemoryArray::new(1024);
//! mem.inject(Fault::stuck_at(17, 3, true));
//! let report = MarchTest::mats_plus().run(&mut mem);
//! assert!(!report.passed(), "MATS+ must detect any stuck-at fault");
//! ```

mod coverage;
mod march;
mod memory;
mod patterns;
mod repair;

pub use coverage::{evaluate_coverage, CoverageReport};
pub use march::{
    MarchElement, MarchOp, MarchOrder, MarchReport, MarchTest, Mismatch, ParseMarchError,
};
pub use memory::{Fault, FaultKind, MemoryAccess, MemoryArray};
pub use patterns::{PatternReport, PatternTest};
pub use repair::{repair_flow, RepairReport, RepairableMemory};
