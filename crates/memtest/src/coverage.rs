//! Fault-coverage evaluation: which injected faults does a given test
//! strategy detect?

use std::collections::BTreeMap;
use std::fmt;

use crate::march::MarchTest;
use crate::memory::{Fault, MemoryArray};
use crate::patterns::PatternTest;

/// Per-class detection statistics for a fault-injection campaign.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CoverageReport {
    /// `(detected, total)` per fault class label.
    pub per_class: BTreeMap<&'static str, (usize, usize)>,
    /// Faults that escaped detection.
    pub escapes: Vec<Fault>,
}

impl CoverageReport {
    /// Overall detected fault count.
    pub fn detected(&self) -> usize {
        self.per_class.values().map(|(d, _)| d).sum()
    }

    /// Overall injected fault count.
    pub fn total(&self) -> usize {
        self.per_class.values().map(|(_, t)| t).sum()
    }

    /// Overall coverage in `[0, 1]` (1.0 for an empty campaign).
    pub fn coverage(&self) -> f64 {
        let t = self.total();
        if t == 0 {
            1.0
        } else {
            self.detected() as f64 / t as f64
        }
    }

    /// Coverage of one fault class, if present.
    pub fn class_coverage(&self, class: &str) -> Option<f64> {
        self.per_class
            .get(class)
            .map(|&(d, t)| if t == 0 { 1.0 } else { d as f64 / t as f64 })
    }
}

impl fmt::Display for CoverageReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "coverage {:.1}% (", self.coverage() * 100.0)?;
        for (i, (class, (d, t))) in self.per_class.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{class}: {d}/{t}")?;
        }
        write!(f, ")")
    }
}

/// Runs `march` (and optionally `patterns`) once per fault — each injection
/// into a fresh `words`-sized memory — and reports per-class coverage.
///
/// A fault counts as detected when any stage of the strategy reports a
/// mismatch.
pub fn evaluate_coverage(
    march: &MarchTest,
    patterns: &[PatternTest],
    words: usize,
    faults: &[Fault],
) -> CoverageReport {
    let mut report = CoverageReport::default();
    for &fault in faults {
        let mut mem = MemoryArray::new(words);
        mem.inject(fault);
        let mut detected = !march.run(&mut mem).passed();
        if !detected {
            for p in patterns {
                if !p.run(&mut mem).passed() {
                    detected = true;
                    break;
                }
            }
        }
        let entry = report.per_class.entry(fault.class()).or_insert((0, 0));
        entry.1 += 1;
        if detected {
            entry.0 += 1;
        } else {
            report.escapes.push(fault);
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn saf_campaign(words: usize) -> Vec<Fault> {
        let mut v = Vec::new();
        for a in (0..words as u32).step_by(7) {
            for bit in [0u8, 15, 31] {
                v.push(Fault::stuck_at(a, bit, a % 2 == 0));
            }
        }
        v
    }

    #[test]
    fn mats_plus_has_full_saf_coverage() {
        let faults = saf_campaign(64);
        let r = evaluate_coverage(&MarchTest::mats_plus(), &[], 64, &faults);
        assert_eq!(r.class_coverage("SAF"), Some(1.0), "{r}");
        assert!(r.escapes.is_empty());
        assert_eq!(r.total(), faults.len());
    }

    #[test]
    fn march_c_minus_dominates_mats_plus_on_coupling() {
        let mut faults = Vec::new();
        for k in 0..20u32 {
            faults.push(Fault::coupling_inversion(
                (k, (k % 32) as u8),
                ((k + 31) % 64, ((k + 5) % 32) as u8),
                k % 2 == 0,
            ));
        }
        let weak = evaluate_coverage(&MarchTest::mats_plus(), &[], 64, &faults);
        let strong = evaluate_coverage(&MarchTest::march_c_minus(), &[], 64, &faults);
        assert_eq!(strong.class_coverage("CFin"), Some(1.0), "{strong}");
        assert!(
            strong.coverage() >= weak.coverage(),
            "March C- must dominate MATS+"
        );
    }

    #[test]
    fn pattern_stage_catches_extra_faults() {
        // A down-TF escapes MATS+ alone but a checkerboard + solid-0 pass
        // exercises the 1->0 transition followed by a read.
        let faults = vec![Fault::transition(9, 3, false)];
        let without = evaluate_coverage(&MarchTest::mats_plus(), &[], 32, &faults);
        let with = evaluate_coverage(
            &MarchTest::mats_plus(),
            &[PatternTest::Solid(u32::MAX), PatternTest::Solid(0)],
            32,
            &faults,
        );
        assert_eq!(without.detected(), 0);
        assert_eq!(with.detected(), 1);
    }

    #[test]
    fn empty_campaign_is_full_coverage() {
        let r = evaluate_coverage(&MarchTest::mats(), &[], 16, &[]);
        assert_eq!(r.coverage(), 1.0);
        assert_eq!(r.total(), 0);
    }

    #[test]
    fn report_formats() {
        let faults = vec![Fault::stuck_at(0, 0, true), Fault::transition(1, 0, false)];
        let r = evaluate_coverage(&MarchTest::mats_plus(), &[], 16, &faults);
        let s = r.to_string();
        assert!(s.contains("SAF"), "{s}");
        assert!(s.contains("TF"), "{s}");
    }
}
