//! Built-in repair: word-level redundancy for the embedded memory —
//! the "Repair" strategy of the paper's Fig. 1, executed by the ATE
//! ("evaluates test responses and executes repair actions if necessary",
//! Section III.E).

use std::collections::BTreeMap;
use std::fmt;

use crate::march::MarchTest;
use crate::memory::{Fault, MemoryAccess, MemoryArray};

/// A memory array with spare words: failing addresses can be remapped to
/// fault-free redundancy storage.
///
/// ```
/// use tve_memtest::{Fault, MarchTest, RepairableMemory};
///
/// let mut mem = RepairableMemory::new(64, 2);
/// mem.inject(Fault::stuck_at(7, 3, true));
/// assert!(!MarchTest::mats_plus().run_on(&mut mem).passed());
/// assert!(mem.repair(7));
/// assert!(MarchTest::mats_plus().run_on(&mut mem).passed());
/// ```
#[derive(Debug, Clone)]
pub struct RepairableMemory {
    array: MemoryArray,
    spares: Vec<u32>,
    remap: BTreeMap<u32, usize>,
    reads: u64,
    writes: u64,
}

impl RepairableMemory {
    /// Creates a memory of `words` words with `spare_words` redundancy
    /// words.
    ///
    /// # Panics
    ///
    /// Panics for an empty main array.
    pub fn new(words: usize, spare_words: usize) -> Self {
        RepairableMemory {
            array: MemoryArray::new(words),
            spares: vec![0; spare_words],
            remap: BTreeMap::new(),
            reads: 0,
            writes: 0,
        }
    }

    /// Total reads performed (main array and spares).
    pub fn read_count(&self) -> u64 {
        self.reads
    }

    /// Total writes performed (main array and spares).
    pub fn write_count(&self) -> u64 {
        self.writes
    }

    /// Number of addressable words.
    pub fn len(&self) -> usize {
        self.array.len()
    }

    /// Whether the array is empty (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.array.is_empty()
    }

    /// Total spare words.
    pub fn spares_total(&self) -> usize {
        self.spares.len()
    }

    /// Spares already allocated.
    pub fn spares_used(&self) -> usize {
        self.remap.len()
    }

    /// Addresses currently remapped to spares.
    pub fn repaired_addresses(&self) -> impl Iterator<Item = u32> + '_ {
        self.remap.keys().copied()
    }

    /// Injects a fault into the *main* array (spares are fault-free).
    ///
    /// # Panics
    ///
    /// Panics if the fault is out of range.
    pub fn inject(&mut self, fault: Fault) {
        self.array.inject(fault);
    }

    /// Remaps `addr` to a spare word. Returns `false` when no spare is
    /// left; repairing an already-repaired address succeeds without
    /// consuming another spare.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is out of range.
    pub fn repair(&mut self, addr: u32) -> bool {
        assert!((addr as usize) < self.array.len(), "address in range");
        if self.remap.contains_key(&addr) {
            return true;
        }
        if self.remap.len() >= self.spares.len() {
            return false;
        }
        let slot = self.remap.len();
        self.remap.insert(addr, slot);
        true
    }

    /// Reads the word at `addr` (through the remap).
    ///
    /// # Panics
    ///
    /// Panics if `addr` is out of range.
    pub fn read(&mut self, addr: u32) -> u32 {
        self.reads += 1;
        match self.remap.get(&addr) {
            Some(&slot) => self.spares[slot],
            None => self.array.read(addr),
        }
    }

    /// Writes the word at `addr` (through the remap).
    ///
    /// Note: a write to an *unrepaired* address still exercises the faulty
    /// main array — including coupling side effects onto other words —
    /// exactly like silicon with row redundancy.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is out of range.
    pub fn write(&mut self, addr: u32, value: u32) {
        self.writes += 1;
        match self.remap.get(&addr) {
            Some(&slot) => self.spares[slot] = value,
            None => self.array.write(addr, value),
        }
    }
}

impl MemoryAccess for RepairableMemory {
    fn word_count(&self) -> usize {
        self.len()
    }
    fn read_word(&mut self, addr: u32) -> u32 {
        self.read(addr)
    }
    fn write_word(&mut self, addr: u32, value: u32) {
        self.write(addr, value)
    }
}

impl fmt::Display for RepairableMemory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} words, {}/{} spares used",
            self.array.len(),
            self.spares_used(),
            self.spares_total()
        )
    }
}

/// Outcome of a detect → repair → retest flow.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RepairReport {
    /// Failing addresses found by the initial test.
    pub failing: Vec<u32>,
    /// Addresses successfully remapped.
    pub repaired: Vec<u32>,
    /// Whether the retest passed (the part is shippable).
    pub retest_passed: bool,
    /// Whether repair ran out of spares.
    pub spares_exhausted: bool,
}

/// The ATE's repair action: run `march`, remap every failing address,
/// rerun, and report. Fails fast (without retest) when the failing
/// addresses exceed the spare count.
pub fn repair_flow(mem: &mut RepairableMemory, march: &MarchTest) -> RepairReport {
    let first = march.run_on(mem);
    let mut failing: Vec<u32> = first.mismatches.iter().map(|m| m.addr).collect();
    failing.sort_unstable();
    failing.dedup();
    let mut repaired = Vec::new();
    let mut spares_exhausted = false;
    for &addr in &failing {
        if mem.repair(addr) {
            repaired.push(addr);
        } else {
            spares_exhausted = true;
            break;
        }
    }
    let retest_passed = !spares_exhausted && march.run_on(mem).passed();
    RepairReport {
        failing,
        repaired,
        retest_passed,
        spares_exhausted,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn remap_isolates_the_faulty_word() {
        let mut mem = RepairableMemory::new(32, 2);
        mem.inject(Fault::stuck_at(5, 0, true));
        mem.write(5, 0);
        assert_eq!(mem.read(5) & 1, 1, "fault visible before repair");
        assert!(mem.repair(5));
        mem.write(5, 0);
        assert_eq!(mem.read(5), 0, "spare is fault-free");
        assert_eq!(mem.spares_used(), 1);
        assert_eq!(mem.repaired_addresses().collect::<Vec<_>>(), vec![5]);
    }

    #[test]
    fn repair_is_idempotent_and_bounded() {
        let mut mem = RepairableMemory::new(32, 1);
        assert!(mem.repair(3));
        assert!(mem.repair(3), "re-repair is free");
        assert_eq!(mem.spares_used(), 1);
        assert!(!mem.repair(9), "out of spares");
    }

    #[test]
    fn flow_repairs_a_single_stuck_at() {
        let mut mem = RepairableMemory::new(64, 2);
        mem.inject(Fault::stuck_at(17, 9, false));
        let report = repair_flow(&mut mem, &MarchTest::mats_plus());
        assert_eq!(report.failing, vec![17]);
        assert_eq!(report.repaired, vec![17]);
        assert!(report.retest_passed);
        assert!(!report.spares_exhausted);
    }

    #[test]
    fn flow_reports_spare_exhaustion() {
        let mut mem = RepairableMemory::new(64, 1);
        mem.inject(Fault::stuck_at(3, 0, true));
        mem.inject(Fault::stuck_at(40, 0, true));
        let report = repair_flow(&mut mem, &MarchTest::mats_plus());
        assert_eq!(report.failing.len(), 2);
        assert!(report.spares_exhausted);
        assert!(!report.retest_passed);
    }

    #[test]
    fn coupling_aggressor_must_be_repaired_not_the_victim() {
        // CFin: aggressor 4 flips victim 20. Repairing the *victim* fixes
        // the symptom (the victim's storage moves to a spare); MATS+ then
        // passes — but a flow repairing whatever address fails is exactly
        // what the ATE does, so this documents the behaviour.
        let mut mem = RepairableMemory::new(64, 2);
        mem.inject(Fault::coupling_inversion((4, 0), (20, 0), true));
        let report = repair_flow(&mut mem, &MarchTest::march_c_minus());
        assert!(report.retest_passed, "{report:?}");
        assert!(!report.repaired.is_empty());
    }

    #[test]
    fn clean_memory_needs_no_repair() {
        let mut mem = RepairableMemory::new(64, 2);
        let report = repair_flow(&mut mem, &MarchTest::mats_plus());
        assert!(report.failing.is_empty());
        assert!(report.retest_passed);
        assert_eq!(mem.spares_used(), 0);
    }
}
