//! Background pattern tests complementing march algorithms
//! (the paper's memory BIST runs "a MATS+ march *and pattern tests*").

use std::fmt;

use crate::memory::{MemoryAccess, MemoryArray};

/// A data-background pattern test: write a background over the whole array,
/// then read it back.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PatternTest {
    /// `0x5555…`/`0xAAAA…` by address parity — adjacent-cell shorts.
    Checkerboard,
    /// A solid background of the given word.
    Solid(u32),
    /// Each word holds its own address — address-decoder faults.
    AddressInData,
}

impl fmt::Display for PatternTest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PatternTest::Checkerboard => write!(f, "checkerboard"),
            PatternTest::Solid(w) => write!(f, "solid({w:#x})"),
            PatternTest::AddressInData => write!(f, "address-in-data"),
        }
    }
}

/// Result of a pattern test run.
#[derive(Debug, Clone, Default)]
pub struct PatternReport {
    /// Addresses that read back wrong (capped at 64).
    pub failures: Vec<u32>,
    /// Total operations (writes + reads).
    pub operations: u64,
}

impl PatternReport {
    /// Whether the memory passed.
    pub fn passed(&self) -> bool {
        self.failures.is_empty()
    }
}

impl PatternTest {
    /// The background word for `addr`.
    pub fn background(&self, addr: u32) -> u32 {
        match self {
            PatternTest::Checkerboard => {
                if addr.is_multiple_of(2) {
                    0x5555_5555
                } else {
                    0xAAAA_AAAA
                }
            }
            PatternTest::Solid(w) => *w,
            PatternTest::AddressInData => addr,
        }
    }

    /// Operations per cell (one write pass + one read pass).
    pub fn ops_per_cell(&self) -> u64 {
        2
    }

    /// Runs the test against a raw [`MemoryArray`].
    pub fn run(&self, mem: &mut MemoryArray) -> PatternReport {
        self.run_on(mem)
    }

    /// Runs the test against any [`MemoryAccess`]: write the background
    /// ascending, read it back ascending.
    pub fn run_on<M: MemoryAccess>(&self, mem: &mut M) -> PatternReport {
        const MAX_FAILURES: usize = 64;
        let n = mem.word_count() as u32;
        let mut report = PatternReport::default();
        for addr in 0..n {
            mem.write_word(addr, self.background(addr));
            report.operations += 1;
        }
        for addr in 0..n {
            report.operations += 1;
            if mem.read_word(addr) != self.background(addr) && report.failures.len() < MAX_FAILURES
            {
                report.failures.push(addr);
            }
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory::Fault;

    #[test]
    fn fault_free_memory_passes_all_patterns() {
        for t in [
            PatternTest::Checkerboard,
            PatternTest::Solid(0),
            PatternTest::Solid(u32::MAX),
            PatternTest::AddressInData,
        ] {
            let mut mem = MemoryArray::new(128);
            let r = t.run(&mut mem);
            assert!(r.passed(), "{t} failed clean memory");
            assert_eq!(r.operations, 256);
        }
    }

    #[test]
    fn checkerboard_background_alternates() {
        assert_eq!(PatternTest::Checkerboard.background(0), 0x5555_5555);
        assert_eq!(PatternTest::Checkerboard.background(1), 0xAAAA_AAAA);
    }

    #[test]
    fn address_in_data_detects_aliasing() {
        let mut mem = MemoryArray::new(128);
        mem.inject(Fault::address_alias(3, 77));
        let r = PatternTest::AddressInData.run(&mut mem);
        assert!(!r.passed());
        assert!(r.failures.contains(&3) || r.failures.contains(&77));
    }

    #[test]
    fn solid_detects_stuck_at_of_opposite_polarity() {
        let mut mem = MemoryArray::new(16);
        mem.inject(Fault::stuck_at(4, 2, true));
        assert!(!PatternTest::Solid(0).run(&mut mem).passed());
        let mut mem = MemoryArray::new(16);
        mem.inject(Fault::stuck_at(4, 2, true));
        // A solid background of ones cannot see a stuck-at-1.
        assert!(PatternTest::Solid(u32::MAX).run(&mut mem).passed());
    }
}
