//! Word-organized memory arrays with injectable functional fault models.

use std::fmt;

/// The classic functional memory fault models.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// Cell permanently reads `value`.
    StuckAt {
        /// The forced value.
        value: bool,
    },
    /// Cell cannot perform one transition direction.
    Transition {
        /// `true`: the 0→1 (up) transition fails; `false`: 1→0 fails.
        rising: bool,
    },
    /// A matching transition of the aggressor cell *inverts* the victim
    /// cell (CFin).
    CouplingInversion {
        /// Victim word address.
        victim_addr: u32,
        /// Victim bit within the word.
        victim_bit: u8,
        /// Aggressor transition direction that triggers the fault.
        on_rising: bool,
    },
    /// A matching transition of the aggressor cell *forces* the victim cell
    /// to a value (CFid).
    CouplingIdempotent {
        /// Victim word address.
        victim_addr: u32,
        /// Victim bit within the word.
        victim_bit: u8,
        /// Aggressor transition direction that triggers the fault.
        on_rising: bool,
        /// The value forced onto the victim.
        forced: bool,
    },
    /// Address decoder aliasing: this word and `other_addr` map to the same
    /// physical row — a write to either writes both (AF).
    AddressAlias {
        /// The aliased word address.
        other_addr: u32,
    },
}

/// A fault instance anchored at a cell (word address + bit).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Fault {
    /// Word address of the (aggressor) cell.
    pub addr: u32,
    /// Bit position within the word (ignored for [`FaultKind::AddressAlias`]).
    pub bit: u8,
    /// The fault model.
    pub kind: FaultKind,
}

impl Fault {
    /// A stuck-at fault at `(addr, bit)`.
    pub fn stuck_at(addr: u32, bit: u8, value: bool) -> Self {
        Fault {
            addr,
            bit,
            kind: FaultKind::StuckAt { value },
        }
    }

    /// A transition fault at `(addr, bit)`.
    pub fn transition(addr: u32, bit: u8, rising: bool) -> Self {
        Fault {
            addr,
            bit,
            kind: FaultKind::Transition { rising },
        }
    }

    /// An inversion coupling fault `aggressor → victim`.
    pub fn coupling_inversion(aggressor: (u32, u8), victim: (u32, u8), on_rising: bool) -> Self {
        Fault {
            addr: aggressor.0,
            bit: aggressor.1,
            kind: FaultKind::CouplingInversion {
                victim_addr: victim.0,
                victim_bit: victim.1,
                on_rising,
            },
        }
    }

    /// An idempotent coupling fault `aggressor → victim := forced`.
    pub fn coupling_idempotent(
        aggressor: (u32, u8),
        victim: (u32, u8),
        on_rising: bool,
        forced: bool,
    ) -> Self {
        Fault {
            addr: aggressor.0,
            bit: aggressor.1,
            kind: FaultKind::CouplingIdempotent {
                victim_addr: victim.0,
                victim_bit: victim.1,
                on_rising,
                forced,
            },
        }
    }

    /// An address-decoder aliasing fault between two words.
    pub fn address_alias(addr: u32, other_addr: u32) -> Self {
        Fault {
            addr,
            bit: 0,
            kind: FaultKind::AddressAlias { other_addr },
        }
    }

    /// A short class label used in coverage reports.
    pub fn class(&self) -> &'static str {
        match self.kind {
            FaultKind::StuckAt { .. } => "SAF",
            FaultKind::Transition { .. } => "TF",
            FaultKind::CouplingInversion { .. } => "CFin",
            FaultKind::CouplingIdempotent { .. } => "CFid",
            FaultKind::AddressAlias { .. } => "AF",
        }
    }
}

impl fmt::Display for Fault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}@({:#x},{})", self.class(), self.addr, self.bit)
    }
}

/// Word-level access used by the march and pattern engines, implemented
/// by the raw [`MemoryArray`] and by
/// [`RepairableMemory`](crate::RepairableMemory).
pub trait MemoryAccess {
    /// Number of addressable words.
    fn word_count(&self) -> usize;
    /// Reads the word at `addr`.
    fn read_word(&mut self, addr: u32) -> u32;
    /// Writes the word at `addr`.
    fn write_word(&mut self, addr: u32, value: u32);
}

impl MemoryAccess for MemoryArray {
    fn word_count(&self) -> usize {
        self.len()
    }
    fn read_word(&mut self, addr: u32) -> u32 {
        self.read(addr)
    }
    fn write_word(&mut self, addr: u32, value: u32) {
        self.write(addr, value)
    }
}

/// A 32-bit-word memory array with functional fault injection.
///
/// The array powers up in a deterministic pseudo-random "unknown" state, so
/// a correct march test must initialize cells before first reading them.
///
/// ```
/// use tve_memtest::MemoryArray;
/// let mut mem = MemoryArray::new(16);
/// mem.write(3, 0xCAFE_F00D);
/// assert_eq!(mem.read(3), 0xCAFE_F00D);
/// ```
#[derive(Debug, Clone)]
pub struct MemoryArray {
    words: Vec<u32>,
    faults: Vec<Fault>,
    reads: u64,
    writes: u64,
}

impl MemoryArray {
    /// Creates a fault-free array of `words` 32-bit words, in power-up
    /// (scrambled) state.
    ///
    /// # Panics
    ///
    /// Panics for an empty array.
    pub fn new(words: usize) -> Self {
        assert!(words > 0, "memory must hold at least one word");
        let words = (0..words as u32)
            .map(|a| a.wrapping_mul(2_654_435_761) ^ 0x5A5A_5A5A)
            .collect();
        MemoryArray {
            words,
            faults: Vec::new(),
            reads: 0,
            writes: 0,
        }
    }

    /// Number of words.
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// Whether the array is empty (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// Total reads performed.
    pub fn read_count(&self) -> u64 {
        self.reads
    }

    /// Total writes performed.
    pub fn write_count(&self) -> u64 {
        self.writes
    }

    /// Injects a fault.
    ///
    /// # Panics
    ///
    /// Panics if the fault references an out-of-range address or bit.
    pub fn inject(&mut self, fault: Fault) {
        let check = |addr: u32, bit: u8| {
            assert!((addr as usize) < self.words.len(), "fault address in range");
            assert!(bit < 32, "fault bit in range");
        };
        check(fault.addr, fault.bit);
        match fault.kind {
            FaultKind::CouplingInversion {
                victim_addr,
                victim_bit,
                ..
            }
            | FaultKind::CouplingIdempotent {
                victim_addr,
                victim_bit,
                ..
            } => check(victim_addr, victim_bit),
            FaultKind::AddressAlias { other_addr } => check(other_addr, 0),
            _ => {}
        }
        self.faults.push(fault);
    }

    /// The injected faults.
    pub fn faults(&self) -> &[Fault] {
        &self.faults
    }

    /// Reads the word at `addr`, applying stuck-at forcing.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is out of range.
    pub fn read(&mut self, addr: u32) -> u32 {
        self.reads += 1;
        let mut v = self.words[addr as usize];
        for f in &self.faults {
            if f.addr == addr {
                if let FaultKind::StuckAt { value } = f.kind {
                    if value {
                        v |= 1 << f.bit;
                    } else {
                        v &= !(1 << f.bit);
                    }
                }
            }
        }
        v
    }

    /// Writes `value` at `addr`, applying fault behaviour (stuck-at,
    /// transition suppression, coupling side effects, address aliasing).
    ///
    /// # Panics
    ///
    /// Panics if `addr` is out of range.
    pub fn write(&mut self, addr: u32, value: u32) {
        self.writes += 1;
        // Fault-free fast path: no aliasing, no bit effects, no coupling.
        if self.faults.is_empty() {
            self.words[addr as usize] = value;
            return;
        }
        // Address aliasing: collect every physical word this write reaches.
        let mut targets = vec![addr];
        for f in &self.faults {
            if let FaultKind::AddressAlias { other_addr } = f.kind {
                if f.addr == addr && !targets.contains(&other_addr) {
                    targets.push(other_addr);
                }
                if other_addr == addr && !targets.contains(&f.addr) {
                    targets.push(f.addr);
                }
            }
        }
        for t in targets {
            self.write_physical(t, value);
        }
    }

    fn write_physical(&mut self, addr: u32, value: u32) {
        let old = self.words[addr as usize];
        let mut new = value;
        for f in &self.faults {
            if f.addr != addr {
                continue;
            }
            let m = 1u32 << f.bit;
            match f.kind {
                FaultKind::StuckAt { value: v } => {
                    if v {
                        new |= m;
                    } else {
                        new &= !m;
                    }
                }
                FaultKind::Transition { rising } => {
                    let was = old & m != 0;
                    let want = new & m != 0;
                    if rising && !was && want {
                        new &= !m; // up-transition fails: stays 0
                    } else if !rising && was && !want {
                        new |= m; // down-transition fails: stays 1
                    }
                }
                _ => {}
            }
        }
        self.words[addr as usize] = new;

        // Coupling side effects triggered by aggressor transitions.
        let coupling: Vec<Fault> = self
            .faults
            .iter()
            .copied()
            .filter(|f| {
                f.addr == addr
                    && matches!(
                        f.kind,
                        FaultKind::CouplingInversion { .. } | FaultKind::CouplingIdempotent { .. }
                    )
            })
            .collect();
        for f in coupling {
            let m = 1u32 << f.bit;
            let was = old & m != 0;
            let now = new & m != 0;
            match f.kind {
                FaultKind::CouplingInversion {
                    victim_addr,
                    victim_bit,
                    on_rising,
                } => {
                    if (on_rising && !was && now) || (!on_rising && was && !now) {
                        self.words[victim_addr as usize] ^= 1 << victim_bit;
                    }
                }
                FaultKind::CouplingIdempotent {
                    victim_addr,
                    victim_bit,
                    on_rising,
                    forced,
                } => {
                    if (on_rising && !was && now) || (!on_rising && was && !now) {
                        let vm = 1u32 << victim_bit;
                        if forced {
                            self.words[victim_addr as usize] |= vm;
                        } else {
                            self.words[victim_addr as usize] &= !vm;
                        }
                    }
                }
                _ => unreachable!("filtered to coupling faults"),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn power_up_state_is_scrambled_but_deterministic() {
        let mut a = MemoryArray::new(8);
        let mut b = MemoryArray::new(8);
        assert_eq!(a.read(0), b.read(0));
        assert_ne!(a.read(1), a.read(2));
    }

    #[test]
    fn fault_free_read_write() {
        let mut m = MemoryArray::new(4);
        m.write(2, 0x1234_5678);
        assert_eq!(m.read(2), 0x1234_5678);
        assert_eq!(m.write_count(), 1);
        assert_eq!(m.read_count(), 1);
    }

    #[test]
    fn stuck_at_forces_cell() {
        let mut m = MemoryArray::new(4);
        m.inject(Fault::stuck_at(1, 4, true));
        m.write(1, 0);
        assert_eq!(m.read(1), 1 << 4);
        m.inject(Fault::stuck_at(1, 0, false));
        m.write(1, 0xFFFF_FFFF);
        assert_eq!(m.read(1) & 1, 0);
        assert_eq!(m.read(1) & (1 << 4), 1 << 4);
    }

    #[test]
    fn transition_fault_blocks_one_direction_only() {
        let mut m = MemoryArray::new(2);
        m.inject(Fault::transition(0, 0, true)); // up-TF
        m.write(0, 0);
        m.write(0, 1); // 0->1 fails
        assert_eq!(m.read(0) & 1, 0);
        // Down direction still works (cell is 0, write 0 keeps 0; force via
        // a fresh cell with down-TF).
        let mut m2 = MemoryArray::new(2);
        m2.inject(Fault::transition(0, 0, false)); // down-TF
        m2.write(0, 1);
        assert_eq!(m2.read(0) & 1, 1);
        m2.write(0, 0); // 1->0 fails
        assert_eq!(m2.read(0) & 1, 1);
        m2.write(0, 1); // up still fine
        assert_eq!(m2.read(0) & 1, 1);
    }

    #[test]
    fn coupling_inversion_flips_victim_on_aggressor_edge() {
        let mut m = MemoryArray::new(4);
        m.inject(Fault::coupling_inversion((0, 0), (2, 5), true));
        m.write(2, 0);
        m.write(0, 0);
        m.write(0, 1); // rising aggressor: victim flips
        assert_eq!(m.read(2) & (1 << 5), 1 << 5);
        m.write(0, 1); // no transition: no effect
        assert_eq!(m.read(2) & (1 << 5), 1 << 5);
        m.write(0, 0); // falling edge does not trigger a rising-CFin
        assert_eq!(m.read(2) & (1 << 5), 1 << 5);
    }

    #[test]
    fn coupling_idempotent_forces_victim() {
        let mut m = MemoryArray::new(4);
        m.inject(Fault::coupling_idempotent((1, 0), (3, 0), false, true));
        m.write(3, 0);
        m.write(1, 1);
        m.write(1, 0); // falling edge: victim forced to 1
        assert_eq!(m.read(3) & 1, 1);
    }

    #[test]
    fn address_alias_writes_both_words() {
        let mut m = MemoryArray::new(8);
        m.inject(Fault::address_alias(2, 6));
        m.write(2, 0xAAAA_0001);
        assert_eq!(m.read(6), 0xAAAA_0001);
        m.write(6, 0x5555_0002); // aliasing is symmetric
        assert_eq!(m.read(2), 0x5555_0002);
    }

    #[test]
    #[should_panic(expected = "fault address in range")]
    fn out_of_range_fault_panics() {
        let mut m = MemoryArray::new(4);
        m.inject(Fault::stuck_at(10, 0, true));
    }

    #[test]
    fn fault_class_labels() {
        assert_eq!(Fault::stuck_at(0, 0, true).class(), "SAF");
        assert_eq!(Fault::transition(0, 0, true).class(), "TF");
        assert_eq!(
            Fault::coupling_inversion((0, 0), (1, 0), true).class(),
            "CFin"
        );
        assert_eq!(
            Fault::coupling_idempotent((0, 0), (1, 0), true, true).class(),
            "CFid"
        );
        assert_eq!(Fault::address_alias(0, 1).class(), "AF");
    }
}
