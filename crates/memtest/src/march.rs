//! March test notation, parsing, the algorithm library and the executor.

use std::fmt;

use crate::memory::{MemoryAccess, MemoryArray};

/// One march operation applied to the current cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MarchOp {
    /// Read, expect background 0.
    R0,
    /// Read, expect background 1.
    R1,
    /// Write background 0.
    W0,
    /// Write background 1.
    W1,
}

impl fmt::Display for MarchOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            MarchOp::R0 => "r0",
            MarchOp::R1 => "r1",
            MarchOp::W0 => "w0",
            MarchOp::W1 => "w1",
        };
        f.write_str(s)
    }
}

/// Address order of a march element.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MarchOrder {
    /// ⇑ — ascending addresses.
    Ascending,
    /// ⇓ — descending addresses.
    Descending,
    /// ⇕ — either order (executed ascending).
    Any,
}

impl fmt::Display for MarchOrder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            MarchOrder::Ascending => "asc",
            MarchOrder::Descending => "desc",
            MarchOrder::Any => "any",
        };
        f.write_str(s)
    }
}

/// One march element: an address order and the operations applied to each
/// cell before advancing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MarchElement {
    /// The traversal order.
    pub order: MarchOrder,
    /// Operations applied per cell.
    pub ops: Vec<MarchOp>,
}

impl fmt::Display for MarchElement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.order)?;
        for (i, op) in self.ops.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{op}")?;
        }
        write!(f, ")")
    }
}

/// Error parsing march notation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseMarchError {
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for ParseMarchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid march notation: {}", self.message)
    }
}

impl std::error::Error for ParseMarchError {}

/// One observed read mismatch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Mismatch {
    /// The failing word address.
    pub addr: u32,
    /// Expected word value.
    pub expected: u32,
    /// Observed word value.
    pub observed: u32,
    /// Index of the march element that detected it.
    pub element: usize,
}

/// Result of running a march test.
#[derive(Debug, Clone, Default)]
pub struct MarchReport {
    /// Observed mismatches (capped; see [`MarchReport::truncated`]).
    pub mismatches: Vec<Mismatch>,
    /// Total operations (reads + writes) performed.
    pub operations: u64,
    /// Whether the mismatch list was capped.
    pub truncated: bool,
}

impl MarchReport {
    /// Whether the memory passed (no mismatches).
    pub fn passed(&self) -> bool {
        self.mismatches.is_empty()
    }
}

/// A complete march test.
///
/// ```
/// use tve_memtest::MarchTest;
/// let t = MarchTest::parse("MATS+", "any(w0); asc(r0,w1); desc(r1,w0)").unwrap();
/// assert_eq!(t, MarchTest::mats_plus());
/// assert_eq!(t.ops_per_cell(), 5);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MarchTest {
    name: String,
    elements: Vec<MarchElement>,
}

impl fmt::Display for MarchTest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: ", self.name)?;
        for (i, e) in self.elements.iter().enumerate() {
            if i > 0 {
                write!(f, "; ")?;
            }
            write!(f, "{e}")?;
        }
        Ok(())
    }
}

impl MarchTest {
    /// Builds a test from explicit elements.
    ///
    /// # Panics
    ///
    /// Panics if `elements` is empty or any element has no operations.
    pub fn new(name: impl Into<String>, elements: Vec<MarchElement>) -> Self {
        assert!(!elements.is_empty(), "march test needs elements");
        assert!(
            elements.iter().all(|e| !e.ops.is_empty()),
            "march elements need operations"
        );
        MarchTest {
            name: name.into(),
            elements,
        }
    }

    /// Parses ASCII march notation: elements separated by `;`, each
    /// `asc|desc|any` followed by a parenthesized `,`-separated op list of
    /// `r0|r1|w0|w1`.
    ///
    /// # Errors
    ///
    /// Returns [`ParseMarchError`] on malformed notation.
    pub fn parse(name: &str, notation: &str) -> Result<Self, ParseMarchError> {
        let err = |m: &str| ParseMarchError {
            message: m.to_string(),
        };
        let mut elements = Vec::new();
        for elem in notation.split(';') {
            let elem = elem.trim();
            if elem.is_empty() {
                continue;
            }
            let open = elem.find('(').ok_or_else(|| err("missing '('"))?;
            if !elem.ends_with(')') {
                return Err(err("missing ')'"));
            }
            let order = match &elem[..open] {
                "asc" => MarchOrder::Ascending,
                "desc" => MarchOrder::Descending,
                "any" => MarchOrder::Any,
                other => return Err(err(&format!("unknown order '{other}'"))),
            };
            let mut ops = Vec::new();
            for op in elem[open + 1..elem.len() - 1].split(',') {
                let op = match op.trim() {
                    "r0" => MarchOp::R0,
                    "r1" => MarchOp::R1,
                    "w0" => MarchOp::W0,
                    "w1" => MarchOp::W1,
                    other => return Err(err(&format!("unknown op '{other}'"))),
                };
                ops.push(op);
            }
            if ops.is_empty() {
                return Err(err("empty element"));
            }
            elements.push(MarchElement { order, ops });
        }
        if elements.is_empty() {
            return Err(err("no elements"));
        }
        Ok(MarchTest::new(name, elements))
    }

    /// MATS: `⇕(w0); ⇕(r0,w1); ⇕(r1)` — minimal SAF coverage.
    pub fn mats() -> Self {
        Self::parse("MATS", "any(w0); any(r0,w1); any(r1)").expect("static notation")
    }

    /// MATS+: `⇕(w0); ⇑(r0,w1); ⇓(r1,w0)` — SAF + AF coverage (the
    /// algorithm the paper's memory BIST runs).
    pub fn mats_plus() -> Self {
        Self::parse("MATS+", "any(w0); asc(r0,w1); desc(r1,w0)").expect("static notation")
    }

    /// MATS++: `⇕(w0); ⇑(r0,w1); ⇓(r1,w0,r0)` — adds down-transition
    /// coverage.
    pub fn mats_plus_plus() -> Self {
        Self::parse("MATS++", "any(w0); asc(r0,w1); desc(r1,w0,r0)").expect("static notation")
    }

    /// March X: `⇕(w0); ⇑(r0,w1); ⇓(r1,w0); ⇕(r0)`.
    pub fn march_x() -> Self {
        Self::parse("March X", "any(w0); asc(r0,w1); desc(r1,w0); any(r0)")
            .expect("static notation")
    }

    /// March Y: `⇕(w0); ⇑(r0,w1,r1); ⇓(r1,w0,r0); ⇕(r0)`.
    pub fn march_y() -> Self {
        Self::parse("March Y", "any(w0); asc(r0,w1,r1); desc(r1,w0,r0); any(r0)")
            .expect("static notation")
    }

    /// March B: `⇕(w0); ⇑(r0,w1,r1,w0,r0,w1); ⇑(r1,w0,w1); ⇓(r1,w0,w1,w0);
    /// ⇓(r0,w1,w0)` — 17N, covering linked faults beyond March C−.
    pub fn march_b() -> Self {
        Self::parse(
            "March B",
            "any(w0); asc(r0,w1,r1,w0,r0,w1); asc(r1,w0,w1); desc(r1,w0,w1,w0); desc(r0,w1,w0)",
        )
        .expect("static notation")
    }

    /// March C−: `⇕(w0); ⇑(r0,w1); ⇑(r1,w0); ⇓(r0,w1); ⇓(r1,w0); ⇕(r0)` —
    /// the standard unlinked-coupling workhorse.
    pub fn march_c_minus() -> Self {
        Self::parse(
            "March C-",
            "any(w0); asc(r0,w1); asc(r1,w0); desc(r0,w1); desc(r1,w0); any(r0)",
        )
        .expect("static notation")
    }

    /// The test name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The elements.
    pub fn elements(&self) -> &[MarchElement] {
        &self.elements
    }

    /// Operations applied per cell over the whole test (complexity in `N`).
    pub fn ops_per_cell(&self) -> u64 {
        self.elements.iter().map(|e| e.ops.len() as u64).sum()
    }

    /// Total operations for a memory of `words` words.
    pub fn total_ops(&self, words: u64) -> u64 {
        self.ops_per_cell() * words
    }

    /// Runs the test against a raw [`MemoryArray`].
    pub fn run(&self, mem: &mut MemoryArray) -> MarchReport {
        self.run_on(mem)
    }

    /// Runs the test against any [`MemoryAccess`] (raw arrays, repairable
    /// memories), word-wise with all-0/all-1 backgrounds.
    pub fn run_on<M: MemoryAccess>(&self, mem: &mut M) -> MarchReport {
        const MAX_MISMATCHES: usize = 64;
        let n = mem.word_count() as u32;
        let mut report = MarchReport::default();
        for (ei, elem) in self.elements.iter().enumerate() {
            let addrs: Box<dyn Iterator<Item = u32>> = match elem.order {
                MarchOrder::Ascending | MarchOrder::Any => Box::new(0..n),
                MarchOrder::Descending => Box::new((0..n).rev()),
            };
            for addr in addrs {
                for op in &elem.ops {
                    report.operations += 1;
                    match op {
                        MarchOp::W0 => mem.write_word(addr, 0),
                        MarchOp::W1 => mem.write_word(addr, u32::MAX),
                        MarchOp::R0 | MarchOp::R1 => {
                            let expected = if *op == MarchOp::R1 { u32::MAX } else { 0 };
                            let observed = mem.read_word(addr);
                            if observed != expected {
                                if report.mismatches.len() < MAX_MISMATCHES {
                                    report.mismatches.push(Mismatch {
                                        addr,
                                        expected,
                                        observed,
                                        element: ei,
                                    });
                                } else {
                                    report.truncated = true;
                                }
                            }
                        }
                    }
                }
            }
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory::Fault;

    #[test]
    fn parse_rejects_malformed_notation() {
        assert!(MarchTest::parse("x", "").is_err());
        assert!(MarchTest::parse("x", "asc").is_err());
        assert!(MarchTest::parse("x", "asc(w0").is_err());
        assert!(MarchTest::parse("x", "sideways(w0)").is_err());
        assert!(MarchTest::parse("x", "asc(w2)").is_err());
        assert!(MarchTest::parse("x", "asc()").is_err());
    }

    #[test]
    fn display_round_trips_through_parse() {
        let t = MarchTest::march_c_minus();
        let shown = t.to_string();
        let notation = shown.split(": ").nth(1).unwrap();
        let again = MarchTest::parse("March C-", notation).unwrap();
        assert_eq!(t, again);
    }

    #[test]
    fn op_counts() {
        assert_eq!(MarchTest::mats().ops_per_cell(), 4);
        assert_eq!(MarchTest::mats_plus().ops_per_cell(), 5);
        assert_eq!(MarchTest::mats_plus_plus().ops_per_cell(), 6);
        assert_eq!(MarchTest::march_b().ops_per_cell(), 17);
        assert_eq!(MarchTest::march_c_minus().ops_per_cell(), 10);
        assert_eq!(MarchTest::mats_plus().total_ops(1000), 5000);
    }

    #[test]
    fn fault_free_memory_passes_all_library_tests() {
        for t in [
            MarchTest::mats(),
            MarchTest::mats_plus(),
            MarchTest::mats_plus_plus(),
            MarchTest::march_x(),
            MarchTest::march_y(),
            MarchTest::march_b(),
            MarchTest::march_c_minus(),
        ] {
            let mut mem = MemoryArray::new(256);
            let r = t.run(&mut mem);
            assert!(r.passed(), "{} failed on fault-free memory", t.name());
            assert_eq!(r.operations, t.total_ops(256));
        }
    }

    #[test]
    fn mats_plus_detects_every_stuck_at() {
        for bit in [0u8, 7, 31] {
            for v in [false, true] {
                let mut mem = MemoryArray::new(64);
                mem.inject(Fault::stuck_at(13, bit, v));
                let r = MarchTest::mats_plus().run(&mut mem);
                assert!(!r.passed(), "missed SA{} at bit {bit}", u8::from(v));
                assert_eq!(r.mismatches[0].addr, 13);
            }
        }
    }

    #[test]
    fn mats_plus_detects_address_aliasing() {
        let mut mem = MemoryArray::new(64);
        mem.inject(Fault::address_alias(5, 40));
        let r = MarchTest::mats_plus().run(&mut mem);
        assert!(!r.passed(), "MATS+ must detect AFs");
    }

    #[test]
    fn mats_plus_misses_down_transition_but_mats_pp_catches_it() {
        // The textbook separation: MATS+ never reads 0 after the final w0,
        // so a down-TF escapes; MATS++ adds the trailing r0.
        let mut mem = MemoryArray::new(64);
        mem.inject(Fault::transition(9, 3, false));
        let r = MarchTest::mats_plus().run(&mut mem);
        assert!(r.passed(), "down-TF should escape MATS+");

        let mut mem = MemoryArray::new(64);
        mem.inject(Fault::transition(9, 3, false));
        let r = MarchTest::mats_plus_plus().run(&mut mem);
        assert!(!r.passed(), "MATS++ must detect down-TF");
    }

    #[test]
    fn march_c_minus_detects_coupling_inversions() {
        // CFin in both directions and both aggressor/victim orders.
        for (agg, vic) in [((3u32, 0u8), (50u32, 0u8)), ((50, 0), (3, 0))] {
            for rising in [true, false] {
                let mut mem = MemoryArray::new(64);
                mem.inject(Fault::coupling_inversion(agg, vic, rising));
                let r = MarchTest::march_c_minus().run(&mut mem);
                assert!(
                    !r.passed(),
                    "March C- missed CFin agg={agg:?} vic={vic:?} rising={rising}"
                );
            }
        }
    }

    #[test]
    fn mismatch_list_is_capped() {
        let mut mem = MemoryArray::new(256);
        for a in 0..100 {
            mem.inject(Fault::stuck_at(a, 0, true));
        }
        let r = MarchTest::mats_plus().run(&mut mem);
        assert!(r.truncated);
        assert_eq!(r.mismatches.len(), 64);
    }
}
