//! Notification events, the kernel's basic synchronization primitive
//! (the counterpart of SystemC's `sc_event`).

use std::cell::RefCell;
use std::fmt;
use std::future::Future;
use std::pin::Pin;
use std::rc::{Rc, Weak};
use std::task::{Context, Poll};

use crate::executor::{register_waiter, wake_waiters, Kernel, TimerFire, Waiter};
use crate::{Duration, SimHandle, Time};

pub(crate) struct EventState {
    epoch: u64,
    /// Registered waiters — packed arena task ids on the fast path, so a
    /// wait costs one `Vec` push and a notification is a ready-queue
    /// link per waiter (no `Waker` clones, no allocation).
    waiters: Vec<Waiter>,
    kernel: Weak<Kernel>,
}

impl EventState {
    /// Bumps the epoch and wakes all registered waiters.
    pub(crate) fn fire(state: &Rc<RefCell<EventState>>) {
        let (waiters, kernel) = {
            let mut s = state.borrow_mut();
            s.epoch += 1;
            (std::mem::take(&mut s.waiters), s.kernel.clone())
        };
        wake_waiters(waiters, &kernel);
    }
}

/// A multi-waiter notification event.
///
/// Semantics follow SystemC's `sc_event`: a notification wakes every process
/// *currently* waiting; a process that starts waiting afterwards does not see
/// past notifications. Clones share the same underlying event.
///
/// ```
/// use tve_sim::{Simulation, Event, Duration};
/// let mut sim = Simulation::new();
/// let h = sim.handle();
/// let ev = Event::new(&h);
/// let ev2 = ev.clone();
/// let h2 = h.clone();
/// let waiter = sim.spawn(async move {
///     ev2.wait().await;
///     h2.now().cycles()
/// });
/// sim.spawn(async move {
///     h.wait(Duration::cycles(30)).await;
///     ev.notify();
/// });
/// sim.run();
/// assert_eq!(waiter.try_take(), Some(30));
/// ```
#[derive(Clone)]
pub struct Event {
    state: Rc<RefCell<EventState>>,
    handle: SimHandle,
}

impl fmt::Debug for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = self.state.borrow();
        f.debug_struct("Event")
            .field("epoch", &s.epoch)
            .field("waiters", &s.waiters.len())
            .finish()
    }
}

impl Event {
    /// Creates a new event bound to the simulation behind `handle`.
    pub fn new(handle: &SimHandle) -> Self {
        Event {
            state: Rc::new(RefCell::new(EventState {
                epoch: 0,
                waiters: Vec::new(),
                kernel: Rc::downgrade(&handle.kernel),
            })),
            handle: handle.clone(),
        }
    }

    /// Notifies immediately: every process currently waiting resumes within
    /// the current delta cycle.
    pub fn notify(&self) {
        EventState::fire(&self.state);
    }

    /// Notifies after `d` cycles of simulated time.
    pub fn notify_in(&self, d: Duration) {
        self.notify_at(Time::from_cycles(
            self.handle.now().cycles().saturating_add(d.as_cycles()),
        ));
    }

    /// Notifies at absolute time `t` (clamped to the current time).
    pub fn notify_at(&self, t: Time) {
        self.handle
            .kernel
            .schedule(t.cycles(), TimerFire::Notify(Rc::downgrade(&self.state)));
    }

    /// Waits for the next notification.
    pub fn wait(&self) -> EventWait {
        EventWait {
            state: Rc::clone(&self.state),
            observed: None,
        }
    }

    /// Number of processes currently waiting (diagnostic).
    pub fn waiter_count(&self) -> usize {
        self.state.borrow().waiters.len()
    }

    /// Total notifications fired so far (diagnostic).
    pub fn notify_count(&self) -> u64 {
        self.state.borrow().epoch
    }
}

/// Future returned by [`Event::wait`].
#[must_use = "futures do nothing unless awaited"]
pub struct EventWait {
    state: Rc<RefCell<EventState>>,
    observed: Option<u64>,
}

impl Future for EventWait {
    type Output = ();
    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        let state = Rc::clone(&self.state);
        let mut s = state.borrow_mut();
        let kernel = s.kernel.clone();
        match self.observed {
            Some(e) if s.epoch > e => Poll::Ready(()),
            Some(_) => {
                // Spurious wake: re-register (our registration was consumed
                // by the wake that got us here).
                register_waiter(&mut s.waiters, &kernel, cx);
                Poll::Pending
            }
            None => {
                self.observed = Some(s.epoch);
                register_waiter(&mut s.waiters, &kernel, cx);
                Poll::Pending
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Simulation;
    use std::cell::Cell;

    #[test]
    fn notify_wakes_all_current_waiters() {
        let mut sim = Simulation::new();
        let h = sim.handle();
        let ev = Event::new(&h);
        let woken = Rc::new(Cell::new(0u32));
        for _ in 0..3 {
            let ev = ev.clone();
            let woken = Rc::clone(&woken);
            sim.spawn(async move {
                ev.wait().await;
                woken.set(woken.get() + 1);
            });
        }
        {
            let h2 = h.clone();
            let ev = ev.clone();
            sim.spawn(async move {
                h2.wait(Duration::cycles(5)).await;
                ev.notify();
            });
        }
        sim.run();
        assert_eq!(woken.get(), 3);
    }

    #[test]
    fn late_waiter_misses_past_notification() {
        let mut sim = Simulation::new();
        let h = sim.handle();
        let ev = Event::new(&h);
        ev.notify(); // nobody waiting: lost, like sc_event
        let ev2 = ev.clone();
        sim.spawn(async move {
            ev2.wait().await;
        });
        sim.run();
        assert_eq!(sim.live_tasks(), 1, "waiter must still be blocked");
    }

    #[test]
    fn timed_notification_fires_at_the_right_time() {
        let mut sim = Simulation::new();
        let h = sim.handle();
        let ev = Event::new(&h);
        ev.notify_in(Duration::cycles(25));
        let ev2 = ev.clone();
        let h2 = h.clone();
        let jh = sim.spawn(async move {
            ev2.wait().await;
            h2.now().cycles()
        });
        sim.run();
        assert_eq!(jh.try_take(), Some(25));
    }

    #[test]
    fn repeated_notifications_support_producer_consumer() {
        let mut sim = Simulation::new();
        let h = sim.handle();
        let ev = Event::new(&h);
        let seen = Rc::new(Cell::new(0u32));
        {
            let ev = ev.clone();
            let seen = Rc::clone(&seen);
            sim.spawn(async move {
                for _ in 0..4 {
                    ev.wait().await;
                    seen.set(seen.get() + 1);
                }
            });
        }
        {
            let h2 = h.clone();
            sim.spawn(async move {
                for _ in 0..4 {
                    h2.wait(Duration::cycles(10)).await;
                    ev.notify();
                }
            });
        }
        sim.run();
        assert_eq!(seen.get(), 4);
        assert_eq!(sim.live_tasks(), 0);
    }

    #[test]
    fn diagnostics_counters() {
        let mut sim = Simulation::new();
        let h = sim.handle();
        let ev = Event::new(&h);
        assert_eq!(ev.waiter_count(), 0);
        assert_eq!(ev.notify_count(), 0);
        ev.notify();
        assert_eq!(ev.notify_count(), 1);
        let ev2 = ev.clone();
        sim.spawn(async move {
            ev2.wait().await;
        });
        sim.run();
        assert_eq!(ev.waiter_count(), 1);
    }
}
