//! The slab task arena and its intrusive ready queue.
//!
//! Tasks live in a `Vec` of slots addressed by `(index, generation)`
//! pairs; vacated slots are recycled through a free list and the
//! generation counter makes stale wakeups harmless. The ready queue is
//! intrusive: each slot carries a `next` link, so waking a task is a few
//! index writes — no allocation, no hashing, no heap traffic.

use std::future::Future;
use std::pin::Pin;
use std::task::Waker;

pub(crate) type LocalFuture = Pin<Box<dyn Future<Output = ()> + 'static>>;

/// Sentinel link value ("null pointer") for the intrusive lists.
pub(crate) const NIL: u32 = u32::MAX;

/// Generation-checked handle to an arena slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct TaskId {
    pub(crate) index: u32,
    pub(crate) gen: u32,
}

impl TaskId {
    /// Packs the id into a single word (for `Waker` data and timer
    /// entries).
    pub(crate) fn pack(self) -> u64 {
        ((self.gen as u64) << 32) | self.index as u64
    }

    pub(crate) fn unpack(v: u64) -> TaskId {
        TaskId {
            index: v as u32,
            gen: (v >> 32) as u32,
        }
    }
}

/// One arena slot. `future` is `None` while the slot is vacant *or*
/// while the task is being polled (the future is taken out so the task
/// body may freely re-enter the kernel).
struct Slot {
    gen: u32,
    /// Free-list link when vacant, ready-queue link when queued.
    next: u32,
    /// Linked in the ready queue right now.
    queued: bool,
    /// A live task occupies this slot (its future may be checked out
    /// for polling).
    occupied: bool,
    /// Loosely-timed mode: cycles this task has run ahead of global time.
    pub(crate) local_offset: u64,
    future: Option<LocalFuture>,
    /// The task's `Waker` (shared with `Context` during polls).
    waker: Option<Waker>,
}

/// Slab arena of task slots plus the intrusive FIFO ready queue.
pub(crate) struct TaskArena {
    slots: Vec<Slot>,
    free_head: u32,
    ready_head: u32,
    ready_tail: u32,
    live: usize,
}

impl TaskArena {
    pub(crate) fn new() -> TaskArena {
        TaskArena {
            slots: Vec::new(),
            free_head: NIL,
            ready_head: NIL,
            ready_tail: NIL,
            live: 0,
        }
    }

    /// Number of live (spawned, not completed) tasks.
    pub(crate) fn live(&self) -> usize {
        self.live
    }

    /// Installs a task, reusing a vacant slot when one exists.
    pub(crate) fn insert(&mut self, future: LocalFuture) -> TaskId {
        self.live += 1;
        if self.free_head != NIL {
            let index = self.free_head;
            let slot = &mut self.slots[index as usize];
            self.free_head = slot.next;
            slot.next = NIL;
            slot.queued = false;
            slot.occupied = true;
            slot.local_offset = 0;
            slot.future = Some(future);
            slot.waker = None;
            TaskId {
                index,
                gen: slot.gen,
            }
        } else {
            let index = self.slots.len() as u32;
            self.slots.push(Slot {
                gen: 0,
                next: NIL,
                queued: false,
                occupied: true,
                local_offset: 0,
                future: Some(future),
                waker: None,
            });
            TaskId { index, gen: 0 }
        }
    }

    fn slot(&self, id: TaskId) -> Option<&Slot> {
        let s = self.slots.get(id.index as usize)?;
        (s.gen == id.gen && s.occupied).then_some(s)
    }

    fn slot_mut(&mut self, id: TaskId) -> Option<&mut Slot> {
        let s = self.slots.get_mut(id.index as usize)?;
        (s.gen == id.gen && s.occupied).then_some(s)
    }

    /// Whether `id` still names a live task.
    #[cfg(test)]
    pub(crate) fn is_live(&self, id: TaskId) -> bool {
        self.slot(id).is_some()
    }

    /// Checks out the task's future and waker for polling (the waker is
    /// created lazily on the first poll). Both are *moved* out rather
    /// than cloned, so the steady-state poll loop does no refcount
    /// traffic. Returns `None` for stale ids.
    pub(crate) fn checkout(
        &mut self,
        id: TaskId,
        make_waker: impl FnOnce() -> Waker,
    ) -> Option<(LocalFuture, Waker)> {
        let slot = self.slot_mut(id)?;
        let future = slot.future.take()?;
        let waker = slot.waker.take().unwrap_or_else(make_waker);
        Some((future, waker))
    }

    /// Returns a checked-out future and waker to their slot (the task is
    /// still pending).
    pub(crate) fn put_back(&mut self, id: TaskId, future: LocalFuture, waker: Waker) {
        if let Some(slot) = self.slot_mut(id) {
            debug_assert!(slot.future.is_none());
            slot.future = Some(future);
            slot.waker = Some(waker);
        }
    }

    /// Retires a completed task. The generation bump invalidates every
    /// outstanding `TaskId`; if the slot is still linked in the ready
    /// queue it is freed lazily when the queue reaches it.
    pub(crate) fn remove(&mut self, id: TaskId) {
        let Some(slot) = self.slot_mut(id) else {
            return;
        };
        slot.occupied = false;
        slot.future = None;
        slot.waker = None;
        slot.gen = slot.gen.wrapping_add(1);
        let queued = slot.queued;
        self.live -= 1;
        if !queued {
            self.free(id.index);
        }
    }

    fn free(&mut self, index: u32) {
        let slot = &mut self.slots[index as usize];
        slot.next = self.free_head;
        self.free_head = index;
    }

    /// Marks `id` runnable; FIFO order, deduplicated (a task already in
    /// the queue is not enqueued twice). Stale ids are ignored.
    pub(crate) fn enqueue(&mut self, id: TaskId) {
        let tail = self.ready_tail;
        let Some(slot) = self.slot_mut(id) else {
            return;
        };
        if slot.queued {
            return;
        }
        slot.queued = true;
        slot.next = NIL;
        if tail == NIL {
            self.ready_head = id.index;
        } else {
            self.slots[tail as usize].next = id.index;
        }
        self.ready_tail = id.index;
    }

    /// Pops the next runnable task, skipping (and freeing) slots whose
    /// task completed while still queued.
    pub(crate) fn pop_ready(&mut self) -> Option<TaskId> {
        while self.ready_head != NIL {
            let index = self.ready_head;
            let slot = &mut self.slots[index as usize];
            self.ready_head = slot.next;
            if self.ready_head == NIL {
                self.ready_tail = NIL;
            }
            slot.next = NIL;
            slot.queued = false;
            if slot.occupied {
                let gen = slot.gen;
                return Some(TaskId { index, gen });
            }
            // Completed while queued: finish the deferred free.
            self.free(index);
        }
        None
    }

    /// Loosely-timed local-time offset of `id` (0 for stale ids).
    pub(crate) fn local_offset(&self, id: TaskId) -> u64 {
        self.slot(id).map_or(0, |s| s.local_offset)
    }

    pub(crate) fn set_local_offset(&mut self, id: TaskId, off: u64) {
        if let Some(slot) = self.slot_mut(id) {
            slot.local_offset = off;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn noop() -> LocalFuture {
        Box::pin(async {})
    }

    #[test]
    fn insert_pop_roundtrip_is_fifo() {
        let mut a = TaskArena::new();
        let t1 = a.insert(noop());
        let t2 = a.insert(noop());
        let t3 = a.insert(noop());
        a.enqueue(t2);
        a.enqueue(t1);
        a.enqueue(t3);
        assert_eq!(a.pop_ready(), Some(t2));
        assert_eq!(a.pop_ready(), Some(t1));
        assert_eq!(a.pop_ready(), Some(t3));
        assert_eq!(a.pop_ready(), None);
    }

    #[test]
    fn enqueue_deduplicates() {
        let mut a = TaskArena::new();
        let t = a.insert(noop());
        a.enqueue(t);
        a.enqueue(t);
        assert_eq!(a.pop_ready(), Some(t));
        assert_eq!(a.pop_ready(), None);
    }

    #[test]
    fn generation_guards_recycled_slot() {
        let mut a = TaskArena::new();
        let t = a.insert(noop());
        a.remove(t);
        let t2 = a.insert(noop());
        assert_eq!(t.index, t2.index, "slot must be recycled");
        assert_ne!(t.gen, t2.gen);
        a.enqueue(t); // stale: ignored
        assert_eq!(a.pop_ready(), None);
        assert!(!a.is_live(t));
        assert!(a.is_live(t2));
    }

    #[test]
    fn remove_while_queued_defers_free() {
        let mut a = TaskArena::new();
        let t1 = a.insert(noop());
        let t2 = a.insert(noop());
        a.enqueue(t1);
        a.enqueue(t2);
        a.remove(t1);
        assert_eq!(a.live(), 1);
        // The dead-but-queued slot is skipped and freed on pop.
        assert_eq!(a.pop_ready(), Some(t2));
        assert_eq!(a.pop_ready(), None);
        // And the slot is reusable afterwards.
        let t3 = a.insert(noop());
        assert_eq!(t3.index, t1.index);
    }

    #[test]
    fn pack_unpack_roundtrip() {
        let id = TaskId {
            index: 0xDEAD,
            gen: 0xBEEF,
        };
        assert_eq!(TaskId::unpack(id.pack()), id);
    }
}
