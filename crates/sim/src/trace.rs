//! Lightweight scalar tracing for waveform-style inspection of model state
//! over simulated time (utilization, queue depths, power estimates).

use std::fmt;

use crate::{Duration, Time};

/// One recorded sample.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TracePoint {
    /// When the value was recorded.
    pub time: Time,
    /// The recorded value.
    pub value: i64,
}

/// A time-ordered series of scalar samples with simple analysis helpers.
///
/// `ScalarTrace` is deliberately minimal: models record raw samples during
/// simulation; analysis (peaks, windowed averages) happens afterwards.
///
/// ```
/// use tve_sim::{ScalarTrace, Time};
/// let mut tr = ScalarTrace::new("power");
/// tr.record(Time::from_cycles(0), 10);
/// tr.record(Time::from_cycles(5), 30);
/// assert_eq!(tr.max(), Some(30));
/// ```
#[derive(Debug, Clone, Default)]
pub struct ScalarTrace {
    name: String,
    points: Vec<TracePoint>,
}

impl fmt::Display for ScalarTrace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "trace '{}' ({} points)", self.name, self.points.len())
    }
}

impl ScalarTrace {
    /// Creates an empty trace labelled `name`.
    pub fn new(name: impl Into<String>) -> Self {
        ScalarTrace {
            name: name.into(),
            points: Vec::new(),
        }
    }

    /// The trace label.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Appends a sample.
    ///
    /// # Panics
    ///
    /// Panics if `time` is earlier than the previously recorded sample:
    /// traces are strictly time-ordered by construction.
    pub fn record(&mut self, time: Time, value: i64) {
        if let Some(last) = self.points.last() {
            assert!(
                time >= last.time,
                "trace '{}' records must be time-ordered ({} after {})",
                self.name,
                time,
                last.time
            );
        }
        self.points.push(TracePoint { time, value });
    }

    /// The recorded samples, in time order.
    pub fn points(&self) -> &[TracePoint] {
        &self.points
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the trace holds no samples.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Maximum recorded value.
    pub fn max(&self) -> Option<i64> {
        self.points.iter().map(|p| p.value).max()
    }

    /// Minimum recorded value.
    pub fn min(&self) -> Option<i64> {
        self.points.iter().map(|p| p.value).min()
    }

    /// The last sample at or before `t` (sample-and-hold semantics).
    pub fn value_at(&self, t: Time) -> Option<i64> {
        match self.points.binary_search_by(|p| p.time.cmp(&t)) {
            Ok(mut i) => {
                // Multiple samples may share a timestamp: take the last one.
                while i + 1 < self.points.len() && self.points[i + 1].time == t {
                    i += 1;
                }
                Some(self.points[i].value)
            }
            Err(0) => None,
            Err(i) => Some(self.points[i - 1].value),
        }
    }

    /// Time-weighted average over `[start, end)` under sample-and-hold
    /// semantics, or `None` if the interval is empty or precedes all data.
    pub fn time_weighted_mean(&self, start: Time, end: Time) -> Option<f64> {
        if end <= start || self.points.is_empty() {
            return None;
        }
        let mut cur = self.value_at(start)?;
        let mut cursor = start;
        let mut acc = 0.0f64;
        for p in self
            .points
            .iter()
            .filter(|p| p.time > start && p.time < end)
        {
            acc += cur as f64 * (p.time - cursor).as_cycles() as f64;
            cur = p.value;
            cursor = p.time;
        }
        acc += cur as f64 * (end - cursor).as_cycles() as f64;
        Some(acc / (end - start).as_cycles() as f64)
    }

    /// Peak of windowed time-weighted means with window length `window`.
    pub fn windowed_peak_mean(&self, window: Duration) -> Option<f64> {
        let (first, last) = (self.points.first()?, self.points.last()?);
        let w = window.as_cycles().max(1);
        let mut t = first.time.cycles();
        let end = last.time.cycles().max(t + 1);
        let mut peak: Option<f64> = None;
        while t < end {
            let m =
                self.time_weighted_mean(Time::from_cycles(t), Time::from_cycles((t + w).min(end)));
            if let Some(m) = m {
                peak = Some(peak.map_or(m, |p: f64| p.max(m)));
            }
            t += w;
        }
        peak
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(c: u64) -> Time {
        Time::from_cycles(c)
    }

    #[test]
    fn record_and_query() {
        let mut tr = ScalarTrace::new("x");
        tr.record(t(0), 1);
        tr.record(t(10), 5);
        tr.record(t(20), 2);
        assert_eq!(tr.len(), 3);
        assert_eq!(tr.max(), Some(5));
        assert_eq!(tr.min(), Some(1));
        assert_eq!(tr.value_at(t(0)), Some(1));
        assert_eq!(tr.value_at(t(9)), Some(1));
        assert_eq!(tr.value_at(t(10)), Some(5));
        assert_eq!(tr.value_at(t(100)), Some(2));
    }

    #[test]
    fn value_before_first_sample_is_none() {
        let mut tr = ScalarTrace::new("x");
        tr.record(t(5), 1);
        assert_eq!(tr.value_at(t(4)), None);
    }

    #[test]
    fn duplicate_timestamps_take_last() {
        let mut tr = ScalarTrace::new("x");
        tr.record(t(5), 1);
        tr.record(t(5), 2);
        tr.record(t(5), 3);
        assert_eq!(tr.value_at(t(5)), Some(3));
    }

    #[test]
    #[should_panic(expected = "time-ordered")]
    fn out_of_order_record_panics() {
        let mut tr = ScalarTrace::new("x");
        tr.record(t(10), 1);
        tr.record(t(5), 2);
    }

    #[test]
    fn time_weighted_mean_sample_and_hold() {
        let mut tr = ScalarTrace::new("x");
        tr.record(t(0), 0);
        tr.record(t(10), 10);
        // [0,20): value 0 for 10 cycles, 10 for 10 cycles -> mean 5
        assert_eq!(tr.time_weighted_mean(t(0), t(20)), Some(5.0));
        // [5,15): 0 for 5, 10 for 5 -> 5
        assert_eq!(tr.time_weighted_mean(t(5), t(15)), Some(5.0));
        assert_eq!(tr.time_weighted_mean(t(10), t(10)), None);
    }

    #[test]
    fn windowed_peak_mean_finds_busy_window() {
        let mut tr = ScalarTrace::new("util");
        tr.record(t(0), 0);
        tr.record(t(100), 100);
        tr.record(t(200), 0);
        tr.record(t(300), 0);
        let peak = tr.windowed_peak_mean(Duration::cycles(100)).unwrap();
        assert!((peak - 100.0).abs() < 1e-9, "peak was {peak}");
    }
}
