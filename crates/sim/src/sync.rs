//! Synchronization and communication primitives — counting semaphores,
//! bounded FIFOs, and last-value signals — built directly on the
//! kernel's arena waker slots via [`WaitQueue`]: registering a waiter is
//! a `Vec` push of a packed task id, waking is an intrusive ready-queue
//! link. No `Waker` clones, no per-primitive `Rc<RefCell<..>>` event
//! state.

use std::cell::{Cell, RefCell};
use std::collections::VecDeque;
use std::fmt;
use std::rc::Rc;

use crate::waitq::WaitQueue;
use crate::SimHandle;

/// A counting semaphore for modeling limited resources (ports, TAM lanes,
/// tester channels).
///
/// ```
/// use tve_sim::{Simulation, Semaphore, Duration};
/// let mut sim = Simulation::new();
/// let h = sim.handle();
/// let sem = Semaphore::new(&h, 1);
/// for _ in 0..2 {
///     let sem = sem.clone();
///     let h = h.clone();
///     sim.spawn(async move {
///         sem.acquire().await;
///         h.wait(Duration::cycles(10)).await;
///         sem.release();
///     });
/// }
/// assert_eq!(sim.run().cycles(), 20); // serialized by the semaphore
/// ```
#[derive(Clone)]
pub struct Semaphore {
    inner: Rc<SemaphoreInner>,
}

struct SemaphoreInner {
    permits: Cell<usize>,
    released: WaitQueue,
}

impl fmt::Debug for Semaphore {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Semaphore")
            .field("permits", &self.inner.permits.get())
            .finish()
    }
}

impl Semaphore {
    /// Creates a semaphore with `permits` initial permits.
    pub fn new(handle: &SimHandle, permits: usize) -> Self {
        Semaphore {
            inner: Rc::new(SemaphoreInner {
                permits: Cell::new(permits),
                released: WaitQueue::new(handle),
            }),
        }
    }

    /// Currently available permits.
    pub fn permits(&self) -> usize {
        self.inner.permits.get()
    }

    /// Acquires one permit, suspending until one is available.
    pub async fn acquire(&self) {
        loop {
            let p = self.inner.permits.get();
            if p > 0 {
                self.inner.permits.set(p - 1);
                return;
            }
            self.inner.released.wait().await;
        }
    }

    /// Acquires a permit if one is immediately available.
    pub fn try_acquire(&self) -> bool {
        let p = self.inner.permits.get();
        if p > 0 {
            self.inner.permits.set(p - 1);
            true
        } else {
            false
        }
    }

    /// Returns one permit and wakes waiters.
    pub fn release(&self) {
        self.inner.permits.set(self.inner.permits.get() + 1);
        self.inner.released.wake_all();
    }
}

/// A bounded FIFO channel between processes — the TLM workhorse for
/// double-buffered pattern transport between sources, adaptors and wrappers.
///
/// Clones share the same queue.
#[derive(Clone)]
pub struct Fifo<T> {
    inner: Rc<FifoInner<T>>,
}

struct FifoInner<T> {
    queue: RefCell<VecDeque<T>>,
    capacity: usize,
    not_full: WaitQueue,
    not_empty: WaitQueue,
}

impl<T> fmt::Debug for Fifo<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Fifo")
            .field("len", &self.len())
            .field("capacity", &self.inner.capacity)
            .finish()
    }
}

impl<T> Fifo<T> {
    /// Creates a FIFO holding at most `capacity` items.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero (rendezvous channels are not supported).
    pub fn new(handle: &SimHandle, capacity: usize) -> Self {
        assert!(capacity > 0, "Fifo capacity must be at least 1");
        Fifo {
            inner: Rc::new(FifoInner {
                queue: RefCell::new(VecDeque::with_capacity(capacity)),
                capacity,
                not_full: WaitQueue::new(handle),
                not_empty: WaitQueue::new(handle),
            }),
        }
    }

    /// Items currently queued.
    pub fn len(&self) -> usize {
        self.inner.queue.borrow().len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether the queue is at capacity.
    pub fn is_full(&self) -> bool {
        self.len() == self.inner.capacity
    }

    /// Maximum number of items.
    pub fn capacity(&self) -> usize {
        self.inner.capacity
    }

    /// Enqueues `item`, suspending while the FIFO is full.
    pub async fn push(&self, item: T) {
        let mut item = Some(item);
        loop {
            {
                let mut q = self.inner.queue.borrow_mut();
                if q.len() < self.inner.capacity {
                    q.push_back(item.take().expect("item consumed twice"));
                    drop(q);
                    self.inner.not_empty.wake_all();
                    return;
                }
            }
            self.inner.not_full.wait().await;
        }
    }

    /// Dequeues the oldest item, suspending while the FIFO is empty.
    pub async fn pop(&self) -> T {
        loop {
            {
                let mut q = self.inner.queue.borrow_mut();
                if let Some(v) = q.pop_front() {
                    drop(q);
                    self.inner.not_full.wake_all();
                    return v;
                }
            }
            self.inner.not_empty.wait().await;
        }
    }

    /// Enqueues if space is immediately available.
    pub fn try_push(&self, item: T) -> Result<(), T> {
        let mut q = self.inner.queue.borrow_mut();
        if q.len() < self.inner.capacity {
            q.push_back(item);
            drop(q);
            self.inner.not_empty.wake_all();
            Ok(())
        } else {
            Err(item)
        }
    }

    /// Dequeues if an item is immediately available.
    pub fn try_pop(&self) -> Option<T> {
        let v = self.inner.queue.borrow_mut().pop_front();
        if v.is_some() {
            self.inner.not_full.wake_all();
        }
        v
    }
}

/// A last-value "wire" carrying a value of type `T`, with change
/// notification — the TLM analogue of a status/control signal.
#[derive(Clone)]
pub struct Signal<T> {
    inner: Rc<SignalInner<T>>,
}

struct SignalInner<T> {
    value: RefCell<T>,
    changed: WaitQueue,
}

impl<T: fmt::Debug> fmt::Debug for Signal<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Signal")
            .field("value", &*self.inner.value.borrow())
            .finish()
    }
}

impl<T: Clone + PartialEq> Signal<T> {
    /// Creates a signal carrying `initial`.
    pub fn new(handle: &SimHandle, initial: T) -> Self {
        Signal {
            inner: Rc::new(SignalInner {
                value: RefCell::new(initial),
                changed: WaitQueue::new(handle),
            }),
        }
    }

    /// Current value.
    pub fn get(&self) -> T {
        self.inner.value.borrow().clone()
    }

    /// Writes `value`; waiters are notified only on an actual change.
    pub fn set(&self, value: T) {
        let changed = {
            let mut v = self.inner.value.borrow_mut();
            if *v == value {
                false
            } else {
                *v = value;
                true
            }
        };
        if changed {
            self.inner.changed.wake_all();
        }
    }

    /// Waits for the next change, then returns the new value.
    pub async fn wait_change(&self) -> T {
        self.inner.changed.wait().await;
        self.get()
    }

    /// Waits until the signal satisfies `pred` (returns immediately if it
    /// already does).
    pub async fn wait_for(&self, mut pred: impl FnMut(&T) -> bool) -> T {
        loop {
            {
                let v = self.inner.value.borrow();
                if pred(&v) {
                    return v.clone();
                }
            }
            self.inner.changed.wait().await;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Duration, Simulation};
    use std::cell::Cell;

    #[test]
    fn semaphore_serializes_critical_sections() {
        let mut sim = Simulation::new();
        let h = sim.handle();
        let sem = Semaphore::new(&h, 2);
        let peak = Rc::new(Cell::new(0usize));
        let inside = Rc::new(Cell::new(0usize));
        for _ in 0..6 {
            let sem = sem.clone();
            let h = h.clone();
            let peak = Rc::clone(&peak);
            let inside = Rc::clone(&inside);
            sim.spawn(async move {
                sem.acquire().await;
                inside.set(inside.get() + 1);
                peak.set(peak.get().max(inside.get()));
                h.wait(Duration::cycles(10)).await;
                inside.set(inside.get() - 1);
                sem.release();
            });
        }
        let end = sim.run();
        assert_eq!(peak.get(), 2);
        assert_eq!(end.cycles(), 30); // 6 tasks / 2 permits * 10 cycles
    }

    #[test]
    fn semaphore_try_acquire() {
        let sim = Simulation::new();
        let h = sim.handle();
        let sem = Semaphore::new(&h, 1);
        assert!(sem.try_acquire());
        assert!(!sem.try_acquire());
        sem.release();
        assert!(sem.try_acquire());
        drop(sim);
    }

    #[test]
    fn fifo_backpressure_blocks_producer() {
        let mut sim = Simulation::new();
        let h = sim.handle();
        let fifo: Fifo<u32> = Fifo::new(&h, 2);
        let produced = Rc::new(Cell::new(0u32));
        {
            let fifo = fifo.clone();
            let produced = Rc::clone(&produced);
            sim.spawn(async move {
                for i in 0..10 {
                    fifo.push(i).await;
                    produced.set(produced.get() + 1);
                }
            });
        }
        {
            let fifo = fifo.clone();
            let h = h.clone();
            sim.spawn(async move {
                let mut expect = 0;
                loop {
                    h.wait(Duration::cycles(5)).await;
                    let v = fifo.pop().await;
                    assert_eq!(v, expect);
                    expect += 1;
                    if expect == 10 {
                        break;
                    }
                }
            });
        }
        sim.run();
        assert_eq!(produced.get(), 10);
        assert!(fifo.is_empty());
    }

    #[test]
    fn fifo_try_operations() {
        let sim = Simulation::new();
        let h = sim.handle();
        let fifo: Fifo<u8> = Fifo::new(&h, 1);
        assert_eq!(fifo.try_pop(), None);
        assert!(fifo.try_push(1).is_ok());
        assert_eq!(fifo.try_push(2), Err(2));
        assert!(fifo.is_full());
        assert_eq!(fifo.try_pop(), Some(1));
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn fifo_zero_capacity_panics() {
        let sim = Simulation::new();
        let _ = Fifo::<u8>::new(&sim.handle(), 0);
    }

    #[test]
    fn signal_change_notification() {
        let mut sim = Simulation::new();
        let h = sim.handle();
        let sig = Signal::new(&h, 0u32);
        let observed = Rc::new(Cell::new(0u32));
        {
            let sig = sig.clone();
            let observed = Rc::clone(&observed);
            sim.spawn(async move {
                let v = sig.wait_for(|v| *v >= 3).await;
                observed.set(v);
            });
        }
        {
            let h = h.clone();
            let sig = sig.clone();
            sim.spawn(async move {
                for v in 1..=5 {
                    h.wait(Duration::cycles(10)).await;
                    sig.set(v);
                }
            });
        }
        sim.run();
        assert_eq!(observed.get(), 3);
        assert_eq!(sig.get(), 5);
    }

    #[test]
    fn signal_set_same_value_does_not_notify() {
        let mut sim = Simulation::new();
        // (sim must be mut for run())
        let h = sim.handle();
        let sig = Signal::new(&h, 7u32);
        let woken = Rc::new(Cell::new(false));
        {
            let sig = sig.clone();
            let woken = Rc::clone(&woken);
            sim.spawn(async move {
                sig.wait_change().await;
                woken.set(true);
            });
        }
        sig.set(7); // same value: no notification
        sim.run();
        assert!(!woken.get());
        assert_eq!(sim.live_tasks(), 1);
    }
}
