//! Cooperative cancellation for simulations.
//!
//! A [`CancelToken`] is a thread-safe flag that an external supervisor
//! (deadline watcher, shutdown path, chaos harness) trips to ask a running
//! simulation to stop. The kernel checks the token once per scheduling
//! boundary — each `advance` to the next distinct timestamp, which in
//! loosely-timed mode is also every quantum sync point — so a cancelled
//! simulation stops at a deterministic, well-defined point instead of
//! mid-poll.
//!
//! Cancellation is delivered by unwinding with the [`Cancelled`] payload
//! via [`std::panic::panic_any`]. The kernel's existing panic path retires
//! the in-flight task cleanly, so a cancelled [`Simulation`] drops without
//! leaking arena slots or timers. Supervisors (`tve-sched`'s supervised
//! farm, the `tve-serve` daemon) catch the unwind, downcast to
//! [`Cancelled`], and report a typed deadline error.
//!
//! Tokens reach the kernel through a thread-local: [`with_cancel_token`]
//! installs a token for the duration of a closure, and every
//! [`Simulation`] constructed inside picks it up at construction time.
//! This keeps the `Simulation` API unchanged for the overwhelmingly
//! common uncancellable case (the token field is simply `None`, and the
//! per-boundary check is a single branch).
//!
//! [`Simulation`]: crate::Simulation

use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Once};

/// A thread-safe cancellation flag, optionally chained to a parent.
///
/// Child tokens (see [`CancelToken::child`]) observe their parent: a
/// supervisor can cancel one retry attempt without touching the job-level
/// token, while cancelling the job token cancels every attempt under it.
#[derive(Debug, Default)]
pub struct CancelToken {
    flag: AtomicBool,
    parent: Option<Arc<CancelToken>>,
}

impl CancelToken {
    /// Creates a fresh, untripped token.
    pub fn new() -> Arc<CancelToken> {
        Arc::new(CancelToken::default())
    }

    /// Creates a token that is also cancelled whenever `parent` is.
    pub fn child(parent: &Arc<CancelToken>) -> Arc<CancelToken> {
        Arc::new(CancelToken {
            flag: AtomicBool::new(false),
            parent: Some(Arc::clone(parent)),
        })
    }

    /// Trips the token. Idempotent; never blocks.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Release);
    }

    /// True once this token — or any ancestor — has been cancelled.
    pub fn is_cancelled(&self) -> bool {
        if self.flag.load(Ordering::Acquire) {
            return true;
        }
        self.parent.as_ref().is_some_and(|p| p.is_cancelled())
    }
}

/// Panic payload used to unwind out of a cancelled simulation.
///
/// Catch with [`std::panic::catch_unwind`] and test the payload with
/// `payload.is::<Cancelled>()` to distinguish a deadline cancellation
/// from a genuine model panic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Cancelled;

thread_local! {
    static CURRENT: RefCell<Option<Arc<CancelToken>>> = const { RefCell::new(None) };
}

/// Runs `f` with `token` installed as the thread's current cancel token.
///
/// Every [`Simulation`](crate::Simulation) constructed while `f` runs
/// captures the token and checks it at each scheduling boundary. Nesting
/// is supported; the previous token (if any) is restored when `f`
/// returns or unwinds.
pub fn with_cancel_token<R>(token: &Arc<CancelToken>, f: impl FnOnce() -> R) -> R {
    struct Restore(Option<Arc<CancelToken>>);
    impl Drop for Restore {
        fn drop(&mut self) {
            CURRENT.with(|c| *c.borrow_mut() = self.0.take());
        }
    }
    let prev = CURRENT.with(|c| c.borrow_mut().replace(Arc::clone(token)));
    let _restore = Restore(prev);
    f()
}

/// The token installed by the innermost active [`with_cancel_token`], if
/// any. Called by `Simulation::new` to capture the token at construction.
pub(crate) fn current_token() -> Option<Arc<CancelToken>> {
    CURRENT.with(|c| c.borrow().clone())
}

/// Suppresses the default panic-hook report for [`Cancelled`] unwinds.
///
/// Deadline cancellation is a routine, supervised event; without this the
/// default hook would print a `Box<dyn Any>` backtrace banner for every
/// cancelled attempt. Installs once per process (subsequent calls are
/// no-ops) and chains to the previously installed hook for all other
/// payloads, so genuine panics keep their diagnostics.
pub fn silence_cancelled_panics() {
    static INSTALL: Once = Once::new();
    INSTALL.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if info.payload().is::<Cancelled>() {
                return;
            }
            prev(info);
        }));
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn token_starts_clear_and_trips_once() {
        let t = CancelToken::new();
        assert!(!t.is_cancelled());
        t.cancel();
        assert!(t.is_cancelled());
        t.cancel();
        assert!(t.is_cancelled());
    }

    #[test]
    fn child_observes_parent_but_not_vice_versa() {
        let parent = CancelToken::new();
        let child = CancelToken::child(&parent);
        assert!(!child.is_cancelled());
        parent.cancel();
        assert!(child.is_cancelled());

        let parent2 = CancelToken::new();
        let child2 = CancelToken::child(&parent2);
        child2.cancel();
        assert!(child2.is_cancelled());
        assert!(!parent2.is_cancelled());
    }

    #[test]
    fn with_cancel_token_scopes_and_restores() {
        assert!(current_token().is_none());
        let outer = CancelToken::new();
        with_cancel_token(&outer, || {
            assert!(Arc::ptr_eq(&current_token().unwrap(), &outer));
            let inner = CancelToken::new();
            with_cancel_token(&inner, || {
                assert!(Arc::ptr_eq(&current_token().unwrap(), &inner));
            });
            assert!(Arc::ptr_eq(&current_token().unwrap(), &outer));
        });
        assert!(current_token().is_none());
    }
}
