#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! # tve-sim — deterministic discrete-event simulation kernel
//!
//! A single-threaded, deterministic, cycle-granular discrete-event simulation
//! kernel with cooperative `async` processes. It plays the role SystemC's
//! kernel plays in the original paper: processes (≙ `SC_THREAD`s) suspend on
//! timed waits and [`Event`] notifications, and the kernel advances simulated
//! time from one event to the next.
//!
//! Determinism: all wakeups carry a `(time, sequence)` key; two wakeups at the
//! same simulated time fire in the order they were scheduled, and processes
//! made ready in the same *delta cycle* run in ready-queue order. Repeated
//! runs of the same model produce identical traces.
//!
//! Internally, tasks live in a slab arena with generation-checked ids and
//! an intrusive ready queue, timers are bucketed by timestamp and fired in
//! same-instant batches, and waits/notifications move packed task ids
//! instead of cloned `Waker`s — see the `executor` module docs. An opt-in
//! loosely-timed mode ([`Simulation::with_quantum`], or `TVE_QUANTUM` via
//! [`Simulation::from_env`]) trades intra-quantum timing fidelity for
//! speed through temporal decoupling; the default mode is cycle-accurate
//! and digest-stable across kernel versions.
//!
//! ```
//! use tve_sim::{Simulation, Duration};
//!
//! let mut sim = Simulation::new();
//! let h = sim.handle();
//! sim.spawn(async move {
//!     h.wait(Duration::cycles(10)).await;
//!     assert_eq!(h.now().cycles(), 10);
//! });
//! sim.run();
//! assert_eq!(sim.now().cycles(), 10);
//! ```

mod arena;
mod cancel;
mod event;
mod executor;
mod sync;
mod time;
mod trace;
mod vcd;
mod waitq;

pub use cancel::{silence_cancelled_panics, with_cancel_token, CancelToken, Cancelled};
pub use event::Event;
pub use executor::{JoinHandle, SimHandle, Simulation, SpawnId};
pub use sync::{Fifo, Semaphore, Signal};
pub use time::{Duration, Time};
pub use trace::{ScalarTrace, TracePoint};
pub use vcd::write_vcd;
