//! Simulated time.
//!
//! Time is cycle-granular: the models in this workspace are *approximately
//! timed* transaction-level models whose natural unit is the SoC clock cycle,
//! matching the paper's reporting unit ("test length in 10⁶ cycles").

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// An absolute point in simulated time, in clock cycles since simulation
/// start.
///
/// `Time` is a monotone value produced by the kernel; models obtain it from
/// [`SimHandle::now`](crate::SimHandle::now) and may compute with it using
/// [`Duration`] offsets.
///
/// ```
/// use tve_sim::{Time, Duration};
/// let t = Time::ZERO + Duration::cycles(5);
/// assert_eq!(t.cycles(), 5);
/// assert_eq!(t - Time::ZERO, Duration::cycles(5));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Time(u64);

impl Time {
    /// Simulation start.
    pub const ZERO: Time = Time(0);
    /// The largest representable time; used as an "infinite" horizon.
    pub const MAX: Time = Time(u64::MAX);

    /// Creates a time `cycles` cycles after simulation start.
    pub const fn from_cycles(cycles: u64) -> Self {
        Time(cycles)
    }

    /// The number of cycles since simulation start.
    pub const fn cycles(self) -> u64 {
        self.0
    }

    /// Saturating addition of a duration.
    pub const fn saturating_add(self, d: Duration) -> Time {
        Time(self.0.saturating_add(d.0))
    }

    /// The duration from `earlier` to `self`, saturating to zero if `earlier`
    /// is in the future.
    pub const fn saturating_since(self, earlier: Time) -> Duration {
        Duration(self.0.saturating_sub(earlier.0))
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "@{}", self.0)
    }
}

impl Add<Duration> for Time {
    type Output = Time;
    fn add(self, rhs: Duration) -> Time {
        Time(self.0 + rhs.0)
    }
}

impl AddAssign<Duration> for Time {
    fn add_assign(&mut self, rhs: Duration) {
        self.0 += rhs.0;
    }
}

impl Sub<Time> for Time {
    type Output = Duration;
    fn sub(self, rhs: Time) -> Duration {
        Duration(self.0 - rhs.0)
    }
}

/// A span of simulated time, in clock cycles.
///
/// ```
/// use tve_sim::Duration;
/// let d = Duration::cycles(3) + Duration::cycles(4);
/// assert_eq!(d.as_cycles(), 7);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Duration(u64);

impl Duration {
    /// A zero-length duration (a *delta-cycle* wait: the process resumes at
    /// the same simulated time, after currently-runnable processes yield).
    pub const ZERO: Duration = Duration(0);

    /// Creates a duration of `cycles` clock cycles.
    pub const fn cycles(cycles: u64) -> Self {
        Duration(cycles)
    }

    /// The length in clock cycles.
    pub const fn as_cycles(self) -> u64 {
        self.0
    }

    /// Alias of [`Duration::as_cycles`] for symmetry with [`Time::cycles`].
    pub const fn cycles_len(self) -> u64 {
        self.0
    }

    /// Saturating subtraction.
    pub const fn saturating_sub(self, rhs: Duration) -> Duration {
        Duration(self.0.saturating_sub(rhs.0))
    }

    /// Multiplies the duration by an integer factor.
    pub const fn times(self, n: u64) -> Duration {
        Duration(self.0 * n)
    }
}

impl fmt::Display for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}cy", self.0)
    }
}

impl Add for Duration {
    type Output = Duration;
    fn add(self, rhs: Duration) -> Duration {
        Duration(self.0 + rhs.0)
    }
}

impl AddAssign for Duration {
    fn add_assign(&mut self, rhs: Duration) {
        self.0 += rhs.0;
    }
}

impl Sub for Duration {
    type Output = Duration;
    fn sub(self, rhs: Duration) -> Duration {
        Duration(self.0 - rhs.0)
    }
}

impl std::iter::Sum for Duration {
    fn sum<I: Iterator<Item = Duration>>(iter: I) -> Duration {
        iter.fold(Duration::ZERO, |a, b| a + b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_arithmetic() {
        let t = Time::from_cycles(10);
        assert_eq!(t + Duration::cycles(5), Time::from_cycles(15));
        assert_eq!(Time::from_cycles(15) - t, Duration::cycles(5));
        assert_eq!(t.saturating_since(Time::from_cycles(20)), Duration::ZERO);
        assert_eq!(Time::MAX.saturating_add(Duration::cycles(1)), Time::MAX);
    }

    #[test]
    fn duration_arithmetic() {
        let d = Duration::cycles(7);
        assert_eq!(d.times(3), Duration::cycles(21));
        assert_eq!(d - Duration::cycles(2), Duration::cycles(5));
        assert_eq!(d.saturating_sub(Duration::cycles(100)), Duration::ZERO);
        let total: Duration = [1u64, 2, 3].iter().map(|&c| Duration::cycles(c)).sum();
        assert_eq!(total, Duration::cycles(6));
    }

    #[test]
    fn ordering_and_display() {
        assert!(Time::ZERO < Time::from_cycles(1));
        assert!(Duration::cycles(2) < Duration::cycles(3));
        assert_eq!(Time::from_cycles(4).to_string(), "@4");
        assert_eq!(Duration::cycles(4).to_string(), "4cy");
    }
}
