//! The event-driven executor: task spawning, timed wakeups, and the
//! simulation run loop.
//!
//! # Kernel architecture
//!
//! Tasks live in a slab arena ([`crate::arena::TaskArena`]): a `Vec` of
//! generation-checked slots with an intrusive FIFO ready queue, so
//! spawning reuses slots and waking a task is a handful of index writes —
//! no per-wake allocation, no hashing. Timers are bucketed by timestamp
//! in a `BTreeMap<u64, Vec<TimerFire>>`: advancing time removes one
//! bucket and fires every same-timestamp wakeup in a single batch,
//! instead of one heap pop per entry. Wakeups carry packed
//! [`TaskId`](crate::arena::TaskId)s rather than cloned `Waker`s; the
//! `Waker` machinery remains only as a fallback for foreign futures.
//!
//! An opt-in *loosely-timed* mode ([`Simulation::with_quantum`])
//! temporally decouples tasks: relative waits accumulate into a per-task
//! local-time offset and only synchronize with the global event queue at
//! quantum boundaries, the TLM-2.0 trade of timing fidelity for speed.
//! The default (quantum 0) mode is cycle-accurate and byte-identical to
//! the pre-arena kernel (see `tests/kernel_digests.rs`).

use std::cell::{Cell, RefCell};
use std::collections::BTreeMap;
use std::fmt;
use std::future::Future;
use std::pin::Pin;
use std::rc::{Rc, Weak};
use std::sync::Arc;
use std::task::{Context, Poll, Wake, Waker};

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

use crate::arena::{LocalFuture, TaskArena, TaskId};
use crate::event::EventState;
use crate::time::{Duration, Time};

/// Identifier of a spawned process, usable for debugging and diagnostics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SpawnId(pub u64);

impl fmt::Display for SpawnId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "task#{}", self.0)
    }
}

/// Packed id meaning "no current task".
const NO_TASK: u64 = u64::MAX;

/// What a timer does when it fires.
pub(crate) enum TimerFire {
    /// Wake the task with this packed [`TaskId`] (stale ids are inert).
    Task(u64),
    /// Fire a timed [`Event`](crate::Event) notification.
    Notify(std::rc::Weak<RefCell<EventState>>),
    /// Wake a foreign future's waker (fallback path).
    Waker(Waker),
}

/// The `Waker`-fallback side queue: wakes arriving through foreign
/// futures' cloned `Waker`s land here. The atomic flag lets the (hot)
/// kernel poll loop skip the mutex entirely while the queue is empty.
struct ExtQueue {
    nonempty: AtomicBool,
    queue: Mutex<Vec<u64>>,
}

/// `Waker` fallback for foreign futures: pushes the packed task id onto a
/// thread-safe side queue the kernel drains between polls. Kernel-owned
/// futures ([`Wait`], event and queue waits, [`JoinHandle`]) bypass this
/// entirely and register packed ids directly.
struct TaskWaker {
    packed: u64,
    ext: Arc<ExtQueue>,
}

impl Wake for TaskWaker {
    fn wake(self: Arc<Self>) {
        self.wake_by_ref();
    }
    fn wake_by_ref(self: &Arc<Self>) {
        self.ext
            .queue
            .lock()
            .expect("external wake queue poisoned")
            .push(self.packed);
        self.ext.nonempty.store(true, Ordering::Release);
    }
}

/// Kernel state shared between the [`Simulation`] driver, [`SimHandle`]s and
/// suspended futures.
pub(crate) struct Kernel {
    now: Cell<u64>,
    spawn_seq: Cell<u64>,
    polls: Cell<u64>,
    timers_fired: Cell<u64>,
    sync_points: Cell<u64>,
    /// Pending timers bucketed by absolute firing time; within a bucket,
    /// entries fire in scheduling order (the old `(time, seq)` order).
    timers: RefCell<BTreeMap<u64, Vec<TimerFire>>>,
    /// Recycled bucket storage, so steady-state scheduling does not
    /// allocate a fresh `Vec` per distinct timestamp.
    bucket_pool: RefCell<Vec<Vec<TimerFire>>>,
    arena: RefCell<TaskArena>,
    /// Packed id of the task currently being polled ([`NO_TASK`] outside
    /// polls); how kernel futures find their owner without a `Waker`.
    current: Cell<u64>,
    /// The current task's loosely-timed local offset, cached here for the
    /// duration of its poll so the quantum fast path never touches the
    /// arena. Written back to the slot when the poll suspends. Only
    /// meaningful while `current != NO_TASK` and `quantum != 0`.
    current_off: Cell<u64>,
    pending_spawn: RefCell<Vec<LocalFuture>>,
    /// Side queue for wakes arriving through the `Waker` fallback
    /// (foreign futures); shared with wakers, which must be `Send + Sync`.
    ext: Arc<ExtQueue>,
    /// Loosely-timed quantum in cycles; 0 = cycle-accurate mode.
    quantum: Cell<u64>,
    /// Testing knob: max timers fired per batch before re-entering the
    /// poll loop (`usize::MAX` = drain whole bucket).
    batch_limit: Cell<usize>,
    /// Cancellation token captured from the thread at construction (see
    /// [`crate::with_cancel_token`]); `None` for uncancellable sims.
    cancel: Option<Arc<crate::CancelToken>>,
}

impl Kernel {
    fn new() -> Rc<Kernel> {
        Rc::new(Kernel {
            now: Cell::new(0),
            spawn_seq: Cell::new(0),
            polls: Cell::new(0),
            timers_fired: Cell::new(0),
            sync_points: Cell::new(0),
            timers: RefCell::new(BTreeMap::new()),
            bucket_pool: RefCell::new(Vec::new()),
            arena: RefCell::new(TaskArena::new()),
            current: Cell::new(NO_TASK),
            current_off: Cell::new(0),
            pending_spawn: RefCell::new(Vec::new()),
            ext: Arc::new(ExtQueue {
                nonempty: AtomicBool::new(false),
                queue: Mutex::new(Vec::new()),
            }),
            quantum: Cell::new(0),
            batch_limit: Cell::new(usize::MAX),
            cancel: crate::cancel::current_token(),
        })
    }

    /// Unwinds with [`crate::Cancelled`] if the kernel's token has been
    /// tripped. Called once per scheduling boundary in the run loop.
    fn check_cancelled(&self) {
        if let Some(token) = &self.cancel {
            if token.is_cancelled() {
                std::panic::panic_any(crate::Cancelled);
            }
        }
    }

    pub(crate) fn now(&self) -> u64 {
        self.now.get()
    }

    /// The task currently being polled, if any.
    pub(crate) fn current_task(&self) -> Option<TaskId> {
        let packed = self.current.get();
        (packed != NO_TASK).then(|| TaskId::unpack(packed))
    }

    /// The loosely-timed quantum (0 in accurate mode).
    pub(crate) fn quantum(&self) -> u64 {
        self.quantum.get()
    }

    /// Current task's local-time offset ahead of global time (always 0 in
    /// accurate mode).
    pub(crate) fn current_offset(&self) -> u64 {
        if self.quantum.get() == 0 || self.current.get() == NO_TASK {
            return 0;
        }
        self.current_off.get()
    }

    pub(crate) fn set_current_offset(&self, off: u64) {
        if self.current.get() != NO_TASK {
            self.current_off.set(off);
        }
    }

    /// One-pass fits-and-absorb for [`SimHandle::try_local_wait`]: checks
    /// and consumes the offset in a single walk over the cells.
    pub(crate) fn absorb_local(&self, d: u64) -> bool {
        let q = self.quantum.get();
        if q == 0 || d == 0 || self.current.get() == NO_TASK {
            return false;
        }
        let off = self.current_off.get().saturating_add(d);
        if off >= q {
            return false;
        }
        self.current_off.set(off);
        true
    }

    /// Schedules `fire` at absolute cycle `time` (clamped to now).
    pub(crate) fn schedule(&self, time: u64, fire: TimerFire) {
        let time = time.max(self.now.get());
        let mut timers = self.timers.borrow_mut();
        timers
            .entry(time)
            .or_insert_with(|| self.bucket_pool.borrow_mut().pop().unwrap_or_default())
            .push(fire);
    }

    /// Marks the task behind `packed` runnable (stale ids are inert).
    pub(crate) fn wake_packed(&self, packed: u64) {
        self.arena.borrow_mut().enqueue(TaskId::unpack(packed));
    }

    fn spawn_raw(&self, future: LocalFuture) -> u64 {
        let id = self.spawn_seq.get();
        self.spawn_seq.set(id + 1);
        self.pending_spawn.borrow_mut().push(future);
        id
    }

    /// Moves freshly spawned tasks into the arena and marks them ready.
    ///
    /// Spawns are deferred until after the spawning poll completes (the
    /// pre-arena kernel did the same), so wakes issued *during* a poll
    /// enter the ready queue ahead of tasks spawned by that poll,
    /// whatever their program order.
    fn install_spawned(&self) {
        loop {
            // Take one batch at a time: a spawned task's body runs only
            // when polled, so no re-entrancy — but keep the borrow short.
            if self.pending_spawn.borrow().is_empty() {
                return;
            }
            let spawned: Vec<_> = self.pending_spawn.borrow_mut().drain(..).collect();
            if spawned.is_empty() {
                return;
            }
            let mut arena = self.arena.borrow_mut();
            for future in spawned {
                let id = arena.insert(future);
                arena.enqueue(id);
            }
        }
    }

    /// Drains the `Waker`-fallback side queue into the ready queue.
    fn drain_external(&self) {
        if !self.ext.nonempty.swap(false, Ordering::Acquire) {
            return;
        }
        let mut ext = self.ext.queue.lock().expect("external wake queue poisoned");
        let mut arena = self.arena.borrow_mut();
        for packed in ext.drain(..) {
            arena.enqueue(TaskId::unpack(packed));
        }
    }

    /// Polls one task; returns `true` if it completed.
    fn poll_task(&self, id: TaskId) -> bool {
        // Check the future out of the arena so the task body may freely
        // spawn, wake and schedule without re-entrant borrows.
        let checked_out = self.arena.borrow_mut().checkout(id, || {
            Waker::from(Arc::new(TaskWaker {
                packed: id.pack(),
                ext: Arc::clone(&self.ext),
            }))
        });
        let Some((mut future, waker)) = checked_out else {
            return false; // already completed; stale wakeup
        };
        self.polls.set(self.polls.get() + 1);
        let lt = self.quantum.get() != 0;
        let prev = self.current.replace(id.pack());
        let prev_off = self.current_off.replace(if lt {
            self.arena.borrow().local_offset(id)
        } else {
            0
        });
        let mut cx = Context::from_waker(&waker);
        let poll = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            future.as_mut().poll(&mut cx)
        }));
        self.current.set(prev);
        let off = self.current_off.replace(prev_off);
        match poll {
            Ok(Poll::Ready(())) => {
                self.arena.borrow_mut().remove(id);
                true
            }
            Ok(Poll::Pending) => {
                let mut arena = self.arena.borrow_mut();
                if lt {
                    arena.set_local_offset(id, off);
                }
                arena.put_back(id, future, waker);
                false
            }
            Err(payload) => {
                // A panicking process is a model bug; retire the task so
                // the kernel stays consistent, then resume unwinding.
                self.arena.borrow_mut().remove(id);
                std::panic::resume_unwind(payload);
            }
        }
    }

    /// Runs every runnable task to quiescence at the current time.
    fn drain_ready(&self) {
        loop {
            self.install_spawned();
            self.drain_external();
            let Some(id) = self.arena.borrow_mut().pop_ready() else {
                break;
            };
            self.poll_task(id);
        }
    }

    /// Advances time to the earliest pending timer not beyond `horizon`
    /// and fires every timer scheduled for that instant in one batch.
    /// Returns `false` when no eligible timer exists.
    fn advance(&self, horizon: u64) -> bool {
        let next = match self.timers.borrow().keys().next() {
            Some(&t) => t,
            None => return false,
        };
        if next > horizon {
            return false;
        }
        self.now.set(next);
        let limit = self.batch_limit.get();
        // Loop: firing can (via `schedule` clamping to now) append new
        // entries at this same timestamp; they belong to this instant.
        loop {
            let Some(mut bucket) = self.timers.borrow_mut().remove(&next) else {
                break;
            };
            if bucket.len() > limit {
                // Testing knob: re-insert the tail and fire only `limit`
                // entries this round.
                let rest = bucket.split_off(limit);
                self.timers.borrow_mut().insert(next, rest);
            }
            self.timers_fired
                .set(self.timers_fired.get() + bucket.len() as u64);
            for fire in bucket.drain(..) {
                match fire {
                    TimerFire::Task(packed) => self.wake_packed(packed),
                    TimerFire::Notify(state) => {
                        if let Some(state) = state.upgrade() {
                            EventState::fire(&state);
                        }
                    }
                    TimerFire::Waker(w) => w.wake(),
                }
            }
            self.bucket_pool.borrow_mut().push(bucket);
            if limit != usize::MAX {
                // With a batch limit, yield back to the poll loop after
                // each partial batch.
                break;
            }
        }
        true
    }

    fn live_tasks(&self) -> usize {
        self.arena.borrow().live() + self.pending_spawn.borrow().len()
    }
}

/// A cloneable handle through which model code interacts with the kernel:
/// reading time, waiting, and spawning further processes.
///
/// Handles are cheap to clone and are typically moved into each spawned
/// process.
#[derive(Clone)]
pub struct SimHandle {
    pub(crate) kernel: Rc<Kernel>,
}

impl fmt::Debug for SimHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SimHandle")
            .field("now", &self.kernel.now())
            .finish()
    }
}

impl SimHandle {
    /// The current simulated time.
    ///
    /// In loosely-timed mode this is the calling task's *local* time:
    /// global kernel time plus the task's accumulated quantum offset.
    pub fn now(&self) -> Time {
        Time::from_cycles(
            self.kernel
                .now()
                .saturating_add(self.kernel.current_offset()),
        )
    }

    /// Suspends the calling process for `d` cycles.
    ///
    /// A zero-length wait is a *delta wait*: the process yields and resumes
    /// at the same simulated time after other runnable processes have run.
    ///
    /// In loosely-timed mode ([`Simulation::with_quantum`]) a nonzero wait
    /// accumulates into the task's local-time offset and returns
    /// *without suspending* until the offset reaches the quantum; only
    /// then does the task synchronize with the global event queue. Zero
    /// waits always yield, so delta-cycle cooperation keeps working.
    pub fn wait(&self, d: Duration) -> Wait {
        let k = &self.kernel;
        let q = k.quantum();
        let d = d.as_cycles();
        if q > 0 && d > 0 && k.current_task().is_some() {
            let off = k.current_offset().saturating_add(d);
            if off < q {
                // Run ahead without synchronizing.
                k.set_current_offset(off);
                return Wait {
                    kernel: Rc::clone(k),
                    deadline: 0,
                    state: WaitState::Elapsed,
                };
            }
            // Quantum boundary: flush the offset into a real wakeup.
            k.set_current_offset(0);
            k.sync_points.set(k.sync_points.get() + 1);
            return Wait {
                kernel: Rc::clone(k),
                deadline: k.now().saturating_add(off),
                state: WaitState::Init,
            };
        }
        self.wait_until(Time::from_cycles(k.now().saturating_add(d)))
    }

    /// Suspends the calling process until absolute time `t` (immediately
    /// resumes via a delta cycle if `t` is not in the future).
    ///
    /// In loosely-timed mode this is always a synchronization point: the
    /// task's local-time offset is flushed (the wakeup is scheduled at
    /// `max(t, local now)`) and reset to zero.
    pub fn wait_until(&self, t: Time) -> Wait {
        let k = &self.kernel;
        let mut deadline = t.cycles();
        if k.quantum() > 0 {
            let local = k.now().saturating_add(k.current_offset());
            deadline = deadline.max(local);
            k.set_current_offset(0);
        }
        Wait {
            kernel: Rc::clone(k),
            deadline,
            state: WaitState::Init,
        }
    }

    /// Whether a [`SimHandle::wait`] of `d` by the calling process would be
    /// absorbed into its loosely-timed local-time offset without suspending.
    ///
    /// Always `false` in the default accurate mode, for a zero-length wait,
    /// or when the offset would reach the quantum. Transaction-level models
    /// use this (with [`SimHandle::try_local_wait`]) to bypass their
    /// suspension machinery entirely for intra-quantum accesses.
    pub fn local_wait_fits(&self, d: Duration) -> bool {
        let k = &self.kernel;
        let q = k.quantum();
        let d = d.as_cycles();
        q > 0 && d > 0 && k.current_task().is_some() && k.current_offset().saturating_add(d) < q
    }

    /// Absorbs `d` into the calling task's local-time offset without
    /// suspending, if it fits ([`SimHandle::local_wait_fits`]); returns
    /// whether it did. On `false` nothing happened — take the ordinary
    /// `wait(d).await` path instead.
    pub fn try_local_wait(&self, d: Duration) -> bool {
        self.kernel.absorb_local(d.as_cycles())
    }

    /// Whether loosely-timed quantum mode is active — the cheapest
    /// possible "could a local wait ever fit" gate, for hot paths that
    /// want to decline early in accurate mode before computing a
    /// duration at all.
    pub fn lt_active(&self) -> bool {
        self.kernel.quantum() != 0
    }

    /// Gives back `d` cycles just absorbed with
    /// [`SimHandle::try_local_wait`], restoring the task's local-time
    /// offset. For all-or-nothing composition of synchronous fast paths:
    /// a channel may absorb its occupancy before probing a downstream
    /// component, then refund it if that component declines. Only valid
    /// with no intervening waits by the same task.
    pub fn local_wait_undo(&self, d: Duration) {
        let k = &self.kernel;
        if k.current.get() != NO_TASK {
            k.current_off
                .set(k.current_off.get().saturating_sub(d.as_cycles()));
        }
    }

    /// Spawns a new process and returns a [`JoinHandle`] resolving to its
    /// output.
    pub fn spawn<F>(&self, future: F) -> JoinHandle<F::Output>
    where
        F: Future + 'static,
    {
        let state: Rc<RefCell<JoinState<F::Output>>> = Rc::new(RefCell::new(JoinState {
            result: None,
            finished: false,
            waiters: Vec::new(),
            kernel: Rc::downgrade(&self.kernel),
        }));
        let state2 = Rc::clone(&state);
        let id = self.kernel.spawn_raw(Box::pin(async move {
            let out = future.await;
            let (waiters, kernel) = {
                let mut s = state2.borrow_mut();
                s.result = Some(out);
                s.finished = true;
                (std::mem::take(&mut s.waiters), s.kernel.clone())
            };
            wake_waiters(waiters, &kernel);
        }));
        JoinHandle {
            id: SpawnId(id),
            state,
        }
    }
}

/// A registered waiter: a kernel task (the fast path) or a foreign
/// future's waker.
pub(crate) enum Waiter {
    Task(u64),
    Ext(Waker),
}

/// Registers the current task (or, outside the kernel, `cx`'s waker) in
/// `waiters` — the common suspend path of every kernel primitive.
pub(crate) fn register_waiter(waiters: &mut Vec<Waiter>, kernel: &Weak<Kernel>, cx: &Context<'_>) {
    let current = kernel.upgrade().and_then(|k| k.current_task());
    match current {
        Some(id) => waiters.push(Waiter::Task(id.pack())),
        None => waiters.push(Waiter::Ext(cx.waker().clone())),
    }
}

/// Wakes every registered waiter, in registration order.
pub(crate) fn wake_waiters(waiters: Vec<Waiter>, kernel: &Weak<Kernel>) {
    let kernel = kernel.upgrade();
    for w in waiters {
        match w {
            Waiter::Task(packed) => {
                if let Some(k) = &kernel {
                    k.wake_packed(packed);
                }
            }
            Waiter::Ext(w) => w.wake(),
        }
    }
}

enum WaitState {
    /// Timer not yet registered.
    Init,
    /// Timer registered; waiting for the deadline.
    Registered,
    /// Loosely-timed fast path: the wait was absorbed into the task's
    /// local offset and completes on first poll.
    Elapsed,
}

/// Future returned by [`SimHandle::wait`] / [`SimHandle::wait_until`].
#[must_use = "futures do nothing unless awaited"]
pub struct Wait {
    kernel: Rc<Kernel>,
    deadline: u64,
    state: WaitState,
}

impl Future for Wait {
    type Output = ();
    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        match self.state {
            WaitState::Elapsed => Poll::Ready(()),
            WaitState::Registered => {
                if self.kernel.now() >= self.deadline {
                    Poll::Ready(())
                } else {
                    // Spurious wake before the deadline: our timer is still
                    // pending and will wake us again.
                    Poll::Pending
                }
            }
            WaitState::Init => {
                self.state = WaitState::Registered;
                let fire = match self.kernel.current_task() {
                    Some(id) => TimerFire::Task(id.pack()),
                    None => TimerFire::Waker(cx.waker().clone()),
                };
                self.kernel.schedule(self.deadline, fire);
                Poll::Pending
            }
        }
    }
}

struct JoinState<T> {
    result: Option<T>,
    finished: bool,
    waiters: Vec<Waiter>,
    kernel: Weak<Kernel>,
}

/// Handle to a spawned process; awaiting it yields the process output.
///
/// Dropping the handle is fine — fire-and-forget processes (the norm for
/// model components) keep running without it.
///
/// # Panics
///
/// Awaiting the same handle after it already yielded its output panics, as
/// the output has been moved out.
pub struct JoinHandle<T> {
    id: SpawnId,
    state: Rc<RefCell<JoinState<T>>>,
}

impl<T> fmt::Debug for JoinHandle<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("JoinHandle")
            .field("id", &self.id)
            .field("finished", &self.is_finished())
            .finish()
    }
}

impl<T> JoinHandle<T> {
    /// The spawn identifier of the underlying process.
    pub fn id(&self) -> SpawnId {
        self.id
    }

    /// Whether the process has run to completion.
    pub fn is_finished(&self) -> bool {
        self.state.borrow().finished
    }

    /// Takes the result if the process has completed (non-blocking).
    pub fn try_take(&self) -> Option<T> {
        self.state.borrow_mut().result.take()
    }
}

impl<T> Future for JoinHandle<T> {
    type Output = T;
    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<T> {
        let mut s = self.state.borrow_mut();
        if s.finished {
            match s.result.take() {
                Some(v) => Poll::Ready(v),
                None => panic!("JoinHandle polled after its output was taken"),
            }
        } else {
            let kernel = s.kernel.clone();
            register_waiter(&mut s.waiters, &kernel, cx);
            Poll::Pending
        }
    }
}

/// A deterministic discrete-event simulation.
///
/// Owns the kernel; processes are added with [`Simulation::spawn`] (or via
/// [`SimHandle::spawn`] from inside a running process) and executed by
/// [`Simulation::run`] / [`Simulation::run_until`].
///
/// ```
/// use tve_sim::{Simulation, Duration};
/// let mut sim = Simulation::new();
/// let h = sim.handle();
/// let order = std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
/// for (i, delay) in [(0u32, 20u64), (1, 10)] {
///     let h = h.clone();
///     let order = order.clone();
///     sim.spawn(async move {
///         h.wait(Duration::cycles(delay)).await;
///         order.borrow_mut().push(i);
///     });
/// }
/// sim.run();
/// assert_eq!(*order.borrow(), vec![1, 0]); // temporal order, not spawn order
/// ```
pub struct Simulation {
    kernel: Rc<Kernel>,
}

impl fmt::Debug for Simulation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Simulation")
            .field("now", &self.kernel.now())
            .field("live_tasks", &self.kernel.live_tasks())
            .field("quantum", &self.kernel.quantum())
            .finish()
    }
}

impl Default for Simulation {
    fn default() -> Self {
        Self::new()
    }
}

impl Simulation {
    /// Creates an empty cycle-accurate simulation at time zero.
    pub fn new() -> Self {
        Simulation {
            kernel: Kernel::new(),
        }
    }

    /// Creates a *loosely-timed* simulation with the given quantum.
    ///
    /// Tasks run temporally decoupled: relative waits accrue into a
    /// per-task local-time offset and only synchronize with the event
    /// queue when the offset reaches `quantum` (or at an explicit
    /// [`SimHandle::wait_until`] / zero-length wait). This trades intra-
    /// quantum event ordering — and therefore exact digests — for speed;
    /// results are still deterministic for a fixed quantum. A zero
    /// quantum is the accurate mode of [`Simulation::new`].
    pub fn with_quantum(quantum: Duration) -> Self {
        let sim = Simulation::new();
        sim.kernel.quantum.set(quantum.as_cycles());
        sim
    }

    /// Creates a simulation whose mode comes from the `TVE_QUANTUM`
    /// environment variable: unset, empty or `0` means cycle-accurate;
    /// any other integer is the loosely-timed quantum in cycles.
    ///
    /// Shipped scenario runners build their simulators through this, so
    /// whole benchmark harnesses can be switched to loosely-timed mode
    /// without threading a parameter through every layer (the same idiom
    /// as `TVE_JOBS` for the farm).
    pub fn from_env() -> Self {
        let quantum = std::env::var("TVE_QUANTUM")
            .ok()
            .and_then(|v| v.parse::<u64>().ok())
            .unwrap_or(0);
        Simulation::with_quantum(Duration::cycles(quantum))
    }

    /// The loosely-timed quantum, or `None` in cycle-accurate mode.
    pub fn quantum(&self) -> Option<Duration> {
        match self.kernel.quantum() {
            0 => None,
            q => Some(Duration::cycles(q)),
        }
    }

    /// Testing/diagnostic knob: fire at most `limit` same-timestamp
    /// timers per batch before re-running ready tasks. Semantically
    /// inert — `tests/kernel_batch_prop.rs` proves traces are identical
    /// for limit 1 and unlimited — but useful for bisecting wakeup-order
    /// issues. `usize::MAX` (the default) drains whole buckets.
    pub fn set_timer_batch_limit(&mut self, limit: usize) {
        self.kernel.batch_limit.set(limit.max(1));
    }

    /// A handle for use by model code.
    pub fn handle(&self) -> SimHandle {
        SimHandle {
            kernel: Rc::clone(&self.kernel),
        }
    }

    /// The current simulated time.
    pub fn now(&self) -> Time {
        Time::from_cycles(self.kernel.now())
    }

    /// Number of processes that have been spawned and not yet completed.
    pub fn live_tasks(&self) -> usize {
        self.kernel.live_tasks()
    }

    /// Kernel activity counters since construction: `(task polls, timer
    /// events fired)` — the event-density figures behind abstraction-level
    /// comparisons.
    pub fn kernel_stats(&self) -> (u64, u64) {
        (self.kernel.polls.get(), self.kernel.timers_fired.get())
    }

    /// Loosely-timed synchronization points taken so far (0 in accurate
    /// mode): how often a task's accrued offset crossed the quantum.
    pub fn sync_points(&self) -> u64 {
        self.kernel.sync_points.get()
    }

    /// Spawns a process; see [`SimHandle::spawn`].
    pub fn spawn<F>(&mut self, future: F) -> JoinHandle<F::Output>
    where
        F: Future + 'static,
    {
        self.handle().spawn(future)
    }

    /// Runs until no further activity is possible (event-queue exhaustion).
    ///
    /// Processes still blocked on never-notified events remain suspended;
    /// [`Simulation::live_tasks`] reports them, which is how model-level
    /// deadlock is detected in tests.
    pub fn run(&mut self) -> Time {
        self.run_until(Time::MAX)
    }

    /// Runs until the event queue is exhausted or simulated time would pass
    /// `horizon`; returns the reached time.
    ///
    /// When stopping at the horizon, time is advanced to exactly `horizon`
    /// (unless `horizon` is [`Time::MAX`], which is treated as "no limit").
    pub fn run_until(&mut self, horizon: Time) -> Time {
        loop {
            self.kernel.check_cancelled();
            self.kernel.drain_ready();
            if !self.kernel.advance(horizon.cycles()) {
                break;
            }
        }
        if horizon != Time::MAX && self.kernel.now() < horizon.cycles() {
            // No event beyond this point: idle until the horizon.
            if self
                .kernel
                .timers
                .borrow()
                .keys()
                .next()
                .map(|&t| t > horizon.cycles())
                .unwrap_or(true)
            {
                self.kernel.now.set(horizon.cycles());
            }
        }
        self.now()
    }

    /// Runs for an additional `d` cycles of simulated time.
    pub fn run_for(&mut self, d: Duration) -> Time {
        let horizon = Time::from_cycles(self.kernel.now().saturating_add(d.as_cycles()));
        self.run_until(horizon)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;

    #[test]
    fn empty_simulation_terminates_at_zero() {
        let mut sim = Simulation::new();
        assert_eq!(sim.run(), Time::ZERO);
        assert_eq!(sim.live_tasks(), 0);
    }

    #[test]
    fn single_wait_advances_time() {
        let mut sim = Simulation::new();
        let h = sim.handle();
        sim.spawn(async move {
            h.wait(Duration::cycles(42)).await;
        });
        assert_eq!(sim.run(), Time::from_cycles(42));
    }

    #[test]
    fn sequential_waits_accumulate() {
        let mut sim = Simulation::new();
        let h = sim.handle();
        let handle = sim.spawn(async move {
            for _ in 0..5 {
                h.wait(Duration::cycles(10)).await;
            }
            h.now()
        });
        sim.run();
        assert_eq!(handle.try_take(), Some(Time::from_cycles(50)));
    }

    #[test]
    fn interleaving_is_temporal_then_spawn_order() {
        let mut sim = Simulation::new();
        let h = sim.handle();
        let log: Rc<RefCell<Vec<(u64, u32)>>> = Rc::new(RefCell::new(Vec::new()));
        for (i, delay) in [(0u32, 30u64), (1, 10), (2, 20), (3, 10)] {
            let h = h.clone();
            let log = Rc::clone(&log);
            sim.spawn(async move {
                h.wait(Duration::cycles(delay)).await;
                log.borrow_mut().push((h.now().cycles(), i));
            });
        }
        sim.run();
        // At time 10 tasks 1 and 3 fire in spawn (scheduling) order.
        assert_eq!(*log.borrow(), vec![(10, 1), (10, 3), (20, 2), (30, 0)]);
    }

    #[test]
    fn zero_wait_is_delta_yield() {
        let mut sim = Simulation::new();
        let h = sim.handle();
        let log: Rc<RefCell<Vec<&str>>> = Rc::new(RefCell::new(Vec::new()));
        {
            let log = Rc::clone(&log);
            let h2 = h.clone();
            sim.spawn(async move {
                log.borrow_mut().push("a1");
                h2.wait(Duration::ZERO).await;
                log.borrow_mut().push("a2");
            });
        }
        {
            let log = Rc::clone(&log);
            sim.spawn(async move {
                log.borrow_mut().push("b1");
            });
        }
        let end = sim.run();
        assert_eq!(end, Time::ZERO);
        assert_eq!(*log.borrow(), vec!["a1", "b1", "a2"]);
    }

    #[test]
    fn spawn_from_inside_process() {
        let mut sim = Simulation::new();
        let h = sim.handle();
        let outer = sim.spawn(async move {
            let h2 = h.clone();
            let child = h.spawn(async move {
                h2.wait(Duration::cycles(7)).await;
                h2.now().cycles()
            });
            child.await
        });
        sim.run();
        assert_eq!(outer.try_take(), Some(7));
    }

    #[test]
    fn join_handle_reports_finished() {
        let mut sim = Simulation::new();
        let h = sim.handle();
        let jh = sim.spawn(async move {
            h.wait(Duration::cycles(5)).await;
            123u32
        });
        assert!(!jh.is_finished());
        sim.run();
        assert!(jh.is_finished());
        assert_eq!(jh.try_take(), Some(123));
        assert_eq!(jh.try_take(), None);
    }

    #[test]
    fn run_until_stops_at_horizon() {
        let mut sim = Simulation::new();
        let h = sim.handle();
        let done = Rc::new(Cell::new(false));
        let done2 = Rc::clone(&done);
        sim.spawn(async move {
            h.wait(Duration::cycles(100)).await;
            done2.set(true);
        });
        let t = sim.run_until(Time::from_cycles(50));
        assert_eq!(t, Time::from_cycles(50));
        assert!(!done.get());
        let t = sim.run();
        assert_eq!(t, Time::from_cycles(100));
        assert!(done.get());
    }

    #[test]
    fn run_for_is_relative() {
        let mut sim = Simulation::new();
        let h = sim.handle();
        sim.spawn(async move {
            h.wait(Duration::cycles(1000)).await;
        });
        sim.run_for(Duration::cycles(10));
        assert_eq!(sim.now(), Time::from_cycles(10));
        sim.run_for(Duration::cycles(10));
        assert_eq!(sim.now(), Time::from_cycles(20));
        assert_eq!(sim.live_tasks(), 1);
    }

    #[test]
    fn blocked_task_counts_as_live_after_run() {
        let mut sim = Simulation::new();
        let h = sim.handle();
        let ev = crate::Event::new(&h);
        sim.spawn(async move {
            ev.wait().await; // never notified
        });
        sim.run();
        assert_eq!(sim.live_tasks(), 1);
    }

    #[test]
    fn determinism_two_identical_runs() {
        fn run_once() -> Vec<(u64, u32)> {
            let mut sim = Simulation::new();
            let h = sim.handle();
            let log: Rc<RefCell<Vec<(u64, u32)>>> = Rc::new(RefCell::new(Vec::new()));
            for i in 0..20u32 {
                let h = h.clone();
                let log = Rc::clone(&log);
                sim.spawn(async move {
                    for k in 0..10u64 {
                        h.wait(Duration::cycles((i as u64 * 7 + k * 3) % 11 + 1))
                            .await;
                        log.borrow_mut().push((h.now().cycles(), i));
                    }
                });
            }
            sim.run();
            let v = log.borrow().clone();
            v
        }
        assert_eq!(run_once(), run_once());
    }

    #[test]
    fn task_panic_propagates_out_of_run() {
        // A panicking process is a model bug; the kernel does not swallow
        // it — the panic unwinds out of `run` with its original message.
        let result = std::panic::catch_unwind(|| {
            let mut sim = Simulation::new();
            let h = sim.handle();
            sim.spawn(async move {
                h.wait(Duration::cycles(5)).await;
                panic!("model bug at cycle 5");
            });
            sim.run();
        });
        let err = result.expect_err("panic must propagate");
        let msg = err
            .downcast_ref::<&str>()
            .copied()
            .unwrap_or("<non-str payload>");
        assert!(msg.contains("model bug"), "{msg}");
    }

    #[test]
    fn many_tasks_complete() {
        let mut sim = Simulation::new();
        let h = sim.handle();
        let count = Rc::new(Cell::new(0u32));
        for i in 0..1000u64 {
            let h = h.clone();
            let count = Rc::clone(&count);
            sim.spawn(async move {
                h.wait(Duration::cycles(i % 97)).await;
                count.set(count.get() + 1);
            });
        }
        sim.run();
        assert_eq!(count.get(), 1000);
        assert_eq!(sim.live_tasks(), 0);
    }

    #[test]
    fn slot_recycling_keeps_ids_distinct() {
        // Spawn waves of short-lived tasks so arena slots are recycled;
        // completions must be counted exactly once despite reuse.
        let mut sim = Simulation::new();
        let h = sim.handle();
        let count = Rc::new(Cell::new(0u32));
        {
            let h2 = h.clone();
            let count = Rc::clone(&count);
            sim.spawn(async move {
                for wave in 0..50u64 {
                    for _ in 0..10 {
                        let h3 = h2.clone();
                        let count = Rc::clone(&count);
                        h2.spawn(async move {
                            h3.wait(Duration::cycles(1)).await;
                            count.set(count.get() + 1);
                        });
                    }
                    h2.wait(Duration::cycles(wave % 3 + 1)).await;
                }
            });
        }
        sim.run();
        assert_eq!(count.get(), 500);
        assert_eq!(sim.live_tasks(), 0);
    }

    #[test]
    fn quantum_mode_skips_synchronization() {
        let mut sim = Simulation::with_quantum(Duration::cycles(100));
        let h = sim.handle();
        let jh = sim.spawn(async move {
            for _ in 0..1000 {
                h.wait(Duration::cycles(1)).await;
            }
            h.now().cycles()
        });
        let end = sim.run();
        // Local time is exact even though only every 100th wait synced.
        assert_eq!(jh.try_take(), Some(1000));
        assert_eq!(end.cycles(), 1000);
        assert_eq!(sim.sync_points(), 10);
        let (polls, timers) = sim.kernel_stats();
        assert!(polls < 30, "expected ~10 sync polls, got {polls}");
        assert!(timers < 15, "expected ~10 timer entries, got {timers}");
    }

    #[test]
    fn quantum_mode_zero_wait_still_yields() {
        let mut sim = Simulation::with_quantum(Duration::cycles(1000));
        let h = sim.handle();
        let log: Rc<RefCell<Vec<&str>>> = Rc::new(RefCell::new(Vec::new()));
        {
            let log = Rc::clone(&log);
            let h2 = h.clone();
            sim.spawn(async move {
                log.borrow_mut().push("a1");
                h2.wait(Duration::ZERO).await;
                log.borrow_mut().push("a2");
            });
        }
        {
            let log = Rc::clone(&log);
            sim.spawn(async move {
                log.borrow_mut().push("b1");
            });
        }
        sim.run();
        assert_eq!(*log.borrow(), vec!["a1", "b1", "a2"]);
    }

    #[test]
    fn quantum_mode_is_deterministic() {
        fn run_once() -> (u64, Vec<u64>) {
            let mut sim = Simulation::with_quantum(Duration::cycles(64));
            let h = sim.handle();
            let log: Rc<RefCell<Vec<u64>>> = Rc::new(RefCell::new(Vec::new()));
            for i in 0..8u64 {
                let h = h.clone();
                let log = Rc::clone(&log);
                sim.spawn(async move {
                    for k in 0..200u64 {
                        h.wait(Duration::cycles((i + k) % 13 + 1)).await;
                    }
                    log.borrow_mut().push(h.now().cycles());
                });
            }
            let end = sim.run().cycles();
            let v = log.borrow().clone();
            (end, v)
        }
        assert_eq!(run_once(), run_once());
    }

    #[test]
    fn accurate_mode_has_zero_quantum() {
        let sim = Simulation::new();
        assert_eq!(sim.quantum(), None);
        let lt = Simulation::with_quantum(Duration::cycles(32));
        assert_eq!(lt.quantum(), Some(Duration::cycles(32)));
    }
}
