//! The event-driven executor: task spawning, timed wakeups, and the
//! simulation run loop.

use std::cell::{Cell, RefCell};
use std::collections::{BinaryHeap, HashMap};
use std::fmt;
use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;
use std::sync::Arc;
use std::task::{Context, Poll, Wake, Waker};

use std::sync::Mutex;

use crate::event::EventState;
use crate::time::{Duration, Time};

type LocalFuture = Pin<Box<dyn Future<Output = ()> + 'static>>;

/// Identifier of a spawned process, usable for debugging and diagnostics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SpawnId(pub u64);

impl fmt::Display for SpawnId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "task#{}", self.0)
    }
}

/// What a timer does when it fires.
pub(crate) enum TimerAction {
    /// Wake a single suspended task.
    Wake(Waker),
    /// Fire a timed [`Event`](crate::Event) notification.
    Notify(std::rc::Weak<RefCell<EventState>>),
}

struct TimerEntry {
    time: u64,
    seq: u64,
    action: TimerAction,
}

impl PartialEq for TimerEntry {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for TimerEntry {}
impl PartialOrd for TimerEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for TimerEntry {
    // Reversed so that `BinaryHeap` (a max-heap) pops the earliest
    // `(time, seq)` first.
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

struct TaskWaker {
    id: u64,
    ready: Arc<Mutex<Vec<u64>>>,
}

impl Wake for TaskWaker {
    fn wake(self: Arc<Self>) {
        self.ready
            .lock()
            .expect("waker list poisoned")
            .push(self.id);
    }
    fn wake_by_ref(self: &Arc<Self>) {
        self.ready
            .lock()
            .expect("waker list poisoned")
            .push(self.id);
    }
}

struct TaskSlot {
    future: LocalFuture,
    waker: Waker,
}

/// Kernel state shared between the [`Simulation`] driver, [`SimHandle`]s and
/// suspended futures.
pub(crate) struct Kernel {
    now: Cell<u64>,
    seq: Cell<u64>,
    spawn_seq: Cell<u64>,
    polls: Cell<u64>,
    timers_fired: Cell<u64>,
    timers: RefCell<BinaryHeap<TimerEntry>>,
    /// Shared with wakers (which must be `Send + Sync`); the simulation
    /// itself is single-threaded.
    ready: Arc<Mutex<Vec<u64>>>,
    tasks: RefCell<HashMap<u64, TaskSlot>>,
    pending_spawn: RefCell<Vec<(u64, LocalFuture)>>,
}

impl Kernel {
    fn new() -> Rc<Kernel> {
        Rc::new(Kernel {
            now: Cell::new(0),
            seq: Cell::new(0),
            spawn_seq: Cell::new(0),
            polls: Cell::new(0),
            timers_fired: Cell::new(0),
            timers: RefCell::new(BinaryHeap::new()),
            ready: Arc::new(Mutex::new(Vec::new())),
            tasks: RefCell::new(HashMap::new()),
            pending_spawn: RefCell::new(Vec::new()),
        })
    }

    pub(crate) fn now(&self) -> u64 {
        self.now.get()
    }

    fn next_seq(&self) -> u64 {
        let s = self.seq.get();
        self.seq.set(s + 1);
        s
    }

    /// Schedules `action` to fire at absolute cycle `time` (clamped to now).
    pub(crate) fn schedule(&self, time: u64, action: TimerAction) {
        let time = time.max(self.now.get());
        let seq = self.next_seq();
        self.timers
            .borrow_mut()
            .push(TimerEntry { time, seq, action });
    }

    fn spawn_raw(&self, future: LocalFuture) -> u64 {
        let id = self.spawn_seq.get();
        self.spawn_seq.set(id + 1);
        self.pending_spawn.borrow_mut().push((id, future));
        id
    }

    /// Moves freshly spawned tasks into the task table and marks them ready.
    fn install_spawned(&self) {
        let spawned: Vec<_> = self.pending_spawn.borrow_mut().drain(..).collect();
        for (id, future) in spawned {
            let waker = Waker::from(Arc::new(TaskWaker {
                id,
                ready: Arc::clone(&self.ready),
            }));
            self.tasks
                .borrow_mut()
                .insert(id, TaskSlot { future, waker });
            self.ready.lock().expect("waker list poisoned").push(id);
        }
    }

    /// Polls one task; returns `true` if it completed.
    fn poll_task(&self, id: u64) -> bool {
        // Take the task out of the table so its body may freely spawn or
        // inspect the kernel without re-entrant borrows of `tasks`.
        let Some(mut slot) = self.tasks.borrow_mut().remove(&id) else {
            return false; // already completed; stale wakeup
        };
        self.polls.set(self.polls.get() + 1);
        let waker = slot.waker.clone();
        let mut cx = Context::from_waker(&waker);
        match slot.future.as_mut().poll(&mut cx) {
            Poll::Ready(()) => true,
            Poll::Pending => {
                self.tasks.borrow_mut().insert(id, slot);
                false
            }
        }
    }

    fn drain_ready(&self) {
        loop {
            self.install_spawned();
            let batch: Vec<u64> =
                std::mem::take(&mut *self.ready.lock().expect("waker list poisoned"));
            if batch.is_empty() {
                break;
            }
            for id in batch {
                self.poll_task(id);
                self.install_spawned();
            }
        }
    }

    /// Advances time to the earliest pending timer not beyond `horizon` and
    /// fires every timer scheduled for that instant. Returns `false` when no
    /// eligible timer exists.
    fn advance(&self, horizon: u64) -> bool {
        let next = match self.timers.borrow().peek() {
            Some(e) => e.time,
            None => return false,
        };
        if next > horizon {
            return false;
        }
        self.now.set(next);
        loop {
            let fire = {
                let mut timers = self.timers.borrow_mut();
                match timers.peek() {
                    Some(e) if e.time == next => timers.pop(),
                    _ => None,
                }
            };
            let Some(entry) = fire else { break };
            self.timers_fired.set(self.timers_fired.get() + 1);
            match entry.action {
                TimerAction::Wake(w) => w.wake(),
                TimerAction::Notify(state) => {
                    if let Some(state) = state.upgrade() {
                        EventState::fire(&state);
                    }
                }
            }
        }
        true
    }

    fn live_tasks(&self) -> usize {
        self.tasks.borrow().len() + self.pending_spawn.borrow().len()
    }
}

/// A cloneable handle through which model code interacts with the kernel:
/// reading time, waiting, and spawning further processes.
///
/// Handles are cheap to clone and are typically moved into each spawned
/// process.
#[derive(Clone)]
pub struct SimHandle {
    pub(crate) kernel: Rc<Kernel>,
}

impl fmt::Debug for SimHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SimHandle")
            .field("now", &self.kernel.now())
            .finish()
    }
}

impl SimHandle {
    /// The current simulated time.
    pub fn now(&self) -> Time {
        Time::from_cycles(self.kernel.now())
    }

    /// Suspends the calling process for `d` cycles.
    ///
    /// A zero-length wait is a *delta wait*: the process yields and resumes
    /// at the same simulated time after other runnable processes have run.
    pub fn wait(&self, d: Duration) -> Wait {
        self.wait_until(Time::from_cycles(
            self.kernel.now().saturating_add(d.as_cycles()),
        ))
    }

    /// Suspends the calling process until absolute time `t` (immediately
    /// resumes via a delta cycle if `t` is not in the future).
    pub fn wait_until(&self, t: Time) -> Wait {
        Wait {
            kernel: Rc::clone(&self.kernel),
            deadline: t.cycles(),
            registered: false,
        }
    }

    /// Spawns a new process and returns a [`JoinHandle`] resolving to its
    /// output.
    pub fn spawn<F>(&self, future: F) -> JoinHandle<F::Output>
    where
        F: Future + 'static,
    {
        let state: Rc<RefCell<JoinState<F::Output>>> = Rc::new(RefCell::new(JoinState {
            result: None,
            finished: false,
            waiters: Vec::new(),
        }));
        let state2 = Rc::clone(&state);
        let id = self.kernel.spawn_raw(Box::pin(async move {
            let out = future.await;
            let mut s = state2.borrow_mut();
            s.result = Some(out);
            s.finished = true;
            for w in s.waiters.drain(..) {
                w.wake();
            }
        }));
        JoinHandle {
            id: SpawnId(id),
            state,
        }
    }
}

/// Future returned by [`SimHandle::wait`] / [`SimHandle::wait_until`].
#[must_use = "futures do nothing unless awaited"]
pub struct Wait {
    kernel: Rc<Kernel>,
    deadline: u64,
    registered: bool,
}

impl Future for Wait {
    type Output = ();
    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        if self.registered {
            if self.kernel.now() >= self.deadline {
                Poll::Ready(())
            } else {
                // Spurious wake before the deadline: our timer is still
                // pending and will wake us again.
                Poll::Pending
            }
        } else {
            self.registered = true;
            self.kernel
                .schedule(self.deadline, TimerAction::Wake(cx.waker().clone()));
            Poll::Pending
        }
    }
}

struct JoinState<T> {
    result: Option<T>,
    finished: bool,
    waiters: Vec<Waker>,
}

/// Handle to a spawned process; awaiting it yields the process output.
///
/// Dropping the handle is fine — fire-and-forget processes (the norm for
/// model components) keep running without it.
///
/// # Panics
///
/// Awaiting the same handle after it already yielded its output panics, as
/// the output has been moved out.
pub struct JoinHandle<T> {
    id: SpawnId,
    state: Rc<RefCell<JoinState<T>>>,
}

impl<T> fmt::Debug for JoinHandle<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("JoinHandle")
            .field("id", &self.id)
            .field("finished", &self.is_finished())
            .finish()
    }
}

impl<T> JoinHandle<T> {
    /// The spawn identifier of the underlying process.
    pub fn id(&self) -> SpawnId {
        self.id
    }

    /// Whether the process has run to completion.
    pub fn is_finished(&self) -> bool {
        self.state.borrow().finished
    }

    /// Takes the result if the process has completed (non-blocking).
    pub fn try_take(&self) -> Option<T> {
        self.state.borrow_mut().result.take()
    }
}

impl<T> Future for JoinHandle<T> {
    type Output = T;
    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<T> {
        let mut s = self.state.borrow_mut();
        if s.finished {
            match s.result.take() {
                Some(v) => Poll::Ready(v),
                None => panic!("JoinHandle polled after its output was taken"),
            }
        } else {
            s.waiters.push(cx.waker().clone());
            Poll::Pending
        }
    }
}

/// A deterministic discrete-event simulation.
///
/// Owns the kernel; processes are added with [`Simulation::spawn`] (or via
/// [`SimHandle::spawn`] from inside a running process) and executed by
/// [`Simulation::run`] / [`Simulation::run_until`].
///
/// ```
/// use tve_sim::{Simulation, Duration};
/// let mut sim = Simulation::new();
/// let h = sim.handle();
/// let order = std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
/// for (i, delay) in [(0u32, 20u64), (1, 10)] {
///     let h = h.clone();
///     let order = order.clone();
///     sim.spawn(async move {
///         h.wait(Duration::cycles(delay)).await;
///         order.borrow_mut().push(i);
///     });
/// }
/// sim.run();
/// assert_eq!(*order.borrow(), vec![1, 0]); // temporal order, not spawn order
/// ```
pub struct Simulation {
    kernel: Rc<Kernel>,
}

impl fmt::Debug for Simulation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Simulation")
            .field("now", &self.kernel.now())
            .field("live_tasks", &self.kernel.live_tasks())
            .finish()
    }
}

impl Default for Simulation {
    fn default() -> Self {
        Self::new()
    }
}

impl Simulation {
    /// Creates an empty simulation at time zero.
    pub fn new() -> Self {
        Simulation {
            kernel: Kernel::new(),
        }
    }

    /// A handle for use by model code.
    pub fn handle(&self) -> SimHandle {
        SimHandle {
            kernel: Rc::clone(&self.kernel),
        }
    }

    /// The current simulated time.
    pub fn now(&self) -> Time {
        Time::from_cycles(self.kernel.now())
    }

    /// Number of processes that have been spawned and not yet completed.
    pub fn live_tasks(&self) -> usize {
        self.kernel.live_tasks()
    }

    /// Kernel activity counters since construction: `(task polls, timer
    /// events fired)` — the event-density figures behind abstraction-level
    /// comparisons.
    pub fn kernel_stats(&self) -> (u64, u64) {
        (self.kernel.polls.get(), self.kernel.timers_fired.get())
    }

    /// Spawns a process; see [`SimHandle::spawn`].
    pub fn spawn<F>(&mut self, future: F) -> JoinHandle<F::Output>
    where
        F: Future + 'static,
    {
        self.handle().spawn(future)
    }

    /// Runs until no further activity is possible (event-queue exhaustion).
    ///
    /// Processes still blocked on never-notified events remain suspended;
    /// [`Simulation::live_tasks`] reports them, which is how model-level
    /// deadlock is detected in tests.
    pub fn run(&mut self) -> Time {
        self.run_until(Time::MAX)
    }

    /// Runs until the event queue is exhausted or simulated time would pass
    /// `horizon`; returns the reached time.
    ///
    /// When stopping at the horizon, time is advanced to exactly `horizon`
    /// (unless `horizon` is [`Time::MAX`], which is treated as "no limit").
    pub fn run_until(&mut self, horizon: Time) -> Time {
        loop {
            self.kernel.drain_ready();
            if !self.kernel.advance(horizon.cycles()) {
                break;
            }
        }
        if horizon != Time::MAX && self.kernel.now() < horizon.cycles() {
            // No event beyond this point: idle until the horizon.
            if self
                .kernel
                .timers
                .borrow()
                .peek()
                .map(|e| e.time > horizon.cycles())
                .unwrap_or(true)
            {
                self.kernel.now.set(horizon.cycles());
            }
        }
        self.now()
    }

    /// Runs for an additional `d` cycles of simulated time.
    pub fn run_for(&mut self, d: Duration) -> Time {
        let horizon = Time::from_cycles(self.kernel.now().saturating_add(d.as_cycles()));
        self.run_until(horizon)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;

    #[test]
    fn empty_simulation_terminates_at_zero() {
        let mut sim = Simulation::new();
        assert_eq!(sim.run(), Time::ZERO);
        assert_eq!(sim.live_tasks(), 0);
    }

    #[test]
    fn single_wait_advances_time() {
        let mut sim = Simulation::new();
        let h = sim.handle();
        sim.spawn(async move {
            h.wait(Duration::cycles(42)).await;
        });
        assert_eq!(sim.run(), Time::from_cycles(42));
    }

    #[test]
    fn sequential_waits_accumulate() {
        let mut sim = Simulation::new();
        let h = sim.handle();
        let handle = sim.spawn(async move {
            for _ in 0..5 {
                h.wait(Duration::cycles(10)).await;
            }
            h.now()
        });
        sim.run();
        assert_eq!(handle.try_take(), Some(Time::from_cycles(50)));
    }

    #[test]
    fn interleaving_is_temporal_then_spawn_order() {
        let mut sim = Simulation::new();
        let h = sim.handle();
        let log: Rc<RefCell<Vec<(u64, u32)>>> = Rc::new(RefCell::new(Vec::new()));
        for (i, delay) in [(0u32, 30u64), (1, 10), (2, 20), (3, 10)] {
            let h = h.clone();
            let log = Rc::clone(&log);
            sim.spawn(async move {
                h.wait(Duration::cycles(delay)).await;
                log.borrow_mut().push((h.now().cycles(), i));
            });
        }
        sim.run();
        // At time 10 tasks 1 and 3 fire in spawn (scheduling) order.
        assert_eq!(*log.borrow(), vec![(10, 1), (10, 3), (20, 2), (30, 0)]);
    }

    #[test]
    fn zero_wait_is_delta_yield() {
        let mut sim = Simulation::new();
        let h = sim.handle();
        let log: Rc<RefCell<Vec<&str>>> = Rc::new(RefCell::new(Vec::new()));
        {
            let log = Rc::clone(&log);
            let h2 = h.clone();
            sim.spawn(async move {
                log.borrow_mut().push("a1");
                h2.wait(Duration::ZERO).await;
                log.borrow_mut().push("a2");
            });
        }
        {
            let log = Rc::clone(&log);
            sim.spawn(async move {
                log.borrow_mut().push("b1");
            });
        }
        let end = sim.run();
        assert_eq!(end, Time::ZERO);
        assert_eq!(*log.borrow(), vec!["a1", "b1", "a2"]);
    }

    #[test]
    fn spawn_from_inside_process() {
        let mut sim = Simulation::new();
        let h = sim.handle();
        let outer = sim.spawn(async move {
            let h2 = h.clone();
            let child = h.spawn(async move {
                h2.wait(Duration::cycles(7)).await;
                h2.now().cycles()
            });
            child.await
        });
        sim.run();
        assert_eq!(outer.try_take(), Some(7));
    }

    #[test]
    fn join_handle_reports_finished() {
        let mut sim = Simulation::new();
        let h = sim.handle();
        let jh = sim.spawn(async move {
            h.wait(Duration::cycles(5)).await;
            123u32
        });
        assert!(!jh.is_finished());
        sim.run();
        assert!(jh.is_finished());
        assert_eq!(jh.try_take(), Some(123));
        assert_eq!(jh.try_take(), None);
    }

    #[test]
    fn run_until_stops_at_horizon() {
        let mut sim = Simulation::new();
        let h = sim.handle();
        let done = Rc::new(Cell::new(false));
        let done2 = Rc::clone(&done);
        sim.spawn(async move {
            h.wait(Duration::cycles(100)).await;
            done2.set(true);
        });
        let t = sim.run_until(Time::from_cycles(50));
        assert_eq!(t, Time::from_cycles(50));
        assert!(!done.get());
        let t = sim.run();
        assert_eq!(t, Time::from_cycles(100));
        assert!(done.get());
    }

    #[test]
    fn run_for_is_relative() {
        let mut sim = Simulation::new();
        let h = sim.handle();
        sim.spawn(async move {
            h.wait(Duration::cycles(1000)).await;
        });
        sim.run_for(Duration::cycles(10));
        assert_eq!(sim.now(), Time::from_cycles(10));
        sim.run_for(Duration::cycles(10));
        assert_eq!(sim.now(), Time::from_cycles(20));
        assert_eq!(sim.live_tasks(), 1);
    }

    #[test]
    fn blocked_task_counts_as_live_after_run() {
        let mut sim = Simulation::new();
        let h = sim.handle();
        let ev = crate::Event::new(&h);
        sim.spawn(async move {
            ev.wait().await; // never notified
        });
        sim.run();
        assert_eq!(sim.live_tasks(), 1);
    }

    #[test]
    fn determinism_two_identical_runs() {
        fn run_once() -> Vec<(u64, u32)> {
            let mut sim = Simulation::new();
            let h = sim.handle();
            let log: Rc<RefCell<Vec<(u64, u32)>>> = Rc::new(RefCell::new(Vec::new()));
            for i in 0..20u32 {
                let h = h.clone();
                let log = Rc::clone(&log);
                sim.spawn(async move {
                    for k in 0..10u64 {
                        h.wait(Duration::cycles((i as u64 * 7 + k * 3) % 11 + 1))
                            .await;
                        log.borrow_mut().push((h.now().cycles(), i));
                    }
                });
            }
            sim.run();
            let v = log.borrow().clone();
            v
        }
        assert_eq!(run_once(), run_once());
    }

    #[test]
    fn task_panic_propagates_out_of_run() {
        // A panicking process is a model bug; the kernel does not swallow
        // it — the panic unwinds out of `run` with its original message.
        let result = std::panic::catch_unwind(|| {
            let mut sim = Simulation::new();
            let h = sim.handle();
            sim.spawn(async move {
                h.wait(Duration::cycles(5)).await;
                panic!("model bug at cycle 5");
            });
            sim.run();
        });
        let err = result.expect_err("panic must propagate");
        let msg = err
            .downcast_ref::<&str>()
            .copied()
            .unwrap_or("<non-str payload>");
        assert!(msg.contains("model bug"), "{msg}");
    }

    #[test]
    fn many_tasks_complete() {
        let mut sim = Simulation::new();
        let h = sim.handle();
        let count = Rc::new(Cell::new(0u32));
        for i in 0..1000u64 {
            let h = h.clone();
            let count = Rc::clone(&count);
            sim.spawn(async move {
                h.wait(Duration::cycles(i % 97)).await;
                count.set(count.get() + 1);
            });
        }
        sim.run();
        assert_eq!(count.get(), 1000);
        assert_eq!(sim.live_tasks(), 0);
    }
}
