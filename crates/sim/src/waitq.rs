//! [`WaitQueue`] — the lightweight suspend/wake slot behind the
//! synchronization primitives in [`crate::sync`].
//!
//! Semantically a [`crate::Event`] (epoch-counted, wake-all, no memory of
//! past notifications), but embedded by value inside a primitive's inner
//! struct instead of carrying its own `Rc<RefCell<..>>`, and registering
//! waiters as packed arena task ids. A `Semaphore`/`Fifo`/`Signal` wait
//! is then: one `Vec` push to register, one intrusive ready-queue link
//! per waiter to wake — no `Waker` clones and no per-wait allocation in
//! steady state.

use std::cell::{Cell, RefCell};
use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;
use std::rc::Weak;
use std::task::{Context, Poll};

use crate::executor::{register_waiter, wake_waiters, Kernel, Waiter};
use crate::SimHandle;

/// An embeddable wake-all wait slot (see the module docs).
pub(crate) struct WaitQueue {
    kernel: Weak<Kernel>,
    epoch: Cell<u64>,
    waiters: RefCell<Vec<Waiter>>,
}

impl WaitQueue {
    pub(crate) fn new(handle: &SimHandle) -> Self {
        WaitQueue {
            kernel: Rc::downgrade(&handle.kernel),
            epoch: Cell::new(0),
            waiters: RefCell::new(Vec::new()),
        }
    }

    /// Bumps the epoch and wakes every currently-registered waiter, in
    /// registration order. A task that starts waiting afterwards does not
    /// observe this wakeup (same loss semantics as [`crate::Event`]).
    pub(crate) fn wake_all(&self) {
        self.epoch.set(self.epoch.get() + 1);
        let waiters = std::mem::take(&mut *self.waiters.borrow_mut());
        wake_waiters(waiters, &self.kernel);
    }

    /// Waits for the next [`WaitQueue::wake_all`] after this call.
    pub(crate) fn wait(&self) -> QueueWait<'_> {
        QueueWait {
            queue: self,
            observed: None,
        }
    }

    /// Number of registered waiters (diagnostic).
    #[cfg(test)]
    pub(crate) fn waiter_count(&self) -> usize {
        self.waiters.borrow().len()
    }
}

/// Future returned by [`WaitQueue::wait`]; borrows the queue, so it never
/// needs an `Rc` of its own.
pub(crate) struct QueueWait<'a> {
    queue: &'a WaitQueue,
    observed: Option<u64>,
}

impl Future for QueueWait<'_> {
    type Output = ();
    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        let q = self.queue;
        match self.observed {
            Some(e) if q.epoch.get() > e => Poll::Ready(()),
            observed => {
                if observed.is_none() {
                    self.observed = Some(q.epoch.get());
                }
                // First poll, or a spurious wake consumed our registration:
                // (re-)register.
                register_waiter(&mut q.waiters.borrow_mut(), &q.kernel, cx);
                Poll::Pending
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Duration, Simulation};
    use std::cell::Cell;

    #[test]
    fn wake_all_resumes_every_current_waiter() {
        let mut sim = Simulation::new();
        let h = sim.handle();
        let q = Rc::new(WaitQueue::new(&h));
        let woken = Rc::new(Cell::new(0u32));
        for _ in 0..3 {
            let q = Rc::clone(&q);
            let woken = Rc::clone(&woken);
            sim.spawn(async move {
                q.wait().await;
                woken.set(woken.get() + 1);
            });
        }
        {
            let q = Rc::clone(&q);
            let h2 = h.clone();
            sim.spawn(async move {
                h2.wait(Duration::cycles(5)).await;
                q.wake_all();
            });
        }
        sim.run();
        assert_eq!(woken.get(), 3);
    }

    #[test]
    fn late_waiter_misses_past_wakeup() {
        let mut sim = Simulation::new();
        let h = sim.handle();
        let q = Rc::new(WaitQueue::new(&h));
        q.wake_all(); // nobody waiting: lost
        {
            let q = Rc::clone(&q);
            sim.spawn(async move {
                q.wait().await;
            });
        }
        sim.run();
        assert_eq!(sim.live_tasks(), 1, "waiter must still be blocked");
        assert_eq!(q.waiter_count(), 1);
    }
}
