//! VCD (Value Change Dump) export of recorded traces, for inspection in
//! standard waveform viewers — the debug companion of TLM exploration.

use std::fmt::Write as _;
use std::io::{self, Write};

use crate::trace::ScalarTrace;

/// Writes `traces` as a VCD document to `out`.
///
/// Each trace becomes a 64-bit `integer` variable under the `tve` scope;
/// timestamps are the traces' cycle times. Traces need not share
/// timestamps; changes are merged in time order. A `writer` can be any
/// `io::Write` — note that a `&mut Vec<u8>` works for in-memory export.
///
/// # Errors
///
/// Propagates I/O errors from `out`.
///
/// # Panics
///
/// Panics if more than 94²=8836 traces are passed (VCD id space of this
/// simple two-character encoder).
pub fn write_vcd<W: Write>(traces: &[&ScalarTrace], out: &mut W) -> io::Result<()> {
    assert!(
        traces.len() <= 94 * 94,
        "too many traces for the id encoder"
    );
    let id_of = |i: usize| -> String {
        let a = (i % 94) as u8 + 33;
        if i < 94 {
            (a as char).to_string()
        } else {
            let b = (i / 94) as u8 + 33;
            format!("{}{}", b as char, a as char)
        }
    };

    let mut header = String::new();
    writeln!(header, "$version tve-sim trace export $end").expect("string write");
    writeln!(header, "$timescale 1ns $end").expect("string write");
    writeln!(header, "$scope module tve $end").expect("string write");
    for (i, t) in traces.iter().enumerate() {
        let name: String = t
            .name()
            .chars()
            .map(|c| if c.is_whitespace() { '_' } else { c })
            .collect();
        writeln!(header, "$var integer 64 {} {} $end", id_of(i), name).expect("string write");
    }
    writeln!(header, "$upscope $end").expect("string write");
    writeln!(header, "$enddefinitions $end").expect("string write");
    out.write_all(header.as_bytes())?;

    // Merge all change points in time order.
    let mut events: Vec<(u64, usize, i64)> = Vec::new();
    for (i, t) in traces.iter().enumerate() {
        for p in t.points() {
            events.push((p.time.cycles(), i, p.value));
        }
    }
    events.sort();
    let mut current_time: Option<u64> = None;
    let mut body = String::new();
    for (time, idx, value) in events {
        if current_time != Some(time) {
            writeln!(body, "#{time}").expect("string write");
            current_time = Some(time);
        }
        writeln!(body, "b{:b} {}", value as u64, id_of(idx)).expect("string write");
    }
    out.write_all(body.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ScalarTrace, Time};

    fn t(c: u64) -> Time {
        Time::from_cycles(c)
    }

    #[test]
    fn vcd_contains_header_vars_and_changes() {
        let mut a = ScalarTrace::new("bus util");
        a.record(t(0), 0);
        a.record(t(10), 3);
        let mut b = ScalarTrace::new("power");
        b.record(t(5), 120);
        let mut out = Vec::new();
        write_vcd(&[&a, &b], &mut out).unwrap();
        let s = String::from_utf8(out).unwrap();
        assert!(s.contains("$var integer 64 ! bus_util $end"), "{s}");
        assert!(s.contains("$var integer 64 \" power $end"), "{s}");
        assert!(s.contains("$enddefinitions $end"), "{s}");
        assert!(s.contains("#0\nb0 !"), "{s}");
        assert!(s.contains("#5\nb1111000 \""), "{s}");
        assert!(s.contains("#10\nb11 !"), "{s}");
    }

    #[test]
    fn changes_are_time_ordered_across_traces() {
        let mut a = ScalarTrace::new("a");
        a.record(t(20), 1);
        let mut b = ScalarTrace::new("b");
        b.record(t(10), 2);
        let mut out = Vec::new();
        write_vcd(&[&a, &b], &mut out).unwrap();
        let s = String::from_utf8(out).unwrap();
        let p10 = s.find("#10").unwrap();
        let p20 = s.find("#20").unwrap();
        assert!(p10 < p20);
    }

    #[test]
    fn empty_traces_yield_a_valid_skeleton() {
        let a = ScalarTrace::new("empty");
        let mut out = Vec::new();
        write_vcd(&[&a], &mut out).unwrap();
        let s = String::from_utf8(out).unwrap();
        assert!(s.contains("$enddefinitions"));
        assert!(!s.contains('#'));
    }
}
