//! VCD (Value Change Dump) export of recorded traces, for inspection in
//! standard waveform viewers — the debug companion of TLM exploration.

use std::fmt::Write as _;
use std::io::{self, Write};

use crate::trace::ScalarTrace;

/// Sanitizes a trace name into a VCD identifier: characters outside
/// `[A-Za-z0-9_.$]` become `_` (whitespace included), and an empty or
/// fully-scrubbed name falls back to `sig`. VCD readers split the `$var`
/// line on whitespace, so an unsanitized name silently corrupts the
/// header.
fn sanitize_name(raw: &str) -> String {
    let cleaned: String = raw
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || matches!(c, '_' | '.' | '$') {
                c
            } else {
                '_'
            }
        })
        .collect();
    if cleaned.is_empty() {
        "sig".to_string()
    } else {
        cleaned
    }
}

/// Writes `traces` as a VCD document to `out`.
///
/// Each trace becomes a 64-bit `integer` variable under the `tve` scope;
/// timestamps are the traces' cycle times. Traces need not share
/// timestamps; changes are merged in time order. A `writer` can be any
/// `io::Write` — note that a `&mut Vec<u8>` works for in-memory export.
///
/// Signal names are sanitized to the VCD-safe set `[A-Za-z0-9_.$]`
/// (anything else becomes `_`) and deduplicated with `_2`, `_3`, …
/// suffixes, so two traces that collapse to the same cleaned name still
/// get distinct variables.
///
/// # Errors
///
/// Propagates I/O errors from `out`.
///
/// # Panics
///
/// Panics if more than 94²=8836 traces are passed (VCD id space of this
/// simple two-character encoder).
pub fn write_vcd<W: Write>(traces: &[&ScalarTrace], out: &mut W) -> io::Result<()> {
    assert!(
        traces.len() <= 94 * 94,
        "too many traces for the id encoder"
    );
    let id_of = |i: usize| -> String {
        let a = (i % 94) as u8 + 33;
        if i < 94 {
            (a as char).to_string()
        } else {
            let b = (i / 94) as u8 + 33;
            format!("{}{}", b as char, a as char)
        }
    };

    let mut header = String::new();
    writeln!(header, "$version tve-sim trace export $end").expect("string write");
    writeln!(header, "$timescale 1ns $end").expect("string write");
    writeln!(header, "$scope module tve $end").expect("string write");
    let mut used = std::collections::HashSet::new();
    for (i, t) in traces.iter().enumerate() {
        let base = sanitize_name(t.name());
        let mut name = base.clone();
        let mut n = 2;
        while !used.insert(name.clone()) {
            name = format!("{base}_{n}");
            n += 1;
        }
        writeln!(header, "$var integer 64 {} {} $end", id_of(i), name).expect("string write");
    }
    writeln!(header, "$upscope $end").expect("string write");
    writeln!(header, "$enddefinitions $end").expect("string write");
    out.write_all(header.as_bytes())?;

    // Merge all change points in time order.
    let mut events: Vec<(u64, usize, i64)> = Vec::new();
    for (i, t) in traces.iter().enumerate() {
        for p in t.points() {
            events.push((p.time.cycles(), i, p.value));
        }
    }
    events.sort();
    let mut current_time: Option<u64> = None;
    let mut body = String::new();
    for (time, idx, value) in events {
        if current_time != Some(time) {
            writeln!(body, "#{time}").expect("string write");
            current_time = Some(time);
        }
        writeln!(body, "b{:b} {}", value as u64, id_of(idx)).expect("string write");
    }
    out.write_all(body.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ScalarTrace, Time};

    fn t(c: u64) -> Time {
        Time::from_cycles(c)
    }

    #[test]
    fn vcd_contains_header_vars_and_changes() {
        let mut a = ScalarTrace::new("bus util");
        a.record(t(0), 0);
        a.record(t(10), 3);
        let mut b = ScalarTrace::new("power");
        b.record(t(5), 120);
        let mut out = Vec::new();
        write_vcd(&[&a, &b], &mut out).unwrap();
        let s = String::from_utf8(out).unwrap();
        assert!(s.contains("$var integer 64 ! bus_util $end"), "{s}");
        assert!(s.contains("$var integer 64 \" power $end"), "{s}");
        assert!(s.contains("$enddefinitions $end"), "{s}");
        assert!(s.contains("#0\nb0 !"), "{s}");
        assert!(s.contains("#5\nb1111000 \""), "{s}");
        assert!(s.contains("#10\nb11 !"), "{s}");
    }

    #[test]
    fn changes_are_time_ordered_across_traces() {
        let mut a = ScalarTrace::new("a");
        a.record(t(20), 1);
        let mut b = ScalarTrace::new("b");
        b.record(t(10), 2);
        let mut out = Vec::new();
        write_vcd(&[&a, &b], &mut out).unwrap();
        let s = String::from_utf8(out).unwrap();
        let p10 = s.find("#10").unwrap();
        let p20 = s.find("#20").unwrap();
        assert!(p10 < p20);
    }

    #[test]
    fn hostile_names_are_sanitized_and_deduplicated() {
        let mut a = ScalarTrace::new("bus util [ch 0]");
        a.record(t(0), 1);
        let mut b = ScalarTrace::new("bus util (ch 0)");
        b.record(t(0), 2);
        let c = ScalarTrace::new("");
        let d = ScalarTrace::new("\t\n ");
        let mut out = Vec::new();
        write_vcd(&[&a, &b, &c, &d], &mut out).unwrap();
        let s = String::from_utf8(out).unwrap();
        // Both hostile names collapse to the same cleaned form; the second
        // gets a numeric suffix instead of shadowing the first.
        assert!(s.contains("$var integer 64 ! bus_util__ch_0_ $end"), "{s}");
        assert!(
            s.contains("$var integer 64 \" bus_util__ch_0__2 $end"),
            "{s}"
        );
        // An empty name falls back to the default; an all-whitespace name
        // is scrubbed character-for-character and stays distinct from it.
        assert!(s.contains(" sig $end"), "{s}");
        assert!(s.contains(" ___ $end"), "{s}");
    }

    /// `(id, name)` pairs from the `$var` declarations.
    type Vars = Vec<(String, String)>;
    /// `(time, id, value)` change records.
    type Changes = Vec<(u64, String, u64)>;

    /// Minimal VCD reader over the `$var` declarations and change records
    /// — enough structure awareness to prove the emitted document parses
    /// back losslessly.
    fn parse_vcd(s: &str) -> (Vars, Changes) {
        let mut vars = Vec::new();
        let mut changes = Vec::new();
        let mut now = 0u64;
        for line in s.lines() {
            let fields: Vec<&str> = line.split_whitespace().collect();
            match fields.as_slice() {
                ["$var", "integer", "64", id, name, "$end"] => {
                    vars.push((id.to_string(), name.to_string()));
                }
                [ts] if ts.starts_with('#') => now = ts[1..].parse().unwrap(),
                [value, id] if value.starts_with('b') => {
                    let v = u64::from_str_radix(&value[1..], 2).unwrap();
                    changes.push((now, id.to_string(), v));
                }
                _ => {}
            }
        }
        (vars, changes)
    }

    #[test]
    fn vcd_roundtrips_through_a_parser() {
        let mut a = ScalarTrace::new("bus util");
        a.record(t(0), 0);
        a.record(t(10), 3);
        let mut b = ScalarTrace::new("bus\tutil");
        b.record(t(5), 120);
        let mut out = Vec::new();
        write_vcd(&[&a, &b], &mut out).unwrap();
        let s = String::from_utf8(out).unwrap();

        let (vars, changes) = parse_vcd(&s);
        assert_eq!(
            vars,
            vec![
                ("!".to_string(), "bus_util".to_string()),
                ("\"".to_string(), "bus_util_2".to_string()),
            ]
        );
        // Every name is unique and VCD-safe after sanitization.
        let names: std::collections::HashSet<_> = vars.iter().map(|(_, n)| n).collect();
        assert_eq!(names.len(), vars.len());
        for (_, name) in &vars {
            assert!(name
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || matches!(c, '_' | '.' | '$')));
        }
        // The change records survive the roundtrip in time order.
        assert_eq!(
            changes,
            vec![
                (0, "!".to_string(), 0),
                (5, "\"".to_string(), 120),
                (10, "!".to_string(), 3),
            ]
        );
    }

    #[test]
    fn empty_traces_yield_a_valid_skeleton() {
        let a = ScalarTrace::new("empty");
        let mut out = Vec::new();
        write_vcd(&[&a], &mut out).unwrap();
        let s = String::from_utf8(out).unwrap();
        assert!(s.contains("$enddefinitions"));
        assert!(!s.contains('#'));
    }
}
