//! TAM utilization accounting — the instrument behind Table I's
//! "peak TAM utilization" and "avg TAM utilization" columns.

use std::collections::BTreeMap;
use std::fmt;

use tve_sim::{Duration, Time};

use crate::payload::InitiatorId;

/// Windowed busy-cycle accounting for a shared channel.
///
/// The channel reports each granted occupancy interval via
/// [`UtilizationMonitor::record_busy`]; the monitor splits intervals across
/// fixed-size windows. *Peak* utilization is the busiest window's busy
/// fraction, *average* utilization is total busy cycles over an observation
/// span — exactly the two figures the paper reports per schedule.
///
/// ```
/// use tve_sim::{Time, Duration};
/// use tve_tlm::{UtilizationMonitor, InitiatorId};
///
/// let mut m = UtilizationMonitor::new(Duration::cycles(100));
/// m.record_busy(Time::from_cycles(0), Duration::cycles(50), InitiatorId(0));
/// m.record_busy(Time::from_cycles(100), Duration::cycles(100), InitiatorId(1));
/// assert_eq!(m.peak_utilization(), 1.0);             // window [100,200) fully busy
/// assert_eq!(m.average_utilization(Time::from_cycles(300)), 0.5);
/// ```
#[derive(Debug, Clone)]
pub struct UtilizationMonitor {
    window: u64,
    windows: BTreeMap<u64, u64>,
    /// Write-behind cache for the window currently being filled: long
    /// activity bursts land in one window, so buffering its count in a
    /// plain pair keeps the per-transfer cost off the `BTreeMap`.
    hot_w: u64,
    hot_busy: u64,
    /// Linear small-map: a channel sees a handful of initiators, and a
    /// scan of a short `Vec` beats a tree lookup per transfer.
    per_initiator: Vec<(InitiatorId, u64)>,
    total_busy: u64,
    transfers: u64,
    last_end: Time,
}

impl fmt::Display for UtilizationMonitor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "util: {} transfers, {} busy cycles, peak {:.1}%",
            self.transfers,
            self.total_busy,
            self.peak_utilization() * 100.0
        )
    }
}

impl UtilizationMonitor {
    /// Creates a monitor with the given peak-detection window.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero cycles.
    pub fn new(window: Duration) -> Self {
        assert!(window.as_cycles() > 0, "window must be non-empty");
        UtilizationMonitor {
            window: window.as_cycles(),
            windows: BTreeMap::new(),
            hot_w: 0,
            hot_busy: 0,
            per_initiator: Vec::new(),
            total_busy: 0,
            transfers: 0,
            last_end: Time::ZERO,
        }
    }

    /// Folds the hot-window buffer into the window map.
    fn flush_hot(&mut self) {
        if self.hot_busy > 0 {
            *self.windows.entry(self.hot_w).or_insert(0) += self.hot_busy;
            self.hot_busy = 0;
        }
    }

    /// All windows with activity, sorted by index, hot buffer folded in.
    fn window_entries(&self) -> Vec<(u64, u64)> {
        let mut v: Vec<(u64, u64)> = self.windows.iter().map(|(&w, &b)| (w, b)).collect();
        if self.hot_busy > 0 {
            match v.binary_search_by_key(&self.hot_w, |e| e.0) {
                Ok(i) => v[i].1 += self.hot_busy,
                Err(i) => v.insert(i, (self.hot_w, self.hot_busy)),
            }
        }
        v
    }

    /// The peak-detection window length.
    pub fn window(&self) -> Duration {
        Duration::cycles(self.window)
    }

    /// Records that the channel was busy for `dur` starting at `start` on
    /// behalf of `initiator`.
    pub fn record_busy(&mut self, start: Time, dur: Duration, initiator: InitiatorId) {
        let t = start.cycles();
        let d = dur.as_cycles();
        let end = t + d;
        self.transfers += 1;
        self.total_busy += d;
        match self.per_initiator.iter_mut().find(|(i, _)| *i == initiator) {
            Some((_, busy)) => *busy += d,
            None => self.per_initiator.push((initiator, d)),
        }
        // Same-window fast path: back-to-back transfers land in the hot
        // window far more often than not, and skipping the split loop
        // avoids a hardware divide per transfer.
        let hot_start = self.hot_w * self.window;
        if t >= hot_start && end <= hot_start + self.window {
            self.hot_busy += d;
        } else {
            self.record_split(t, end);
        }
        self.last_end = self.last_end.max(Time::from_cycles(end));
    }

    /// Splits `[t, end)` across peak-detection windows (the slow path of
    /// [`UtilizationMonitor::record_busy`]).
    fn record_split(&mut self, mut t: u64, end: u64) {
        while t < end {
            let w = t / self.window;
            let wend = (w + 1) * self.window;
            let chunk = end.min(wend) - t;
            if w != self.hot_w {
                self.flush_hot();
                self.hot_w = w;
            }
            self.hot_busy += chunk;
            t += chunk;
        }
    }

    /// Total busy cycles recorded.
    pub fn total_busy_cycles(&self) -> u64 {
        self.total_busy
    }

    /// Number of recorded transfers.
    pub fn transfer_count(&self) -> u64 {
        self.transfers
    }

    /// End of the latest recorded interval (or explicit observation mark).
    pub fn last_activity_end(&self) -> Time {
        self.last_end
    }

    /// Extends the observation span to `t` without recording activity:
    /// the channel is known to have been *idle* up to `t`, which matters
    /// for normalizing the final (partial) peak-detection window.
    pub fn observe_until(&mut self, t: Time) {
        self.last_end = self.last_end.max(t);
    }

    /// Busy cycles attributed to `initiator`.
    pub fn busy_cycles_of(&self, initiator: InitiatorId) -> u64 {
        self.per_initiator
            .iter()
            .find(|(i, _)| *i == initiator)
            .map_or(0, |(_, busy)| *busy)
    }

    /// All per-initiator busy totals (sorted by initiator id).
    pub fn per_initiator(&self) -> impl Iterator<Item = (InitiatorId, u64)> + '_ {
        let mut sorted = self.per_initiator.clone();
        sorted.sort_unstable_by_key(|&(i, _)| i);
        sorted.into_iter()
    }

    /// The busiest window's busy fraction in `[0, 1]`; zero when nothing was
    /// recorded. The final (possibly partial) window is normalized by the
    /// span actually observed, so short runs are not underestimated.
    pub fn peak_utilization(&self) -> f64 {
        let last = self.last_end.cycles();
        self.window_entries()
            .into_iter()
            .map(|(w, busy)| {
                let start = w * self.window;
                let len = last.saturating_sub(start).min(self.window).max(1);
                busy as f64 / len as f64
            })
            .fold(0.0, f64::max)
    }

    /// Per-window busy cycles `(window index, busy cycles)`, sorted by
    /// index; windows with no activity are absent.
    pub fn window_busy(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.window_entries().into_iter()
    }

    /// Busy fraction over `[0, span_end)`; zero for an empty span.
    pub fn average_utilization(&self, span_end: Time) -> f64 {
        if span_end == Time::ZERO {
            return 0.0;
        }
        self.total_busy as f64 / span_end.cycles() as f64
    }

    /// Exports the windowed busy profile as a [`ScalarTrace`] (one sample
    /// per active window, value = busy fraction in per-mille), for
    /// waveform-style inspection via [`tve_sim::write_vcd`].
    ///
    /// [`ScalarTrace`]: tve_sim::ScalarTrace
    pub fn to_trace(&self, name: impl Into<String>) -> tve_sim::ScalarTrace {
        let mut trace = tve_sim::ScalarTrace::new(name);
        for (w, busy) in self.window_entries() {
            trace.record(
                Time::from_cycles(w * self.window),
                (busy * 1000 / self.window) as i64,
            );
        }
        trace
    }

    /// Clears all recorded data, keeping the window configuration.
    pub fn reset(&mut self) {
        self.windows.clear();
        self.hot_w = 0;
        self.hot_busy = 0;
        self.per_initiator.clear();
        self.total_busy = 0;
        self.transfers = 0;
        self.last_end = Time::ZERO;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(c: u64) -> Time {
        Time::from_cycles(c)
    }
    fn d(c: u64) -> Duration {
        Duration::cycles(c)
    }

    #[test]
    fn empty_monitor_reports_zero() {
        let m = UtilizationMonitor::new(d(100));
        assert_eq!(m.peak_utilization(), 0.0);
        assert_eq!(m.average_utilization(t(1000)), 0.0);
        assert_eq!(m.average_utilization(Time::ZERO), 0.0);
        assert_eq!(m.transfer_count(), 0);
    }

    #[test]
    fn interval_splitting_across_windows() {
        let mut m = UtilizationMonitor::new(d(10));
        // [5, 25): windows 0 gets 5, 1 gets 10, 2 gets 5.
        m.record_busy(t(5), d(20), InitiatorId(0));
        assert_eq!(m.total_busy_cycles(), 20);
        assert_eq!(m.peak_utilization(), 1.0); // window 1 fully busy
        assert_eq!(m.last_activity_end(), t(25));
    }

    #[test]
    fn peak_below_one_without_saturation() {
        let mut m = UtilizationMonitor::new(d(100));
        for k in 0..10 {
            m.record_busy(t(k * 100), d(60), InitiatorId(0));
        }
        m.observe_until(t(1000));
        assert!((m.peak_utilization() - 0.6).abs() < 1e-12);
        assert!((m.average_utilization(t(1000)) - 0.6).abs() < 1e-12);
    }

    #[test]
    fn final_partial_window_is_normalized_by_observed_span() {
        let mut m = UtilizationMonitor::new(d(100));
        // Observation ends right at the burst's end: that stretch was
        // fully busy.
        m.record_busy(t(900), d(60), InitiatorId(0));
        assert_eq!(m.peak_utilization(), 1.0);
        // Once we know the channel idled on to cycle 1000, the window
        // dilutes to 0.6.
        m.observe_until(t(1000));
        assert!((m.peak_utilization() - 0.6).abs() < 1e-12);
    }

    #[test]
    fn per_initiator_attribution() {
        let mut m = UtilizationMonitor::new(d(100));
        m.record_busy(t(0), d(30), InitiatorId(1));
        m.record_busy(t(30), d(20), InitiatorId(2));
        m.record_busy(t(50), d(10), InitiatorId(1));
        assert_eq!(m.busy_cycles_of(InitiatorId(1)), 40);
        assert_eq!(m.busy_cycles_of(InitiatorId(2)), 20);
        assert_eq!(m.busy_cycles_of(InitiatorId(3)), 0);
        let all: Vec<_> = m.per_initiator().collect();
        assert_eq!(all, vec![(InitiatorId(1), 40), (InitiatorId(2), 20)]);
    }

    #[test]
    fn reset_clears_everything() {
        let mut m = UtilizationMonitor::new(d(10));
        m.record_busy(t(0), d(10), InitiatorId(0));
        m.reset();
        assert_eq!(m.total_busy_cycles(), 0);
        assert_eq!(m.peak_utilization(), 0.0);
        assert_eq!(m.window(), d(10));
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn zero_window_panics() {
        let _ = UtilizationMonitor::new(Duration::ZERO);
    }

    #[test]
    fn long_interval_spans_many_windows() {
        let mut m = UtilizationMonitor::new(d(10));
        // [3, 1003): 100 full windows plus two partial edges.
        m.record_busy(t(3), d(1000), InitiatorId(0));
        let windows: Vec<_> = m.window_busy().collect();
        assert_eq!(windows.len(), 101);
        assert_eq!(windows[0], (0, 7));
        assert!(windows[1..100].iter().all(|&(_, busy)| busy == 10));
        assert_eq!(windows[100], (100, 3));
        let window_sum: u64 = windows.iter().map(|&(_, busy)| busy).sum();
        assert_eq!(window_sum, m.total_busy_cycles());
        assert_eq!(m.peak_utilization(), 1.0);
    }

    #[test]
    fn zero_length_duration_counts_a_transfer_but_no_busy_cycles() {
        let mut m = UtilizationMonitor::new(d(10));
        m.record_busy(t(5), d(0), InitiatorId(1));
        assert_eq!(m.transfer_count(), 1);
        assert_eq!(m.total_busy_cycles(), 0);
        assert_eq!(m.busy_cycles_of(InitiatorId(1)), 0);
        assert_eq!(m.window_busy().count(), 0, "no window entry for 0 cycles");
        assert_eq!(m.peak_utilization(), 0.0);
        // The zero-length event still marks the observation point.
        assert_eq!(m.last_activity_end(), t(5));
    }

    #[test]
    fn observe_until_before_last_activity_end_is_a_no_op() {
        let mut m = UtilizationMonitor::new(d(100));
        m.record_busy(t(0), d(80), InitiatorId(0));
        let peak_before = m.peak_utilization();
        m.observe_until(t(40)); // earlier than last_end = 80
        assert_eq!(m.last_activity_end(), t(80));
        assert_eq!(m.peak_utilization(), peak_before);
    }

    #[test]
    fn observe_until_after_last_activity_end_extends_and_dilutes() {
        let mut m = UtilizationMonitor::new(d(100));
        m.record_busy(t(0), d(80), InitiatorId(0));
        assert_eq!(m.peak_utilization(), 1.0); // 80 busy of 80 observed
        m.observe_until(t(160));
        assert_eq!(m.last_activity_end(), t(160));
        // Window 0 now normalizes by the full window length.
        assert!((m.peak_utilization() - 0.8).abs() < 1e-12);
        // Idle observation never adds busy cycles or transfers.
        assert_eq!(m.total_busy_cycles(), 80);
        assert_eq!(m.transfer_count(), 1);
    }

    #[test]
    fn per_initiator_busy_sums_to_total() {
        let mut m = UtilizationMonitor::new(d(7));
        for (k, ini) in [(0u64, 0u8), (1, 3), (2, 0), (3, 7), (4, 3)] {
            m.record_busy(t(k * 13), d(k + 1), InitiatorId(ini));
        }
        let sum: u64 = m.per_initiator().map(|(_, busy)| busy).sum();
        assert_eq!(sum, m.total_busy_cycles());
    }
}
