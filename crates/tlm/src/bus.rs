//! The shared-bus TAM channel.
//!
//! In the paper's case study the functional system bus is *reused* as the
//! test access mechanism; [`BusTam`] is that channel: word-oriented,
//! arbitrated, with address-range routing to bound targets and built-in
//! utilization monitoring. Because [`BusTam`] itself implements [`TamIf`],
//! TAMs can be layered hierarchically.

use std::cell::{Cell, Ref, RefCell};
use std::fmt;
use std::rc::Rc;

use tve_obs::{Counter, Recorder, SpanKind, SpanRecord};
use tve_sim::{Duration, SimHandle};

use crate::arbiter::{Arbiter, ArbiterPolicy};
use crate::monitor::UtilizationMonitor;
use crate::payload::InitiatorId;
use crate::payload::{Command, ResponseStatus, Transaction};
use crate::power::PowerMeter;
use crate::transport::{DmiAccess, LocalBoxFuture, TamIf};

/// A channel's attachment to an observability [`Recorder`]: the shared
/// recorder plus pre-registered counter handles, so per-transfer bumps
/// never do name lookups on the hot path.
pub(crate) struct ChannelRecorder {
    pub(crate) rec: Rc<Recorder>,
    pub(crate) transfers: Counter,
    pub(crate) bits: Counter,
}

impl ChannelRecorder {
    pub(crate) fn new(channel: &str, rec: Rc<Recorder>) -> Self {
        let transfers = rec.metrics().counter(&format!("{channel}.transfers"));
        let bits = rec.metrics().counter(&format!("{channel}.bits"));
        ChannelRecorder {
            rec,
            transfers,
            bits,
        }
    }
}

/// The span label for a TAM command.
pub(crate) fn command_label(cmd: Command) -> &'static str {
    match cmd {
        Command::Read => "read",
        Command::Write => "write",
        Command::WriteRead => "write_read",
    }
}

/// A half-open address range `[base, base + size)` in the TAM address space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AddrRange {
    base: u32,
    size: u32,
}

impl AddrRange {
    /// Creates the range `[base, base + size)`.
    ///
    /// # Panics
    ///
    /// Panics if `size` is zero or the range wraps the address space.
    pub fn new(base: u32, size: u32) -> Self {
        assert!(size > 0, "address range must be non-empty");
        assert!(base.checked_add(size - 1).is_some(), "address range wraps");
        AddrRange { base, size }
    }

    /// The first address.
    pub fn base(&self) -> u32 {
        self.base
    }

    /// The range length.
    pub fn size(&self) -> u32 {
        self.size
    }

    /// Whether `addr` falls inside the range.
    pub fn contains(&self, addr: u32) -> bool {
        addr >= self.base && (addr - self.base) < self.size
    }

    /// Whether two ranges share any address.
    pub fn overlaps(&self, other: &AddrRange) -> bool {
        self.base < other.base.saturating_add(other.size)
            && other.base < self.base.saturating_add(self.size)
    }
}

impl fmt::Display for AddrRange {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{:#x}, {:#x})",
            self.base,
            self.base as u64 + self.size as u64
        )
    }
}

/// Error returned by [`BusTam::bind`] when a mapping conflicts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BindError {
    /// The rejected range.
    pub range: AddrRange,
    /// The already-bound range it overlaps.
    pub conflict: AddrRange,
}

impl fmt::Display for BindError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "range {} overlaps existing mapping {}",
            self.range, self.conflict
        )
    }
}

impl std::error::Error for BindError {}

/// Configuration of a [`BusTam`] channel.
#[derive(Debug, Clone)]
pub struct BusConfig {
    /// Channel name for diagnostics.
    pub name: String,
    /// Data bits moved per occupied cycle.
    pub width_bits: u32,
    /// Fixed per-transaction cycles (arbitration + address phase).
    pub overhead_cycles: u64,
    /// Arbitration policy among initiators.
    pub policy: ArbiterPolicy,
    /// Peak-utilization detection window.
    pub monitor_window: Duration,
    /// Maximum bits moved per granted burst; longer transfers re-arbitrate
    /// between chunks (each chunk pays `overhead_cycles` again). `None`
    /// grants whole transfers — simpler, but long scan bursts then starve
    /// short requesters.
    pub max_burst_bits: Option<u64>,
}

impl Default for BusConfig {
    fn default() -> Self {
        BusConfig {
            name: "bus".to_string(),
            width_bits: 32,
            overhead_cycles: 1,
            policy: ArbiterPolicy::Fcfs,
            monitor_window: Duration::cycles(65_536),
            max_burst_bits: None,
        }
    }
}

/// A shared-bus test access mechanism: arbitrated, bandwidth-accurate,
/// address-routed (paper Section III.A).
///
/// A transaction occupies the bus for
/// `overhead_cycles + ceil(bit_len / width_bits)` cycles, then is delivered
/// to the target bound at its address. Semantics are *split-transaction*:
/// the channel is released after the transfer, and a slow sink (e.g. a
/// wrapper whose pattern buffer is full) back-pressures its own initiator
/// without blocking other traffic — the interleaving effect that makes
/// concurrent schedules interesting to *simulate* rather than estimate.
pub struct BusTam {
    handle: SimHandle,
    cfg: BusConfig,
    arbiter: Arbiter,
    targets: RefCell<Vec<(AddrRange, Rc<dyn TamIf>)>>,
    /// Index of the target that served the last routed transaction; test
    /// traffic hammers one range at a time, so checking it first
    /// short-circuits address decode on the hot path.
    route_hint: Cell<usize>,
    /// `(bit_len, cycles)` memo for [`BusTam::occupancy_of`].
    occ_cache: Cell<(u64, u64)>,
    monitor: RefCell<UtilizationMonitor>,
    rejected: Cell<u64>,
    /// True once a power meter or recorder is attached; lets the
    /// per-transfer path skip two `RefCell` borrows on uninstrumented
    /// channels (the common case).
    instrumented: Cell<bool>,
    power: RefCell<Option<(Rc<RefCell<PowerMeter>>, f64)>>,
    recorder: RefCell<Option<ChannelRecorder>>,
}

impl fmt::Debug for BusTam {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("BusTam")
            .field("name", &self.cfg.name)
            .field("width_bits", &self.cfg.width_bits)
            .field("targets", &self.targets.borrow().len())
            .finish()
    }
}

impl BusTam {
    /// Creates an unbound bus channel.
    ///
    /// # Panics
    ///
    /// Panics if `cfg.width_bits` is zero.
    pub fn new(handle: &SimHandle, cfg: BusConfig) -> Self {
        assert!(cfg.width_bits > 0, "bus width must be positive");
        BusTam {
            handle: handle.clone(),
            arbiter: Arbiter::new(handle, cfg.policy),
            targets: RefCell::new(Vec::new()),
            route_hint: Cell::new(0),
            occ_cache: Cell::new((u64::MAX, 0)),
            monitor: RefCell::new(UtilizationMonitor::new(cfg.monitor_window)),
            rejected: Cell::new(0),
            instrumented: Cell::new(false),
            power: RefCell::new(None),
            recorder: RefCell::new(None),
            cfg,
        }
    }

    /// Attaches a power meter: every occupied transfer cycle draws
    /// `active_power`, attributed to the channel's name.
    pub fn attach_power_meter(&self, meter: Rc<RefCell<PowerMeter>>, active_power: f64) {
        *self.power.borrow_mut() = Some((meter, active_power));
        self.instrumented.set(true);
    }

    /// Attaches an observability recorder: every granted occupancy chunk
    /// becomes a [`tve_obs::SpanKind::Transfer`] span on this channel's
    /// track (1:1 with [`UtilizationMonitor::record_busy`] calls), and
    /// the `"<name>.transfers"` / `"<name>.bits"` counters accumulate in
    /// the recorder's metrics registry.
    pub fn attach_recorder(&self, recorder: Rc<Recorder>) {
        *self.recorder.borrow_mut() = Some(ChannelRecorder::new(&self.cfg.name, recorder));
        self.instrumented.set(true);
    }

    /// The channel configuration.
    pub fn config(&self) -> &BusConfig {
        &self.cfg
    }

    /// Binds `target` at `range` (the SystemC `bind` of the paper's Fig. 2).
    ///
    /// # Errors
    ///
    /// Returns [`BindError`] if `range` overlaps an existing mapping.
    pub fn bind(&self, range: AddrRange, target: Rc<dyn TamIf>) -> Result<(), BindError> {
        let mut targets = self.targets.borrow_mut();
        for (existing, _) in targets.iter() {
            if existing.overlaps(&range) {
                return Err(BindError {
                    range,
                    conflict: *existing,
                });
            }
        }
        targets.push((range, target));
        Ok(())
    }

    /// Number of bound targets.
    pub fn target_count(&self) -> usize {
        self.targets.borrow().len()
    }

    /// The channel's utilization monitor.
    pub fn monitor(&self) -> Ref<'_, UtilizationMonitor> {
        self.monitor.borrow()
    }

    /// Clears utilization statistics (e.g. between schedule runs).
    pub fn reset_monitor(&self) {
        self.monitor.borrow_mut().reset();
    }

    /// Marks the channel as observed (idle) up to `t`; see
    /// [`UtilizationMonitor::observe_until`].
    pub fn observe_monitor_until(&self, t: tve_sim::Time) {
        self.monitor.borrow_mut().observe_until(t);
    }

    /// Transactions that failed address decode.
    pub fn rejected_count(&self) -> u64 {
        self.rejected.get()
    }

    /// Cycles a transfer of `bit_len` bits occupies this bus.
    ///
    /// Memoizes the last `bit_len`: memory tests issue millions of
    /// same-size transfers and the `div_ceil` is a hardware divide.
    pub fn occupancy_of(&self, bit_len: u64) -> Duration {
        let (k, v) = self.occ_cache.get();
        if k == bit_len {
            return Duration::cycles(v);
        }
        let cycles = self.cfg.overhead_cycles + bit_len.div_ceil(self.cfg.width_bits as u64);
        self.occ_cache.set((bit_len, cycles));
        Duration::cycles(cycles)
    }

    /// Cold half of the per-transfer bookkeeping: power-meter and
    /// recorder updates for channels that attached either. Kept out of
    /// line so the common (uninstrumented) transfer never touches the
    /// two `Option` cells.
    #[cold]
    fn record_instrumentation(&self, txn: &Transaction, start: tve_sim::Time, dur: Duration) {
        if let Some((meter, p)) = &*self.power.borrow() {
            meter.borrow_mut().record(start, dur, *p, &self.cfg.name);
        }
        if let Some(obs) = &*self.recorder.borrow() {
            obs.rec.record_with(|| {
                SpanRecord::new(
                    SpanKind::Transfer,
                    self.cfg.name.as_str(),
                    command_label(txn.cmd),
                    start,
                    start + dur,
                )
                .with_initiator(txn.initiator.0)
                .with_bits(txn.bit_len)
            });
            obs.transfers.inc();
            obs.bits.add(txn.bit_len);
        }
    }

    /// Index of `addr`'s target in `targets`, trying the route hint
    /// before a linear scan.
    fn route_index(&self, targets: &[(AddrRange, Rc<dyn TamIf>)], addr: u32) -> Option<usize> {
        let hint = self.route_hint.get();
        if let Some((range, _)) = targets.get(hint) {
            if range.contains(addr) {
                return Some(hint);
            }
        }
        let i = targets.iter().position(|(range, _)| range.contains(addr))?;
        self.route_hint.set(i);
        Some(i)
    }

    fn lookup(&self, addr: u32) -> Option<Rc<dyn TamIf>> {
        let targets = self.targets.borrow();
        self.route_index(&targets, addr)
            .map(|i| Rc::clone(&targets[i].1))
    }
}

/// A [`DmiAccess`] grant through a [`BusTam`]: each word access gates and
/// books the channel exactly like a single-word
/// [`TamIf::transport_sync_try`] — arbitration-idle check, quantum-budget
/// absorption of the 32-bit occupancy, utilization-monitor busy record —
/// then delegates the data movement to the routed target's own grant.
struct BusDmi {
    bus: Rc<BusTam>,
    inner: Rc<dyn DmiAccess>,
    /// `occupancy_of(32)`, precomputed: the bus config is immutable.
    occupancy: Duration,
    initiator: InitiatorId,
}

impl BusDmi {
    /// The gates of `transport_sync_try` up to and including absorbing
    /// the channel occupancy into the local quantum budget. On `true`
    /// the occupancy has been consumed; a subsequent inner decline must
    /// refund it with `local_wait_undo`.
    fn channel_admit(&self) -> bool {
        if !self.bus.handle.lt_active() {
            return false;
        }
        // Instrumentation (power meter, span recorder) is recorded on
        // the transactional path only; decline so the fallback keeps
        // those records exact.
        if self.bus.instrumented.get() {
            return false;
        }
        if !self.bus.arbiter.is_idle() {
            return false;
        }
        self.bus.handle.try_local_wait(self.occupancy)
    }

    /// The channel-side bookkeeping of a completed access, in the same
    /// order as `transport_sync_try`: acquire, record busy, release.
    fn channel_commit(&self) {
        let granted = self.bus.arbiter.try_acquire(self.initiator);
        debug_assert!(granted, "DMI access raced the arbiter");
        let start = self.bus.handle.now();
        self.bus
            .monitor
            .borrow_mut()
            .record_busy(start, self.occupancy, self.initiator);
        self.bus.arbiter.release();
    }
}

impl DmiAccess for BusDmi {
    fn dmi_read(&self, addr: u32) -> Option<u32> {
        if !self.channel_admit() {
            return None;
        }
        match self.inner.dmi_read(addr) {
            Some(word) => {
                self.channel_commit();
                Some(word)
            }
            None => {
                self.bus.handle.local_wait_undo(self.occupancy);
                None
            }
        }
    }

    fn dmi_write(&self, addr: u32, value: u32) -> bool {
        if !self.channel_admit() {
            return false;
        }
        if !self.inner.dmi_write(addr, value) {
            self.bus.handle.local_wait_undo(self.occupancy);
            return false;
        }
        self.channel_commit();
        true
    }
}

impl TamIf for BusTam {
    fn name(&self) -> &str {
        &self.cfg.name
    }

    fn transport<'a>(&'a self, txn: &'a mut Transaction) -> LocalBoxFuture<'a, ()> {
        Box::pin(async move {
            let target = self.lookup(txn.addr);
            // Burst segmentation: move the payload in chunks, releasing
            // the channel between them so short requesters interleave.
            let mut remaining = txn.bit_len;
            loop {
                let chunk = match self.cfg.max_burst_bits {
                    Some(mb) => remaining.min(mb.max(1)),
                    None => remaining,
                };
                self.arbiter.acquire(txn.initiator).await;
                let dur = self.occupancy_of(chunk);
                self.monitor
                    .borrow_mut()
                    .record_busy(self.handle.now(), dur, txn.initiator);
                if self.instrumented.get() {
                    if let Some((meter, p)) = &*self.power.borrow() {
                        meter
                            .borrow_mut()
                            .record(self.handle.now(), dur, *p, &self.cfg.name);
                    }
                    if let Some(obs) = &*self.recorder.borrow() {
                        let start = self.handle.now();
                        obs.rec.record_with(|| {
                            SpanRecord::new(
                                SpanKind::Transfer,
                                self.cfg.name.as_str(),
                                command_label(txn.cmd),
                                start,
                                start + dur,
                            )
                            .with_initiator(txn.initiator.0)
                            .with_bits(chunk)
                        });
                        obs.transfers.inc();
                        obs.bits.add(chunk);
                    }
                }
                self.handle.wait(dur).await;
                // Split-transaction semantics: the channel is released
                // after each transfer; target-side acceptance (e.g. a
                // wrapper waiting for a free pattern buffer) happens off
                // the bus, so a slow sink back-pressures its initiator
                // without blocking other traffic.
                self.arbiter.release();
                remaining -= chunk;
                if remaining == 0 {
                    break;
                }
            }
            match target {
                Some(target) => target.transport(txn).await,
                None => {
                    self.rejected.set(self.rejected.get() + 1);
                    txn.status = ResponseStatus::AddressError;
                }
            }
        })
    }

    /// Loosely-timed fast path: a whole single-chunk transfer completes
    /// synchronously when the bus is idle, the occupancy fits in the
    /// calling task's quantum budget, and the routed target is itself
    /// synchronous for this transaction.
    fn transport_is_sync(&self, txn: &Transaction) -> bool {
        // Cheapest gate first: always false in accurate mode.
        if !self.handle.local_wait_fits(self.occupancy_of(txn.bit_len)) {
            return false;
        }
        // Burst segmentation re-arbitrates between chunks; keep that on
        // the event-driven path.
        if self
            .cfg
            .max_burst_bits
            .is_some_and(|mb| txn.bit_len > mb.max(1))
        {
            return false;
        }
        if !self.arbiter.is_idle() {
            return false;
        }
        let targets = self.targets.borrow();
        match self.route_index(&targets, txn.addr) {
            Some(i) => targets[i].1.transport_is_sync(txn),
            None => true, // the address-error path never suspends
        }
    }

    fn transport_sync(&self, txn: &mut Transaction) {
        let granted = self.arbiter.try_acquire(txn.initiator);
        debug_assert!(granted, "transport_sync raced the arbiter");
        let dur = self.occupancy_of(txn.bit_len);
        let start = self.handle.now();
        self.monitor
            .borrow_mut()
            .record_busy(start, dur, txn.initiator);
        if self.instrumented.get() {
            self.record_instrumentation(txn, start, dur);
        }
        let absorbed = self.handle.try_local_wait(dur);
        debug_assert!(absorbed, "transport_sync wait no longer fits");
        self.arbiter.release();
        let targets = self.targets.borrow();
        match self.route_index(&targets, txn.addr) {
            Some(i) => targets[i].1.transport_sync(txn),
            None => {
                self.rejected.set(self.rejected.get() + 1);
                txn.status = ResponseStatus::AddressError;
            }
        }
    }

    /// Single-pass fast path: the gate checks and the transfer share one
    /// route lookup and one arbiter touch. The routed component runs
    /// first so a decline leaves no trace on this channel; synchronous
    /// targets never consume channel time, so the reordering is not
    /// observable in the monitor or the local quantum budget.
    fn transport_sync_try(&self, txn: &mut Transaction) -> bool {
        // Cheapest gate first: always declines in accurate mode.
        if !self.handle.lt_active() {
            return false;
        }
        // Burst segmentation re-arbitrates between chunks; keep that on
        // the event-driven path.
        if self
            .cfg
            .max_burst_bits
            .is_some_and(|mb| txn.bit_len > mb.max(1))
        {
            return false;
        }
        if !self.arbiter.is_idle() {
            return false;
        }
        // Fused fits-and-consume: one kernel touch instead of a fits
        // check up front plus a consuming call after the gates.
        let dur = self.occupancy_of(txn.bit_len);
        if !self.handle.try_local_wait(dur) {
            return false;
        }
        let targets = self.targets.borrow();
        let routed = self.route_index(&targets, txn.addr);
        if let Some(i) = routed {
            if !targets[i].1.transport_sync_try(txn) {
                // Rare: the routed component declined after the channel
                // time was absorbed; refund it (all-or-nothing).
                self.handle.local_wait_undo(dur);
                return false;
            }
        }
        let granted = self.arbiter.try_acquire(txn.initiator);
        debug_assert!(granted, "transport_sync_try raced the arbiter");
        let start = self.handle.now();
        self.monitor
            .borrow_mut()
            .record_busy(start, dur, txn.initiator);
        if self.instrumented.get() {
            self.record_instrumentation(txn, start, dur);
        }
        self.arbiter.release();
        if routed.is_none() {
            self.rejected.set(self.rejected.get() + 1);
            txn.status = ResponseStatus::AddressError;
        }
        true
    }

    /// Grants DMI when the whole window routes into one target that
    /// itself grants. Declines on instrumented channels (power/recorder
    /// records stay on the transactional path) and when burst
    /// segmentation would split a 32-bit access.
    fn dmi_window(
        self: Rc<Self>,
        base: u32,
        words: u32,
        initiator: InitiatorId,
    ) -> Option<Rc<dyn DmiAccess>> {
        if words == 0 || self.instrumented.get() {
            return None;
        }
        if self.cfg.max_burst_bits.is_some_and(|mb| mb.max(1) < 32) {
            return None;
        }
        let end = base.checked_add(words - 1)?;
        let target = {
            let targets = self.targets.borrow();
            let i = self.route_index(&targets, base)?;
            let (range, target) = &targets[i];
            if !range.contains(end) {
                return None;
            }
            Rc::clone(target)
        };
        let inner = target.dmi_window(base, words, initiator)?;
        let occupancy = self.occupancy_of(32);
        Some(Rc::new(BusDmi {
            bus: self,
            inner,
            occupancy,
            initiator,
        }))
    }
}

/// A permissive test target: accepts any command instantly, serves zeroed
/// data on reads, and counts traffic. Useful for tests, examples and
/// utilization experiments.
#[derive(Debug)]
pub struct SinkTarget {
    name: String,
    transactions: Cell<u64>,
    bits: Cell<u64>,
}

impl SinkTarget {
    /// Creates a named sink.
    pub fn new(name: impl Into<String>) -> Self {
        SinkTarget {
            name: name.into(),
            transactions: Cell::new(0),
            bits: Cell::new(0),
        }
    }

    /// Transactions absorbed so far.
    pub fn transaction_count(&self) -> u64 {
        self.transactions.get()
    }

    /// Payload bits absorbed so far.
    pub fn bit_count(&self) -> u64 {
        self.bits.get()
    }
}

impl TamIf for SinkTarget {
    fn name(&self) -> &str {
        &self.name
    }

    fn transport<'a>(&'a self, txn: &'a mut Transaction) -> LocalBoxFuture<'a, ()> {
        Box::pin(async move { self.transport_sync(txn) })
    }

    fn transport_is_sync(&self, _txn: &Transaction) -> bool {
        true // a sink consumes no time and never suspends
    }

    fn transport_sync(&self, txn: &mut Transaction) {
        self.transactions.set(self.transactions.get() + 1);
        self.bits.set(self.bits.get() + txn.bit_len);
        if matches!(txn.cmd, Command::Read | Command::WriteRead) && !txn.data.is_empty() {
            txn.data.iter_mut().for_each(|w| *w = 0);
        } else if matches!(txn.cmd, Command::Read) {
            txn.data = vec![0; (txn.bit_len as usize).div_ceil(32)];
        }
        txn.status = ResponseStatus::Ok;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::payload::InitiatorId;
    use crate::transport::TamIfExt;
    use tve_sim::Simulation;

    fn setup() -> (Simulation, Rc<BusTam>, Rc<SinkTarget>) {
        let sim = Simulation::new();
        let h = sim.handle();
        let bus = Rc::new(BusTam::new(&h, BusConfig::default()));
        let sink = Rc::new(SinkTarget::new("sink"));
        bus.bind(
            AddrRange::new(0x1000, 0x1000),
            Rc::clone(&sink) as Rc<dyn TamIf>,
        )
        .unwrap();
        (sim, bus, sink)
    }

    #[test]
    fn addr_range_semantics() {
        let r = AddrRange::new(0x100, 0x10);
        assert!(r.contains(0x100));
        assert!(r.contains(0x10F));
        assert!(!r.contains(0x110));
        assert!(!r.contains(0xFF));
        assert!(r.overlaps(&AddrRange::new(0x10F, 1)));
        assert!(!r.overlaps(&AddrRange::new(0x110, 0x10)));
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn zero_size_range_panics() {
        let _ = AddrRange::new(0, 0);
    }

    #[test]
    fn transfer_timing_is_width_accurate() {
        let (mut sim, bus, _) = setup();
        let b = Rc::clone(&bus);
        sim.spawn(async move {
            // 128 bits over a 32-bit bus + 1 overhead = 5 cycles.
            b.write(InitiatorId(0), 0x1000, &[1, 2, 3, 4], 128)
                .await
                .unwrap();
        });
        assert_eq!(sim.run().cycles(), 5);
        assert_eq!(bus.monitor().total_busy_cycles(), 5);
        assert_eq!(bus.occupancy_of(128), Duration::cycles(5));
    }

    #[test]
    fn unmapped_address_reports_error_and_counts() {
        let (mut sim, bus, _) = setup();
        let b = Rc::clone(&bus);
        let jh = sim.spawn(async move { b.write(InitiatorId(0), 0x9999_0000, &[1], 32).await });
        sim.run();
        let err = jh.try_take().unwrap().unwrap_err();
        assert_eq!(err.status, ResponseStatus::AddressError);
        assert_eq!(bus.rejected_count(), 1);
    }

    #[test]
    fn overlapping_bind_is_rejected() {
        let (_sim, bus, _) = setup();
        let err = bus
            .bind(AddrRange::new(0x1800, 0x10), Rc::new(SinkTarget::new("x")))
            .unwrap_err();
        assert_eq!(err.conflict, AddrRange::new(0x1000, 0x1000));
        assert_eq!(bus.target_count(), 1);
    }

    #[test]
    fn contention_serializes_and_is_fully_accounted() {
        let (mut sim, bus, sink) = setup();
        for i in 0..3u8 {
            let b = Rc::clone(&bus);
            sim.spawn(async move {
                // each: 1 + 320/32 = 11 cycles
                b.transfer_volume(InitiatorId(i), Command::Write, 0x1000, 320)
                    .await
                    .unwrap();
            });
        }
        assert_eq!(sim.run().cycles(), 33);
        assert_eq!(bus.monitor().total_busy_cycles(), 33);
        assert_eq!(bus.monitor().transfer_count(), 3);
        assert_eq!(sink.transaction_count(), 3);
        assert_eq!(sink.bit_count(), 960);
        // Saturated channel: peak utilization 100 % over the busy window.
        assert!(bus.monitor().average_utilization(sim.now()) > 0.99);
    }

    #[test]
    fn volume_only_transactions_cost_the_same_time() {
        let (mut sim, bus, _) = setup();
        let b = Rc::clone(&bus);
        sim.spawn(async move {
            b.transfer_volume(InitiatorId(0), Command::Write, 0x1000, 128)
                .await
                .unwrap();
        });
        assert_eq!(sim.run().cycles(), 5);
    }

    #[test]
    fn burst_segmentation_pays_overhead_per_chunk() {
        let mut sim = Simulation::new();
        let h = sim.handle();
        let bus = Rc::new(BusTam::new(
            &h,
            BusConfig {
                max_burst_bits: Some(32),
                ..BusConfig::default()
            },
        ));
        bus.bind(AddrRange::new(0, 0x10), Rc::new(SinkTarget::new("s")))
            .unwrap();
        let b = Rc::clone(&bus);
        sim.spawn(async move {
            b.transfer_volume(InitiatorId(0), Command::Write, 0, 128)
                .await
                .unwrap();
        });
        // 4 chunks x (1 overhead + 1 transfer) = 8 cycles (vs 5 whole).
        assert_eq!(sim.run().cycles(), 8);
        assert_eq!(bus.monitor().total_busy_cycles(), 8);
        assert_eq!(bus.monitor().transfer_count(), 4);
    }

    #[test]
    fn segmentation_bounds_short_requester_latency() {
        fn short_op_done_at(max_burst: Option<u64>) -> u64 {
            let mut sim = Simulation::new();
            let h = sim.handle();
            let bus = Rc::new(BusTam::new(
                &h,
                BusConfig {
                    max_burst_bits: max_burst,
                    ..BusConfig::default()
                },
            ));
            bus.bind(AddrRange::new(0, 0x10), Rc::new(SinkTarget::new("s")))
                .unwrap();
            // A long 4096-bit burst starts first...
            {
                let b = Rc::clone(&bus);
                sim.spawn(async move {
                    b.transfer_volume(InitiatorId(0), Command::Write, 0, 4096)
                        .await
                        .unwrap();
                });
            }
            // ...then a 32-bit op arrives one delta later.
            let b = Rc::clone(&bus);
            let h2 = h.clone();
            let jh = sim.spawn(async move {
                h2.wait(Duration::cycles(1)).await;
                b.transfer_volume(InitiatorId(1), Command::Write, 0, 32)
                    .await
                    .unwrap();
                h2.now().cycles()
            });
            sim.run();
            jh.try_take().unwrap()
        }
        let whole = short_op_done_at(None);
        let segmented = short_op_done_at(Some(256));
        assert_eq!(whole, 131, "waits for the entire 129-cycle burst");
        assert!(
            segmented <= 15,
            "segmented bus must interleave quickly, got {segmented}"
        );
    }

    #[test]
    fn recorder_spans_mirror_the_monitor_exactly() {
        let mut sim = Simulation::new();
        let h = sim.handle();
        let bus = Rc::new(BusTam::new(
            &h,
            BusConfig {
                max_burst_bits: Some(64),
                ..BusConfig::default()
            },
        ));
        bus.bind(
            AddrRange::new(0x1000, 0x1000),
            Rc::new(SinkTarget::new("s")),
        )
        .unwrap();
        let rec = Rc::new(tve_obs::Recorder::unbounded());
        bus.attach_recorder(Rc::clone(&rec));
        for i in 0..3u8 {
            let b = Rc::clone(&bus);
            sim.spawn(async move {
                b.transfer_volume(InitiatorId(i), Command::Write, 0x1000, 160)
                    .await
                    .unwrap();
            });
        }
        sim.run();
        let log = rec.take_log();
        // One span per monitor-recorded chunk, same busy cycles.
        assert_eq!(log.spans.len() as u64, bus.monitor().transfer_count());
        let span_busy: u64 = log.spans.iter().map(|s| s.duration().as_cycles()).sum();
        assert_eq!(span_busy, bus.monitor().total_busy_cycles());
        let u = tve_obs::utilization_from_spans(
            log.spans.iter(),
            bus.config().monitor_window.as_cycles(),
            bus.monitor().last_activity_end(),
        );
        assert_eq!(u.peak(), bus.monitor().peak_utilization());
        assert_eq!(
            u.average(),
            bus.monitor()
                .average_utilization(bus.monitor().last_activity_end())
        );
        for (ini, busy) in bus.monitor().per_initiator() {
            assert_eq!(
                u.per_initiator.iter().find(|&&(i, _)| i == ini.0),
                Some(&(ini.0, busy))
            );
        }
        // Counters accumulated alongside.
        assert_eq!(
            log.counters,
            vec![
                ("bus.transfers".to_string(), log.spans.len() as u64),
                ("bus.bits".to_string(), 480),
            ]
        );
    }

    #[test]
    fn disabled_recorder_changes_nothing_and_stores_nothing() {
        let (mut sim, bus, _) = setup();
        let rec = Rc::new(tve_obs::Recorder::disabled());
        bus.attach_recorder(Rc::clone(&rec));
        let b = Rc::clone(&bus);
        sim.spawn(async move {
            b.write(InitiatorId(0), 0x1000, &[1, 2, 3, 4], 128)
                .await
                .unwrap();
        });
        assert_eq!(sim.run().cycles(), 5);
        assert_eq!(rec.span_count(), 0);
        // Counters still count (they are cheap plain cells).
        assert_eq!(rec.metrics().counter("bus.transfers").get(), 1);
    }

    #[test]
    fn hierarchical_buses_compose() {
        let mut sim = Simulation::new();
        let h = sim.handle();
        let outer = Rc::new(BusTam::new(&h, BusConfig::default()));
        let inner = Rc::new(BusTam::new(
            &h,
            BusConfig {
                name: "inner".to_string(),
                width_bits: 8,
                ..BusConfig::default()
            },
        ));
        let sink = Rc::new(SinkTarget::new("leaf"));
        inner
            .bind(
                AddrRange::new(0x2000, 0x100),
                Rc::clone(&sink) as Rc<dyn TamIf>,
            )
            .unwrap();
        outer
            .bind(
                AddrRange::new(0x2000, 0x1000),
                Rc::clone(&inner) as Rc<dyn TamIf>,
            )
            .unwrap();
        let o = Rc::clone(&outer);
        sim.spawn(async move {
            o.write(InitiatorId(0), 0x2000, &[0xAA], 32).await.unwrap();
        });
        // outer: 1 + 1 = 2 cycles; inner: 1 + 4 = 5 cycles.
        assert_eq!(sim.run().cycles(), 7);
        assert_eq!(sink.transaction_count(), 1);
    }
}
