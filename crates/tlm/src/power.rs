//! Power metering over simulated time.
//!
//! The paper motivates simulation precisely because schedules are planned
//! with coarse data: "in order to gain accurate information regarding
//! *power* and TAM utilization, the final schedule should be evaluated
//! using simulation". [`PowerMeter`] is that instrument: components report
//! load intervals with a magnitude; the meter yields windowed peak power,
//! average power and energy, per contributing source.

use std::collections::BTreeMap;
use std::fmt;

use tve_sim::{Duration, Time};

/// A windowed power/energy recorder.
///
/// Components call [`PowerMeter::record`] with a time interval and a power
/// magnitude (arbitrary but consistent units, milliwatts by convention).
/// Peak power is the busiest window's average; energy is power × time.
///
/// ```
/// use tve_sim::{Time, Duration};
/// use tve_tlm::PowerMeter;
///
/// let mut m = PowerMeter::new(Duration::cycles(100));
/// m.record(Time::from_cycles(0), Duration::cycles(100), 50.0, "core-a");
/// m.record(Time::from_cycles(0), Duration::cycles(50), 100.0, "core-b");
/// assert_eq!(m.peak_power(), 100.0); // first half: 50 + 100... averaged per window
/// ```
#[derive(Debug, Clone)]
pub struct PowerMeter {
    window: u64,
    /// Energy per window index.
    windows: BTreeMap<u64, f64>,
    per_source: BTreeMap<String, f64>,
    total_energy: f64,
    last_end: Time,
}

impl fmt::Display for PowerMeter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "power: peak {:.1}, energy {:.0} (x cycles), {} sources",
            self.peak_power(),
            self.total_energy,
            self.per_source.len()
        )
    }
}

impl PowerMeter {
    /// Creates a meter with the given peak-detection window.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    pub fn new(window: Duration) -> Self {
        assert!(window.as_cycles() > 0, "window must be non-empty");
        PowerMeter {
            window: window.as_cycles(),
            windows: BTreeMap::new(),
            per_source: BTreeMap::new(),
            total_energy: 0.0,
            last_end: Time::ZERO,
        }
    }

    /// Records `power` drawn over `[start, start + dur)` by `source`.
    pub fn record(&mut self, start: Time, dur: Duration, power: f64, source: &str) {
        if dur == Duration::ZERO || power == 0.0 {
            return;
        }
        let mut t = start.cycles();
        let end = t + dur.as_cycles();
        let energy = power * dur.as_cycles() as f64;
        self.total_energy += energy;
        *self.per_source.entry(source.to_string()).or_insert(0.0) += energy;
        while t < end {
            let w = t / self.window;
            let wend = (w + 1) * self.window;
            let chunk = end.min(wend) - t;
            *self.windows.entry(w).or_insert(0.0) += power * chunk as f64;
            t += chunk;
        }
        self.last_end = self.last_end.max(Time::from_cycles(end));
    }

    /// Extends the observation span without recording load (idle power is
    /// zero); matters for normalizing the final window.
    pub fn observe_until(&mut self, t: Time) {
        self.last_end = self.last_end.max(t);
    }

    /// Total recorded energy (power × cycles).
    pub fn total_energy(&self) -> f64 {
        self.total_energy
    }

    /// End of the observation span.
    pub fn last_activity_end(&self) -> Time {
        self.last_end
    }

    /// Energy attributed to `source`.
    pub fn energy_of(&self, source: &str) -> f64 {
        self.per_source.get(source).copied().unwrap_or(0.0)
    }

    /// All per-source energies, alphabetically.
    pub fn per_source(&self) -> impl Iterator<Item = (&str, f64)> {
        self.per_source.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// The busiest window's average power; the final (partial) window is
    /// normalized by the observed span.
    pub fn peak_power(&self) -> f64 {
        let last = self.last_end.cycles();
        self.windows
            .iter()
            .map(|(&w, &e)| {
                let start = w * self.window;
                let len = last.saturating_sub(start).min(self.window).max(1);
                e / len as f64
            })
            .fold(0.0, f64::max)
    }

    /// Average power over `[0, span_end)`.
    pub fn average_power(&self, span_end: Time) -> f64 {
        if span_end == Time::ZERO {
            return 0.0;
        }
        self.total_energy / span_end.cycles() as f64
    }

    /// Clears all recordings, keeping the window configuration.
    pub fn reset(&mut self) {
        self.windows.clear();
        self.per_source.clear();
        self.total_energy = 0.0;
        self.last_end = Time::ZERO;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(c: u64) -> Time {
        Time::from_cycles(c)
    }
    fn d(c: u64) -> Duration {
        Duration::cycles(c)
    }

    #[test]
    fn energy_accumulates_per_source() {
        let mut m = PowerMeter::new(d(100));
        m.record(t(0), d(10), 5.0, "a");
        m.record(t(10), d(10), 3.0, "b");
        m.record(t(20), d(10), 5.0, "a");
        assert_eq!(m.total_energy(), 130.0);
        assert_eq!(m.energy_of("a"), 100.0);
        assert_eq!(m.energy_of("b"), 30.0);
        assert_eq!(m.energy_of("c"), 0.0);
        assert_eq!(m.per_source().count(), 2);
    }

    #[test]
    fn overlapping_loads_add_in_the_window() {
        let mut m = PowerMeter::new(d(100));
        m.record(t(0), d(100), 50.0, "a");
        m.record(t(0), d(100), 70.0, "b");
        m.observe_until(t(100));
        assert_eq!(m.peak_power(), 120.0);
        assert_eq!(m.average_power(t(100)), 120.0);
    }

    #[test]
    fn peak_finds_the_hot_window() {
        let mut m = PowerMeter::new(d(100));
        m.record(t(0), d(100), 10.0, "idle-ish");
        m.record(t(100), d(100), 90.0, "burst");
        m.record(t(200), d(100), 10.0, "idle-ish");
        assert_eq!(m.peak_power(), 90.0);
        assert!((m.average_power(t(300)) - 36.666).abs() < 0.01);
    }

    #[test]
    fn partial_final_window_is_normalized() {
        let mut m = PowerMeter::new(d(100));
        m.record(t(0), d(50), 40.0, "a");
        // Observation ends at 50: that stretch averaged 40.
        assert_eq!(m.peak_power(), 40.0);
        m.observe_until(t(100));
        assert_eq!(m.peak_power(), 20.0);
    }

    #[test]
    fn zero_duration_and_reset() {
        let mut m = PowerMeter::new(d(10));
        m.record(t(0), Duration::ZERO, 99.0, "a");
        assert_eq!(m.total_energy(), 0.0);
        m.record(t(0), d(10), 1.0, "a");
        m.reset();
        assert_eq!(m.total_energy(), 0.0);
        assert_eq!(m.peak_power(), 0.0);
    }
}
