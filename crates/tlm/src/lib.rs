#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! # tve-tlm — transaction-level modeling layer
//!
//! The communication-centric substrate of the reproduction: transaction
//! payloads, the object-safe [`TamIf`] transport interface of the paper's
//! Fig. 2 (`read` / `write` / `write_read`), a shared-bus TAM channel with
//! arbitration and bandwidth accounting, utilization monitors for the Table I
//! metrics, and a rate limiter modeling the ATE channel.
//!
//! The paper deliberately does *not* use the SystemC TLM-2.0 base protocol
//! because TAMs need properties beyond SoC buses; accordingly this layer
//! defines its own minimal payload and interface mirroring the paper's class
//! diagram.
//!
//! ```
//! use tve_sim::Simulation;
//! use tve_tlm::{BusTam, BusConfig, AddrRange, TamIfExt, SinkTarget, InitiatorId};
//! use std::rc::Rc;
//!
//! let mut sim = Simulation::new();
//! let h = sim.handle();
//! let bus = Rc::new(BusTam::new(&h, BusConfig::default()));
//! bus.bind(AddrRange::new(0x1000, 0x100), Rc::new(SinkTarget::new("sink")))
//!     .unwrap();
//! let bus2 = Rc::clone(&bus);
//! sim.spawn(async move {
//!     bus2.write(InitiatorId(0), 0x1000, &[0xDEAD_BEEF], 32).await.unwrap();
//! });
//! sim.run();
//! assert!(bus.monitor().total_busy_cycles() > 0);
//! ```

mod arbiter;
mod bus;
mod faulty;
mod monitor;
mod payload;
mod power;
mod rate;
mod serial;
mod transport;

pub use arbiter::{Arbiter, ArbiterPolicy};
pub use bus::{AddrRange, BindError, BusConfig, BusTam, SinkTarget};
pub use faulty::{FaultyTam, FaultyTamPolicy};
pub use monitor::UtilizationMonitor;
pub use payload::{Command, InitiatorId, ResponseStatus, Transaction};
pub use power::PowerMeter;
pub use rate::RateLimiter;
pub use serial::SerialTam;
pub use transport::{DmiAccess, LocalBoxFuture, TamError, TamIf, TamIfExt};
