//! Transaction payloads exchanged over TAMs.

use std::fmt;

/// Identifies the initiator of a transaction for arbitration and
/// per-initiator utilization accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct InitiatorId(pub u8);

impl fmt::Display for InitiatorId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "init#{}", self.0)
    }
}

/// Transaction command, mirroring the paper's `TAM_IF` interface: plain
/// reads and writes plus the combined `write_read` used by scan-style slaves
/// where data is concurrently shifted in and out.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Command {
    /// Transfer data from the target to the initiator.
    Read,
    /// Transfer data from the initiator to the target.
    Write,
    /// Concurrent shift-in/shift-out: the target consumes the payload data
    /// and replaces it with the data shifted out.
    WriteRead,
}

impl fmt::Display for Command {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Command::Read => "read",
            Command::Write => "write",
            Command::WriteRead => "write_read",
        };
        f.write_str(s)
    }
}

/// Completion status of a transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ResponseStatus {
    /// Not yet transported.
    #[default]
    Incomplete,
    /// Transported successfully.
    Ok,
    /// No target is mapped at the address.
    AddressError,
    /// The target rejected the command (e.g. a read from a write-only
    /// pattern sink, or access while in an incompatible wrapper mode).
    CommandError,
    /// The target is configured off-line (e.g. wrapper in a mode that does
    /// not accept TAM data).
    TargetError,
}

impl ResponseStatus {
    /// Whether the transaction completed successfully.
    pub fn is_ok(self) -> bool {
        self == ResponseStatus::Ok
    }
}

impl fmt::Display for ResponseStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ResponseStatus::Incomplete => "incomplete",
            ResponseStatus::Ok => "ok",
            ResponseStatus::AddressError => "address error",
            ResponseStatus::CommandError => "command error",
            ResponseStatus::TargetError => "target error",
        };
        f.write_str(s)
    }
}

/// A TAM transaction: the unit of communication between test infrastructure
/// blocks.
///
/// Data is carried as packed 32-bit words with an explicit bit length, so a
/// payload can describe scan images that are not word multiples. A payload
/// may also be *volume-only* (`data` empty, `bit_len > 0`): timing and
/// utilization are modeled from `bit_len` alone, which is how large
/// exploration runs avoid materializing terabits of stimuli.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Transaction {
    /// The command to perform.
    pub cmd: Command,
    /// Target address in the TAM address space.
    pub addr: u32,
    /// Packed payload words (little-endian bit order within the vector).
    pub data: Vec<u32>,
    /// Number of meaningful payload bits (drives transfer timing).
    pub bit_len: u64,
    /// Who issued the transaction.
    pub initiator: InitiatorId,
    /// Whether this is a volume-only (timing) transaction; see
    /// [`Transaction::volume`].
    pub volume: bool,
    /// Filled in by the target.
    pub status: ResponseStatus,
}

impl Transaction {
    /// Creates a write transaction carrying `data` (of `bit_len` bits).
    ///
    /// # Panics
    ///
    /// Panics if `data` is too short for `bit_len`.
    pub fn write(initiator: InitiatorId, addr: u32, data: Vec<u32>, bit_len: u64) -> Self {
        assert!(
            (data.len() as u64) * 32 >= bit_len || data.is_empty(),
            "payload words too short for bit_len"
        );
        Transaction {
            cmd: Command::Write,
            addr,
            data,
            bit_len,
            initiator,
            volume: false,
            status: ResponseStatus::Incomplete,
        }
    }

    /// Creates a read transaction for `bit_len` bits.
    pub fn read(initiator: InitiatorId, addr: u32, bit_len: u64) -> Self {
        Transaction {
            cmd: Command::Read,
            addr,
            data: Vec::new(),
            bit_len,
            initiator,
            volume: false,
            status: ResponseStatus::Incomplete,
        }
    }

    /// Creates a combined write/read (scan shift) transaction.
    ///
    /// # Panics
    ///
    /// Panics if `data` is too short for `bit_len`.
    pub fn write_read(initiator: InitiatorId, addr: u32, data: Vec<u32>, bit_len: u64) -> Self {
        let mut t = Transaction::write(initiator, addr, data, bit_len);
        t.cmd = Command::WriteRead;
        t
    }

    /// Creates a volume-only (timing) transaction: no payload bits are
    /// materialized, only the data volume is modeled.
    pub fn volume(initiator: InitiatorId, cmd: Command, addr: u32, bit_len: u64) -> Self {
        Transaction {
            cmd,
            addr,
            data: Vec::new(),
            bit_len,
            initiator,
            volume: true,
            status: ResponseStatus::Incomplete,
        }
    }

    /// Whether this transaction models data volume and timing only (no
    /// materialized payload bits).
    pub fn is_volume_only(&self) -> bool {
        self.volume
    }
}

impl fmt::Display for Transaction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {} @{:#x} ({} bits) [{}]",
            self.initiator, self.cmd, self.addr, self.bit_len, self.status
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_set_fields() {
        let w = Transaction::write(InitiatorId(1), 0x10, vec![0xAB], 8);
        assert_eq!(w.cmd, Command::Write);
        assert_eq!(w.status, ResponseStatus::Incomplete);
        assert!(!w.is_volume_only());

        let r = Transaction::read(InitiatorId(2), 0x20, 64);
        assert_eq!(r.cmd, Command::Read);
        assert_eq!(r.bit_len, 64);

        let wr = Transaction::write_read(InitiatorId(3), 0x30, vec![0, 0], 60);
        assert_eq!(wr.cmd, Command::WriteRead);

        let v = Transaction::volume(InitiatorId(0), Command::Write, 0, 1_000_000);
        assert!(v.is_volume_only());
    }

    #[test]
    #[should_panic(expected = "too short")]
    fn write_with_short_buffer_panics() {
        let _ = Transaction::write(InitiatorId(0), 0, vec![0], 64);
    }

    #[test]
    fn status_helpers() {
        assert!(ResponseStatus::Ok.is_ok());
        assert!(!ResponseStatus::AddressError.is_ok());
        assert!(!ResponseStatus::Incomplete.is_ok());
    }

    #[test]
    fn display_round_trip() {
        let t = Transaction::write(InitiatorId(1), 0x40, vec![1], 32);
        let s = t.to_string();
        assert!(s.contains("write"), "{s}");
        assert!(s.contains("0x40"), "{s}");
    }
}
