//! The `TAM_IF` transport interface (paper Fig. 2).

use std::fmt;
use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;

use crate::payload::{Command, InitiatorId, ResponseStatus, Transaction};

/// A non-`Send` boxed future, the return type of object-safe async trait
/// methods in this single-threaded simulation.
pub type LocalBoxFuture<'a, T> = Pin<Box<dyn Future<Output = T> + 'a>>;

/// Error returned by the convenience accessors of [`TamIfExt`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TamError {
    /// The failing status reported by the target or channel.
    pub status: ResponseStatus,
    /// The address the transaction was directed at.
    pub addr: u32,
    /// The attempted command.
    pub cmd: Command,
}

impl fmt::Display for TamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} at {:#x} failed: {}",
            self.cmd, self.addr, self.status
        )
    }
}

impl std::error::Error for TamError {}

/// The transaction-level TAM interface: everything reachable over a TAM —
/// the TAM channel itself, test wrappers, decompressors/compactors, pattern
/// sources — implements this trait (the paper's `TAM_IF`, Fig. 2).
///
/// The single entry point [`TamIf::transport`] moves a [`Transaction`]
/// through the component, consuming simulated time as appropriate; the
/// `read` / `write` / `write_read` convenience methods of [`TamIfExt`] are
/// layered on top. The trait is object-safe so components can be bound
/// dynamically (the SystemC `bind` mechanism of the paper).
pub trait TamIf {
    /// A short component name for diagnostics.
    fn name(&self) -> &str;

    /// Transports `txn` through this component, updating its data (for
    /// reads) and `status`, and consuming simulated time for the transfer.
    fn transport<'a>(&'a self, txn: &'a mut Transaction) -> LocalBoxFuture<'a, ()>;

    /// Whether [`TamIf::transport_sync`] could complete `txn` right now
    /// without suspending the calling process. Must be side-effect free.
    ///
    /// This is the loosely-timed fast path: when the channel's occupancy
    /// fits in the calling task's quantum budget
    /// ([`tve_sim::SimHandle::local_wait_fits`]) and no arbitration or
    /// back-pressure would block, the whole transaction — channel, routing,
    /// target — runs as one synchronous call with no future allocation. In
    /// the default accurate mode this is always `false`, so the event-driven
    /// path (and its digests) is untouched. Components opt in; the default
    /// declines.
    fn transport_is_sync(&self, txn: &Transaction) -> bool {
        let _ = txn;
        false
    }

    /// Completes `txn` synchronously, with exactly the side effects and
    /// simulated-time cost of awaiting [`TamIf::transport`].
    ///
    /// Only call when [`TamIf::transport_is_sync`] just returned `true`
    /// with no intervening simulation activity.
    fn transport_sync(&self, txn: &mut Transaction) {
        let _ = txn;
        unreachable!("transport_sync called without transport_is_sync")
    }

    /// Attempts the synchronous fast path in one call: when `txn` can
    /// complete without suspending, performs it (with all the side
    /// effects of [`TamIf::transport_sync`]) and returns `true`;
    /// otherwise leaves `txn` and the component untouched and returns
    /// `false`.
    ///
    /// The default composes the two-step check-then-do pair. Channels
    /// override it to fuse the gate checks with the transfer — one
    /// route lookup, one arbiter touch — because at memory-test op
    /// rates the duplicate walk is measurable.
    fn transport_sync_try(&self, txn: &mut Transaction) -> bool {
        if self.transport_is_sync(txn) {
            self.transport_sync(txn);
            true
        } else {
            false
        }
    }

    /// Requests a direct-memory-interface grant over the word window
    /// `[base, base + words)` for single-word (32-bit) accesses by
    /// `initiator` — the TLM-2.0 DMI idea applied to loosely-timed
    /// memory marches: the initiator keeps the returned [`DmiAccess`]
    /// and performs each word access as one call, skipping transaction
    /// construction and the per-op interface walk.
    ///
    /// A grant is a *performance* contract, never a semantic one: every
    /// layer that grants must replicate, per operation, exactly the
    /// observable side effects of the equivalent
    /// [`TamIf::transport_sync_try`] word access — simulated time,
    /// utilization monitoring, power, counters — or decline the
    /// operation so the caller falls back to the transactional path.
    /// Digest equality between the two paths is pinned in
    /// `tests/kernel_digests.rs`.
    ///
    /// The default declines; channels and wrappers forward the request
    /// toward the memory, layering their own per-op bookkeeping on the
    /// way back.
    fn dmi_window(
        self: Rc<Self>,
        base: u32,
        words: u32,
        initiator: InitiatorId,
    ) -> Option<Rc<dyn DmiAccess>> {
        let _ = (base, words, initiator);
        None
    }
}

/// A direct word-access grant obtained from [`TamIf::dmi_window`].
///
/// Both operations are *fallible per call*: a `None` / `false` return
/// declines the single operation (revoked grant after a WIR load, bus
/// contention, exhausted quantum budget, instrumentation attached) with
/// no side effects, and the caller must perform that operation through
/// the regular transactional path instead. A successful call has
/// exactly the observable effects of the equivalent single-word
/// [`TamIf::transport_sync_try`].
pub trait DmiAccess {
    /// Reads the 32-bit word at TAM address `addr`.
    fn dmi_read(&self, addr: u32) -> Option<u32>;

    /// Writes the 32-bit word at TAM address `addr`.
    fn dmi_write(&self, addr: u32, value: u32) -> bool;
}

/// Convenience accessors over any [`TamIf`].
///
/// Blanket-implemented; bring the trait into scope and call
/// `channel.write(...)` / `channel.read(...)` / `channel.write_read(...)`.
pub trait TamIfExt: TamIf {
    /// Writes `bit_len` bits of `data` to `addr`.
    ///
    /// # Errors
    ///
    /// Returns a [`TamError`] when the target reports a non-OK status
    /// (unmapped address, incompatible mode, rejected command).
    fn write<'a>(
        &'a self,
        initiator: InitiatorId,
        addr: u32,
        data: &[u32],
        bit_len: u64,
    ) -> impl Future<Output = Result<(), TamError>> + 'a {
        let mut txn = Transaction::write(initiator, addr, data.to_vec(), bit_len);
        async move {
            self.do_transport(&mut txn).await;
            finish(txn).map(|_| ())
        }
    }

    /// Reads `bit_len` bits from `addr`.
    ///
    /// # Errors
    ///
    /// Returns a [`TamError`] when the target reports a non-OK status.
    fn read<'a>(
        &'a self,
        initiator: InitiatorId,
        addr: u32,
        bit_len: u64,
    ) -> impl Future<Output = Result<Vec<u32>, TamError>> + 'a {
        let mut txn = Transaction::read(initiator, addr, bit_len);
        async move {
            self.do_transport(&mut txn).await;
            finish(txn).map(|t| t.data)
        }
    }

    /// Concurrently shifts `data` in and the previous contents out
    /// (scan-style access).
    ///
    /// # Errors
    ///
    /// Returns a [`TamError`] when the target reports a non-OK status.
    fn write_read<'a>(
        &'a self,
        initiator: InitiatorId,
        addr: u32,
        data: Vec<u32>,
        bit_len: u64,
    ) -> impl Future<Output = Result<Vec<u32>, TamError>> + 'a {
        let mut txn = Transaction::write_read(initiator, addr, data, bit_len);
        async move {
            self.do_transport(&mut txn).await;
            finish(txn).map(|t| t.data)
        }
    }

    /// Transports a volume-only (timing) transaction of `bit_len` bits.
    ///
    /// # Errors
    ///
    /// Returns a [`TamError`] when the target reports a non-OK status.
    fn transfer_volume<'a>(
        &'a self,
        initiator: InitiatorId,
        cmd: Command,
        addr: u32,
        bit_len: u64,
    ) -> impl Future<Output = Result<(), TamError>> + 'a {
        let mut txn = Transaction::volume(initiator, cmd, addr, bit_len);
        async move {
            self.do_transport(&mut txn).await;
            finish(txn).map(|_| ())
        }
    }

    /// Transports `txn`, taking the synchronous fast path when the
    /// component offers it ([`TamIf::transport_is_sync`]).
    fn do_transport<'a>(&'a self, txn: &'a mut Transaction) -> impl Future<Output = ()> + 'a {
        async move {
            if !self.transport_sync_try(txn) {
                self.transport(txn).await;
            }
        }
    }
}

impl<T: TamIf + ?Sized> TamIfExt for T {}

fn finish(txn: Transaction) -> Result<Transaction, TamError> {
    if txn.status.is_ok() {
        Ok(txn)
    } else {
        Err(TamError {
            status: txn.status,
            addr: txn.addr,
            cmd: txn.cmd,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;
    use std::rc::Rc;

    /// A loop-back target that stores writes and echoes them on reads.
    struct Echo {
        store: RefCell<Vec<u32>>,
    }

    impl TamIf for Echo {
        fn name(&self) -> &str {
            "echo"
        }
        fn transport<'a>(&'a self, txn: &'a mut Transaction) -> LocalBoxFuture<'a, ()> {
            Box::pin(async move {
                match txn.cmd {
                    Command::Write => *self.store.borrow_mut() = txn.data.clone(),
                    Command::Read => txn.data = self.store.borrow().clone(),
                    Command::WriteRead => {
                        let old = self.store.replace(txn.data.clone());
                        txn.data = old;
                    }
                }
                txn.status = ResponseStatus::Ok;
            })
        }
    }

    #[test]
    fn ext_methods_round_trip_through_dyn_object() {
        let mut sim = tve_sim::Simulation::new();
        let echo: Rc<dyn TamIf> = Rc::new(Echo {
            store: RefCell::new(vec![7, 8]),
        });
        let e = Rc::clone(&echo);
        let jh = sim.spawn(async move {
            let init = InitiatorId(0);
            let old = e.write_read(init, 0, vec![1, 2], 64).await.unwrap();
            assert_eq!(old, vec![7, 8]);
            e.write(init, 0, &[3], 32).await.unwrap();
            e.read(init, 0, 32).await.unwrap()
        });
        sim.run();
        assert_eq!(jh.try_take(), Some(vec![3]));
    }

    #[test]
    fn tam_error_formats() {
        let e = TamError {
            status: ResponseStatus::AddressError,
            addr: 0x42,
            cmd: Command::Read,
        };
        assert_eq!(e.to_string(), "read at 0x42 failed: address error");
    }
}
