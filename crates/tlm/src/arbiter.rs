//! Bus arbitration policies.

use std::cell::{Cell, RefCell};
use std::fmt;
use std::rc::Rc;

use tve_sim::{Event, SimHandle};

use crate::payload::InitiatorId;

/// Arbitration policy of a shared TAM channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ArbiterPolicy {
    /// Grant in request order.
    #[default]
    Fcfs,
    /// Cycle through initiator ids, starting after the last grantee.
    RoundRobin,
    /// Lower initiator id wins (ties broken by request order).
    Priority,
}

impl fmt::Display for ArbiterPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ArbiterPolicy::Fcfs => "fcfs",
            ArbiterPolicy::RoundRobin => "round-robin",
            ArbiterPolicy::Priority => "priority",
        };
        f.write_str(s)
    }
}

struct Waiter {
    seq: u64,
    id: InitiatorId,
    granted: Event,
}

struct ArbiterInner {
    policy: ArbiterPolicy,
    busy: Cell<bool>,
    seq: Cell<u64>,
    last_granted: Cell<InitiatorId>,
    waiters: RefCell<Vec<Waiter>>,
    /// Mirror of `waiters.len()`, so the uncontended fast path
    /// (`is_idle` / `try_acquire` / `release`) never borrows the
    /// `RefCell` — three borrows per transfer add up at memory-test
    /// op rates.
    queued: Cell<usize>,
    grants: Cell<u64>,
    handle: SimHandle,
}

/// A single-resource arbiter implementing the [`ArbiterPolicy`] schemes.
///
/// `acquire` suspends until the resource is granted; `release` hands the
/// resource to the next waiter according to the policy. Clones share state.
///
/// ```
/// use tve_sim::Simulation;
/// use tve_tlm::{Arbiter, ArbiterPolicy, InitiatorId};
///
/// let mut sim = Simulation::new();
/// let h = sim.handle();
/// let arb = Arbiter::new(&h, ArbiterPolicy::Fcfs);
/// let a = arb.clone();
/// sim.spawn(async move {
///     a.acquire(InitiatorId(0)).await;
///     a.release();
/// });
/// sim.run();
/// assert_eq!(arb.grant_count(), 1);
/// ```
#[derive(Clone)]
pub struct Arbiter {
    inner: Rc<ArbiterInner>,
}

impl fmt::Debug for Arbiter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Arbiter")
            .field("policy", &self.inner.policy)
            .field("busy", &self.inner.busy.get())
            .field("waiters", &self.inner.waiters.borrow().len())
            .finish()
    }
}

impl Arbiter {
    /// Creates an idle arbiter with the given policy.
    pub fn new(handle: &SimHandle, policy: ArbiterPolicy) -> Self {
        Arbiter {
            inner: Rc::new(ArbiterInner {
                policy,
                busy: Cell::new(false),
                seq: Cell::new(0),
                last_granted: Cell::new(InitiatorId(u8::MAX)),
                waiters: RefCell::new(Vec::new()),
                queued: Cell::new(0),
                grants: Cell::new(0),
                handle: handle.clone(),
            }),
        }
    }

    /// The configured policy.
    pub fn policy(&self) -> ArbiterPolicy {
        self.inner.policy
    }

    /// Total grants issued so far.
    pub fn grant_count(&self) -> u64 {
        self.inner.grants.get()
    }

    /// Number of initiators currently queued.
    pub fn queue_len(&self) -> usize {
        self.inner.queued.get()
    }

    /// Whether the resource is free with nobody queued — i.e.
    /// [`Arbiter::try_acquire`] would succeed.
    pub fn is_idle(&self) -> bool {
        !self.inner.busy.get() && self.inner.queued.get() == 0
    }

    /// Acquires the resource for `id` if it is idle (no suspension);
    /// returns whether it was granted. The synchronous half of
    /// [`Arbiter::acquire`]'s uncontended fast path.
    pub fn try_acquire(&self, id: InitiatorId) -> bool {
        let inner = &self.inner;
        if !inner.busy.get() && inner.queued.get() == 0 {
            inner.busy.set(true);
            inner.last_granted.set(id);
            inner.grants.set(inner.grants.get() + 1);
            true
        } else {
            false
        }
    }

    /// Acquires the resource on behalf of `id`, suspending until granted.
    pub async fn acquire(&self, id: InitiatorId) {
        let inner = &self.inner;
        if self.try_acquire(id) {
            return;
        }
        let granted = Event::new(&inner.handle);
        let seq = inner.seq.get();
        inner.seq.set(seq + 1);
        inner.waiters.borrow_mut().push(Waiter {
            seq,
            id,
            granted: granted.clone(),
        });
        inner.queued.set(inner.queued.get() + 1);
        granted.wait().await;
    }

    /// Releases the resource, granting the next waiter per the policy.
    ///
    /// # Panics
    ///
    /// Panics if the arbiter is not currently held.
    pub fn release(&self) {
        let inner = &self.inner;
        assert!(inner.busy.get(), "release of an idle arbiter");
        if inner.queued.get() == 0 {
            inner.busy.set(false);
            return;
        }
        let next = self.pick_next();
        match next {
            Some(waiter) => {
                inner.last_granted.set(waiter.id);
                inner.grants.set(inner.grants.get() + 1);
                waiter.granted.notify();
                // `busy` stays true: ownership passes directly.
            }
            None => inner.busy.set(false),
        }
    }

    fn pick_next(&self) -> Option<Waiter> {
        let mut waiters = self.inner.waiters.borrow_mut();
        if waiters.is_empty() {
            return None;
        }
        let idx = match self.inner.policy {
            ArbiterPolicy::Fcfs => {
                let mut best = 0;
                for (i, w) in waiters.iter().enumerate() {
                    if w.seq < waiters[best].seq {
                        best = i;
                    }
                }
                best
            }
            ArbiterPolicy::Priority => {
                let mut best = 0;
                for (i, w) in waiters.iter().enumerate() {
                    let b = &waiters[best];
                    if (w.id, w.seq) < (b.id, b.seq) {
                        best = i;
                    }
                }
                best
            }
            ArbiterPolicy::RoundRobin => {
                // Next id strictly greater than the last grantee, wrapping;
                // ties within an id resolved by request order.
                let last = self.inner.last_granted.get();
                let key = |w: &Waiter| {
                    let gap = w.id.0.wrapping_sub(last.0).wrapping_sub(1);
                    (gap, w.seq)
                };
                let mut best = 0;
                for (i, w) in waiters.iter().enumerate() {
                    if key(w) < key(&waiters[best]) {
                        best = i;
                    }
                }
                best
            }
        };
        self.inner.queued.set(self.inner.queued.get() - 1);
        Some(waiters.swap_remove(idx))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::rc::Rc;
    use tve_sim::{Duration, Simulation};

    fn run_policy(policy: ArbiterPolicy, order_in: &[u8]) -> Vec<u8> {
        let mut sim = Simulation::new();
        let h = sim.handle();
        let arb = Arbiter::new(&h, policy);
        let log: Rc<RefCell<Vec<u8>>> = Rc::new(RefCell::new(Vec::new()));
        // A holder keeps the bus busy while all contenders queue up.
        {
            let arb = arb.clone();
            let h = h.clone();
            sim.spawn(async move {
                arb.acquire(InitiatorId(9)).await;
                h.wait(Duration::cycles(100)).await;
                arb.release();
            });
        }
        for (k, &id) in order_in.iter().enumerate() {
            let arb = arb.clone();
            let h = h.clone();
            let log = Rc::clone(&log);
            sim.spawn(async move {
                // Stagger requests so request order == listed order.
                h.wait(Duration::cycles(1 + k as u64)).await;
                arb.acquire(InitiatorId(id)).await;
                log.borrow_mut().push(id);
                h.wait(Duration::cycles(10)).await;
                arb.release();
            });
        }
        sim.run();
        let v = log.borrow().clone();
        v
    }

    #[test]
    fn fcfs_grants_in_request_order() {
        assert_eq!(run_policy(ArbiterPolicy::Fcfs, &[3, 1, 2]), vec![3, 1, 2]);
    }

    #[test]
    fn priority_grants_lowest_id_first() {
        assert_eq!(
            run_policy(ArbiterPolicy::Priority, &[3, 1, 2]),
            vec![1, 2, 3]
        );
    }

    #[test]
    fn round_robin_cycles_after_last_grantee() {
        // Holder has id 9; waiters 3,1,2 -> next after 9 wraps to 1, then 2, 3.
        assert_eq!(
            run_policy(ArbiterPolicy::RoundRobin, &[3, 1, 2]),
            vec![1, 2, 3]
        );
        // Holder 9, waiters 0 and 12: after 9 comes 12, then 0.
        assert_eq!(run_policy(ArbiterPolicy::RoundRobin, &[0, 12]), vec![12, 0]);
    }

    #[test]
    fn uncontended_acquire_is_immediate() {
        let mut sim = Simulation::new();
        let h = sim.handle();
        let arb = Arbiter::new(&h, ArbiterPolicy::Fcfs);
        let a = arb.clone();
        sim.spawn(async move {
            a.acquire(InitiatorId(5)).await;
            a.release();
            a.acquire(InitiatorId(5)).await;
            a.release();
        });
        let end = sim.run();
        assert_eq!(end.cycles(), 0, "no time may pass without contention");
        assert_eq!(arb.grant_count(), 2);
    }

    #[test]
    #[should_panic(expected = "idle arbiter")]
    fn release_when_idle_panics() {
        let sim = Simulation::new();
        let arb = Arbiter::new(&sim.handle(), ArbiterPolicy::Fcfs);
        arb.release();
    }
}
