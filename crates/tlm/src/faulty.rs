//! A fault-injecting TAM channel adaptor.
//!
//! [`FaultyTam`] wraps any downstream [`TamIf`] and perturbs the
//! transaction stream according to a seeded, deterministic policy: every
//! N-th transaction gets one payload bit flipped, and/or every M-th
//! transaction is dropped (reported as a target error without ever
//! reaching the downstream component). This models defective TAM wiring
//! and flaky channel electronics at the transaction level, so a
//! fault-injection campaign can ask whether a test schedule *notices*
//! a corrupted transport — not just corrupted cores.

use std::cell::Cell;
use std::rc::Rc;

use crate::payload::{Command, ResponseStatus, Transaction};
use crate::transport::{LocalBoxFuture, TamIf};

/// Seeded corruption policy for a [`FaultyTam`].
///
/// Plain copyable data so it can travel inside configuration structs that
/// are cloned into parallel validation-farm workers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultyTamPolicy {
    /// Seed for the bit-position PRNG (any value; internally or-ed with 1).
    pub seed: u64,
    /// Flip one payload bit in every `corrupt_every`-th transaction
    /// (0 disables corruption).
    pub corrupt_every: u32,
    /// Drop every `drop_every`-th transaction: it is answered with
    /// [`ResponseStatus::TargetError`] and never forwarded (0 disables
    /// dropping).
    pub drop_every: u32,
}

impl FaultyTamPolicy {
    /// A policy that corrupts one bit in every `n`-th transaction.
    pub fn corrupt(seed: u64, n: u32) -> Self {
        FaultyTamPolicy {
            seed,
            corrupt_every: n,
            drop_every: 0,
        }
    }

    /// A policy that drops every `n`-th transaction.
    pub fn drop(seed: u64, n: u32) -> Self {
        FaultyTamPolicy {
            seed,
            corrupt_every: 0,
            drop_every: n,
        }
    }
}

/// A TAM channel adaptor that injects transport faults per a
/// [`FaultyTamPolicy`] before delegating to the wrapped channel.
///
/// Interpose it between an initiator and the real channel (e.g. between the
/// EBI and the system bus) at construction time; counters record how many
/// transactions were seen, corrupted and dropped so a campaign can verify
/// the fault was actually exercised.
pub struct FaultyTam {
    name: String,
    inner: Rc<dyn TamIf>,
    policy: FaultyTamPolicy,
    rng: Cell<u64>,
    seen: Cell<u64>,
    corrupted: Cell<u64>,
    dropped: Cell<u64>,
}

impl FaultyTam {
    /// Wraps `inner` with the fault `policy`.
    pub fn new(name: impl Into<String>, inner: Rc<dyn TamIf>, policy: FaultyTamPolicy) -> Self {
        FaultyTam {
            name: name.into(),
            inner,
            policy,
            rng: Cell::new(policy.seed | 1),
            seen: Cell::new(0),
            corrupted: Cell::new(0),
            dropped: Cell::new(0),
        }
    }

    /// Transactions that entered the adaptor.
    pub fn seen(&self) -> u64 {
        self.seen.get()
    }

    /// Transactions that had a payload bit flipped.
    pub fn corrupted(&self) -> u64 {
        self.corrupted.get()
    }

    /// Transactions dropped (answered with a target error, not forwarded).
    pub fn dropped(&self) -> u64 {
        self.dropped.get()
    }

    /// The active policy.
    pub fn policy(&self) -> FaultyTamPolicy {
        self.policy
    }

    fn next_rand(&self) -> u64 {
        // xorshift64: cheap, deterministic, never zero for a nonzero seed.
        let mut x = self.rng.get();
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.rng.set(x);
        x
    }

    /// Flips one seeded bit of `txn.data`, restricted to the meaningful
    /// `bit_len` bits. Volume-only payloads carry no bits to flip.
    fn flip_one_bit(&self, txn: &mut Transaction) -> bool {
        if txn.data.is_empty() || txn.bit_len == 0 {
            return false;
        }
        let limit = txn.bit_len.min(txn.data.len() as u64 * 32);
        let bit = self.next_rand() % limit;
        txn.data[(bit / 32) as usize] ^= 1 << (bit % 32);
        true
    }
}

impl TamIf for FaultyTam {
    fn name(&self) -> &str {
        &self.name
    }

    fn transport<'a>(&'a self, txn: &'a mut Transaction) -> LocalBoxFuture<'a, ()> {
        Box::pin(async move {
            let n = self.seen.get() + 1;
            self.seen.set(n);

            let p = self.policy;
            if p.drop_every > 0 && n.is_multiple_of(u64::from(p.drop_every)) {
                self.dropped.set(self.dropped.get() + 1);
                txn.status = ResponseStatus::TargetError;
                return;
            }

            let corrupt = p.corrupt_every > 0 && n.is_multiple_of(u64::from(p.corrupt_every));
            // Outbound payloads are corrupted before the wire, inbound
            // (read) payloads after it — both model a defective channel,
            // not a defective endpoint.
            if corrupt
                && matches!(txn.cmd, Command::Write | Command::WriteRead)
                && self.flip_one_bit(txn)
            {
                self.corrupted.set(self.corrupted.get() + 1);
            }
            self.inner.transport(txn).await;
            if corrupt
                && matches!(txn.cmd, Command::Read | Command::WriteRead)
                && self.flip_one_bit(txn)
            {
                self.corrupted.set(self.corrupted.get() + 1);
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::payload::InitiatorId;
    use crate::transport::TamIfExt;
    use std::cell::RefCell;
    use tve_sim::Simulation;

    /// Echo target: stores writes, returns the store on reads.
    struct Echo {
        store: RefCell<Vec<u32>>,
        delivered: Cell<u64>,
    }

    impl Echo {
        fn new() -> Self {
            Echo {
                store: RefCell::new(Vec::new()),
                delivered: Cell::new(0),
            }
        }
    }

    impl TamIf for Echo {
        fn name(&self) -> &str {
            "echo"
        }
        fn transport<'a>(&'a self, txn: &'a mut Transaction) -> LocalBoxFuture<'a, ()> {
            Box::pin(async move {
                self.delivered.set(self.delivered.get() + 1);
                match txn.cmd {
                    Command::Write => *self.store.borrow_mut() = txn.data.clone(),
                    Command::Read => txn.data = self.store.borrow().clone(),
                    Command::WriteRead => {
                        let old = self.store.replace(txn.data.clone());
                        txn.data = old;
                    }
                }
                txn.status = ResponseStatus::Ok;
            })
        }
    }

    fn run_writes(policy: FaultyTamPolicy, payloads: Vec<Vec<u32>>) -> (Vec<Vec<u32>>, u64, u64) {
        let mut sim = Simulation::new();
        let echo = Rc::new(Echo::new());
        let faulty = Rc::new(FaultyTam::new(
            "faulty",
            Rc::clone(&echo) as Rc<dyn TamIf>,
            policy,
        ));
        let f = Rc::clone(&faulty);
        let jh = sim.spawn(async move {
            let mut out = Vec::new();
            for p in payloads {
                let bits = p.len() as u64 * 32;
                match f.write(InitiatorId(0), 0, &p, bits).await {
                    Ok(()) => out.push(f.read(InitiatorId(0), 0, bits).await.unwrap()),
                    Err(_) => out.push(Vec::new()),
                }
            }
            out
        });
        sim.run();
        let out = jh.try_take().expect("writer finished");
        (out, faulty.corrupted(), faulty.dropped())
    }

    #[test]
    fn zero_policy_is_a_pure_passthrough() {
        let policy = FaultyTamPolicy {
            seed: 1,
            corrupt_every: 0,
            drop_every: 0,
        };
        let payloads = vec![vec![0xDEAD_BEEF], vec![0x1234_5678, 0x9ABC_DEF0]];
        let (out, corrupted, dropped) = run_writes(policy, payloads.clone());
        assert_eq!(out, payloads);
        assert_eq!(corrupted, 0);
        assert_eq!(dropped, 0);
    }

    #[test]
    fn corruption_flips_exactly_one_bit_deterministically() {
        fn stored_after_write(seed: u64) -> Vec<u32> {
            let mut sim = Simulation::new();
            let echo = Rc::new(Echo::new());
            let faulty = Rc::new(FaultyTam::new(
                "faulty",
                Rc::clone(&echo) as Rc<dyn TamIf>,
                FaultyTamPolicy::corrupt(seed, 1),
            ));
            let f = Rc::clone(&faulty);
            sim.spawn(async move {
                f.write(InitiatorId(0), 0, &[0, 0, 0], 96).await.unwrap();
            });
            sim.run();
            assert_eq!(faulty.corrupted(), 1);
            let stored = echo.store.borrow().clone();
            stored
        }
        let a = stored_after_write(42);
        // Same seed, same flip.
        assert_eq!(a, stored_after_write(42));
        let ones: u32 = a.iter().map(|w| w.count_ones()).sum();
        assert_eq!(ones, 1, "exactly one bit flipped: {a:?}");
        // A different seed picks a different bit (for this pair at least;
        // note seeds are or-ed with 1, so 42 and 43 would collide).
        assert_ne!(a, stored_after_write(44));
    }

    #[test]
    fn corrupt_every_n_counts_transactions() {
        // 6 writes + 6 reads = 12 transactions; every 4th is corrupted.
        let policy = FaultyTamPolicy::corrupt(7, 4);
        let payloads: Vec<Vec<u32>> = (0..6).map(|_| vec![0u32]).collect();
        let (_, corrupted, _) = run_writes(policy, payloads);
        assert_eq!(corrupted, 3);
    }

    #[test]
    fn dropped_transactions_report_target_error_and_never_arrive() {
        let mut sim = Simulation::new();
        let echo = Rc::new(Echo::new());
        let faulty = Rc::new(FaultyTam::new(
            "faulty",
            Rc::clone(&echo) as Rc<dyn TamIf>,
            FaultyTamPolicy::drop(3, 2),
        ));
        let f = Rc::clone(&faulty);
        let jh = sim.spawn(async move {
            let mut errors = 0;
            for _ in 0..6 {
                if f.write(InitiatorId(0), 0, &[5], 32).await.is_err() {
                    errors += 1;
                }
            }
            errors
        });
        sim.run();
        assert_eq!(jh.try_take(), Some(3));
        assert_eq!(faulty.dropped(), 3);
        assert_eq!(echo.delivered.get(), 3, "dropped writes must not arrive");
    }

    #[test]
    fn volume_only_transactions_pass_through_unharmed() {
        let mut sim = Simulation::new();
        let echo = Rc::new(Echo::new());
        let faulty = Rc::new(FaultyTam::new(
            "faulty",
            Rc::clone(&echo) as Rc<dyn TamIf>,
            FaultyTamPolicy::corrupt(9, 1),
        ));
        let f = Rc::clone(&faulty);
        sim.spawn(async move {
            f.transfer_volume(InitiatorId(0), Command::Write, 0, 10_000)
                .await
                .unwrap();
        });
        sim.run();
        assert_eq!(faulty.seen(), 1);
        assert_eq!(faulty.corrupted(), 0, "no payload bits to flip");
    }
}
