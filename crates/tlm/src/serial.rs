//! Serial daisy-chain TAM — the low-cost end of the paper's TAM spectrum
//! ("the spectrum of different TAMs ranges from serial boundary scan
//! chains to reuse of buses and NoCs", Section III.A).
//!
//! All wrappers sit on one serial line (IEEE 1149.1 style): accessing one
//! target shifts its payload through every *other* member's bypass
//! register, one bit per cycle, one access at a time.

use std::cell::RefCell;
use std::fmt;
use std::rc::Rc;

use tve_obs::{Recorder, SpanKind, SpanRecord};
use tve_sim::{Duration, SimHandle};

use crate::bus::{command_label, AddrRange, BindError, ChannelRecorder};
use crate::monitor::UtilizationMonitor;
use crate::payload::{ResponseStatus, Transaction};
use crate::transport::{LocalBoxFuture, TamIf};
use crate::Arbiter;

struct SerialSlot {
    range: AddrRange,
    bypass_bits: u32,
    target: Rc<dyn TamIf>,
}

/// A single serial scan chain acting as TAM.
///
/// An access to the slot mapped at the transaction's address costs
/// `bit_len + Σ(other slots' bypass bits) + overhead` cycles at one bit per
/// cycle; concurrent initiators serialize on the chain. Cheap in wires,
/// expensive in time — the baseline the bus-reuse TAM of the case study is
/// implicitly compared against.
pub struct SerialTam {
    handle: SimHandle,
    name: String,
    overhead_cycles: u64,
    slots: RefCell<Vec<SerialSlot>>,
    arbiter: Arbiter,
    monitor: RefCell<UtilizationMonitor>,
    recorder: RefCell<Option<ChannelRecorder>>,
}

impl fmt::Debug for SerialTam {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SerialTam")
            .field("name", &self.name)
            .field("slots", &self.slots.borrow().len())
            .finish()
    }
}

impl SerialTam {
    /// Creates an empty chain with the given per-access protocol overhead
    /// (capture/update states of the TAP-style controller).
    pub fn new(handle: &SimHandle, name: impl Into<String>, overhead_cycles: u64) -> Self {
        SerialTam {
            handle: handle.clone(),
            name: name.into(),
            overhead_cycles,
            slots: RefCell::new(Vec::new()),
            arbiter: Arbiter::new(handle, crate::ArbiterPolicy::Fcfs),
            monitor: RefCell::new(UtilizationMonitor::new(Duration::cycles(65_536))),
            recorder: RefCell::new(None),
        }
    }

    /// Attaches an observability recorder: every chain occupancy becomes
    /// a [`tve_obs::SpanKind::Transfer`] span on this chain's track, and
    /// the `"<name>.transfers"` / `"<name>.bits"` counters accumulate in
    /// the recorder's metrics registry.
    pub fn attach_recorder(&self, recorder: Rc<Recorder>) {
        *self.recorder.borrow_mut() = Some(ChannelRecorder::new(&self.name, recorder));
    }

    /// Appends `target` to the chain, reachable at `range`, contributing
    /// `bypass_bits` to every other member's access cost.
    ///
    /// # Errors
    ///
    /// Returns [`BindError`] if `range` overlaps an existing mapping.
    pub fn bind(
        &self,
        range: AddrRange,
        bypass_bits: u32,
        target: Rc<dyn TamIf>,
    ) -> Result<(), BindError> {
        let mut slots = self.slots.borrow_mut();
        for s in slots.iter() {
            if s.range.overlaps(&range) {
                return Err(BindError {
                    range,
                    conflict: s.range,
                });
            }
        }
        slots.push(SerialSlot {
            range,
            bypass_bits,
            target,
        });
        Ok(())
    }

    /// Number of chained members.
    pub fn slot_count(&self) -> usize {
        self.slots.borrow().len()
    }

    /// The chain's utilization monitor.
    pub fn monitor(&self) -> std::cell::Ref<'_, UtilizationMonitor> {
        self.monitor.borrow()
    }

    /// Cycles an access of `bit_len` bits to the slot at `addr` occupies
    /// the chain, or `None` for an unmapped address.
    pub fn occupancy_of(&self, addr: u32, bit_len: u64) -> Option<Duration> {
        let slots = self.slots.borrow();
        let hit = slots.iter().position(|s| s.range.contains(addr))?;
        let bypass: u64 = slots
            .iter()
            .enumerate()
            .filter(|&(i, _)| i != hit)
            .map(|(_, s)| s.bypass_bits as u64)
            .sum();
        Some(Duration::cycles(self.overhead_cycles + bit_len + bypass))
    }
}

impl TamIf for SerialTam {
    fn name(&self) -> &str {
        &self.name
    }

    fn transport<'a>(&'a self, txn: &'a mut Transaction) -> LocalBoxFuture<'a, ()> {
        Box::pin(async move {
            let Some(dur) = self.occupancy_of(txn.addr, txn.bit_len) else {
                txn.status = ResponseStatus::AddressError;
                return;
            };
            let target = {
                let slots = self.slots.borrow();
                let s = slots
                    .iter()
                    .find(|s| s.range.contains(txn.addr))
                    .expect("occupancy_of found it");
                Rc::clone(&s.target)
            };
            self.arbiter.acquire(txn.initiator).await;
            self.monitor
                .borrow_mut()
                .record_busy(self.handle.now(), dur, txn.initiator);
            if let Some(obs) = &*self.recorder.borrow() {
                let start = self.handle.now();
                obs.rec.record_with(|| {
                    SpanRecord::new(
                        SpanKind::Transfer,
                        self.name.as_str(),
                        command_label(txn.cmd),
                        start,
                        start + dur,
                    )
                    .with_initiator(txn.initiator.0)
                    .with_bits(txn.bit_len)
                });
                obs.transfers.inc();
                obs.bits.add(txn.bit_len);
            }
            self.handle.wait(dur).await;
            self.arbiter.release();
            target.transport(txn).await;
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bus::SinkTarget;
    use crate::payload::{Command, InitiatorId};
    use crate::transport::TamIfExt;
    use tve_sim::Simulation;

    fn chain(sim: &Simulation) -> (Rc<SerialTam>, Rc<SinkTarget>, Rc<SinkTarget>) {
        let tam = Rc::new(SerialTam::new(&sim.handle(), "jtag", 5));
        let a = Rc::new(SinkTarget::new("a"));
        let b = Rc::new(SinkTarget::new("b"));
        tam.bind(
            AddrRange::new(0x100, 0x10),
            1,
            Rc::clone(&a) as Rc<dyn TamIf>,
        )
        .unwrap();
        tam.bind(
            AddrRange::new(0x200, 0x10),
            3,
            Rc::clone(&b) as Rc<dyn TamIf>,
        )
        .unwrap();
        (tam, a, b)
    }

    #[test]
    fn access_cost_includes_other_members_bypass() {
        let sim = Simulation::new();
        let (tam, _, _) = chain(&sim);
        // Access to a: 5 overhead + 64 payload + 3 (b's bypass).
        assert_eq!(tam.occupancy_of(0x100, 64), Some(Duration::cycles(72)));
        // Access to b: 5 + 64 + 1 (a's bypass).
        assert_eq!(tam.occupancy_of(0x200, 64), Some(Duration::cycles(70)));
        assert_eq!(tam.occupancy_of(0x900, 64), None);
    }

    #[test]
    fn transfers_serialize_on_the_chain() {
        let mut sim = Simulation::new();
        let (tam, a, b) = chain(&sim);
        for (i, addr) in [(0u8, 0x100u32), (1, 0x200)] {
            let tam = Rc::clone(&tam);
            sim.spawn(async move {
                tam.transfer_volume(InitiatorId(i), Command::Write, addr, 64)
                    .await
                    .unwrap();
            });
        }
        // 72 + 70, strictly sequential.
        assert_eq!(sim.run().cycles(), 142);
        assert_eq!(a.transaction_count(), 1);
        assert_eq!(b.transaction_count(), 1);
        assert_eq!(tam.monitor().total_busy_cycles(), 142);
    }

    #[test]
    fn unmapped_address_errors() {
        let mut sim = Simulation::new();
        let (tam, _, _) = chain(&sim);
        let t = Rc::clone(&tam);
        let jh = sim.spawn(async move { t.read(InitiatorId(0), 0x900, 32).await });
        sim.run();
        assert_eq!(
            jh.try_take().unwrap().unwrap_err().status,
            ResponseStatus::AddressError
        );
    }

    #[test]
    fn serial_is_much_slower_than_a_bus_for_wide_payloads() {
        // The TAM-spectrum trade-off in one assertion.
        let sim = Simulation::new();
        let (tam, _, _) = chain(&sim);
        let serial = tam.occupancy_of(0x100, 4096).unwrap();
        let bus = crate::BusTam::new(
            &sim.handle(),
            crate::BusConfig {
                width_bits: 32,
                ..Default::default()
            },
        )
        .occupancy_of(4096);
        assert!(serial.as_cycles() > 30 * bus.as_cycles());
    }

    #[test]
    fn overlapping_bind_rejected() {
        let sim = Simulation::new();
        let (tam, _, _) = chain(&sim);
        let c = Rc::new(SinkTarget::new("c"));
        assert!(tam
            .bind(AddrRange::new(0x105, 4), 1, c as Rc<dyn TamIf>)
            .is_err());
        assert_eq!(tam.slot_count(), 2);
    }
}
