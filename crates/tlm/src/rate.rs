//! Throughput-limited serial channels (ATE link, boundary-scan chains).

use std::cell::Cell;
use std::fmt;
use std::rc::Rc;

use tve_sim::{SimHandle, Time};

/// A serial channel delivering at most `num/den` bits per cycle, modeled as
/// a pipelined link: consecutive transfers queue back-to-back.
///
/// This models the ATE channel of the paper's evaluation — the bottleneck
/// that makes schedule 1 (uncompressed external patterns) slow.
///
/// ```
/// use tve_sim::Simulation;
/// use tve_tlm::RateLimiter;
///
/// let mut sim = Simulation::new();
/// let h = sim.handle();
/// let link = RateLimiter::new(&h, 8, 1); // 8 bits per cycle
/// let l = link.clone();
/// sim.spawn(async move {
///     l.consume(64).await; // 8 cycles
///     l.consume(64).await; // 8 more
/// });
/// assert_eq!(sim.run().cycles(), 16);
/// ```
#[derive(Clone)]
pub struct RateLimiter {
    inner: Rc<RateInner>,
}

struct RateInner {
    handle: SimHandle,
    bits_num: u64,
    bits_den: u64,
    next_free: Cell<u64>,
    total_bits: Cell<u64>,
}

impl fmt::Debug for RateLimiter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RateLimiter")
            .field(
                "bits_per_cycle",
                &(self.inner.bits_num as f64 / self.inner.bits_den as f64),
            )
            .field("total_bits", &self.inner.total_bits.get())
            .finish()
    }
}

impl RateLimiter {
    /// Creates a limiter delivering `bits_num / bits_den` bits per cycle.
    ///
    /// # Panics
    ///
    /// Panics if either component is zero.
    pub fn new(handle: &SimHandle, bits_num: u64, bits_den: u64) -> Self {
        assert!(bits_num > 0 && bits_den > 0, "rate must be positive");
        RateLimiter {
            inner: Rc::new(RateInner {
                handle: handle.clone(),
                bits_num,
                bits_den,
                next_free: Cell::new(0),
                total_bits: Cell::new(0),
            }),
        }
    }

    /// The configured rate in bits per cycle.
    pub fn bits_per_cycle(&self) -> f64 {
        self.inner.bits_num as f64 / self.inner.bits_den as f64
    }

    /// Total bits transported so far.
    pub fn total_bits(&self) -> u64 {
        self.inner.total_bits.get()
    }

    /// The number of cycles `bits` occupy on this link.
    pub fn duration_of(&self, bits: u64) -> u64 {
        // ceil(bits * den / num)
        (bits * self.inner.bits_den).div_ceil(self.inner.bits_num)
    }

    /// Books `bits` on the link without waiting, returning the delivery
    /// completion time. Useful to overlap transfers on independent links
    /// (full-duplex ATE channels): reserve on each, then wait for the
    /// latest completion.
    pub fn reserve(&self, bits: u64) -> Time {
        let inner = &self.inner;
        let now = inner.handle.now().cycles();
        if bits == 0 {
            return Time::from_cycles(now);
        }
        let start = inner.next_free.get().max(now);
        let end = start + self.duration_of(bits);
        inner.next_free.set(end);
        inner.total_bits.set(inner.total_bits.get() + bits);
        Time::from_cycles(end)
    }

    /// Transports `bits` over the link, suspending until delivery finishes.
    /// Transfers are serialized in issue order.
    pub async fn consume(&self, bits: u64) {
        if bits == 0 {
            return;
        }
        let end = self.reserve(bits);
        self.inner.handle.wait_until(end).await;
    }

    /// When the link next becomes idle (for diagnostics and lookahead).
    pub fn next_free(&self) -> Time {
        Time::from_cycles(self.inner.next_free.get())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tve_sim::{Duration, Simulation};

    #[test]
    fn fractional_rate_rounds_up() {
        let sim = Simulation::new();
        let l = RateLimiter::new(&sim.handle(), 1, 3); // 1/3 bit per cycle
        assert_eq!(l.duration_of(1), 3);
        assert_eq!(l.duration_of(2), 6);
        assert_eq!(l.duration_of(4), 12);
        assert!((l.bits_per_cycle() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn concurrent_consumers_serialize() {
        let mut sim = Simulation::new();
        let h = sim.handle();
        let link = RateLimiter::new(&h, 1, 1);
        for _ in 0..4 {
            let link = link.clone();
            sim.spawn(async move {
                link.consume(10).await;
            });
        }
        assert_eq!(sim.run().cycles(), 40);
        assert_eq!(link.total_bits(), 40);
    }

    #[test]
    fn idle_gap_does_not_accumulate_credit() {
        let mut sim = Simulation::new();
        let h = sim.handle();
        let link = RateLimiter::new(&h, 1, 1);
        let l = link.clone();
        let h2 = h.clone();
        sim.spawn(async move {
            l.consume(5).await;
            h2.wait(Duration::cycles(100)).await; // idle
            l.consume(5).await; // starts at 105, not 10
        });
        assert_eq!(sim.run().cycles(), 110);
    }

    #[test]
    fn zero_bits_is_free() {
        let mut sim = Simulation::new();
        let h = sim.handle();
        let link = RateLimiter::new(&h, 4, 1);
        let l = link.clone();
        sim.spawn(async move {
            l.consume(0).await;
        });
        assert_eq!(sim.run().cycles(), 0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_rate_panics() {
        let sim = Simulation::new();
        let _ = RateLimiter::new(&sim.handle(), 0, 1);
    }
}
