//! Certified static performance envelopes: an interval abstract
//! interpretation over the case-study's task/resource model.
//!
//! Where [`tve-sched`'s estimator](https://docs.rs) gives one *point*
//! estimate per schedule — openly unsound in both directions — this module
//! computes a certified `[lo, hi]` **envelope** per schedule for three
//! observables of a simulated [`tve_soc::ScenarioMetrics`]:
//!
//! * total test length in cycles,
//! * per-TAM-channel busy cycles (the summed slot spans of the bus-fed and
//!   serial-fed tests), and
//! * peak instantaneous power (when the SoC's power model is enabled).
//!
//! `lo` assumes best-case overlap (every concurrent test runs at its
//! physical floor: scan-shift length or channel bandwidth, whichever
//! binds); `hi` assumes worst-case arbitration (every transaction of a
//! phase fully serialized, plus configuration-ring, drain and
//! loosely-timed slack). The soundness contract — every simulated run
//! lands inside its envelope, across generated SoCs, both TAM channels,
//! accurate and quantum mode — is machine-checked by
//! `tests/bounds_contract.rs`.
//!
//! The envelopes power `tve-sched::explore_certified`: a candidate whose
//! *lower* bound is already dominated by a simulated incumbent can be
//! discarded with a proof instead of simulated.
//!
//! Envelopes assume a healthy TAM (no [`tve_soc::SocConfig::tam_fault`])
//! and a well-formed schedule; a test sequence that aborts on transport
//! errors can finish arbitrarily early.

use std::fmt;
use std::fmt::Write as _;

use tve_core::{DataPolicy, Schedule};
use tve_soc::{ScenarioMetrics, SocConfig, SocTestPlan};

use crate::facts::TamChannel;

/// Pinned schema version of the bounds JSON report (satellite of the
/// lint report's `format_version`; bump on any shape change).
pub const BOUNDS_FORMAT_VERSION: u64 = 1;

/// A closed integer interval `[lo, hi]` in cycles.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interval {
    /// Inclusive lower bound.
    pub lo: u64,
    /// Inclusive upper bound.
    pub hi: u64,
}

impl Interval {
    /// The degenerate `[0, 0]` interval.
    pub const ZERO: Interval = Interval { lo: 0, hi: 0 };

    /// Whether `v` lies inside the interval.
    pub fn contains(&self, v: u64) -> bool {
        self.lo <= v && v <= self.hi
    }

    /// Width of the interval (`hi - lo`).
    pub fn width(&self) -> u64 {
        self.hi - self.lo
    }
}

impl fmt::Display for Interval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {}]", self.lo, self.hi)
    }
}

/// A closed floating-point interval for power figures.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerInterval {
    /// Inclusive lower bound.
    pub lo: f64,
    /// Inclusive upper bound.
    pub hi: f64,
}

impl PowerInterval {
    /// Whether `v` lies inside the interval.
    pub fn contains(&self, v: f64) -> bool {
        self.lo <= v && v <= self.hi
    }
}

/// Certified stand-alone bounds of one test sequence, derived from the
/// same `(SocConfig, SocTestPlan)` pair the dynamic test list is built
/// from.
#[derive(Debug, Clone)]
pub struct TaskBounds {
    /// Test name (matches the dynamic [`tve_core::TestRun`] name).
    pub name: String,
    /// The TAM path the patterns use (drives the per-channel busy sums).
    pub channel: TamChannel,
    /// Slot-span envelope when the test runs alone: contention only
    /// lengthens a slot, so `slot.lo` also bounds the test inside any
    /// phase.
    pub slot: Interval,
    /// Maximum instantaneous power contribution under the SoC's power
    /// model (0 when the model is disabled).
    pub power_hi: f64,
    /// Guaranteed dissipated energy (power × cycles; 0 when the model is
    /// disabled or the test may legally skip its patterns).
    pub energy_lo: f64,
}

/// The certified envelope of one schedule.
#[derive(Debug, Clone)]
pub struct ScheduleEnvelope {
    /// Schedule name.
    pub schedule: String,
    /// Loosely-timed quantum the envelope covers (0 = cycle-accurate).
    pub quantum: u64,
    /// Envelope on [`ScenarioMetrics::total_cycles`].
    pub total: Interval,
    /// Envelope on the summed slot spans of bus-channel tests.
    pub bus_busy: Interval,
    /// Envelope on the summed slot spans of serial-channel tests.
    pub serial_busy: Interval,
    /// Envelope on the simulated peak windowed power, when the SoC config
    /// enables the power model.
    pub peak_power: Option<PowerInterval>,
    /// Per-phase span envelopes, in schedule order.
    pub phases: Vec<Interval>,
}

/// The simulated observables an envelope constrains, extracted from a
/// [`ScenarioMetrics`] with [`observe_metrics`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnvelopeObservables {
    /// Simulated total test length.
    pub total_cycles: u64,
    /// Summed slot spans of the bus-channel tests.
    pub bus_busy: u64,
    /// Summed slot spans of the serial-channel tests.
    pub serial_busy: u64,
    /// Simulated peak windowed power, when metered.
    pub peak_power: Option<f64>,
}

/// Extracts the envelope observables from simulated metrics, classifying
/// each slot by the TAM channel of the same-named task in `tasks`.
pub fn observe_metrics(metrics: &ScenarioMetrics, tasks: &[TaskBounds]) -> EnvelopeObservables {
    let mut bus = 0u64;
    let mut serial = 0u64;
    for slot in &metrics.result.slots {
        let span = slot
            .outcome
            .end
            .cycles()
            .saturating_sub(slot.outcome.start.cycles());
        match tasks
            .iter()
            .find(|t| t.name == slot.outcome.name)
            .map(|t| t.channel)
        {
            Some(TamChannel::Serial) => serial += span,
            _ => bus += span,
        }
    }
    EnvelopeObservables {
        total_cycles: metrics.total_cycles,
        bus_busy: bus,
        serial_busy: serial,
        peak_power: metrics.power.as_ref().map(|p| p.peak),
    }
}

impl ScheduleEnvelope {
    /// Checks simulated observables against the envelope; returns one
    /// violation description per observable outside its interval (empty =
    /// the run is inside the envelope).
    pub fn check(&self, obs: &EnvelopeObservables) -> Vec<String> {
        let mut v = Vec::new();
        if !self.total.contains(obs.total_cycles) {
            v.push(format!(
                "total {} outside {} ({})",
                obs.total_cycles, self.total, self.schedule
            ));
        }
        if !self.bus_busy.contains(obs.bus_busy) {
            v.push(format!(
                "bus busy {} outside {} ({})",
                obs.bus_busy, self.bus_busy, self.schedule
            ));
        }
        if !self.serial_busy.contains(obs.serial_busy) {
            v.push(format!(
                "serial busy {} outside {} ({})",
                obs.serial_busy, self.serial_busy, self.schedule
            ));
        }
        if let (Some(env), Some(peak)) = (self.peak_power, obs.peak_power) {
            if !env.contains(peak) {
                v.push(format!(
                    "peak power {:.3} outside [{:.3}, {:.3}] ({})",
                    peak, env.lo, env.hi, self.schedule
                ));
            }
        }
        v
    }
}

/// `ceil(bits × den / num)` — cycles to move `bits` over a `(num, den)`
/// bits-per-cycle channel — without intermediate overflow.
fn channel_cycles(bits: u64, rate: (u64, u64)) -> u64 {
    let (num, den) = rate;
    if num == 0 {
        return u64::MAX / 4;
    }
    ((bits as u128 * den as u128).div_ceil(num as u128)) as u64
}

/// Derives the certified stand-alone bounds of the seven case-study test
/// sequences from the SoC configuration and plan — the two-sided mirror of
/// `tve-sched::estimate_tasks`.
///
/// `quantum` is the loosely-timed quantum the bounds must cover (0 =
/// cycle-accurate): temporal decoupling may legitimately shift timings, so
/// a nonzero quantum widens every interval.
pub fn task_bounds(config: &SocConfig, plan: &SocTestPlan, quantum: u64) -> Vec<TaskBounds> {
    let w = u64::from(config.bus_width_bits);
    let boh = config.bus_overhead;
    let cap = config.capture_cycles;
    let q = quantum;
    let full = plan.policy == DataPolicy::Full;
    let down = config.ate_down_rate;
    let up = config.ate_up_rate;
    let bus_words = |bits: u64| bits.div_ceil(w);
    // Worst-case per-task startup: up to three configuration-ring
    // rotations (ring length is bounded by 256 bits in this SoC family)
    // plus WIR handshakes and the final signature/drain readout.
    let start_hi = 3 * 256 * config.ring_clock_div.max(1) + 128;
    // Loosely-timed slack: local-time offsets shift slot edges by up to a
    // few quanta and perturb interleavings; widen both sides.
    let q_lo = |lo: u64| {
        if q == 0 {
            lo.max(1)
        } else {
            (lo - lo / 32).saturating_sub(16 * q).max(1)
        }
    };
    let q_hi = |hi: u64| {
        if q == 0 {
            hi
        } else {
            hi + hi / 16 + 16 * q
        }
    };

    let power = config.power;
    let scan_power = |chains: u32, shift_cycles: u64, patterns: u64, may_skip: bool| {
        match power {
            Some(p) => {
                let scale = f64::from(chains) / 32.0;
                // Volume transfers shift with zero toggle density; full
                // data can toggle up to density 1.
                let hi = scale * (p.wrapper_base + if full { p.wrapper_toggle } else { 0.0 });
                let lo = if may_skip {
                    0.0
                } else {
                    scale * p.wrapper_base * (shift_cycles * patterns) as f64
                };
                (hi, lo)
            }
            None => (0.0, 0.0),
        }
    };

    let mut out = Vec::with_capacity(7);

    // T1/T4: BIST over the bus — shift-limited floor, serialized
    // transfer + shift ceiling.
    let bist = |name: &str, chains: u32, chain_len: u32, patterns: u64| {
        let chain = u64::from(chain_len);
        let bits = u64::from(chains) * chain;
        let lo = patterns * chain.max(bus_words(bits));
        let hi = patterns * (chain + cap + bus_words(bits) + boh + 8) + bus_words(64) + boh;
        let (p_hi, e_lo) = scan_power(chains, chain, patterns, false);
        TaskBounds {
            name: name.to_string(),
            channel: TamChannel::Bus,
            slot: Interval {
                lo: q_lo(lo),
                hi: q_hi(hi + start_hi),
            },
            power_hi: p_hi,
            energy_lo: e_lo,
        }
    };
    out.push(bist(
        "T1 proc BIST",
        config.proc_scan.chains(),
        config.proc_scan.max_chain_len(),
        plan.bist_proc_patterns,
    ));

    // T2/T5: deterministic external. The EBI's combined accesses are
    // full-duplex (cost = max of the two link reservations) and
    // store-and-forward posted toward the wrapper, so the only floor that
    // survives pipelining is the in-line serial reservation itself; the
    // ceiling assumes no pipelining at all.
    let ate = |name: &str, chains: u32, chain_len: u32, patterns: u64| {
        let chain = u64::from(chain_len);
        let bits = u64::from(chains) * chain;
        let lo = patterns * channel_cycles(bits, down).max(channel_cycles(bits, up));
        let hi = patterns
            * (channel_cycles(bits, down)
                + channel_cycles(bits, up)
                + chain
                + cap
                + bus_words(bits)
                + 2 * boh
                + 16);
        let (p_hi, e_lo) = scan_power(chains, chain, patterns, false);
        TaskBounds {
            name: name.to_string(),
            channel: TamChannel::Serial,
            slot: Interval {
                lo: q_lo(lo),
                hi: q_hi(hi + start_hi),
            },
            power_hi: p_hi,
            energy_lo: e_lo,
        }
    };
    out.push(ate(
        "T2 proc det",
        config.proc_scan.chains(),
        config.proc_scan.max_chain_len(),
        plan.det_proc_patterns,
    ));

    // T3: compressed external. In full-data mode the stream is one
    // reseeding seed per pattern and unencodable cubes are legally
    // *skipped*, so the full-data floor degenerates.
    {
        let chain = u64::from(config.proc_scan.max_chain_len());
        let bits = config.proc_scan.bits_per_pattern();
        let compressed = if full {
            64
        } else {
            (bits as f64 / config.decompress_ratio).ceil() as u64
        };
        let compacted = bits.div_ceil(u64::from(config.compact_ratio.max(1)));
        let patterns = plan.comp_proc_patterns;
        // Codec stimuli use plain (synchronous) EBI writes and the
        // compacted responses plain reads, so each pattern pays both link
        // reservations in-line.
        let lo = if full {
            1
        } else {
            patterns * (channel_cycles(compressed, down) + channel_cycles(compacted, up))
        };
        let hi = patterns
            * (channel_cycles(compressed.max(128), down)
                + channel_cycles(compacted, up)
                + chain
                + cap
                + bus_words(compressed)
                + bus_words(compacted)
                + 2 * boh
                + 16);
        let (p_hi, e_lo) = scan_power(config.proc_scan.chains(), chain, patterns, full);
        out.push(TaskBounds {
            name: "T3 proc det 50x".to_string(),
            channel: TamChannel::Serial,
            slot: Interval {
                lo: q_lo(lo),
                hi: q_hi(hi + start_hi),
            },
            power_hi: p_hi,
            energy_lo: e_lo,
        });
    }

    out.push(bist(
        "T4 color BIST",
        config.color_scan.chains(),
        config.color_scan.max_chain_len(),
        plan.bist_color_patterns,
    ));
    out.push(ate(
        "T5 dct det",
        config.dct_scan.chains(),
        config.dct_scan.max_chain_len(),
        plan.det_dct_patterns,
    ));

    // T6/T7: memory march + pattern tests. The march engine serially pays
    // its per-op overhead regardless of TAM pipelining; the bus round trip
    // is additional for the unpipelined processor-driven variant (and
    // elided entirely by DMI in loosely-timed mode).
    let words = u64::from(config.memory_words);
    let ops = plan.march.total_ops(words)
        + plan
            .pattern_tests
            .iter()
            .map(|p| p.ops_per_cell() * words)
            .sum::<u64>();
    let mem_power = |p_ops: u64| match power {
        Some(p) => (p.memory_op, p_ops as f64 * p.memory_op),
        None => (0.0, 0.0),
    };
    {
        let op6 = config.controller_op_overhead;
        let lo = ops * op6;
        let hi = ops * (op6 + 1 + boh) + 128 * (1 + boh);
        let (p_hi, e_lo) = mem_power(ops);
        out.push(TaskBounds {
            name: "T6 mem march (ctrl)".to_string(),
            channel: TamChannel::Bus,
            slot: Interval {
                lo: q_lo(lo),
                hi: q_hi(hi + start_hi),
            },
            power_hi: p_hi,
            energy_lo: e_lo,
        });
    }
    {
        let op7 = config.processor_op_overhead;
        // DMI (quantum mode only) takes the bus transaction off each op.
        let round_trip = if q == 0 { 1 } else { 0 };
        let lo = ops * (op7 + round_trip);
        let hi = ops * (op7 + 2 * (1 + boh) + 4);
        let (p_hi, e_lo) = mem_power(ops);
        out.push(TaskBounds {
            name: "T7 mem march (proc)".to_string(),
            channel: TamChannel::Bus,
            slot: Interval {
                lo: q_lo(lo),
                hi: q_hi(hi + start_hi),
            },
            power_hi: p_hi,
            energy_lo: e_lo,
        });
    }

    out
}

/// Computes the certified envelope of `schedule` over the plan's seven
/// tests: per-phase best-case overlap (`max` of member floors) and
/// worst-case serialization (sum of member ceilings plus arbitration
/// margin), composed sequentially.
///
/// Indices outside the task list are ignored — the envelope of a
/// structurally defective schedule is still computable (and linting is
/// what flags the defect).
pub fn schedule_envelope(
    config: &SocConfig,
    plan: &SocTestPlan,
    schedule: &Schedule,
    quantum: u64,
) -> ScheduleEnvelope {
    let tasks = task_bounds(config, plan, quantum);
    let mut total = Interval::ZERO;
    let mut bus = Interval::ZERO;
    let mut serial = Interval::ZERO;
    let mut phases = Vec::with_capacity(schedule.phases.len());
    let mut inst_power_max = 0.0f64;
    let mut energy_lo = 0.0f64;

    for phase in &schedule.phases {
        let members: Vec<&TaskBounds> = phase.iter().filter_map(|&t| tasks.get(t)).collect();
        if members.is_empty() {
            phases.push(Interval::ZERO);
            continue;
        }
        let p_lo = members.iter().map(|t| t.slot.lo).max().unwrap_or(0);
        let sum_hi: u64 = members.iter().map(|t| t.slot.hi).sum();
        // Arbitration margin: interleaved grants can cost slightly more
        // than back-to-back serialization.
        let p_hi = sum_hi + sum_hi / 8 + 64;
        total.lo += p_lo;
        total.hi += p_hi;
        for t in &members {
            let ch = match t.channel {
                TamChannel::Bus => &mut bus,
                TamChannel::Serial => &mut serial,
            };
            ch.lo += t.slot.lo;
            ch.hi += p_hi;
            energy_lo += t.energy_lo;
        }
        if let Some(p) = config.power {
            let inst: f64 = members.iter().map(|t| t.power_hi).sum::<f64>() + p.bus_active;
            inst_power_max = inst_power_max.max(inst);
        }
        phases.push(Interval { lo: p_lo, hi: p_hi });
    }
    total.hi += 64;

    let peak_power = config.power.map(|p| {
        // Peak is a windowed average, so it can never exceed the maximum
        // instantaneous sum of any phase (plus loosely-timed bunching);
        // and it is at least the whole-run average, which the guaranteed
        // energy over the span ceiling bounds from below.
        let bunching = 1.0 + (2.0 * quantum as f64 + 64.0) / p.window.max(1) as f64;
        let hi = inst_power_max * bunching + 1.0;
        let lo = if total.hi == 0 {
            0.0
        } else {
            energy_lo / (total.hi as f64 + p.window as f64)
        };
        PowerInterval { lo, hi }
    });

    ScheduleEnvelope {
        schedule: schedule.name.clone(),
        quantum,
        total,
        bus_busy: bus,
        serial_busy: serial,
        peak_power,
        phases,
    }
}

/// [`schedule_envelope`] over a batch of schedules.
pub fn schedule_envelopes(
    config: &SocConfig,
    plan: &SocTestPlan,
    schedules: &[Schedule],
    quantum: u64,
) -> Vec<ScheduleEnvelope> {
    schedules
        .iter()
        .map(|s| schedule_envelope(config, plan, s, quantum))
        .collect()
}

fn interval_json(i: Interval) -> String {
    format!("{{\"lo\": {}, \"hi\": {}}}", i.lo, i.hi)
}

/// Bundles envelopes into one JSON artifact — a versioned
/// `{"format_version": …, "reports": […]}` object ending with a newline,
/// emitted serde-free like the lint artifacts. The rendering is a pure
/// function of its inputs, so a daemon-served bounds response is
/// byte-identical to a locally computed one.
pub fn bounds_reports_to_json(envelopes: &[ScheduleEnvelope]) -> String {
    let mut out = format!("{{\n  \"format_version\": {BOUNDS_FORMAT_VERSION},\n  \"reports\": [\n");
    for (i, e) in envelopes.iter().enumerate() {
        let sep = if i + 1 < envelopes.len() { "," } else { "" };
        let power = match e.peak_power {
            Some(p) => format!("{{\"lo\": {:.3}, \"hi\": {:.3}}}", p.lo, p.hi),
            None => "null".to_string(),
        };
        let phases: Vec<String> = e.phases.iter().map(|&p| interval_json(p)).collect();
        let _ = writeln!(
            out,
            "  {{\"schedule\": {}, \"quantum\": {}, \"total\": {}, \"bus_busy\": {}, \
             \"serial_busy\": {}, \"peak_power\": {}, \"phases\": [{}]}}{}",
            crate::diag::json_string(&e.schedule),
            e.quantum,
            interval_json(e.total),
            interval_json(e.bus_busy),
            interval_json(e.serial_busy),
            power,
            phases.join(", "),
            sep
        );
    }
    out.push_str("  ]\n}\n");
    out
}

/// Renders envelopes as a human-readable table (one row per schedule).
pub fn bounds_table(envelopes: &[ScheduleEnvelope]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<32} {:>24} {:>24} {:>24} {:>18}",
        "schedule",
        "total [lo, hi] Mcycles",
        "bus busy [Mcycles]",
        "serial busy [Mcycles]",
        "peak power [lo, hi]"
    );
    for e in envelopes {
        let m = |i: Interval| format!("[{:.2}, {:.2}]", i.lo as f64 / 1e6, i.hi as f64 / 1e6);
        let p = match e.peak_power {
            Some(p) => format!("[{:.1}, {:.1}]", p.lo, p.hi),
            None => "-".to_string(),
        };
        let _ = writeln!(
            out,
            "{:<32} {:>24} {:>24} {:>24} {:>18}",
            e.schedule,
            m(e.total),
            m(e.bus_busy),
            m(e.serial_busy),
            p
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use tve_soc::paper_schedules;

    #[test]
    fn paper_envelopes_bracket_the_published_lengths() {
        let config = SocConfig::paper();
        let plan = SocTestPlan::paper();
        let sims = [283e6, 213e6, 265e6, 172e6]; // Table I, in cycles
        for (schedule, sim) in paper_schedules().iter().zip(sims) {
            let env = schedule_envelope(&config, &plan, schedule, 0);
            assert!(
                (env.total.lo as f64) < sim && sim < env.total.hi as f64,
                "{}: {} vs {sim}",
                schedule.name,
                env.total
            );
            assert!(env.total.lo > 0);
            assert_eq!(env.phases.len(), schedule.phases.len());
            assert!(env.peak_power.is_none(), "paper config has no power model");
        }
    }

    #[test]
    fn quantum_widens_every_interval() {
        let config = SocConfig::small();
        let plan = SocTestPlan::small();
        let s = &paper_schedules()[2];
        let accurate = schedule_envelope(&config, &plan, s, 0);
        let loose = schedule_envelope(&config, &plan, s, 4096);
        assert!(loose.total.lo <= accurate.total.lo);
        assert!(loose.total.hi >= accurate.total.hi);
        assert!(loose.bus_busy.lo <= accurate.bus_busy.lo);
        assert!(loose.serial_busy.hi >= accurate.serial_busy.hi);
        assert_eq!(loose.quantum, 4096);
    }

    #[test]
    fn power_model_yields_a_positive_envelope() {
        let config = SocConfig {
            power: Some(Default::default()),
            ..SocConfig::small()
        };
        let plan = SocTestPlan::small();
        let env = schedule_envelope(&config, &plan, &paper_schedules()[0], 0);
        let p = env.peak_power.expect("power model enabled");
        assert!(p.lo > 0.0, "{p:?}");
        assert!(p.hi > p.lo);
    }

    #[test]
    fn out_of_range_indices_are_ignored() {
        let config = SocConfig::small();
        let plan = SocTestPlan::small();
        let bogus = Schedule::new("bogus", vec![vec![0, 99], vec![42]]);
        let env = schedule_envelope(&config, &plan, &bogus, 0);
        assert_eq!(env.phases.len(), 2);
        assert_eq!(env.phases[1], Interval::ZERO);
    }

    #[test]
    fn json_report_is_versioned_and_well_formed() {
        let config = SocConfig::small();
        let plan = SocTestPlan::small();
        let envs = schedule_envelopes(&config, &plan, &paper_schedules(), 0);
        let json = bounds_reports_to_json(&envs);
        tve_obs::check_json(&json).expect("bounds JSON parses");
        assert!(json.contains(&format!("\"format_version\": {BOUNDS_FORMAT_VERSION}")));
        assert!(json.contains("\"peak_power\": null"));
        let table = bounds_table(&envs);
        assert!(table.contains("schedule 1"));
    }

    #[test]
    fn observables_split_slots_by_channel() {
        let config = SocConfig {
            memory_words: 64,
            ..SocConfig::small()
        };
        let plan = SocTestPlan::small();
        let schedule = &paper_schedules()[0]; // T1, T2, T4, T5, T7
        let metrics = tve_soc::run_scenario(&config, &plan, schedule).unwrap();
        let tasks = task_bounds(&config, &plan, 0);
        let obs = observe_metrics(&metrics, &tasks);
        assert!(obs.bus_busy > 0, "T1/T4/T7 are bus-fed");
        assert!(obs.serial_busy > 0, "T2/T5 are serial-fed");
        assert_eq!(obs.total_cycles, metrics.total_cycles);
        assert_eq!(obs.peak_power, None);
    }
}
