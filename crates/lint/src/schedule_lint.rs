//! The schedule analyzer: structural checks shared with
//! [`tve_core::Schedule::validate`], plus resource-race, WIR-conflict,
//! ring-ordering, power and reachability checks over [`PlanFacts`] —
//! all without building a simulation.

use std::collections::BTreeMap;

use tve_core::Schedule;

use crate::diag::{codes, Diagnostic, Location, Severity};
use crate::facts::{PlanFacts, TamChannel};

/// Runs every schedule check and returns the diagnostics in phase order
/// (structural first, then per-phase resource checks, then cross-phase
/// ordering, then whole-schedule reachability).
///
/// The structural checks are the *same enumeration* the dynamic
/// validator uses ([`Schedule::structural_issues`]); their codes come
/// from [`tve_core::ScheduleError::code`], so a statically-reported
/// structural error and the dynamic [`tve_core::ScheduleError`] it
/// predicts can never drift apart.
pub fn lint_schedule(schedule: &Schedule, facts: &PlanFacts) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let n = facts.tests.len();

    // 1. Structural issues — shared enumeration with Schedule::validate.
    for issue in schedule.structural_issues(n) {
        let location = match issue.phase {
            Some(p) => Location::Phase(p),
            None => Location::Schedule,
        };
        diags.push(Diagnostic::new(
            issue.error.code(),
            Severity::Error,
            location,
            issue.error.to_string(),
        ));
    }

    // The remaining checks reason about the tests that would actually run:
    // in-range indices, first occurrence only (duplicates are already
    // reported above and the executor refuses them anyway).
    let mut seen = vec![false; n];
    let effective: Vec<Vec<usize>> = schedule
        .phases
        .iter()
        .map(|phase| {
            phase
                .iter()
                .copied()
                .filter(|&t| t < n && !std::mem::replace(&mut seen[t], true))
                .collect()
        })
        .collect();

    // 2. Per-phase resource checks.
    for (p, phase) in effective.iter().enumerate() {
        check_core_races(p, phase, facts, &mut diags);
        check_serial_races(p, phase, facts, &mut diags);
        check_wir_conflicts(p, phase, facts, &mut diags);
        check_tam_demand(p, phase, facts, &mut diags);
        check_power(p, phase, facts, &mut diags);
    }

    // 3. Cross-phase configuration-ring ordering.
    check_ring_ordering(&effective, facts, &mut diags);

    // 4. Reachability: tests the plan defines but the schedule never runs.
    for (t, used) in seen.iter().enumerate() {
        if !used {
            diags.push(
                Diagnostic::new(
                    codes::DEAD_TEST,
                    Severity::Warning,
                    Location::Schedule,
                    format!("test {t} ({}) is never scheduled", facts.tests[t].name),
                )
                .with_note("coverage the plan calls for will be silently missing"),
            );
        }
    }

    diags
}

/// Two tests in one phase claiming the same core: the second WIR write or
/// pattern stream corrupts the first. Always an error.
fn check_core_races(p: usize, phase: &[usize], facts: &PlanFacts, diags: &mut Vec<Diagnostic>) {
    let mut by_core: BTreeMap<&'static str, Vec<usize>> = BTreeMap::new();
    for &t in phase {
        for core in &facts.tests[t].cores {
            by_core.entry(core).or_default().push(t);
        }
    }
    for (core, tests) in by_core {
        if tests.len() > 1 {
            let names: Vec<&str> = tests
                .iter()
                .map(|&t| facts.tests[t].name.as_str())
                .collect();
            diags.push(
                Diagnostic::new(
                    codes::CORE_RACE,
                    Severity::Error,
                    Location::Phase(p),
                    format!("tests {tests:?} contend for core '{core}'"),
                )
                .with_note(format!("contenders: {}", names.join(", ")))
                .with_note("concurrent access to one core's scan/march logic is undefined"),
            );
        }
    }
}

/// More than one serial-channel (ATE-fed) test in a phase: they serialize
/// on the single EBI channel. A warning — the schedule still executes, but
/// the phase will stretch; simulation quantifies by how much.
fn check_serial_races(p: usize, phase: &[usize], facts: &PlanFacts, diags: &mut Vec<Diagnostic>) {
    let serial: Vec<usize> = phase
        .iter()
        .copied()
        .filter(|&t| facts.tests[t].channel == TamChannel::Serial)
        .collect();
    if serial.len() > 1 {
        diags.push(
            Diagnostic::new(
                codes::SERIAL_RACE,
                Severity::Warning,
                Location::Phase(p),
                format!("tests {serial:?} share the single serial ATE channel"),
            )
            .with_note("the channel serializes them; simulate to quantify the stretch"),
        );
    }
}

/// Two tests in one phase writing different values to the same ring
/// client: whichever configures last wins and the other test runs in the
/// wrong mode. Same-value writes are compatible.
fn check_wir_conflicts(p: usize, phase: &[usize], facts: &PlanFacts, diags: &mut Vec<Diagnostic>) {
    let mut writes: BTreeMap<usize, Vec<(usize, u64)>> = BTreeMap::new();
    for &t in phase {
        for w in &facts.tests[t].wir {
            writes.entry(w.client).or_default().push((t, w.value));
        }
    }
    for (client, entries) in writes {
        let values: Vec<u64> = entries.iter().map(|&(_, v)| v).collect();
        if values.windows(2).any(|w| w[0] != w[1]) {
            let detail: Vec<String> = entries
                .iter()
                .map(|&(t, v)| format!("test {t} writes {v:#x}"))
                .collect();
            diags.push(
                Diagnostic::new(
                    codes::WIR_CONFLICT,
                    Severity::Error,
                    Location::Phase(p),
                    format!("incompatible WIR values for ring client {client}"),
                )
                .with_note(detail.join("; "))
                .with_note("the last configuration wins; the other test runs in the wrong mode"),
            );
        }
    }
}

/// Summed bus-TAM share above 1.0: the phase is over-subscribed. A
/// warning — arbitration resolves it, at a cost only simulation measures.
fn check_tam_demand(p: usize, phase: &[usize], facts: &PlanFacts, diags: &mut Vec<Diagnostic>) {
    let demand: f64 = phase.iter().map(|&t| facts.tests[t].tam_share).sum();
    if demand > 1.0 + 1e-9 {
        diags.push(
            Diagnostic::new(
                codes::TAM_OVERSUB,
                Severity::Warning,
                Location::Phase(p),
                format!("bus TAM demand {demand:.2} exceeds capacity 1.00"),
            )
            .with_note("tests will stretch under arbitration; simulate to quantify"),
        );
    }
}

/// Summed peak power above the plan budget: the phase may brown out the
/// device under test. An error when a budget is declared.
fn check_power(p: usize, phase: &[usize], facts: &PlanFacts, diags: &mut Vec<Diagnostic>) {
    let Some(budget) = facts.power_budget else {
        return;
    };
    let peak: f64 = phase.iter().map(|&t| facts.tests[t].peak_power).sum();
    if peak > budget + 1e-9 {
        diags.push(
            Diagnostic::new(
                codes::POWER_OVERCOMMIT,
                Severity::Error,
                Location::Phase(p),
                format!("phase peak power {peak:.0} exceeds budget {budget:.0}"),
            )
            .with_note("split the phase or drop a test to stay within the budget"),
        );
    }
}

/// Walks the schedule in phase order tracking the last value written to
/// each ring client. A test that needs a client functional (value 0) while
/// a test-mode value from an earlier phase is still latched there reads a
/// corrupted functional path — an ordering hazard invisible to per-phase
/// checks.
fn check_ring_ordering(effective: &[Vec<usize>], facts: &PlanFacts, diags: &mut Vec<Diagnostic>) {
    let mut ring = vec![0u64; facts.ring_clients];
    let mut writer: Vec<Option<(usize, usize)>> = vec![None; facts.ring_clients];
    for (p, phase) in effective.iter().enumerate() {
        // Check each test against the state left by *earlier* phases.
        for &t in phase {
            let tf = &facts.tests[t];
            for &client in &tf.needs_functional {
                let own_write = tf.wir.iter().any(|w| w.client == client);
                if client < ring.len() && ring[client] != 0 && !own_write {
                    let mut d = Diagnostic::new(
                        codes::RING_STALE,
                        Severity::Error,
                        Location::Test { phase: p, test: t },
                        format!(
                            "test {t} ({}) needs ring client {client} functional, but a \
                             test-mode value {:#x} is still latched there",
                            tf.name, ring[client]
                        ),
                    );
                    if let Some((wp, wt)) = writer[client] {
                        d = d.with_note(format!("written by test {wt} in phase {wp}"));
                    }
                    diags.push(
                        d.with_note("insert a functional reconfiguration or reorder the phases"),
                    );
                }
            }
        }
        // Then apply this phase's writes (tests within a phase configure
        // before any of them runs, so writes take effect for later phases).
        for &t in phase {
            for w in &facts.tests[t].wir {
                if w.client < ring.len() {
                    ring[w.client] = w.value;
                    writer[w.client] = Some((p, t));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::facts::{soc_facts, TestFacts, WirWrite};
    use tve_soc::{paper_schedules, SocConfig, SocTestPlan, RING_MEM, RING_PROC};

    fn facts() -> PlanFacts {
        soc_facts(&SocConfig::small(), &SocTestPlan::small())
    }

    #[test]
    fn paper_schedules_have_no_errors() {
        let facts = soc_facts(&SocConfig::paper(), &SocTestPlan::paper());
        for s in paper_schedules() {
            let diags = lint_schedule(&s, &facts);
            assert!(
                diags.iter().all(|d| d.severity != Severity::Error),
                "{}: {diags:?}",
                s.name
            );
        }
    }

    #[test]
    fn structural_issues_surface_with_schedule_error_codes() {
        let s = Schedule::new("bad", vec![vec![0, 0], vec![], vec![99]]);
        let diags = lint_schedule(&s, &facts());
        let codes: Vec<&str> = diags.iter().map(|d| d.code).collect();
        assert!(codes.contains(&"sched-dup-test"), "{codes:?}");
        assert!(codes.contains(&"sched-empty-phase"), "{codes:?}");
        assert!(codes.contains(&"sched-index-range"), "{codes:?}");
    }

    #[test]
    fn core_race_is_an_error() {
        // T1 and T2 both claim the processor.
        let s = Schedule::new("race", vec![vec![0, 1]]);
        let diags = lint_schedule(&s, &facts());
        let race = diags.iter().find(|d| d.code == codes::CORE_RACE).unwrap();
        assert_eq!(race.severity, Severity::Error);
        assert_eq!(race.location, Location::Phase(0));
    }

    #[test]
    fn serial_sharing_is_a_warning_not_an_error() {
        // T2 (proc, serial) and T5 (dct, serial): no core conflict, but
        // both need the ATE channel.
        let s = Schedule::new("serial", vec![vec![1, 4]]);
        let diags = lint_schedule(&s, &facts());
        let d = diags.iter().find(|d| d.code == codes::SERIAL_RACE).unwrap();
        assert_eq!(d.severity, Severity::Warning);
    }

    #[test]
    fn wir_conflict_detected_for_incompatible_modes() {
        // Synthetic plan: two tests writing different values to client 0.
        let mk = |name: &str, value: u64| TestFacts {
            name: name.to_string(),
            cores: vec![],
            channel: TamChannel::Bus,
            wir: vec![WirWrite { client: 0, value }],
            needs_functional: vec![],
            peak_power: 1.0,
            tam_share: 0.1,
        };
        let plan = PlanFacts {
            tests: vec![mk("a", 2), mk("b", 4)],
            ring_clients: 2,
            wrappers: 1,
            power_budget: None,
        };
        let s = Schedule::new("conflict", vec![vec![0, 1]]);
        let diags = lint_schedule(&s, &plan);
        let d = diags
            .iter()
            .find(|d| d.code == codes::WIR_CONFLICT)
            .unwrap();
        assert_eq!(d.severity, Severity::Error);
    }

    #[test]
    fn stale_ring_config_across_phases_is_flagged() {
        // T1 latches BIST mode into the processor wrapper; T7 later needs
        // the processor... actually T7 needs RING_MEM functional. Build the
        // hazard directly: a test that writes RING_MEM, then a march test.
        let mut plan = facts();
        plan.tests[0].wir.push(WirWrite {
            client: RING_MEM,
            value: 3,
        });
        let s = Schedule::new("stale", vec![vec![0], vec![5]]);
        let diags = lint_schedule(&s, &plan);
        let d = diags.iter().find(|d| d.code == codes::RING_STALE).unwrap();
        assert_eq!(d.severity, Severity::Error);
        assert_eq!(d.location, Location::Test { phase: 1, test: 5 });
        assert!(d.notes.iter().any(|n| n.contains("phase 0")), "{d:?}");
    }

    #[test]
    fn same_phase_writes_do_not_trip_the_ordering_check() {
        // T1 writes RING_PROC in phase 0; a test needing RING_PROC
        // functional in the *same* phase is a WIR-level concern, not a
        // cross-phase ordering hazard (and T6 doesn't need RING_PROC
        // anyway). Sanity: T1 then T6 in separate phases is clean because
        // T1 writes RING_PROC, not RING_MEM.
        let s = Schedule::new("ok", vec![vec![0], vec![5]]);
        let diags = lint_schedule(&s, &facts());
        assert!(
            !diags.iter().any(|d| d.code == codes::RING_STALE),
            "{diags:?}"
        );
        let _ = RING_PROC;
    }

    #[test]
    fn power_budget_overcommit_is_an_error_only_with_a_budget() {
        // T1 (180) + T4 (90) = 270.
        let s = Schedule::new("hot", vec![vec![0, 3]]);
        let unbudgeted = lint_schedule(&s, &facts());
        assert!(!unbudgeted.iter().any(|d| d.code == codes::POWER_OVERCOMMIT));
        let budgeted = lint_schedule(&s, &facts().with_budget(200.0));
        let d = budgeted
            .iter()
            .find(|d| d.code == codes::POWER_OVERCOMMIT)
            .unwrap();
        assert_eq!(d.severity, Severity::Error);
        assert!(d.message.contains("270"), "{}", d.message);
    }

    #[test]
    fn dead_tests_are_warned_about() {
        let s = Schedule::new("partial", vec![vec![0], vec![3]]);
        let diags = lint_schedule(&s, &facts());
        let dead: Vec<&Diagnostic> = diags
            .iter()
            .filter(|d| d.code == codes::DEAD_TEST)
            .collect();
        assert_eq!(dead.len(), 5, "{dead:?}");
        assert!(dead.iter().all(|d| d.severity == Severity::Warning));
    }

    #[test]
    fn duplicate_tests_do_not_double_count_resources() {
        // `[0, 0]` is a structural duplicate; it must not ALSO produce a
        // self-race on the processor.
        let s = Schedule::new("dup", vec![vec![0, 0]]);
        let diags = lint_schedule(&s, &facts());
        assert!(diags.iter().any(|d| d.code == "sched-dup-test"));
        assert!(
            !diags.iter().any(|d| d.code == codes::CORE_RACE),
            "{diags:?}"
        );
    }
}
