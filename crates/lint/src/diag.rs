//! Diagnostics: severities, source locations, the [`Diagnostic`] record
//! and the [`LintReport`] container with its human-table and JSON
//! renderers.

use std::fmt;
use std::fmt::Write as _;

/// Pinned schema version stamped into every lint JSON report so artifact
/// consumers can detect shape drift; bump on any change to the emitted
/// fields.
pub const LINT_FORMAT_VERSION: u64 = 1;

/// Diagnostic code constants for the non-structural checks.
///
/// Structural schedule diagnostics do *not* have constants here: their
/// codes come verbatim from [`tve_core::ScheduleError::code`], so the
/// static and dynamic paths share one name per defect by construction.
pub mod codes {
    /// Two tests in one phase claim the same exclusive core resource.
    pub const CORE_RACE: &str = "res-core-race";
    /// Two tests in one phase stream over the same serial ATE channel
    /// (they serialize and stretch, but complete).
    pub const SERIAL_RACE: &str = "res-serial-race";
    /// A phase's combined TAM share demand exceeds the channel (tests
    /// stretch fluidly — the effect the paper quantifies by simulation).
    pub const TAM_OVERSUB: &str = "res-tam-oversub";
    /// Two tests in one phase need different WIR values on the same
    /// configuration-ring client.
    pub const WIR_CONFLICT: &str = "wir-conflict";
    /// A config-ring ordering hazard: an earlier write leaves a client in
    /// a test mode that a later functional-path access silently trips
    /// over (or, in a program, a write is clobbered before use).
    pub const RING_STALE: &str = "ring-stale-config";
    /// A phase's summed peak power exceeds the plan budget.
    pub const POWER_OVERCOMMIT: &str = "power-overcommit";
    /// A test in the plan is never scheduled (dynamically legal — the
    /// test is skipped — but usually an omission).
    pub const DEAD_TEST: &str = "sched-dead-test";
    /// The program text does not parse.
    pub const PROG_PARSE: &str = "prog-parse";
    /// A `config` op references a ring client that does not exist.
    pub const PROG_UNKNOWN_CLIENT: &str = "prog-unknown-client";
    /// An `expect` op references a wrapper that does not exist.
    pub const PROG_UNKNOWN_WRAPPER: &str = "prog-unknown-wrapper";
    /// A `run` op references a test index that does not exist.
    pub const PROG_UNKNOWN_TEST: &str = "prog-unknown-test";
    /// A `run` op references a test already consumed by an earlier run
    /// (the Virtual ATE reports `UnknownTest` at execution).
    pub const PROG_DUP_RUN: &str = "prog-dup-run";
    /// An `expect` op reads a signature before any test has run.
    pub const PROG_READ_BEFORE_RUN: &str = "prog-read-before-run";
    /// A `ring` rotation loads a different number of values than the ring
    /// has clients.
    pub const PROG_RING_WIDTH: &str = "prog-ring-width";
    /// A `config` write is overwritten before any run consumes it.
    pub const PROG_CLOBBERED: &str = "prog-clobbered-config";
    /// A `config` write is never followed by a run at all.
    pub const PROG_UNUSED: &str = "prog-unused-config";
}

/// How bad a diagnostic is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Informational — no action needed.
    Info,
    /// Suspicious but executable: the scenario completes, possibly
    /// stretched or with skipped work.
    Warning,
    /// The scenario is statically known to fail, corrupt results, or
    /// violate a stated budget.
    Error,
}

impl Severity {
    /// The stable lowercase tag (JSON/CLI material).
    pub const fn as_str(&self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Where a diagnostic points.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Location {
    /// The schedule (or plan) as a whole.
    Schedule,
    /// A schedule phase.
    Phase(usize),
    /// A specific test within a phase.
    Test {
        /// Phase index.
        phase: usize,
        /// Test index (into the plan's test list).
        test: usize,
    },
    /// A program-text span.
    Span {
        /// 1-based source line.
        line: usize,
        /// 1-based column.
        column: usize,
    },
}

impl fmt::Display for Location {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Location::Schedule => f.write_str("schedule"),
            Location::Phase(p) => write!(f, "phase {p}"),
            Location::Test { phase, test } => write!(f, "phase {phase}, test {test}"),
            Location::Span { line, column } => write!(f, "line {line}:{column}"),
        }
    }
}

/// One static finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Stable diagnostic code (see [`codes`] and
    /// [`tve_core::ScheduleError::code`]).
    pub code: &'static str,
    /// Severity class.
    pub severity: Severity,
    /// Where the problem is.
    pub location: Location,
    /// Human-readable description.
    pub message: String,
    /// Supporting details (contending test names, prior write sites, …).
    pub notes: Vec<String>,
}

impl Diagnostic {
    /// A diagnostic without notes.
    pub fn new(
        code: &'static str,
        severity: Severity,
        location: Location,
        message: impl Into<String>,
    ) -> Self {
        Diagnostic {
            code,
            severity,
            location,
            message: message.into(),
            notes: Vec::new(),
        }
    }

    /// Adds a supporting note.
    #[must_use]
    pub fn with_note(mut self, note: impl Into<String>) -> Self {
        self.notes.push(note.into());
        self
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<7} {:<20} [{}] {}",
            self.severity, self.code, self.location, self.message
        )?;
        for note in &self.notes {
            write!(f, "\n        note: {note}")?;
        }
        Ok(())
    }
}

/// All diagnostics of one linted subject (a schedule or a program).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LintReport {
    /// What was linted (schedule or program name).
    pub subject: String,
    /// The findings, in check order.
    pub diagnostics: Vec<Diagnostic>,
}

impl LintReport {
    /// An empty report for `subject`.
    pub fn new(subject: impl Into<String>) -> Self {
        LintReport {
            subject: subject.into(),
            diagnostics: Vec::new(),
        }
    }

    /// Whether the subject is statically acceptable: **no error-severity
    /// diagnostics**. Warnings and infos do not reject — the soundness
    /// contract (`clean ⇒ executes without `ScheduleError`/infra failure`)
    /// binds only error-severity findings.
    pub fn clean(&self) -> bool {
        self.error_count() == 0
    }

    /// Number of error-severity diagnostics.
    pub fn error_count(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .count()
    }

    /// Number of warning-severity diagnostics.
    pub fn warning_count(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Warning)
            .count()
    }

    /// The codes present, in finding order (with duplicates).
    pub fn codes(&self) -> Vec<&'static str> {
        self.diagnostics.iter().map(|d| d.code).collect()
    }

    /// Whether any diagnostic carries `code`.
    pub fn has(&self, code: &str) -> bool {
        self.diagnostics.iter().any(|d| d.code == code)
    }

    /// This report as a JSON object (no trailing newline). Emitted
    /// serde-free like the campaign artifacts; validate with
    /// `tve_obs::check_json`.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\"format_version\": {}, \"subject\": {}, \"clean\": {}, \"diagnostics\": [",
            LINT_FORMAT_VERSION,
            json_string(&self.subject),
            self.clean()
        );
        for (i, d) in self.diagnostics.iter().enumerate() {
            let sep = if i + 1 < self.diagnostics.len() {
                ","
            } else {
                ""
            };
            let loc = match d.location {
                Location::Schedule => "{\"kind\": \"schedule\"}".to_string(),
                Location::Phase(p) => format!("{{\"kind\": \"phase\", \"phase\": {p}}}"),
                Location::Test { phase, test } => {
                    format!("{{\"kind\": \"test\", \"phase\": {phase}, \"test\": {test}}}")
                }
                Location::Span { line, column } => {
                    format!("{{\"kind\": \"span\", \"line\": {line}, \"column\": {column}}}")
                }
            };
            let notes: Vec<String> = d.notes.iter().map(|n| json_string(n)).collect();
            let _ = write!(
                out,
                "\n    {{\"code\": {}, \"severity\": {}, \"location\": {}, \
                 \"message\": {}, \"notes\": [{}]}}{}",
                json_string(d.code),
                json_string(d.severity.as_str()),
                loc,
                json_string(&d.message),
                notes.join(", "),
                sep
            );
        }
        if !self.diagnostics.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("]}");
        out
    }
}

impl fmt::Display for LintReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{}: {} error(s), {} warning(s)",
            self.subject,
            self.error_count(),
            self.warning_count()
        )?;
        for d in &self.diagnostics {
            writeln!(f, "  {d}")?;
        }
        Ok(())
    }
}

/// Bundles several reports into one JSON artifact (a `{"reports": [...]}`
/// object), ending with a newline.
pub fn reports_to_json(reports: &[LintReport]) -> String {
    let mut out = String::from("{\n  \"reports\": [\n");
    for (i, r) in reports.iter().enumerate() {
        let sep = if i + 1 < reports.len() { "," } else { "" };
        let _ = writeln!(out, "  {}{}", r.to_json(), sep);
    }
    out.push_str("  ]\n}\n");
    out
}

/// A JSON string literal with the mandatory escapes.
pub(crate) fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn severity_orders_and_tags() {
        assert!(Severity::Error > Severity::Warning);
        assert!(Severity::Warning > Severity::Info);
        assert_eq!(Severity::Error.as_str(), "error");
    }

    #[test]
    fn report_cleanliness_counts_only_errors() {
        let mut r = LintReport::new("s");
        assert!(r.clean());
        r.diagnostics.push(Diagnostic::new(
            codes::SERIAL_RACE,
            Severity::Warning,
            Location::Phase(0),
            "w",
        ));
        assert!(r.clean(), "warnings do not reject");
        r.diagnostics.push(
            Diagnostic::new(codes::CORE_RACE, Severity::Error, Location::Phase(1), "e")
                .with_note("n"),
        );
        assert!(!r.clean());
        assert_eq!(r.error_count(), 1);
        assert_eq!(r.warning_count(), 1);
        assert_eq!(r.codes(), vec![codes::SERIAL_RACE, codes::CORE_RACE]);
        assert!(r.has(codes::CORE_RACE) && !r.has(codes::WIR_CONFLICT));
    }

    #[test]
    fn json_is_well_formed() {
        let mut r = LintReport::new("sch\"1\"");
        r.diagnostics.push(
            Diagnostic::new(
                codes::WIR_CONFLICT,
                Severity::Error,
                Location::Test { phase: 1, test: 2 },
                "conflicting WIR",
            )
            .with_note("T2 wants 2")
            .with_note("T1 wants 4"),
        );
        r.diagnostics.push(Diagnostic::new(
            codes::PROG_PARSE,
            Severity::Error,
            Location::Span { line: 3, column: 7 },
            "bad token",
        ));
        let json = reports_to_json(&[r, LintReport::new("empty")]);
        tve_obs::check_json(&json).expect("lint JSON parses");
        assert!(json.contains("\"line\": 3"));
        assert!(json.contains("\"clean\": true"));
        assert!(json.contains("\"clean\": false"));
    }

    #[test]
    fn json_reports_carry_the_pinned_format_version() {
        assert_eq!(LINT_FORMAT_VERSION, 1, "bump deliberately, with the docs");
        let single = LintReport::new("s").to_json();
        let want = format!("\"format_version\": {LINT_FORMAT_VERSION}");
        assert!(single.starts_with(&format!("{{{want}")), "{single}");
        let bundle = reports_to_json(&[LintReport::new("a"), LintReport::new("b")]);
        assert_eq!(bundle.matches(&want).count(), 2, "one stamp per report");
    }

    #[test]
    fn display_renders_a_table_row_per_diagnostic() {
        let mut r = LintReport::new("s1");
        r.diagnostics.push(
            Diagnostic::new(
                codes::CORE_RACE,
                Severity::Error,
                Location::Phase(0),
                "race",
            )
            .with_note("between T1 and T2"),
        );
        let text = r.to_string();
        assert!(text.contains("s1: 1 error(s), 0 warning(s)"));
        assert!(text.contains("error"));
        assert!(text.contains("res-core-race"));
        assert!(text.contains("note: between T1 and T2"));
    }
}
