//! Static facts about a test plan: what each test claims (cores, TAM
//! channel, WIR writes, power) — everything the analyzer needs to reason
//! about a schedule *without* building or running the simulation.
//!
//! [`soc_facts`] derives the facts for the seven-test JPEG-encoder case
//! study from the same `(SocConfig, SocTestPlan)` pair that
//! [`tve_soc::build_test_runs`] builds the dynamic test sequences from, so
//! the static and dynamic views describe the same tests. The analytic
//! share/power figures deliberately mirror `tve-sched::estimate_tasks`
//! (the coarse models the paper says schedulers must settle for);
//! `tve-sched` carries a cross-check test pinning the two against each
//! other.

use tve_core::WrapperMode;
use tve_soc::{
    SocConfig, SocTestPlan, RING_CODEC, RING_COLOR, RING_DCT, RING_EBI, RING_MEM, RING_PROC,
};

/// Which TAM path a test's patterns stream over.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TamChannel {
    /// On-chip sources over the shared system bus (BIST, controller).
    Bus,
    /// ATE patterns through the serial EBI channel.
    Serial,
}

/// One WIR/config write a test performs over the configuration ring when
/// it starts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WirWrite {
    /// Ring client index.
    pub client: usize,
    /// The value written.
    pub value: u64,
}

/// The static claims of one test sequence.
#[derive(Debug, Clone, PartialEq)]
pub struct TestFacts {
    /// Test name (matches the dynamic [`tve_core::TestRun`] name).
    pub name: String,
    /// Exclusive structural resources (core scan chains, march engines).
    /// Two tests claiming a common entry must not share a phase.
    pub cores: Vec<&'static str>,
    /// The TAM path the patterns use.
    pub channel: TamChannel,
    /// WIR/config writes the test issues at start.
    pub wir: Vec<WirWrite>,
    /// Ring clients that must hold their functional/default value (0)
    /// while this test runs — a stale test-mode write there corrupts the
    /// test's functional-path accesses.
    pub needs_functional: Vec<usize>,
    /// Peak power estimate (same units as the plan budget).
    pub peak_power: f64,
    /// Coarse share of the shared bus TAM this test demands in `[0, 1]`.
    pub tam_share: f64,
}

/// Everything the analyzer knows about a plan, statically.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanFacts {
    /// Per-test facts, indexed like the schedule's test indices.
    pub tests: Vec<TestFacts>,
    /// Configuration-ring client count.
    pub ring_clients: usize,
    /// Wrapper count (the Virtual ATE's `expect` index space).
    pub wrappers: usize,
    /// Optional phase power budget; `None` disables the power check.
    pub power_budget: Option<f64>,
}

impl PlanFacts {
    /// The same facts with a phase power budget to lint against.
    #[must_use]
    pub fn with_budget(mut self, budget: f64) -> Self {
        self.power_budget = Some(budget);
        self
    }

    /// The maximum summed peak power any single-phase grouping of the
    /// current tests could need — a budget at or above this lints clean
    /// for every duplicate-free schedule.
    pub fn total_peak_power(&self) -> f64 {
        self.tests.iter().map(|t| t.peak_power).sum()
    }
}

/// Derives the seven-test case-study facts from the SoC configuration and
/// plan — the static mirror of [`tve_soc::build_test_runs`].
///
/// No budget is set (the paper's plan states none); add one with
/// [`PlanFacts::with_budget`].
pub fn soc_facts(config: &SocConfig, plan: &SocTestPlan) -> PlanFacts {
    let w = u64::from(config.bus_width_bits);
    let cap = config.capture_cycles;
    let proc_bits = config.proc_scan.bits_per_pattern();
    let ate_rate = config.ate_down_rate.0 as f64 / config.ate_down_rate.1 as f64;
    let _ = plan; // pattern counts shape durations, not the static claims

    // Bus share of a bus-fed scan test: stimuli words per pattern over the
    // pattern's shift+capture length (see tve-sched::estimate_tasks).
    let scan_share = |bits: u64, chain_len: u32| -> f64 {
        let per_pattern = u64::from(chain_len) + cap;
        ((bits.div_ceil(w) + 1) as f64 / per_pattern as f64).min(1.0)
    };
    // Channel-limited ATE test: the serial link stretches the pattern.
    let ate_share = |bits: u64, chain_len: u32| -> f64 {
        let per_pattern = ((bits as f64 / ate_rate).ceil() as u64).max(u64::from(chain_len) + cap);
        ((bits.div_ceil(w) + 1) as f64 / per_pattern as f64).min(1.0)
    };

    let bist = WrapperMode::Bist.encode();
    let int_test = WrapperMode::IntTest.encode();

    let t1 = TestFacts {
        name: "T1 proc BIST".to_string(),
        cores: vec!["processor"],
        channel: TamChannel::Bus,
        wir: vec![WirWrite {
            client: RING_PROC,
            value: bist,
        }],
        needs_functional: vec![],
        peak_power: 180.0,
        tam_share: scan_share(proc_bits, config.proc_scan.max_chain_len()),
    };
    let t2 = TestFacts {
        name: "T2 proc det".to_string(),
        cores: vec!["processor"],
        channel: TamChannel::Serial,
        wir: vec![
            WirWrite {
                client: RING_EBI,
                value: 1,
            },
            WirWrite {
                client: RING_PROC,
                value: int_test,
            },
        ],
        needs_functional: vec![],
        peak_power: 120.0,
        tam_share: ate_share(proc_bits, config.proc_scan.max_chain_len()),
    };
    let per_pattern3 = u64::from(config.proc_scan.max_chain_len()) + cap;
    let compressed = (proc_bits as f64 / config.decompress_ratio).ceil() as u64;
    let compacted = proc_bits.div_ceil(u64::from(config.compact_ratio));
    let bus3 = compressed.div_ceil(w) + compacted.div_ceil(w) + 2;
    let t3 = TestFacts {
        name: "T3 proc det 50x".to_string(),
        cores: vec!["processor", "codec"],
        channel: TamChannel::Serial,
        wir: vec![
            WirWrite {
                client: RING_EBI,
                value: 1,
            },
            WirWrite {
                client: RING_PROC,
                value: int_test,
            },
            WirWrite {
                client: RING_CODEC,
                value: 1,
            },
        ],
        needs_functional: vec![],
        peak_power: 130.0,
        tam_share: (bus3 as f64 / per_pattern3 as f64).min(1.0),
    };
    let t4 = TestFacts {
        name: "T4 color BIST".to_string(),
        cores: vec!["color-conv"],
        channel: TamChannel::Bus,
        wir: vec![WirWrite {
            client: RING_COLOR,
            value: bist,
        }],
        needs_functional: vec![],
        peak_power: 90.0,
        tam_share: scan_share(
            config.color_scan.bits_per_pattern(),
            config.color_scan.max_chain_len(),
        ),
    };
    let t5 = TestFacts {
        name: "T5 dct det".to_string(),
        cores: vec!["dct"],
        channel: TamChannel::Serial,
        wir: vec![
            WirWrite {
                client: RING_EBI,
                value: 1,
            },
            WirWrite {
                client: RING_DCT,
                value: int_test,
            },
        ],
        needs_functional: vec![],
        peak_power: 60.0,
        tam_share: ate_share(
            config.dct_scan.bits_per_pattern(),
            config.dct_scan.max_chain_len(),
        ),
    };
    let bus_per_op = 2.0;
    let t6 = TestFacts {
        name: "T6 mem march (ctrl)".to_string(),
        cores: vec!["memory"],
        channel: TamChannel::Bus,
        wir: vec![],
        // March accesses go through the memory wrapper's functional path:
        // a stale test mode on its ring client breaks them.
        needs_functional: vec![RING_MEM],
        peak_power: 70.0,
        tam_share: (bus_per_op / config.controller_op_overhead as f64).min(1.0),
    };
    let t7 = TestFacts {
        name: "T7 mem march (proc)".to_string(),
        // The embedded processor executes the march program, so the
        // processor is busy too (same claim as the scheduler's task model).
        cores: vec!["memory", "processor"],
        channel: TamChannel::Bus,
        wir: vec![],
        needs_functional: vec![RING_MEM],
        peak_power: 110.0,
        tam_share: (bus_per_op / (config.processor_op_overhead as f64 + bus_per_op)).min(1.0),
    };

    PlanFacts {
        tests: vec![t1, t2, t3, t4, t5, t6, t7],
        ring_clients: 6,
        wrappers: 4,
        power_budget: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_facts_mirror_the_dynamic_test_list() {
        let facts = soc_facts(&SocConfig::paper(), &SocTestPlan::paper());
        assert_eq!(facts.tests.len(), 7);
        assert_eq!(facts.ring_clients, 6);
        assert_eq!(facts.wrappers, 4);
        assert!(facts.power_budget.is_none());
        // Shares are sane fractions.
        for t in &facts.tests {
            assert!(t.tam_share > 0.0 && t.tam_share <= 1.0, "{}", t.name);
            assert!(t.peak_power > 0.0);
        }
        // T1's share matches the published ~0.665 utilization figure.
        assert!(
            (facts.tests[0].tam_share - 0.665).abs() < 0.01,
            "{}",
            facts.tests[0].tam_share
        );
        // The processor is claimed by T1, T2, T3 and T7 — nothing else.
        let claims: Vec<bool> = facts
            .tests
            .iter()
            .map(|t| t.cores.contains(&"processor"))
            .collect();
        assert_eq!(claims, [true, true, true, false, false, false, true]);
        // Serial-channel tests are exactly T2, T3, T5.
        let serial: Vec<bool> = facts
            .tests
            .iter()
            .map(|t| t.channel == TamChannel::Serial)
            .collect();
        assert_eq!(serial, [false, true, true, false, true, false, false]);
    }

    #[test]
    fn budget_helpers() {
        let facts = soc_facts(&SocConfig::small(), &SocTestPlan::small());
        let total = facts.total_peak_power();
        assert!((total - 760.0).abs() < 1e-9, "{total}");
        let budgeted = facts.clone().with_budget(500.0);
        assert_eq!(budgeted.power_budget, Some(500.0));
    }

    #[test]
    fn memory_tests_need_the_mem_client_functional() {
        let facts = soc_facts(&SocConfig::small(), &SocTestPlan::small());
        assert_eq!(facts.tests[5].needs_functional, vec![RING_MEM]);
        assert_eq!(facts.tests[6].needs_functional, vec![RING_MEM]);
        // And they write no WIR of their own.
        assert!(facts.tests[5].wir.is_empty());
    }
}
