#![forbid(unsafe_code)]
#![deny(missing_docs)]

//! # tve-lint — static analysis of test schedules and ATE programs
//!
//! The paper validates test plans by *simulating* them on transaction
//! level models. This crate is the complementary pass: a static analyzer
//! that examines a [`Schedule`], the plan's
//! [`PlanFacts`] and optional test-program text and reports structured
//! [`Diagnostic`]s **without building a simulation** — catching in
//! microseconds the mistakes that would otherwise cost a simulation run
//! (or silently corrupt one).
//!
//! ## Checks
//!
//! Schedule-level ([`lint_schedule`]):
//! * structural defects — the *same enumeration*
//!   [`tve_core::Schedule::validate`] uses, so static codes and dynamic
//!   [`ScheduleError`](tve_core::ScheduleError)s cannot drift apart,
//! * core races — two tests of one phase contending for a core,
//! * serial-channel sharing and bus-TAM over-subscription (warnings —
//!   arbitration resolves them at a cost only simulation quantifies),
//! * WIR conflicts — incompatible configuration-ring values in one phase,
//! * configuration-ring ordering hazards — a stale test-mode value from an
//!   earlier phase corrupting a later functional-path test,
//! * power-budget overcommit and never-scheduled (dead) tests.
//!
//! Program-level ([`lint_program`]): parse errors with line/column spans,
//! unknown client/test/wrapper references, double-runs the Virtual ATE
//! would reject, clobbered or unused configuration writes, and stale
//! test-mode state ahead of a functional-path test.
//!
//! ## The contract
//!
//! The analyzer is **sound** with respect to the dynamic layer: a
//! schedule with no error-severity diagnostics never produces a
//! [`ScheduleError`](tve_core::ScheduleError) or infrastructure failure
//! when executed (`tests/lint_contract.rs` enforces this over the paper
//! schedules and hundreds of generated ones). It is **useful**: every
//! `ScheduleError` variant and every seeded structural defect is caught
//! statically with the right diagnostic code. Warnings deliberately stay
//! warnings — quantifying them is what the simulator is for.
//!
//! ```
//! use tve_lint::{lint_schedule_report, soc_facts};
//! use tve_soc::{paper_schedules, SocConfig, SocTestPlan};
//!
//! let facts = soc_facts(&SocConfig::paper(), &SocTestPlan::paper());
//! for schedule in paper_schedules() {
//!     assert!(lint_schedule_report(&schedule, &facts).clean());
//! }
//! ```

mod bounds;
mod diag;
mod facts;
mod program_lint;
mod schedule_lint;

pub use bounds::{
    bounds_reports_to_json, bounds_table, observe_metrics, schedule_envelope, schedule_envelopes,
    task_bounds, EnvelopeObservables, Interval, PowerInterval, ScheduleEnvelope, TaskBounds,
    BOUNDS_FORMAT_VERSION,
};
pub use diag::{
    codes, reports_to_json, Diagnostic, LintReport, Location, Severity, LINT_FORMAT_VERSION,
};
pub use facts::{soc_facts, PlanFacts, TamChannel, TestFacts, WirWrite};
pub use program_lint::lint_program;
pub use schedule_lint::lint_schedule;

use tve_core::Schedule;

/// Lints a schedule and wraps the diagnostics in a [`LintReport`] named
/// after the schedule.
pub fn lint_schedule_report(schedule: &Schedule, facts: &PlanFacts) -> LintReport {
    LintReport {
        subject: schedule.name.clone(),
        diagnostics: lint_schedule(schedule, facts),
    }
}

/// Lints program text and wraps the diagnostics in a [`LintReport`] named
/// after the program.
pub fn lint_program_report(name: &str, text: &str, facts: &PlanFacts) -> LintReport {
    LintReport {
        subject: name.to_string(),
        diagnostics: lint_program(name, text, facts),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tve_soc::{paper_schedules, SocConfig, SocTestPlan};

    #[test]
    fn report_wrappers_carry_the_subject_name() {
        let facts = soc_facts(&SocConfig::small(), &SocTestPlan::small());
        let r = lint_schedule_report(&paper_schedules()[0], &facts);
        assert_eq!(r.subject, paper_schedules()[0].name);
        let r = lint_program_report("prog", "run 0\n", &facts);
        assert_eq!(r.subject, "prog");
    }
}
