//! The test-program analyzer: lints the textual ATE program format
//! ([`tve_core::TestProgram::parse`]) against [`PlanFacts`] without
//! executing it on the Virtual ATE.
//!
//! The analysis interprets the program the way the Virtual ATE would —
//! configuration state is driven *only* by explicit `config`/`ring`
//! instructions (the ATE does not see the configuration a test sequence
//! may embed) — and flags references the ATE would reject at run time
//! plus config-ordering mistakes it would silently mis-execute.

use std::collections::BTreeMap;

use tve_core::{AteOp, TestProgram};

use crate::diag::{codes, Diagnostic, Location, Severity};
use crate::facts::PlanFacts;

/// Lints program text. A parse failure yields a single `prog-parse` error
/// carrying the parser's span; otherwise the op sequence is abstractly
/// interpreted and every problem is reported.
pub fn lint_program(name: &str, text: &str, facts: &PlanFacts) -> Vec<Diagnostic> {
    let (program, lines) = match TestProgram::parse_with_lines(name, text) {
        Ok(parsed) => parsed,
        Err(e) => {
            return vec![Diagnostic::new(
                codes::PROG_PARSE,
                Severity::Error,
                Location::Span {
                    line: e.line,
                    column: e.column,
                },
                e.message.clone(),
            )
            .with_note(format!("offending token: '{}'", e.token))];
        }
    };
    lint_parsed(&program, &lines, facts)
}

/// Lints an already-parsed program; `lines[i]` locates `ops[i]`.
fn lint_parsed(program: &TestProgram, lines: &[usize], facts: &PlanFacts) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let at = |i: usize| Location::Span {
        line: lines.get(i).copied().unwrap_or(0),
        column: 1,
    };
    // Abstract ATE state: last value explicitly loaded into each ring
    // client, config writes not yet consumed by a `run`, tests already
    // consumed, and whether anything has run yet.
    let mut ring = vec![0u64; facts.ring_clients];
    let mut pending: BTreeMap<usize, usize> = BTreeMap::new(); // client -> op index
    let mut ran: BTreeMap<usize, usize> = BTreeMap::new(); // test -> op index
    let mut any_run = false;

    for (i, op) in program.ops.iter().enumerate() {
        match op {
            AteOp::SetConfig { client, value } => {
                if *client >= facts.ring_clients {
                    diags.push(Diagnostic::new(
                        codes::PROG_UNKNOWN_CLIENT,
                        Severity::Error,
                        at(i),
                        format!(
                            "ring client {client} does not exist (ring has {} clients)",
                            facts.ring_clients
                        ),
                    ));
                    continue;
                }
                if let Some(&prev) = pending.get(client) {
                    diags.push(
                        Diagnostic::new(
                            codes::PROG_CLOBBERED,
                            Severity::Warning,
                            at(i),
                            format!(
                                "config of ring client {client} overwrites the value set on \
                                 line {} before any test ran",
                                lines.get(prev).copied().unwrap_or(0)
                            ),
                        )
                        .with_note("the earlier configuration never takes effect"),
                    );
                }
                ring[*client] = *value;
                pending.insert(*client, i);
            }
            AteOp::ConfigureRing(values) => {
                if values.len() != facts.ring_clients {
                    diags.push(Diagnostic::new(
                        codes::PROG_RING_WIDTH,
                        Severity::Warning,
                        at(i),
                        format!(
                            "ring rotation loads {} values but the ring has {} clients",
                            values.len(),
                            facts.ring_clients
                        ),
                    ));
                }
                for (client, &prev) in &pending {
                    if values.get(*client).copied() != Some(ring[*client]) {
                        diags.push(
                            Diagnostic::new(
                                codes::PROG_CLOBBERED,
                                Severity::Warning,
                                at(i),
                                format!(
                                    "ring rotation overwrites client {client}'s config from \
                                     line {} before any test ran",
                                    lines.get(prev).copied().unwrap_or(0)
                                ),
                            )
                            .with_note("the earlier configuration never takes effect"),
                        );
                    }
                }
                for (client, slot) in ring.iter_mut().enumerate() {
                    *slot = values.get(client).copied().unwrap_or(0);
                }
                pending.clear();
            }
            AteOp::RunTests(tests) => {
                for &t in tests {
                    if t >= facts.tests.len() {
                        diags.push(
                            Diagnostic::new(
                                codes::PROG_UNKNOWN_TEST,
                                Severity::Error,
                                at(i),
                                format!(
                                    "test {t} does not exist (plan defines {} tests)",
                                    facts.tests.len()
                                ),
                            )
                            .with_note("the Virtual ATE reports UnknownTest and skips it"),
                        );
                        continue;
                    }
                    if let Some(&prev) = ran.get(&t) {
                        diags.push(
                            Diagnostic::new(
                                codes::PROG_DUP_RUN,
                                Severity::Error,
                                at(i),
                                format!(
                                    "test {t} ({}) was already run on line {}",
                                    facts.tests[t].name,
                                    lines.get(prev).copied().unwrap_or(0)
                                ),
                            )
                            .with_note(
                                "test sequences are consumed when run; the Virtual ATE \
                                 reports UnknownTest for the second launch",
                            ),
                        );
                        continue;
                    }
                    for &client in &facts.tests[t].needs_functional {
                        if ring.get(client).is_some_and(|&v| v != 0) {
                            diags.push(
                                Diagnostic::new(
                                    codes::RING_STALE,
                                    Severity::Error,
                                    at(i),
                                    format!(
                                        "test {t} ({}) needs ring client {client} functional, \
                                         but the program left {:#x} configured there",
                                        facts.tests[t].name, ring[client]
                                    ),
                                )
                                .with_note("reset the client to functional (0) before this run"),
                            );
                        }
                    }
                    ran.insert(t, i);
                }
                any_run = true;
                pending.clear();
            }
            AteOp::ExpectSignature { wrapper, .. } => {
                if *wrapper >= facts.wrappers {
                    diags.push(Diagnostic::new(
                        codes::PROG_UNKNOWN_WRAPPER,
                        Severity::Error,
                        at(i),
                        format!(
                            "wrapper {wrapper} does not exist (SoC has {} wrappers)",
                            facts.wrappers
                        ),
                    ));
                }
                if !any_run {
                    diags.push(
                        Diagnostic::new(
                            codes::PROG_READ_BEFORE_RUN,
                            Severity::Warning,
                            at(i),
                            format!("signature of wrapper {wrapper} read before any test ran"),
                        )
                        .with_note("the signature register still holds its reset value"),
                    );
                }
            }
            AteOp::WaitCycles(_) => {}
        }
    }

    for (client, &op) in &pending {
        diags.push(
            Diagnostic::new(
                codes::PROG_UNUSED,
                Severity::Warning,
                at(op),
                format!("config of ring client {client} is never used by a test run"),
            )
            .with_note("dead configuration — drop it or add the missing run"),
        );
    }

    diags
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::facts::soc_facts;
    use tve_soc::{SocConfig, SocTestPlan};

    fn facts() -> PlanFacts {
        soc_facts(&SocConfig::small(), &SocTestPlan::small())
    }

    #[test]
    fn clean_program_has_no_diagnostics() {
        let text = "ring bist,0,inttest,0,1,1\nrun 0 4\nwait 100\nexpect 0 0x0\n";
        let diags = lint_program("prod", text, &facts());
        // `expect` after a run with an arbitrary golden is statically fine
        // (signature values are a dynamic question).
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn parse_failure_becomes_a_spanned_error() {
        let diags = lint_program("bad", "config 9 zap", &facts());
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, codes::PROG_PARSE);
        assert_eq!(diags[0].severity, Severity::Error);
        assert_eq!(
            diags[0].location,
            Location::Span {
                line: 1,
                column: 10
            }
        );
        assert!(diags[0].notes[0].contains("'zap'"), "{:?}", diags[0].notes);
    }

    #[test]
    fn unknown_references_are_errors() {
        let text = "config 9 bist\nrun 42\nexpect 7 0x1\nrun 0\n";
        let diags = lint_program("refs", text, &facts());
        let codes: Vec<&str> = diags.iter().map(|d| d.code).collect();
        assert!(codes.contains(&codes::PROG_UNKNOWN_CLIENT), "{codes:?}");
        assert!(codes.contains(&codes::PROG_UNKNOWN_TEST), "{codes:?}");
        assert!(codes.contains(&codes::PROG_UNKNOWN_WRAPPER), "{codes:?}");
    }

    #[test]
    fn double_run_is_caught_statically() {
        let diags = lint_program("dup", "config 0 bist\nrun 0\nrun 0\n", &facts());
        let d = diags
            .iter()
            .find(|d| d.code == codes::PROG_DUP_RUN)
            .unwrap();
        assert_eq!(d.severity, Severity::Error);
        assert_eq!(d.location, Location::Span { line: 3, column: 1 });
        assert!(d.message.contains("line 2"), "{}", d.message);
    }

    #[test]
    fn signature_read_before_any_run_is_a_warning() {
        let diags = lint_program("early", "expect 0 0x0\nrun 0\n", &facts());
        let d = diags
            .iter()
            .find(|d| d.code == codes::PROG_READ_BEFORE_RUN)
            .unwrap();
        assert_eq!(d.severity, Severity::Warning);
        assert_eq!(d.location, Location::Span { line: 1, column: 1 });
    }

    #[test]
    fn clobbered_and_unused_configs_are_warned() {
        // Two writes to client 0 with no run in between, and a write to
        // client 1 never consumed at all.
        let text = "config 0 bist\nconfig 0 inttest\nrun 0\nconfig 1 1\n";
        let diags = lint_program("clobber", text, &facts());
        let clob = diags
            .iter()
            .find(|d| d.code == codes::PROG_CLOBBERED)
            .unwrap();
        assert_eq!(clob.location, Location::Span { line: 2, column: 1 });
        assert!(clob.message.contains("line 1"), "{}", clob.message);
        let unused = diags.iter().find(|d| d.code == codes::PROG_UNUSED).unwrap();
        assert_eq!(unused.location, Location::Span { line: 4, column: 1 });
    }

    #[test]
    fn ring_width_mismatch_is_warned() {
        let diags = lint_program("narrow", "ring 1,2\nrun 0\n", &facts());
        let d = diags
            .iter()
            .find(|d| d.code == codes::PROG_RING_WIDTH)
            .unwrap();
        assert_eq!(d.severity, Severity::Warning);
        assert!(d.message.contains("2 values"), "{}", d.message);
    }

    #[test]
    fn stale_test_mode_before_a_functional_path_test_is_an_error() {
        // Client 3 is the memory wrapper; test 5 (march via controller)
        // needs it functional.
        let text = "config 3 bist\nrun 5\n";
        let diags = lint_program("stale", text, &facts());
        let d = diags.iter().find(|d| d.code == codes::RING_STALE).unwrap();
        assert_eq!(d.severity, Severity::Error);
        assert_eq!(d.location, Location::Span { line: 2, column: 1 });
    }

    #[test]
    fn ring_rotation_clobbers_pending_configs() {
        let text = "config 0 bist\nring 0,0,0,0,0,0\nrun 0\n";
        let diags = lint_program("rot", text, &facts());
        let d = diags
            .iter()
            .find(|d| d.code == codes::PROG_CLOBBERED)
            .unwrap();
        assert!(d.message.contains("client 0"), "{}", d.message);
        assert!(d.message.contains("line 1"), "{}", d.message);
    }
}
