//! The 2-D mesh: nodes, XY routing, arbitrated links, per-link accounting.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fmt;
use std::rc::Rc;

use tve_sim::{Duration, SimHandle};
use tve_tlm::{
    AddrRange, Arbiter, ArbiterPolicy, BindError, LocalBoxFuture, ResponseStatus, TamIf,
    Transaction, UtilizationMonitor,
};

/// A mesh node coordinate `(x, y)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId {
    /// Column.
    pub x: u32,
    /// Row.
    pub y: u32,
}

impl NodeId {
    /// Creates the coordinate `(x, y)`.
    pub fn new(x: u32, y: u32) -> Self {
        NodeId { x, y }
    }

    /// Manhattan distance to `other` — the XY hop count.
    pub fn hops_to(&self, other: NodeId) -> u32 {
        self.x.abs_diff(other.x) + self.y.abs_diff(other.y)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({},{})", self.x, self.y)
    }
}

/// A directed link between adjacent nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LinkId {
    /// Source node.
    pub from: NodeId,
    /// Destination node (adjacent to `from`).
    pub to: NodeId,
}

impl fmt::Display for LinkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}->{}", self.from, self.to)
    }
}

/// Mesh geometry and link timing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MeshConfig {
    /// Columns.
    pub cols: u32,
    /// Rows.
    pub rows: u32,
    /// Bits a link moves per occupied cycle.
    pub link_width_bits: u32,
    /// Per-hop overhead cycles (router pipeline, header).
    pub hop_overhead: u64,
}

impl Default for MeshConfig {
    fn default() -> Self {
        MeshConfig {
            cols: 3,
            rows: 3,
            link_width_bits: 32,
            hop_overhead: 2,
        }
    }
}

struct Link {
    arbiter: Arbiter,
    busy: std::cell::Cell<u64>,
}

/// A bound target: node, address window, component.
type BoundTarget = (NodeId, AddrRange, Rc<dyn TamIf>);

/// The mesh NoC; see the crate docs for the model.
pub struct MeshNoc {
    handle: SimHandle,
    cfg: MeshConfig,
    links: BTreeMap<(NodeId, NodeId), Link>,
    targets: RefCell<Vec<BoundTarget>>,
    monitor: RefCell<UtilizationMonitor>,
}

impl fmt::Debug for MeshNoc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MeshNoc")
            .field("cols", &self.cfg.cols)
            .field("rows", &self.cfg.rows)
            .field("targets", &self.targets.borrow().len())
            .finish()
    }
}

impl MeshNoc {
    /// Creates an empty `cols × rows` mesh.
    ///
    /// # Panics
    ///
    /// Panics for a degenerate geometry or zero link width.
    pub fn new(handle: &SimHandle, cfg: MeshConfig) -> Self {
        assert!(cfg.cols > 0 && cfg.rows > 0, "mesh must be non-empty");
        assert!(cfg.link_width_bits > 0, "link width must be positive");
        let mut links = BTreeMap::new();
        let mut add = |a: NodeId, b: NodeId| {
            links.insert(
                (a, b),
                Link {
                    arbiter: Arbiter::new(handle, ArbiterPolicy::Fcfs),
                    busy: std::cell::Cell::new(0),
                },
            );
        };
        for x in 0..cfg.cols {
            for y in 0..cfg.rows {
                let n = NodeId::new(x, y);
                if x + 1 < cfg.cols {
                    add(n, NodeId::new(x + 1, y));
                    add(NodeId::new(x + 1, y), n);
                }
                if y + 1 < cfg.rows {
                    add(n, NodeId::new(x, y + 1));
                    add(NodeId::new(x, y + 1), n);
                }
            }
        }
        MeshNoc {
            handle: handle.clone(),
            cfg,
            links,
            targets: RefCell::new(Vec::new()),
            monitor: RefCell::new(UtilizationMonitor::new(Duration::cycles(65_536))),
        }
    }

    /// The mesh configuration.
    pub fn config(&self) -> MeshConfig {
        self.cfg
    }

    /// Number of directed links.
    pub fn link_count(&self) -> usize {
        self.links.len()
    }

    /// Whether `node` lies inside the mesh.
    pub fn contains(&self, node: NodeId) -> bool {
        node.x < self.cfg.cols && node.y < self.cfg.rows
    }

    /// Binds `target` at `node`, reachable at `range` from any port.
    ///
    /// # Errors
    ///
    /// Returns [`BindError`] if `range` overlaps an existing mapping.
    ///
    /// # Panics
    ///
    /// Panics if `node` is outside the mesh.
    pub fn bind(
        &self,
        node: NodeId,
        range: AddrRange,
        target: Rc<dyn TamIf>,
    ) -> Result<(), BindError> {
        assert!(self.contains(node), "node {node} outside the mesh");
        let mut targets = self.targets.borrow_mut();
        for (_, existing, _) in targets.iter() {
            if existing.overlaps(&range) {
                return Err(BindError {
                    range,
                    conflict: *existing,
                });
            }
        }
        targets.push((node, range, target));
        Ok(())
    }

    /// An initiator port attached at `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is outside the mesh.
    pub fn port(self: &Rc<Self>, node: NodeId) -> NocPort {
        assert!(self.contains(node), "node {node} outside the mesh");
        NocPort {
            noc: Rc::clone(self),
            node,
            name: format!("noc-port{node}"),
        }
    }

    /// The XY (dimension-ordered, deadlock-free) route from `from` to
    /// `to`, as the sequence of traversed nodes excluding `from`.
    pub fn xy_route(&self, from: NodeId, to: NodeId) -> Vec<NodeId> {
        let mut path = Vec::with_capacity(from.hops_to(to) as usize);
        let mut cur = from;
        while cur.x != to.x {
            cur.x = if to.x > cur.x { cur.x + 1 } else { cur.x - 1 };
            path.push(cur);
        }
        while cur.y != to.y {
            cur.y = if to.y > cur.y { cur.y + 1 } else { cur.y - 1 };
            path.push(cur);
        }
        path
    }

    /// Cycles a packet of `bits` occupies one link.
    pub fn hop_occupancy(&self, bits: u64) -> Duration {
        Duration::cycles(self.cfg.hop_overhead + bits.div_ceil(self.cfg.link_width_bits as u64))
    }

    /// Total busy link-cycles recorded so far.
    pub fn total_busy_cycles(&self) -> u64 {
        self.monitor.borrow().total_busy_cycles()
    }

    /// Busy cycles of one directed link.
    pub fn link_busy(&self, from: NodeId, to: NodeId) -> u64 {
        self.links
            .get(&(from, to))
            .map(|l| l.busy.get())
            .unwrap_or(0)
    }

    /// The busiest directed link and its busy cycles — the hot spot a
    /// test engineer looks for.
    pub fn hottest_link(&self) -> Option<(LinkId, u64)> {
        self.links
            .iter()
            .max_by_key(|(_, l)| l.busy.get())
            .map(|(&(from, to), l)| (LinkId { from, to }, l.busy.get()))
    }

    /// The aggregate utilization monitor (busy accounting across links).
    pub fn monitor(&self) -> std::cell::Ref<'_, UtilizationMonitor> {
        self.monitor.borrow()
    }

    fn lookup(&self, addr: u32) -> Option<(NodeId, Rc<dyn TamIf>)> {
        self.targets
            .borrow()
            .iter()
            .find(|(_, range, _)| range.contains(addr))
            .map(|(node, _, t)| (*node, Rc::clone(t)))
    }

    /// Moves a packet from `src` toward the target of `txn`, hop by hop
    /// (store-and-forward), then delivers it.
    async fn route_and_deliver(&self, src: NodeId, txn: &mut Transaction) {
        let Some((dst, target)) = self.lookup(txn.addr) else {
            txn.status = ResponseStatus::AddressError;
            return;
        };
        let dur = self.hop_occupancy(txn.bit_len);
        let mut prev = src;
        for next in self.xy_route(src, dst) {
            let link = self
                .links
                .get(&(prev, next))
                .expect("XY route uses existing links");
            link.arbiter.acquire(txn.initiator).await;
            link.busy.set(link.busy.get() + dur.as_cycles());
            self.monitor
                .borrow_mut()
                .record_busy(self.handle.now(), dur, txn.initiator);
            self.handle.wait(dur).await;
            link.arbiter.release();
            prev = next;
        }
        target.transport(txn).await;
    }
}

/// An initiator-side port of the mesh; implements [`TamIf`] so sources and
/// controllers work over the NoC unchanged.
pub struct NocPort {
    noc: Rc<MeshNoc>,
    node: NodeId,
    name: String,
}

impl fmt::Debug for NocPort {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("NocPort").field("node", &self.node).finish()
    }
}

impl NocPort {
    /// The node this port attaches at.
    pub fn node(&self) -> NodeId {
        self.node
    }
}

impl TamIf for NocPort {
    fn name(&self) -> &str {
        &self.name
    }

    fn transport<'a>(&'a self, txn: &'a mut Transaction) -> LocalBoxFuture<'a, ()> {
        Box::pin(async move {
            self.noc.route_and_deliver(self.node, txn).await;
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tve_sim::Simulation;
    use tve_tlm::{Command, InitiatorId, SinkTarget, TamIfExt};

    fn mesh(sim: &Simulation) -> Rc<MeshNoc> {
        Rc::new(MeshNoc::new(&sim.handle(), MeshConfig::default()))
    }

    #[test]
    fn geometry_and_links() {
        let sim = Simulation::new();
        let noc = mesh(&sim);
        // 3x3 mesh: 12 undirected edges = 24 directed links.
        assert_eq!(noc.link_count(), 24);
        assert!(noc.contains(NodeId::new(2, 2)));
        assert!(!noc.contains(NodeId::new(3, 0)));
    }

    #[test]
    fn xy_route_is_dimension_ordered_manhattan() {
        let sim = Simulation::new();
        let noc = mesh(&sim);
        let path = noc.xy_route(NodeId::new(0, 0), NodeId::new(2, 1));
        assert_eq!(
            path,
            vec![NodeId::new(1, 0), NodeId::new(2, 0), NodeId::new(2, 1)]
        );
        assert_eq!(
            path.len() as u32,
            NodeId::new(0, 0).hops_to(NodeId::new(2, 1))
        );
        assert!(noc
            .xy_route(NodeId::new(1, 1), NodeId::new(1, 1))
            .is_empty());
    }

    #[test]
    fn delivery_time_scales_with_hops() {
        let mut sim = Simulation::new();
        let noc = mesh(&sim);
        let sink = Rc::new(SinkTarget::new("s"));
        noc.bind(NodeId::new(2, 2), AddrRange::new(0, 0x100), sink.clone())
            .unwrap();
        let near = noc.port(NodeId::new(2, 1)); // 1 hop
        let far = noc.port(NodeId::new(0, 0)); // 4 hops
        let h = sim.handle();
        let jh = sim.spawn(async move {
            let t0 = h.now();
            near.write(InitiatorId(0), 0, &[0; 4], 128).await.unwrap();
            let near_time = (h.now() - t0).as_cycles();
            let t1 = h.now();
            far.write(InitiatorId(0), 0, &[0; 4], 128).await.unwrap();
            let far_time = (h.now() - t1).as_cycles();
            (near_time, far_time)
        });
        sim.run();
        let (near_time, far_time) = jh.try_take().unwrap();
        // hop = 2 overhead + 4 transfer = 6 cycles.
        assert_eq!(near_time, 6);
        assert_eq!(far_time, 24);
        assert_eq!(sink.transaction_count(), 2);
    }

    #[test]
    fn disjoint_paths_run_concurrently_shared_links_serialize() {
        // Two transfers on disjoint rows finish in one-hop time; two on
        // the same link serialize.
        let mut sim = Simulation::new();
        let noc = mesh(&sim);
        let a = Rc::new(SinkTarget::new("a"));
        let b = Rc::new(SinkTarget::new("b"));
        noc.bind(NodeId::new(1, 0), AddrRange::new(0x000, 0x10), a)
            .unwrap();
        noc.bind(NodeId::new(1, 2), AddrRange::new(0x100, 0x10), b)
            .unwrap();
        let p0 = noc.port(NodeId::new(0, 0));
        let p1 = noc.port(NodeId::new(0, 2));
        for (port, addr) in [(p0, 0x000u32), (p1, 0x100)] {
            sim.spawn(async move {
                port.transfer_volume(InitiatorId(0), Command::Write, addr, 128)
                    .await
                    .unwrap();
            });
        }
        assert_eq!(sim.run().cycles(), 6, "disjoint rows are parallel");

        // Same source link: serialized.
        let mut sim = Simulation::new();
        let noc = mesh(&sim);
        let c = Rc::new(SinkTarget::new("c"));
        noc.bind(NodeId::new(1, 0), AddrRange::new(0, 0x10), c)
            .unwrap();
        for i in 0..2u8 {
            let port = noc.port(NodeId::new(0, 0));
            sim.spawn(async move {
                port.transfer_volume(InitiatorId(i), Command::Write, 0, 128)
                    .await
                    .unwrap();
            });
        }
        assert_eq!(sim.run().cycles(), 12, "shared link serializes");
    }

    #[test]
    fn hottest_link_identifies_the_bottleneck() {
        let mut sim = Simulation::new();
        let noc = mesh(&sim);
        let sink = Rc::new(SinkTarget::new("hot"));
        noc.bind(NodeId::new(2, 0), AddrRange::new(0, 0x10), sink)
            .unwrap();
        // All traffic funnels through (1,0)->(2,0).
        for y in 0..3u32 {
            let port = noc.port(NodeId::new(0, y));
            sim.spawn(async move {
                port.transfer_volume(InitiatorId(y as u8), Command::Write, 0, 256)
                    .await
                    .unwrap();
            });
        }
        sim.run();
        // XY routes x first: packets from (0,1) and (0,2) both descend the
        // rightmost column, so (2,1)->(2,0) carries two of the three.
        let (link, busy) = noc.hottest_link().unwrap();
        assert_eq!(link.from, NodeId::new(2, 1));
        assert_eq!(link.to, NodeId::new(2, 0));
        assert_eq!(busy, 2 * 10); // 2 packets x (2 + 256/32)
    }

    #[test]
    fn unmapped_address_errors() {
        let mut sim = Simulation::new();
        let noc = mesh(&sim);
        let port = noc.port(NodeId::new(0, 0));
        let jh = sim.spawn(async move { port.read(InitiatorId(0), 0xDEAD, 32).await });
        sim.run();
        assert_eq!(
            jh.try_take().unwrap().unwrap_err().status,
            ResponseStatus::AddressError
        );
    }

    #[test]
    fn heavy_random_traffic_completes_without_deadlock() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut sim = Simulation::new();
        let noc = mesh(&sim);
        let mut sinks = Vec::new();
        for (i, (x, y)) in [(0u32, 0u32), (2, 0), (0, 2), (2, 2), (1, 1)]
            .iter()
            .enumerate()
        {
            let sink = Rc::new(SinkTarget::new(format!("s{i}")));
            noc.bind(
                NodeId::new(*x, *y),
                AddrRange::new(i as u32 * 0x100, 0x100),
                sink.clone(),
            )
            .unwrap();
            sinks.push(sink);
        }
        let mut rng = StdRng::seed_from_u64(42);
        let total = 200;
        for k in 0..total {
            let src = NodeId::new(rng.gen_range(0..3), rng.gen_range(0..3));
            let dst_addr = rng.gen_range(0..5u32) * 0x100;
            let bits = rng.gen_range(32..2048);
            let port = noc.port(src);
            sim.spawn(async move {
                port.transfer_volume(InitiatorId((k % 8) as u8), Command::Write, dst_addr, bits)
                    .await
                    .unwrap();
            });
        }
        sim.run();
        let delivered: u64 = sinks.iter().map(|s| s.transaction_count()).sum();
        assert_eq!(delivered, total as u64, "XY routing must not deadlock");
        assert!(noc.total_busy_cycles() > 0);
    }

    #[test]
    fn binding_outside_the_mesh_panics() {
        let sim = Simulation::new();
        let noc = mesh(&sim);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _ = noc.bind(
                NodeId::new(9, 9),
                AddrRange::new(0, 1),
                Rc::new(SinkTarget::new("x")),
            );
        }));
        assert!(result.is_err());
    }
}
