#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! # tve-noc — a mesh network-on-chip as test access mechanism
//!
//! The high end of the paper's TAM spectrum (Section III.A: "the spectrum
//! of different TAMs ranges from serial boundary scan chains to reuse of
//! buses and NoCs"). A 2-D mesh with dimension-ordered (XY) routing and
//! store-and-forward packet switching: every directed link is an
//! arbitrated resource, a packet occupies each hop for
//! `hop_overhead + ⌈bits/link_width⌉` cycles, and per-link utilization is
//! monitored — so a test engineer can see not just *whether* a schedule
//! fits but *which link* is the hot spot.
//!
//! Targets bind to mesh nodes with address ranges; initiators attach at a
//! node via [`MeshNoc::port`] and use the standard
//! [`TamIf`](tve_tlm::TamIf) interface, making the NoC a drop-in TAM
//! alternative to [`BusTam`](tve_tlm::BusTam) and
//! [`SerialTam`](tve_tlm::SerialTam).
//!
//! ```
//! use std::rc::Rc;
//! use tve_sim::Simulation;
//! use tve_noc::{MeshConfig, MeshNoc, NodeId};
//! use tve_tlm::{AddrRange, InitiatorId, SinkTarget, TamIfExt};
//!
//! let mut sim = Simulation::new();
//! let noc = Rc::new(MeshNoc::new(&sim.handle(), MeshConfig::default()));
//! noc.bind(NodeId::new(2, 1), AddrRange::new(0x100, 0x10),
//!          Rc::new(SinkTarget::new("dct"))).unwrap();
//! let port = noc.port(NodeId::new(0, 0));
//! sim.spawn(async move {
//!     port.write(InitiatorId(0), 0x100, &[0xAB; 4], 128).await.unwrap();
//! });
//! sim.run();
//! assert!(noc.total_busy_cycles() > 0);
//! ```

mod mesh;

pub use mesh::{LinkId, MeshConfig, MeshNoc, NocPort, NodeId};
