//! Property tests for mesh routing invariants.

use proptest::prelude::*;
use std::rc::Rc;
use tve_noc::{MeshConfig, MeshNoc, NodeId};
use tve_sim::Simulation;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// XY routes have exactly Manhattan length, stay inside the mesh, and
    /// every step moves to a 4-neighbor.
    #[test]
    fn xy_routes_are_minimal_and_adjacent(
        cols in 1u32..6, rows in 1u32..6,
        sx in 0u32..6, sy in 0u32..6, dx in 0u32..6, dy in 0u32..6,
    ) {
        let sim = Simulation::new();
        let noc = Rc::new(MeshNoc::new(
            &sim.handle(),
            MeshConfig { cols, rows, link_width_bits: 8, hop_overhead: 1 },
        ));
        let src = NodeId::new(sx % cols, sy % rows);
        let dst = NodeId::new(dx % cols, dy % rows);
        let path = noc.xy_route(src, dst);
        prop_assert_eq!(path.len() as u32, src.hops_to(dst));
        let mut prev = src;
        for step in &path {
            prop_assert!(noc.contains(*step), "step {step} outside the mesh");
            prop_assert_eq!(prev.hops_to(*step), 1, "non-adjacent hop");
            prev = *step;
        }
        if let Some(last) = path.last() {
            prop_assert_eq!(*last, dst);
        } else {
            prop_assert_eq!(src, dst);
        }
    }

    /// The directed link graph is complete for the geometry:
    /// `2*(cols*(rows-1) + rows*(cols-1))` links.
    #[test]
    fn link_count_matches_geometry(cols in 1u32..8, rows in 1u32..8) {
        let sim = Simulation::new();
        let noc = MeshNoc::new(
            &sim.handle(),
            MeshConfig { cols, rows, link_width_bits: 8, hop_overhead: 1 },
        );
        let expected = 2 * (cols * rows.saturating_sub(1) + rows * cols.saturating_sub(1));
        prop_assert_eq!(noc.link_count() as u32, expected);
    }
}
