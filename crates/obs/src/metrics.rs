//! A lightweight metrics registry: counters, gauges and time-weighted
//! histograms that simulation models can bump without formatting or
//! allocation on the hot path.

use std::cell::{Cell, RefCell};
use std::rc::Rc;

use tve_sim::Time;

/// A monotonically increasing `u64` counter handle.
///
/// Handles are cheap `Rc<Cell<_>>` clones; a model fetches its handle
/// once at attach time and bumps it per event.
///
/// ```
/// let reg = tve_obs::MetricsRegistry::new();
/// let transfers = reg.counter("bus.transfers");
/// transfers.inc();
/// transfers.add(2);
/// assert_eq!(reg.counter("bus.transfers").get(), 3); // same slot by name
/// ```
#[derive(Debug, Clone)]
pub struct Counter(Rc<Cell<u64>>);

impl Counter {
    /// Adds `n` to the counter (saturating).
    pub fn add(&self, n: u64) {
        self.0.set(self.0.get().saturating_add(n));
    }

    /// Adds 1 to the counter.
    pub fn inc(&self) {
        self.add(1);
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.0.get()
    }
}

/// A signed gauge handle: a value that can move both ways (queue depth,
/// current WIR value, outstanding posted writes).
#[derive(Debug, Clone)]
pub struct Gauge(Rc<Cell<i64>>);

impl Gauge {
    /// Sets the gauge to an absolute value.
    pub fn set(&self, value: i64) {
        self.0.set(value);
    }

    /// Moves the gauge by a signed delta (saturating).
    pub fn add(&self, delta: i64) {
        self.0.set(self.0.get().saturating_add(delta));
    }

    /// The current value.
    pub fn get(&self) -> i64 {
        self.0.get()
    }
}

/// Internal state of a time-weighted histogram.
#[derive(Debug, Clone, Default)]
struct HistogramState {
    /// First observation time.
    start: Option<Time>,
    /// Last observation (time, value) — the value holds until the next
    /// observation or the summary end.
    last: Option<(Time, f64)>,
    /// Accumulated `value * dt` for closed intervals.
    weighted_sum: f64,
    samples: u64,
    min: f64,
    max: f64,
}

/// A time-weighted histogram handle: each observation holds its value
/// until the next one, and the summary's mean weights values by how
/// long they held (in simulated cycles) — the right statistic for
/// queue depths and utilization-like signals sampled at irregular
/// simulated times.
///
/// ```
/// use tve_sim::Time;
///
/// let reg = tve_obs::MetricsRegistry::new();
/// let depth = reg.histogram("fifo.depth");
/// depth.observe(Time::from_cycles(0), 2.0); // 2 for 10 cycles
/// depth.observe(Time::from_cycles(10), 4.0); // 4 for 10 cycles
/// let s = depth.summary(Time::from_cycles(20));
/// assert_eq!(s.mean, 3.0);
/// assert_eq!((s.min, s.max, s.samples), (2.0, 4.0, 2));
/// ```
#[derive(Debug, Clone)]
pub struct Histogram(Rc<RefCell<HistogramState>>);

impl Histogram {
    fn new() -> Self {
        Histogram(Rc::new(RefCell::new(HistogramState::default())))
    }

    /// Records `value` holding from simulated time `at` onward.
    /// Observations must be fed in non-decreasing time order; an
    /// out-of-order observation is clamped to the previous time.
    pub fn observe(&self, at: Time, value: f64) {
        let mut s = self.0.borrow_mut();
        let at = match s.last {
            Some((prev, _)) if at < prev => prev,
            _ => at,
        };
        if let Some((prev, held)) = s.last {
            s.weighted_sum += held * at.saturating_since(prev).as_cycles() as f64;
        }
        if s.samples == 0 {
            s.start = Some(at);
            s.min = value;
            s.max = value;
        } else {
            s.min = s.min.min(value);
            s.max = s.max.max(value);
        }
        s.last = Some((at, value));
        s.samples += 1;
    }

    /// Summarizes the histogram over `[first observation, end]`,
    /// extending the last observed value to `end`. With no observations
    /// the summary is all zeros.
    pub fn summary(&self, end: Time) -> HistogramSummary {
        let s = self.0.borrow();
        let (Some(start), Some((last_t, last_v))) = (s.start, s.last) else {
            return HistogramSummary::default();
        };
        let tail = last_v * end.saturating_since(last_t).as_cycles() as f64;
        let span = end.saturating_since(start).as_cycles().max(1) as f64;
        HistogramSummary {
            samples: s.samples,
            min: s.min,
            max: s.max,
            mean: (s.weighted_sum + tail) / span,
        }
    }
}

/// The exported summary of a [`Histogram`].
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct HistogramSummary {
    /// Number of observations.
    pub samples: u64,
    /// Smallest observed value.
    pub min: f64,
    /// Largest observed value.
    pub max: f64,
    /// Time-weighted mean over the observed span.
    pub mean: f64,
}

/// A registry of named metrics. Lookups by name deduplicate: asking
/// twice for the same name returns handles to the same slot.
///
/// Single-threaded by design (like the simulation kernel); farmed runs
/// each own a registry and merge the resulting [`TraceLog`]s
/// afterwards.
///
/// [`TraceLog`]: crate::TraceLog
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    counters: RefCell<Vec<(String, Counter)>>,
    gauges: RefCell<Vec<(String, Gauge)>>,
    histograms: RefCell<Vec<(String, Histogram)>>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// The counter named `name`, created at zero on first use.
    pub fn counter(&self, name: &str) -> Counter {
        let mut slots = self.counters.borrow_mut();
        if let Some((_, c)) = slots.iter().find(|(n, _)| n == name) {
            return c.clone();
        }
        let c = Counter(Rc::new(Cell::new(0)));
        slots.push((name.to_string(), c.clone()));
        c
    }

    /// The gauge named `name`, created at zero on first use.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut slots = self.gauges.borrow_mut();
        if let Some((_, g)) = slots.iter().find(|(n, _)| n == name) {
            return g.clone();
        }
        let g = Gauge(Rc::new(Cell::new(0)));
        slots.push((name.to_string(), g.clone()));
        g
    }

    /// The time-weighted histogram named `name`, created empty on first
    /// use.
    pub fn histogram(&self, name: &str) -> Histogram {
        let mut slots = self.histograms.borrow_mut();
        if let Some((_, h)) = slots.iter().find(|(n, _)| n == name) {
            return h.clone();
        }
        let h = Histogram::new();
        slots.push((name.to_string(), h.clone()));
        h
    }

    /// Snapshot of all counters as `(name, value)` in registration order.
    pub fn counter_values(&self) -> Vec<(String, u64)> {
        self.counters
            .borrow()
            .iter()
            .map(|(n, c)| (n.clone(), c.get()))
            .collect()
    }

    /// Snapshot of all gauges as `(name, value)` in registration order.
    pub fn gauge_values(&self) -> Vec<(String, i64)> {
        self.gauges
            .borrow()
            .iter()
            .map(|(n, g)| (n.clone(), g.get()))
            .collect()
    }

    /// Summaries of all histograms over `[start, end]` in registration
    /// order.
    pub fn histogram_summaries(&self, end: Time) -> Vec<(String, HistogramSummary)> {
        self.histograms
            .borrow()
            .iter()
            .map(|(n, h)| (n.clone(), h.summary(end)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_dedup_by_name() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("x");
        let b = reg.counter("x");
        a.inc();
        b.add(4);
        assert_eq!(reg.counter_values(), vec![("x".to_string(), 5)]);
    }

    #[test]
    fn gauges_move_both_ways() {
        let reg = MetricsRegistry::new();
        let g = reg.gauge("depth");
        g.add(3);
        g.add(-5);
        assert_eq!(g.get(), -2);
        g.set(7);
        assert_eq!(reg.gauge_values(), vec![("depth".to_string(), 7)]);
    }

    #[test]
    fn histogram_weights_by_hold_time() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("q");
        h.observe(Time::from_cycles(0), 1.0); // holds 1 for 30 cycles
        h.observe(Time::from_cycles(30), 5.0); // holds 5 for 10 cycles
        let s = h.summary(Time::from_cycles(40));
        assert_eq!(s.samples, 2);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 5.0);
        assert!((s.mean - 2.0).abs() < 1e-12); // (1*30 + 5*10) / 40
    }

    #[test]
    fn empty_histogram_summarizes_to_zero() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("q");
        assert_eq!(
            h.summary(Time::from_cycles(100)),
            HistogramSummary::default()
        );
    }

    #[test]
    fn out_of_order_observation_is_clamped() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("q");
        h.observe(Time::from_cycles(10), 2.0);
        h.observe(Time::from_cycles(5), 4.0); // clamped to t=10
        let s = h.summary(Time::from_cycles(20));
        assert!((s.mean - 4.0).abs() < 1e-12);
    }
}
