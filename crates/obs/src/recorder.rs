//! The span recorder: an enum-sink store models write [`SpanRecord`]s
//! into, plus the plain-data [`TraceLog`] snapshot that leaves the
//! simulation thread.

use std::cell::{Cell, RefCell};
use std::collections::VecDeque;

use tve_sim::Time;

use crate::metrics::{HistogramSummary, MetricsRegistry};
use crate::span::{SpanKind, SpanRecord};

/// How a [`Recorder`] stores spans.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StoragePolicy {
    /// Drop every span. Recording degenerates to one enum-discriminant
    /// check — near-zero cost, verified by the `obs_overhead` bench.
    Off,
    /// Keep every span (a growable `Vec`).
    Unbounded,
    /// Keep at most this many spans in a ring buffer; the oldest spans
    /// are dropped and counted in [`TraceLog::dropped`].
    Ring(usize),
}

/// The enum sink behind a recorder: storage selected once at
/// construction, checked with a single discriminant match per record.
#[derive(Debug)]
enum Sink {
    Off,
    Unbounded(Vec<SpanRecord>),
    Ring {
        buf: VecDeque<SpanRecord>,
        capacity: usize,
        dropped: u64,
    },
}

/// Collects [`SpanRecord`]s and hosts a [`MetricsRegistry`].
///
/// One recorder is shared (`Rc`) by every instrumented model of one
/// simulation; models receive it via an `attach_recorder` call after
/// construction, mirroring the existing `attach_power_meter` idiom.
/// A model that never had a recorder attached pays nothing; a model
/// whose recorder is [`StoragePolicy::Off`] pays one discriminant
/// check (span construction is skipped via [`Recorder::record_with`]).
///
/// ```
/// use tve_obs::{Recorder, SpanKind, SpanRecord, StoragePolicy};
/// use tve_sim::Time;
///
/// let rec = Recorder::new(StoragePolicy::Ring(2));
/// for i in 0..3 {
///     rec.record(SpanRecord::new(
///         SpanKind::Transfer,
///         "bus",
///         format!("xfer {i}"),
///         Time::from_cycles(i),
///         Time::from_cycles(i + 1),
///     ));
/// }
/// let log = rec.take_log();
/// assert_eq!(log.spans.len(), 2); // oldest span dropped
/// assert_eq!(log.dropped, 1);
/// assert_eq!(log.spans[0].name, "xfer 1");
/// ```
#[derive(Debug)]
pub struct Recorder {
    sink: RefCell<Sink>,
    enabled: bool,
    metrics: MetricsRegistry,
    /// Latest simulated time the recorder is known to cover; raised by
    /// span ends and [`Recorder::observe_until`], exported as
    /// [`TraceLog::observed_end`].
    observed_end: Cell<Time>,
}

impl Recorder {
    /// A recorder with the given storage policy.
    pub fn new(policy: StoragePolicy) -> Self {
        let sink = match policy {
            StoragePolicy::Off => Sink::Off,
            StoragePolicy::Unbounded => Sink::Unbounded(Vec::new()),
            StoragePolicy::Ring(capacity) => Sink::Ring {
                buf: VecDeque::with_capacity(capacity.min(4096)),
                capacity,
                dropped: 0,
            },
        };
        Recorder {
            sink: RefCell::new(sink),
            enabled: !matches!(policy, StoragePolicy::Off),
            metrics: MetricsRegistry::new(),
            observed_end: Cell::new(Time::ZERO),
        }
    }

    /// A recorder that drops every span ([`StoragePolicy::Off`]).
    pub fn disabled() -> Self {
        Recorder::new(StoragePolicy::Off)
    }

    /// A recorder that keeps every span ([`StoragePolicy::Unbounded`]).
    pub fn unbounded() -> Self {
        Recorder::new(StoragePolicy::Unbounded)
    }

    /// A recorder keeping at most `capacity` spans
    /// ([`StoragePolicy::Ring`]).
    pub fn ring(capacity: usize) -> Self {
        Recorder::new(StoragePolicy::Ring(capacity))
    }

    /// Whether spans are being kept. Instrumentation sites use this (or
    /// [`Recorder::record_with`]) to skip span construction entirely
    /// when storage is off.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Stores one span (dropping it if storage is off or the ring is
    /// full).
    pub fn record(&self, span: SpanRecord) {
        if span.end > self.observed_end.get() {
            self.observed_end.set(span.end);
        }
        match &mut *self.sink.borrow_mut() {
            Sink::Off => {}
            Sink::Unbounded(spans) => spans.push(span),
            Sink::Ring {
                buf,
                capacity,
                dropped,
            } => {
                if *capacity == 0 {
                    *dropped += 1;
                } else {
                    if buf.len() == *capacity {
                        buf.pop_front();
                        *dropped += 1;
                    }
                    buf.push_back(span);
                }
            }
        }
    }

    /// Stores the span produced by `make`, constructing it only when
    /// storage is enabled. This is the form instrumentation sites use:
    /// the closure's `String` allocations never run on a disabled
    /// recorder.
    pub fn record_with(&self, make: impl FnOnce() -> SpanRecord) {
        if self.enabled {
            self.record(make());
        }
    }

    /// Number of spans currently held.
    pub fn span_count(&self) -> usize {
        match &*self.sink.borrow() {
            Sink::Off => 0,
            Sink::Unbounded(spans) => spans.len(),
            Sink::Ring { buf, .. } => buf.len(),
        }
    }

    /// Spans dropped so far by a full ring buffer.
    pub fn dropped(&self) -> u64 {
        match &*self.sink.borrow() {
            Sink::Off => 0,
            Sink::Unbounded(_) => 0,
            Sink::Ring { dropped, .. } => *dropped,
        }
    }

    /// The metrics registry shared by every model attached to this
    /// recorder.
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// Extends the observed span to at least `t` (the trace-level
    /// equivalent of `UtilizationMonitor::observe_until`): aggregation
    /// over the log then averages over the full simulated span, not
    /// just until the last span end.
    pub fn observe_until(&self, t: Time) {
        if t > self.observed_end.get() {
            self.observed_end.set(t);
        }
    }

    /// The latest simulated time covered by this recorder.
    pub fn observed_end(&self) -> Time {
        self.observed_end.get()
    }

    /// Drains the recorder into a plain-data [`TraceLog`] (spans in
    /// record order, metric snapshots by registration order). The
    /// recorder is left empty but keeps its policy and metrics handles.
    pub fn take_log(&self) -> TraceLog {
        let end = self.observed_end.get();
        let (spans, dropped) = match &mut *self.sink.borrow_mut() {
            Sink::Off => (Vec::new(), 0),
            Sink::Unbounded(spans) => (std::mem::take(spans), 0),
            Sink::Ring { buf, dropped, .. } => {
                let d = *dropped;
                *dropped = 0;
                (buf.drain(..).collect(), d)
            }
        };
        TraceLog {
            spans,
            dropped,
            observed_end: end,
            counters: self.metrics.counter_values(),
            gauges: self.metrics.gauge_values(),
            histograms: self.metrics.histogram_summaries(end),
        }
    }
}

/// A plain-data snapshot of one recorder: spans plus metric values.
///
/// Unlike [`Recorder`] (which is `Rc`-shared and single-threaded), a
/// `TraceLog` is `Send` — it is what crosses thread boundaries out of
/// farmed simulations, gets merged per batch and feeds the exporters.
#[derive(Debug, Clone, Default)]
pub struct TraceLog {
    /// All retained spans, in record order.
    pub spans: Vec<SpanRecord>,
    /// Spans dropped by a full ring buffer.
    pub dropped: u64,
    /// Latest simulated time the log covers (max span end /
    /// `observe_until` mark).
    pub observed_end: Time,
    /// Counter snapshot `(name, value)`.
    pub counters: Vec<(String, u64)>,
    /// Gauge snapshot `(name, value)`.
    pub gauges: Vec<(String, i64)>,
    /// Histogram summaries `(name, summary)`.
    pub histograms: Vec<(String, HistogramSummary)>,
}

impl TraceLog {
    /// An empty log.
    pub fn new() -> Self {
        TraceLog::default()
    }

    /// Merges `other` into `self` under a job label: span tracks and
    /// gauge/histogram names get a `label/` prefix (each job keeps its
    /// own swimlanes), while counters with equal names are *summed* —
    /// the merged log carries batch-level totals.
    pub fn merge_labeled(&mut self, label: &str, other: TraceLog) {
        for mut span in other.spans {
            span.track = format!("{label}/{}", span.track);
            self.spans.push(span);
        }
        self.dropped += other.dropped;
        if other.observed_end > self.observed_end {
            self.observed_end = other.observed_end;
        }
        for (name, value) in other.counters {
            match self.counters.iter_mut().find(|(n, _)| *n == name) {
                Some((_, total)) => *total += value,
                None => self.counters.push((name, value)),
            }
        }
        for (name, value) in other.gauges {
            self.gauges.push((format!("{label}/{name}"), value));
        }
        for (name, summary) in other.histograms {
            self.histograms.push((format!("{label}/{name}"), summary));
        }
    }

    /// The distinct track names in first-appearance order.
    pub fn tracks(&self) -> Vec<&str> {
        let mut tracks: Vec<&str> = Vec::new();
        for span in &self.spans {
            if !tracks.contains(&span.track.as_str()) {
                tracks.push(&span.track);
            }
        }
        tracks
    }

    /// The spans of `kind` on `track`, in record order.
    pub fn spans_on<'a>(
        &'a self,
        track: &'a str,
        kind: SpanKind,
    ) -> impl Iterator<Item = &'a SpanRecord> + 'a {
        self.spans
            .iter()
            .filter(move |s| s.kind == kind && s.track == track)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(track: &str, name: &str, start: u64, end: u64) -> SpanRecord {
        SpanRecord::new(
            SpanKind::Transfer,
            track,
            name,
            Time::from_cycles(start),
            Time::from_cycles(end),
        )
    }

    #[test]
    fn disabled_recorder_keeps_nothing_and_skips_construction() {
        let rec = Recorder::disabled();
        assert!(!rec.is_enabled());
        let mut constructed = false;
        rec.record_with(|| {
            constructed = true;
            span("bus", "x", 0, 1)
        });
        assert!(!constructed, "record_with must not build spans when off");
        rec.record(span("bus", "y", 0, 1));
        assert_eq!(rec.span_count(), 0);
        assert_eq!(rec.take_log().spans.len(), 0);
    }

    #[test]
    fn unbounded_keeps_everything_in_order() {
        let rec = Recorder::unbounded();
        for i in 0..5 {
            rec.record(span("bus", &format!("s{i}"), i, i + 1));
        }
        let log = rec.take_log();
        assert_eq!(log.spans.len(), 5);
        assert_eq!(log.dropped, 0);
        assert_eq!(log.spans[4].name, "s4");
        assert_eq!(log.observed_end, Time::from_cycles(5));
        // take_log drains.
        assert_eq!(rec.span_count(), 0);
    }

    #[test]
    fn ring_drops_oldest() {
        let rec = Recorder::ring(3);
        for i in 0..7 {
            rec.record(span("bus", &format!("s{i}"), i, i + 1));
        }
        assert_eq!(rec.dropped(), 4);
        let log = rec.take_log();
        assert_eq!(log.spans.len(), 3);
        assert_eq!(log.dropped, 4);
        assert_eq!(log.spans[0].name, "s4");
    }

    #[test]
    fn observe_until_only_extends() {
        let rec = Recorder::unbounded();
        rec.record(span("bus", "s", 0, 10));
        rec.observe_until(Time::from_cycles(5)); // earlier: no-op
        assert_eq!(rec.observed_end(), Time::from_cycles(10));
        rec.observe_until(Time::from_cycles(25));
        assert_eq!(rec.observed_end(), Time::from_cycles(25));
    }

    #[test]
    fn merge_labeled_prefixes_tracks_and_sums_counters() {
        let rec_a = Recorder::unbounded();
        rec_a.record(span("bus", "a", 0, 4));
        rec_a.metrics().counter("transfers").add(3);
        let rec_b = Recorder::unbounded();
        rec_b.record(span("bus", "b", 0, 9));
        rec_b.metrics().counter("transfers").add(2);
        rec_b.metrics().gauge("wir").set(1);

        let mut merged = TraceLog::new();
        merged.merge_labeled("job0", rec_a.take_log());
        merged.merge_labeled("job1", rec_b.take_log());

        assert_eq!(merged.tracks(), vec!["job0/bus", "job1/bus"]);
        assert_eq!(merged.counters, vec![("transfers".to_string(), 5)]);
        assert_eq!(merged.gauges, vec![("job1/wir".to_string(), 1)]);
        assert_eq!(merged.observed_end, Time::from_cycles(9));
    }

    #[test]
    fn trace_log_is_send() {
        fn assert_send<T: Send>() {}
        assert_send::<TraceLog>();
    }
}
