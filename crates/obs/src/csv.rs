//! CSV export of spans and metrics — the spreadsheet-side companion to
//! the Chrome-trace exporter.

use std::io::{self, Write};

use crate::recorder::TraceLog;

/// Quotes a CSV field when it contains a delimiter, quote or newline.
fn csv_field(s: &str) -> String {
    if s.contains([',', '"', '\n', '\r']) {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

/// Writes every span as one CSV row
/// (`track,kind,name,start_cycles,end_cycles,duration_cycles,initiator,bits`).
///
/// ```
/// use tve_obs::{write_spans_csv, Recorder, SpanKind, SpanRecord};
/// use tve_sim::Time;
///
/// let rec = Recorder::unbounded();
/// rec.record(SpanRecord::new(
///     SpanKind::Transfer,
///     "bus",
///     "write, posted",
///     Time::from_cycles(2),
///     Time::from_cycles(7),
/// ));
/// let mut out = Vec::new();
/// write_spans_csv(&rec.take_log(), &mut out).unwrap();
/// let text = String::from_utf8(out).unwrap();
/// assert!(text.contains("bus,transfer,\"write, posted\",2,7,5,,0"));
/// ```
pub fn write_spans_csv<W: Write>(log: &TraceLog, out: &mut W) -> io::Result<()> {
    writeln!(
        out,
        "track,kind,name,start_cycles,end_cycles,duration_cycles,initiator,bits"
    )?;
    for span in &log.spans {
        writeln!(
            out,
            "{},{},{},{},{},{},{},{}",
            csv_field(&span.track),
            span.kind.category(),
            csv_field(&span.name),
            span.start.cycles(),
            span.end.cycles(),
            span.duration().as_cycles(),
            span.initiator.map(|i| i.to_string()).unwrap_or_default(),
            span.bits
        )?;
    }
    Ok(())
}

/// Writes every metric as one CSV row (`metric,kind,value` — histograms
/// expand to min/max/mean/samples rows).
pub fn write_metrics_csv<W: Write>(log: &TraceLog, out: &mut W) -> io::Result<()> {
    writeln!(out, "metric,kind,value")?;
    for (name, value) in &log.counters {
        writeln!(out, "{},counter,{}", csv_field(name), value)?;
    }
    for (name, value) in &log.gauges {
        writeln!(out, "{},gauge,{}", csv_field(name), value)?;
    }
    for (name, s) in &log.histograms {
        writeln!(out, "{}.min,histogram,{}", csv_field(name), s.min)?;
        writeln!(out, "{}.max,histogram,{}", csv_field(name), s.max)?;
        writeln!(out, "{}.mean,histogram,{}", csv_field(name), s.mean)?;
        writeln!(out, "{}.samples,histogram,{}", csv_field(name), s.samples)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::Recorder;
    use crate::span::{SpanKind, SpanRecord};
    use tve_sim::Time;

    #[test]
    fn spans_csv_quotes_embedded_delimiters() {
        let rec = Recorder::unbounded();
        rec.record(
            SpanRecord::new(
                SpanKind::Burst,
                "src/T1",
                "burst \"a\", part 1",
                Time::from_cycles(0),
                Time::from_cycles(4),
            )
            .with_initiator(2)
            .with_bits(16),
        );
        let mut out = Vec::new();
        write_spans_csv(&rec.take_log(), &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        let mut lines = text.lines();
        assert_eq!(
            lines.next().unwrap(),
            "track,kind,name,start_cycles,end_cycles,duration_cycles,initiator,bits"
        );
        assert_eq!(
            lines.next().unwrap(),
            "src/T1,burst,\"burst \"\"a\"\", part 1\",0,4,4,2,16"
        );
    }

    #[test]
    fn metrics_csv_expands_histograms() {
        let rec = Recorder::unbounded();
        rec.metrics().counter("c").add(5);
        rec.metrics().gauge("g").set(-3);
        rec.metrics()
            .histogram("h")
            .observe(Time::from_cycles(0), 2.0);
        rec.observe_until(Time::from_cycles(10));
        let mut out = Vec::new();
        write_metrics_csv(&rec.take_log(), &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("c,counter,5"));
        assert!(text.contains("g,gauge,-3"));
        assert!(text.contains("h.mean,histogram,2"));
        assert!(text.contains("h.samples,histogram,1"));
    }
}
