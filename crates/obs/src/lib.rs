//! Transaction-level observability for the TVE simulator.
//!
//! The DATE 2009 paper's argument is that TLM simulation makes test
//! infrastructure *inspectable* at transaction granularity: every TAM
//! transfer, WIR configuration scan and pattern burst is an event with a
//! begin time, an end time and an initiator. This crate is the layer
//! that keeps those events instead of throwing them away:
//!
//! - [`Recorder`] — a span/event sink models write into. Storage is an
//!   enum sink ([`StoragePolicy`]): disabled (near-zero cost), unbounded,
//!   or a bounded ring buffer that drops the oldest spans.
//! - [`MetricsRegistry`] — named [`Counter`]s, [`Gauge`]s and
//!   time-weighted [`Histogram`]s models can cheaply bump.
//! - Exporters — Chrome trace-event JSON ([`write_chrome_trace`],
//!   openable in Perfetto / `chrome://tracing`), CSV ([`write_spans_csv`],
//!   [`write_metrics_csv`]) and an aggregation pass
//!   ([`utilization_from_spans`]) that recomputes per-initiator
//!   utilization with exactly the windowing rules of the TLM layer's
//!   `UtilizationMonitor`.
//!
//! Everything is keyed on simulated [`tve_sim::Time`] — no wall clock
//! ever reaches an exported artifact, so traces are bit-for-bit
//! deterministic across hosts and runs.
//!
//! # Example
//!
//! ```
//! use std::rc::Rc;
//! use tve_obs::{check_json, write_chrome_trace, Recorder, SpanKind, SpanRecord};
//! use tve_sim::Time;
//!
//! let rec = Rc::new(Recorder::unbounded());
//! // A model records a 5-cycle write occupying the "system-bus" track.
//! rec.record_with(|| {
//!     SpanRecord::new(
//!         SpanKind::Transfer,
//!         "system-bus",
//!         "write",
//!         Time::from_cycles(10),
//!         Time::from_cycles(15),
//!     )
//!     .with_initiator(1)
//!     .with_bits(128)
//! });
//! let log = rec.take_log();
//! assert_eq!(log.spans.len(), 1);
//!
//! let mut json = Vec::new();
//! write_chrome_trace(&log, &mut json).unwrap();
//! check_json(std::str::from_utf8(&json).unwrap()).unwrap();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod agg;
mod chrome;
mod csv;
mod faultio;
mod journal;
mod json;
mod metrics;
mod ops;
mod recorder;
mod span;

pub use agg::{earliest_span_end, utilization_from_spans, UtilizationSummary};
pub use chrome::write_chrome_trace;
pub use csv::{write_metrics_csv, write_spans_csv};
pub use faultio::{FaultSink, IoPolicy, WriteFault};
pub use journal::{fnv1a, parse_journal, read_journal, Journal, JournalContents, JournalDefect};
pub use json::{append_json_string, check_json, parse_json, JsonError, JsonValue};
pub use metrics::{Counter, Gauge, Histogram, HistogramSummary, MetricsRegistry};
pub use ops::{OpsCounters, OpsEvent, EVENT_RING};
pub use recorder::{Recorder, StoragePolicy, TraceLog};
pub use span::{SpanKind, SpanRecord};
