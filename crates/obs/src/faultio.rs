//! Deterministic write-fault injection for durability testing.
//!
//! `tve-campaign`'s journal and `tve-serve`'s cache snapshot both claim
//! crash-safety: a torn or failed write must never be absorbed silently.
//! Proving that with post-hoc file truncation tests the *reader* but not
//! the write path itself. This module injects the faults where they
//! actually happen — inside [`Write::write`] — so the torn-tail artifact
//! is produced by the same code path a full disk or a kill would take.
//!
//! An [`IoPolicy`] counts every `write` call issued through the sinks it
//! wraps and fails the N-th one with a configured [`WriteFault`]:
//!
//! - [`WriteFault::Short`] — the faulted call persists only the first
//!   `keep` bytes, then the sink behaves like a full disk: the short
//!   call and every later call fail with [`ErrorKind::StorageFull`].
//!   This is the ENOSPC-mid-record scenario that leaves a torn tail.
//! - [`WriteFault::Enospc`] — the faulted call persists nothing and
//!   fails immediately; later calls keep failing. This is the clean
//!   record-boundary failure.
//!
//! A default policy injects nothing and adds one relaxed atomic bump per
//! write, so production paths route through it unconditionally.

use std::collections::BTreeMap;
use std::io::{self, ErrorKind, Write};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// What happens to a faulted write call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WriteFault {
    /// Persist only the first `keep` bytes of the faulted call, then
    /// fail it — and every subsequent call — with `StorageFull`.
    Short {
        /// Bytes of the faulted call that still reach the underlying
        /// sink before the failure.
        keep: usize,
    },
    /// Fail the faulted call (persisting nothing) and every subsequent
    /// call with `StorageFull`.
    Enospc,
}

#[derive(Default)]
struct PolicyInner {
    /// Total `write` calls observed across all sinks sharing the policy.
    writes: AtomicU64,
    /// Armed faults, keyed by 1-based write index.
    faults: Mutex<BTreeMap<u64, WriteFault>>,
    /// Once a fault fires the "disk" stays full.
    saturated: AtomicBool,
}

/// A shared, thread-safe write-fault schedule. Clones share state, so a
/// test can keep a handle while the code under test owns the sink.
#[derive(Clone, Default)]
pub struct IoPolicy {
    inner: Arc<PolicyInner>,
}

impl IoPolicy {
    /// A policy that injects nothing (the production default).
    pub fn new() -> Self {
        IoPolicy::default()
    }

    /// Arms `fault` for the `n`-th (1-based) `write` call issued through
    /// any sink wrapping this policy.
    pub fn fail_nth_write(&self, n: u64, fault: WriteFault) {
        self.inner
            .faults
            .lock()
            .expect("io policy lock poisoned")
            .insert(n, fault);
    }

    /// Total `write` calls observed so far — lets a test discover the
    /// write index of the record it wants to tear.
    pub fn writes(&self) -> u64 {
        self.inner.writes.load(Ordering::Relaxed)
    }

    /// Wraps `inner` so its writes are counted and faulted per this
    /// policy.
    pub fn wrap<W: Write>(&self, inner: W) -> FaultSink<W> {
        FaultSink {
            inner,
            policy: self.clone(),
        }
    }

    /// Advances the write counter and returns the fault (if any) for
    /// this call.
    fn on_write(&self) -> Option<WriteFault> {
        let index = self.inner.writes.fetch_add(1, Ordering::Relaxed) + 1;
        if self.inner.saturated.load(Ordering::Relaxed) {
            return Some(WriteFault::Enospc);
        }
        let fault = self
            .inner
            .faults
            .lock()
            .expect("io policy lock poisoned")
            .get(&index)
            .copied();
        if fault.is_some() {
            self.inner.saturated.store(true, Ordering::Relaxed);
        }
        fault
    }
}

impl std::fmt::Debug for IoPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("IoPolicy")
            .field("writes", &self.writes())
            .field("saturated", &self.inner.saturated.load(Ordering::Relaxed))
            .finish()
    }
}

fn storage_full(detail: &str) -> io::Error {
    io::Error::new(ErrorKind::StorageFull, format!("injected fault: {detail}"))
}

/// A [`Write`] adapter that applies an [`IoPolicy`] to an inner sink.
pub struct FaultSink<W> {
    inner: W,
    policy: IoPolicy,
}

impl<W: Write> Write for FaultSink<W> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self.policy.on_write() {
            None => self.inner.write(buf),
            Some(WriteFault::Short { keep }) => {
                let keep = keep.min(buf.len());
                self.inner.write_all(&buf[..keep])?;
                self.inner.flush()?;
                Err(storage_full("short write, device now full"))
            }
            Some(WriteFault::Enospc) => Err(storage_full("no space left on device")),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_policy_passes_everything_through() {
        let policy = IoPolicy::new();
        let mut sink = policy.wrap(Vec::new());
        sink.write_all(b"abc").unwrap();
        sink.write_all(b"def").unwrap();
        assert_eq!(sink.inner, b"abcdef");
        assert_eq!(policy.writes(), 2);
    }

    #[test]
    fn short_write_keeps_prefix_then_saturates() {
        let policy = IoPolicy::new();
        policy.fail_nth_write(2, WriteFault::Short { keep: 4 });
        let mut sink = policy.wrap(Vec::new());
        sink.write_all(b"first-record\n").unwrap();
        let err = sink.write_all(b"second-record\n").unwrap_err();
        assert_eq!(err.kind(), ErrorKind::StorageFull);
        assert_eq!(sink.inner, b"first-record\nseco");
        // The device stays full afterwards.
        let err = sink.write_all(b"third\n").unwrap_err();
        assert_eq!(err.kind(), ErrorKind::StorageFull);
    }

    #[test]
    fn enospc_persists_nothing_for_the_faulted_call() {
        let policy = IoPolicy::new();
        policy.fail_nth_write(1, WriteFault::Enospc);
        let mut sink = policy.wrap(Vec::new());
        let err = sink.write_all(b"doomed").unwrap_err();
        assert_eq!(err.kind(), ErrorKind::StorageFull);
        assert!(sink.inner.is_empty());
    }

    #[test]
    fn clones_share_the_write_counter() {
        let policy = IoPolicy::new();
        let handle = policy.clone();
        let mut sink = policy.wrap(Vec::new());
        sink.write_all(b"x").unwrap();
        assert_eq!(handle.writes(), 1);
    }
}
