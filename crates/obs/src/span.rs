//! Span records: one timed interval of simulated activity.

use tve_sim::{Duration, Time};

/// What kind of activity a [`SpanRecord`] measures.
///
/// The kind maps to the Chrome trace-event `cat` field (see
/// [`SpanKind::category`]), so Perfetto can filter e.g. only TAM
/// transfers or only schedule phases.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SpanKind {
    /// One TAM transfer chunk (bus or serial occupancy).
    Transfer,
    /// A WIR configuration scan (config-ring rotation).
    ConfigScan,
    /// A scan-shift of one pattern through a core's test wrapper.
    Scan,
    /// A whole pattern burst from a pattern source (BIST/ATE/compressed).
    Burst,
    /// A complete test (e.g. a memory march run end-to-end).
    Test,
    /// One step of a virtual-ATE test program.
    Step,
    /// One phase of a test schedule.
    Phase,
    /// One farmed scenario job.
    Job,
}

impl SpanKind {
    /// The Chrome trace-event category string for this kind.
    ///
    /// ```
    /// assert_eq!(tve_obs::SpanKind::Transfer.category(), "transfer");
    /// ```
    pub fn category(&self) -> &'static str {
        match self {
            SpanKind::Transfer => "transfer",
            SpanKind::ConfigScan => "config-scan",
            SpanKind::Scan => "scan",
            SpanKind::Burst => "burst",
            SpanKind::Test => "test",
            SpanKind::Step => "step",
            SpanKind::Phase => "phase",
            SpanKind::Job => "job",
        }
    }
}

/// One recorded interval of simulated activity.
///
/// Times are simulated [`Time`] (cycle-granular); a span never carries
/// host wall-clock data, which keeps exported traces deterministic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// What the span measures.
    pub kind: SpanKind,
    /// The lane the span belongs to — a channel, core or engine name.
    /// Becomes the Chrome trace "thread" so each track gets its own
    /// swimlane in Perfetto.
    pub track: String,
    /// Human-readable label for this particular interval.
    pub name: String,
    /// Begin time (inclusive).
    pub start: Time,
    /// End time (exclusive); `end >= start`.
    pub end: Time,
    /// The initiator id that caused the activity, if attributable.
    pub initiator: Option<u8>,
    /// Payload volume in bits (0 when not meaningful).
    pub bits: u64,
}

impl SpanRecord {
    /// A span with no initiator attribution and zero payload volume;
    /// chain [`with_initiator`](Self::with_initiator) /
    /// [`with_bits`](Self::with_bits) to fill those in.
    ///
    /// ```
    /// use tve_obs::{SpanKind, SpanRecord};
    /// use tve_sim::Time;
    ///
    /// let s = SpanRecord::new(
    ///     SpanKind::Burst,
    ///     "src/T1",
    ///     "T1 proc BIST",
    ///     Time::from_cycles(0),
    ///     Time::from_cycles(90),
    /// );
    /// assert_eq!(s.duration().as_cycles(), 90);
    /// ```
    pub fn new(
        kind: SpanKind,
        track: impl Into<String>,
        name: impl Into<String>,
        start: Time,
        end: Time,
    ) -> Self {
        SpanRecord {
            kind,
            track: track.into(),
            name: name.into(),
            start,
            end,
            initiator: None,
            bits: 0,
        }
    }

    /// Attributes the span to an initiator id.
    pub fn with_initiator(mut self, initiator: u8) -> Self {
        self.initiator = Some(initiator);
        self
    }

    /// Sets the payload volume in bits.
    pub fn with_bits(mut self, bits: u64) -> Self {
        self.bits = bits;
        self
    }

    /// The span's length in simulated cycles (saturating).
    pub fn duration(&self) -> Duration {
        self.end.saturating_since(self.start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_fills_fields() {
        let s = SpanRecord::new(
            SpanKind::Transfer,
            "bus",
            "write",
            Time::from_cycles(3),
            Time::from_cycles(8),
        )
        .with_initiator(4)
        .with_bits(64);
        assert_eq!(s.track, "bus");
        assert_eq!(s.initiator, Some(4));
        assert_eq!(s.bits, 64);
        assert_eq!(s.duration().as_cycles(), 5);
    }

    #[test]
    fn zero_length_span_has_zero_duration() {
        let t = Time::from_cycles(7);
        let s = SpanRecord::new(SpanKind::ConfigScan, "ring", "wir", t, t);
        assert_eq!(s.duration().as_cycles(), 0);
    }

    #[test]
    fn categories_are_distinct() {
        let kinds = [
            SpanKind::Transfer,
            SpanKind::ConfigScan,
            SpanKind::Scan,
            SpanKind::Burst,
            SpanKind::Test,
            SpanKind::Step,
            SpanKind::Phase,
            SpanKind::Job,
        ];
        let mut cats: Vec<_> = kinds.iter().map(|k| k.category()).collect();
        cats.sort_unstable();
        cats.dedup();
        assert_eq!(cats.len(), kinds.len());
    }
}
