//! Chrome trace-event JSON export.
//!
//! The emitted file follows the Trace Event Format's JSON-object form
//! (`{"traceEvents": [...]}`) with `"X"` (complete) events and `"M"`
//! (metadata) records, which both Perfetto and `chrome://tracing`
//! open directly. The whole SoC is one process (pid 0, named "SoC");
//! every span track becomes one named thread, so channels, cores and
//! engines each get a swimlane.
//!
//! Timestamps are simulated cycles written as microseconds (one cycle
//! = 1 µs in the viewer) — deterministic, never wall clock.

use std::io::{self, Write};

use crate::recorder::TraceLog;

/// Escapes `s` as the body of a JSON string literal.
fn escape_json_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    escape_json_into(&mut out, s);
    out.push('"');
    out
}

/// Writes `log` as Chrome trace-event JSON.
///
/// Track-to-thread-id assignment sorts track names, so the same log
/// always produces byte-identical output.
///
/// ```
/// use tve_obs::{check_json, write_chrome_trace, Recorder, SpanKind, SpanRecord};
/// use tve_sim::Time;
///
/// let rec = Recorder::unbounded();
/// rec.record(SpanRecord::new(
///     SpanKind::Transfer,
///     "system-bus",
///     "write",
///     Time::from_cycles(0),
///     Time::from_cycles(8),
/// ));
/// let mut out = Vec::new();
/// write_chrome_trace(&rec.take_log(), &mut out).unwrap();
/// let text = String::from_utf8(out).unwrap();
/// check_json(&text).unwrap();
/// assert!(text.contains("\"system-bus\""));
/// ```
pub fn write_chrome_trace<W: Write>(log: &TraceLog, out: &mut W) -> io::Result<()> {
    let mut tracks = log.tracks();
    tracks.sort_unstable();

    writeln!(out, "{{")?;
    writeln!(out, "  \"displayTimeUnit\": \"ms\",")?;
    writeln!(
        out,
        "  \"otherData\": {{\"unit\": \"cycles\", \"observedEnd\": {}, \"droppedSpans\": {}}},",
        log.observed_end.cycles(),
        log.dropped
    )?;
    writeln!(out, "  \"traceEvents\": [")?;

    let mut first = true;
    let mut emit = |out: &mut W, line: String| -> io::Result<()> {
        if first {
            first = false;
            write!(out, "    {line}")
        } else {
            write!(out, ",\n    {line}")
        }
    };

    emit(
        out,
        "{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": 0, \"tid\": 0, \
         \"args\": {\"name\": \"SoC\"}}"
            .to_string(),
    )?;
    for (i, track) in tracks.iter().enumerate() {
        emit(
            out,
            format!(
                "{{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 0, \"tid\": {}, \
                 \"args\": {{\"name\": {}}}}}",
                i + 1,
                json_string(track)
            ),
        )?;
    }

    for span in &log.spans {
        let tid = tracks
            .binary_search(&span.track.as_str())
            .map(|i| i + 1)
            .unwrap_or(0);
        let mut args = String::new();
        args.push_str(&format!("\"bits\": {}", span.bits));
        if let Some(initiator) = span.initiator {
            args.push_str(&format!(", \"initiator\": {initiator}"));
        }
        emit(
            out,
            format!(
                "{{\"name\": {}, \"cat\": {}, \"ph\": \"X\", \"pid\": 0, \"tid\": {}, \
                 \"ts\": {}, \"dur\": {}, \"args\": {{{}}}}}",
                json_string(&span.name),
                json_string(span.kind.category()),
                tid,
                span.start.cycles(),
                span.duration().as_cycles(),
                args
            ),
        )?;
    }

    for (name, value) in &log.counters {
        emit(
            out,
            format!(
                "{{\"name\": {}, \"cat\": \"counter\", \"ph\": \"C\", \"pid\": 0, \
                 \"ts\": {}, \"args\": {{\"value\": {}}}}}",
                json_string(name),
                log.observed_end.cycles(),
                value
            ),
        )?;
    }

    writeln!(out)?;
    writeln!(out, "  ]")?;
    writeln!(out, "}}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::check_json;
    use crate::recorder::Recorder;
    use crate::span::{SpanKind, SpanRecord};
    use tve_sim::Time;

    fn sample_log() -> TraceLog {
        let rec = Recorder::unbounded();
        rec.record(
            SpanRecord::new(
                SpanKind::Transfer,
                "system-bus/TAM",
                "write \"x\"\n",
                Time::from_cycles(0),
                Time::from_cycles(8),
            )
            .with_initiator(1)
            .with_bits(64),
        );
        rec.record(SpanRecord::new(
            SpanKind::Phase,
            "schedule",
            "phase 0",
            Time::from_cycles(0),
            Time::from_cycles(100),
        ));
        rec.metrics().counter("bus.transfers").inc();
        rec.take_log()
    }

    #[test]
    fn output_is_well_formed_json() {
        let mut out = Vec::new();
        write_chrome_trace(&sample_log(), &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        check_json(&text).unwrap_or_else(|e| panic!("invalid JSON: {e}\n{text}"));
        // Escaping really happened: the raw quote/newline never appear
        // unescaped inside the name.
        assert!(text.contains("write \\\"x\\\"\\n"));
    }

    #[test]
    fn tracks_become_named_threads() {
        let mut out = Vec::new();
        write_chrome_trace(&sample_log(), &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("\"process_name\""));
        assert!(text.contains("\"name\": \"SoC\""));
        assert!(text.contains("\"name\": \"system-bus/TAM\""));
        assert!(text.contains("\"name\": \"schedule\""));
        // Sorted track order: "schedule" = tid 1, "system-bus/TAM" = tid 2.
        assert!(text.contains("\"tid\": 1"));
        assert!(text.contains("\"tid\": 2"));
    }

    #[test]
    fn empty_log_is_still_valid() {
        let mut out = Vec::new();
        write_chrome_trace(&TraceLog::new(), &mut out).unwrap();
        check_json(std::str::from_utf8(&out).unwrap()).unwrap();
    }

    #[test]
    fn byte_identical_for_identical_logs() {
        let (mut a, mut b) = (Vec::new(), Vec::new());
        write_chrome_trace(&sample_log(), &mut a).unwrap();
        write_chrome_trace(&sample_log(), &mut b).unwrap();
        assert_eq!(a, b);
    }
}
