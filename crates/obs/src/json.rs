//! A serde-free JSON well-formedness checker.
//!
//! The exporters in this crate hand-format JSON; tests use
//! [`check_json`] to prove the output is structurally valid without
//! pulling a JSON parser dependency into the workspace. The checker is
//! a strict recursive-descent validator for RFC 8259 documents: it
//! accepts exactly one top-level value (plus whitespace) and rejects
//! trailing garbage, unterminated strings, bad escapes and malformed
//! numbers.

use std::fmt;

/// Why a document failed [`check_json`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the offending input.
    pub offset: usize,
    /// What was wrong there.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid JSON at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

struct Checker<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Checker<'a> {
    fn err(&self, message: impl Into<String>) -> JsonError {
        JsonError {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected '{}'", b as char)))
        }
    }

    fn value(&mut self) -> Result<(), JsonError> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string(),
            Some(b't') => self.literal("true"),
            Some(b'f') => self.literal("false"),
            Some(b'n') => self.literal("null"),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(other) => Err(self.err(format!("unexpected byte 0x{other:02x}"))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn literal(&mut self, word: &str) -> Result<(), JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(())
        } else {
            Err(self.err(format!("expected '{word}'")))
        }
    }

    fn object(&mut self) -> Result<(), JsonError> {
        self.expect(b'{')?;
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(());
        }
        loop {
            self.skip_ws();
            self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.value()?;
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(()),
                _ => {
                    self.pos -= usize::from(self.pos > 0);
                    return Err(self.err("expected ',' or '}'"));
                }
            }
        }
    }

    fn array(&mut self) -> Result<(), JsonError> {
        self.expect(b'[')?;
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(());
        }
        loop {
            self.value()?;
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(()),
                _ => {
                    self.pos -= usize::from(self.pos > 0);
                    return Err(self.err("expected ',' or ']'"));
                }
            }
        }
    }

    fn string(&mut self) -> Result<(), JsonError> {
        self.expect(b'"')?;
        loop {
            match self.bump() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => return Ok(()),
                Some(b'\\') => match self.bump() {
                    Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => {}
                    Some(b'u') => {
                        for _ in 0..4 {
                            match self.bump() {
                                Some(b) if b.is_ascii_hexdigit() => {}
                                _ => return Err(self.err("bad \\u escape")),
                            }
                        }
                    }
                    _ => return Err(self.err("bad escape")),
                },
                Some(b) if b < 0x20 => {
                    return Err(self.err("unescaped control character in string"))
                }
                Some(_) => {}
            }
        }
    }

    fn number(&mut self) -> Result<(), JsonError> {
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        match self.peek() {
            Some(b'0') => {
                self.pos += 1;
            }
            Some(b'1'..=b'9') => {
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
            }
            _ => return Err(self.err("expected digit")),
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("expected digit after '.'"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("expected exponent digit"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        Ok(())
    }
}

/// Checks that `text` is exactly one well-formed JSON document.
///
/// ```
/// use tve_obs::check_json;
///
/// assert!(check_json(r#"{"traceEvents": [1, -2.5e3, "a\"b", null]}"#).is_ok());
/// assert!(check_json("{\"unclosed\": [").is_err());
/// assert!(check_json("{} trailing").is_err());
/// ```
pub fn check_json(text: &str) -> Result<(), JsonError> {
    let mut c = Checker {
        bytes: text.as_bytes(),
        pos: 0,
    };
    c.value()?;
    c.skip_ws();
    if c.pos != c.bytes.len() {
        return Err(c.err("trailing data after document"));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_valid_documents() {
        for doc in [
            "null",
            "true",
            " 0 ",
            "-12.5e-3",
            "\"\"",
            r#""\u00e9\n""#,
            "[]",
            "[1, [2, {\"a\": null}]]",
            "{}",
            r#"{"a": {"b": [false, "x,y"]}}"#,
        ] {
            check_json(doc).unwrap_or_else(|e| panic!("rejected {doc:?}: {e}"));
        }
    }

    #[test]
    fn rejects_malformed_documents() {
        for doc in [
            "",
            "{",
            "[1,]",
            "{\"a\" 1}",
            "{\"a\": 1,}",
            "\"unterminated",
            "\"bad \\q escape\"",
            "\"bad \\u00g0\"",
            "01",
            "1.",
            "1e",
            "nul",
            "{} {}",
            "[1] x",
        ] {
            assert!(check_json(doc).is_err(), "accepted {doc:?}");
        }
    }

    #[test]
    fn error_reports_offset() {
        let err = check_json("[1, 2, oops]").unwrap_err();
        assert_eq!(err.offset, 7);
        assert!(err.to_string().contains("byte 7"));
    }
}
