//! A serde-free JSON well-formedness checker and value parser.
//!
//! The exporters in this crate hand-format JSON; tests use
//! [`check_json`] to prove the output is structurally valid without
//! pulling a JSON parser dependency into the workspace. The checker is
//! a strict recursive-descent validator for RFC 8259 documents: it
//! accepts exactly one top-level value (plus whitespace) and rejects
//! trailing garbage, unterminated strings, bad escapes and malformed
//! numbers.
//!
//! [`parse_json`] is the reading half of the same grammar: it builds a
//! [`JsonValue`] tree so protocol layers (the `tve-serve` daemon wire
//! format) can consume hand-formatted JSON without serde either. Both
//! halves accept exactly the same documents.

use std::fmt;

/// Why a document failed [`check_json`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the offending input.
    pub offset: usize,
    /// What was wrong there.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid JSON at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

struct Checker<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Checker<'a> {
    fn err(&self, message: impl Into<String>) -> JsonError {
        JsonError {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected '{}'", b as char)))
        }
    }

    fn value(&mut self) -> Result<(), JsonError> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string(),
            Some(b't') => self.literal("true"),
            Some(b'f') => self.literal("false"),
            Some(b'n') => self.literal("null"),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(other) => Err(self.err(format!("unexpected byte 0x{other:02x}"))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn literal(&mut self, word: &str) -> Result<(), JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(())
        } else {
            Err(self.err(format!("expected '{word}'")))
        }
    }

    fn object(&mut self) -> Result<(), JsonError> {
        self.expect(b'{')?;
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(());
        }
        loop {
            self.skip_ws();
            self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.value()?;
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(()),
                _ => {
                    self.pos -= usize::from(self.pos > 0);
                    return Err(self.err("expected ',' or '}'"));
                }
            }
        }
    }

    fn array(&mut self) -> Result<(), JsonError> {
        self.expect(b'[')?;
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(());
        }
        loop {
            self.value()?;
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(()),
                _ => {
                    self.pos -= usize::from(self.pos > 0);
                    return Err(self.err("expected ',' or ']'"));
                }
            }
        }
    }

    fn string(&mut self) -> Result<(), JsonError> {
        self.expect(b'"')?;
        loop {
            match self.bump() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => return Ok(()),
                Some(b'\\') => match self.bump() {
                    Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => {}
                    Some(b'u') => {
                        for _ in 0..4 {
                            match self.bump() {
                                Some(b) if b.is_ascii_hexdigit() => {}
                                _ => return Err(self.err("bad \\u escape")),
                            }
                        }
                    }
                    _ => return Err(self.err("bad escape")),
                },
                Some(b) if b < 0x20 => {
                    return Err(self.err("unescaped control character in string"))
                }
                Some(_) => {}
            }
        }
    }

    fn number(&mut self) -> Result<(), JsonError> {
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        match self.peek() {
            Some(b'0') => {
                self.pos += 1;
            }
            Some(b'1'..=b'9') => {
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
            }
            _ => return Err(self.err("expected digit")),
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("expected digit after '.'"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("expected exponent digit"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        Ok(())
    }
}

/// Checks that `text` is exactly one well-formed JSON document.
///
/// ```
/// use tve_obs::check_json;
///
/// assert!(check_json(r#"{"traceEvents": [1, -2.5e3, "a\"b", null]}"#).is_ok());
/// assert!(check_json("{\"unclosed\": [").is_err());
/// assert!(check_json("{} trailing").is_err());
/// ```
pub fn check_json(text: &str) -> Result<(), JsonError> {
    let mut c = Checker {
        bytes: text.as_bytes(),
        pos: 0,
    };
    c.value()?;
    c.skip_ws();
    if c.pos != c.bytes.len() {
        return Err(c.err("trailing data after document"));
    }
    Ok(())
}

/// One parsed JSON value.
///
/// Numbers are kept as `f64` (every number the workspace emits fits);
/// callers that transport 64-bit digests use hex strings instead.
/// Object members keep their document order — duplicates are allowed
/// and [`JsonValue::get`] returns the first.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string, with escapes decoded.
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object, in document order.
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Member lookup on an object; `None` on other kinds or a missing key.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as a non-negative integer, if it is one
    /// exactly (no fraction, no overflow).
    pub fn as_u64(&self) -> Option<u64> {
        let n = self.as_f64()?;
        (n >= 0.0 && n <= 2f64.powi(53) && n.fract() == 0.0).then_some(n as u64)
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_arr(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(items) => Some(items),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: impl Into<String>) -> JsonError {
        JsonError {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn value(&mut self) -> Result<JsonValue, JsonError> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(other) => Err(self.err(format!("unexpected byte 0x{other:02x}"))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn literal(&mut self, word: &str, value: JsonValue) -> Result<JsonValue, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected '{word}'")))
        }
    }

    fn object(&mut self) -> Result<JsonValue, JsonError> {
        self.pos += 1; // '{'
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            if self.peek() != Some(b':') {
                return Err(self.err("expected ':'"));
            }
            self.pos += 1;
            members.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Obj(members));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, JsonError> {
        self.pos += 1; // '['
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        if self.peek() != Some(b'"') {
            return Err(self.err("expected '\"'"));
        }
        self.pos += 1;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(self.err("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(self.err("bad escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let unit = self.hex4()?;
                            let ch = if (0xD800..0xDC00).contains(&unit) {
                                // High surrogate: require the paired low
                                // surrogate escape.
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    if self.peek() != Some(b'u') {
                                        return Err(self.err("unpaired surrogate"));
                                    }
                                    self.pos += 1;
                                    let low = self.hex4()?;
                                    if !(0xDC00..0xE000).contains(&low) {
                                        return Err(self.err("unpaired surrogate"));
                                    }
                                    let cp = 0x10000
                                        + ((u32::from(unit) - 0xD800) << 10)
                                        + (u32::from(low) - 0xDC00);
                                    char::from_u32(cp)
                                } else {
                                    return Err(self.err("unpaired surrogate"));
                                }
                            } else {
                                char::from_u32(u32::from(unit))
                            };
                            match ch {
                                Some(c) => out.push(c),
                                None => return Err(self.err("invalid \\u escape")),
                            }
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                }
                _ if b < 0x20 => return Err(self.err("unescaped control character in string")),
                _ => {
                    // Re-take the full UTF-8 sequence from the source.
                    let start = self.pos - 1;
                    let len = match b {
                        0x00..=0x7F => 1,
                        0xC0..=0xDF => 2,
                        0xE0..=0xEF => 3,
                        _ => 4,
                    };
                    let end = (start + len).min(self.bytes.len());
                    match std::str::from_utf8(&self.bytes[start..end]) {
                        Ok(s) => {
                            out.push_str(s);
                            self.pos = end;
                        }
                        Err(_) => return Err(self.err("invalid UTF-8 in string")),
                    }
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u16, JsonError> {
        let mut v: u16 = 0;
        for _ in 0..4 {
            let Some(b) = self.peek() else {
                return Err(self.err("bad \\u escape"));
            };
            let digit = match b {
                b'0'..=b'9' => b - b'0',
                b'a'..=b'f' => b - b'a' + 10,
                b'A'..=b'F' => b - b'A' + 10,
                _ => return Err(self.err("bad \\u escape")),
            };
            self.pos += 1;
            v = (v << 4) | u16::from(digit);
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<JsonValue, JsonError> {
        let start = self.pos;
        // Reuse the checker for the grammar, then parse the span.
        let mut c = Checker {
            bytes: self.bytes,
            pos: self.pos,
        };
        c.number()?;
        self.pos = c.pos;
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("number span is ASCII by construction");
        text.parse::<f64>()
            .map(JsonValue::Num)
            .map_err(|_| self.err("unrepresentable number"))
    }
}

/// Parses exactly one well-formed JSON document into a [`JsonValue`].
///
/// Accepts the same language as [`check_json`].
///
/// ```
/// use tve_obs::{parse_json, JsonValue};
///
/// let v = parse_json(r#"{"cmd": "stats", "n": 3}"#).unwrap();
/// assert_eq!(v.get("cmd").and_then(JsonValue::as_str), Some("stats"));
/// assert_eq!(v.get("n").and_then(JsonValue::as_u64), Some(3));
/// assert!(parse_json("{} trailing").is_err());
/// ```
pub fn parse_json(text: &str) -> Result<JsonValue, JsonError> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing data after document"));
    }
    Ok(value)
}

/// Appends `text` to `out` as a JSON string literal (quoted, escaped).
///
/// This is the emit-side companion of [`parse_json`]: the workspace's
/// hand-built JSON writers share one escaping rule instead of each
/// carrying their own.
pub fn append_json_string(out: &mut String, text: &str) {
    out.push('"');
    for ch in text.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_valid_documents() {
        for doc in [
            "null",
            "true",
            " 0 ",
            "-12.5e-3",
            "\"\"",
            r#""\u00e9\n""#,
            "[]",
            "[1, [2, {\"a\": null}]]",
            "{}",
            r#"{"a": {"b": [false, "x,y"]}}"#,
        ] {
            check_json(doc).unwrap_or_else(|e| panic!("rejected {doc:?}: {e}"));
        }
    }

    #[test]
    fn rejects_malformed_documents() {
        for doc in [
            "",
            "{",
            "[1,]",
            "{\"a\" 1}",
            "{\"a\": 1,}",
            "\"unterminated",
            "\"bad \\q escape\"",
            "\"bad \\u00g0\"",
            "01",
            "1.",
            "1e",
            "nul",
            "{} {}",
            "[1] x",
        ] {
            assert!(check_json(doc).is_err(), "accepted {doc:?}");
        }
    }

    #[test]
    fn error_reports_offset() {
        let err = check_json("[1, 2, oops]").unwrap_err();
        assert_eq!(err.offset, 7);
        assert!(err.to_string().contains("byte 7"));
    }

    #[test]
    fn parser_builds_values() {
        let v = parse_json(r#"{"a": [1, -2.5, true, null], "b": {"c": "x\n\"y\""}}"#).unwrap();
        assert_eq!(
            v.get("a").and_then(JsonValue::as_arr).map(<[_]>::len),
            Some(4)
        );
        let a = v.get("a").unwrap().as_arr().unwrap();
        assert_eq!(a[0].as_u64(), Some(1));
        assert_eq!(a[1].as_f64(), Some(-2.5));
        assert_eq!(a[2].as_bool(), Some(true));
        assert_eq!(a[3], JsonValue::Null);
        assert_eq!(
            v.get("b")
                .and_then(|b| b.get("c"))
                .and_then(JsonValue::as_str),
            Some("x\n\"y\"")
        );
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn parser_decodes_escapes_and_utf8() {
        let v = parse_json(r#""café 😀 déjà""#).unwrap();
        assert_eq!(v.as_str(), Some("café 😀 déjà"));
        assert!(parse_json(r#""\ud83d""#).is_err(), "unpaired surrogate");
        assert!(parse_json(r#""\ud83d ""#).is_err());
    }

    #[test]
    fn parser_and_checker_agree() {
        for doc in [
            "null",
            "[1,]",
            "{\"a\": 1,}",
            r#"{"a": {"b": [false, "x,y"]}}"#,
            "01",
            "{} {}",
            "-12.5e-3",
        ] {
            assert_eq!(
                check_json(doc).is_ok(),
                parse_json(doc).is_ok(),
                "checker and parser disagree on {doc:?}"
            );
        }
    }

    #[test]
    fn string_round_trips_through_emitter() {
        for text in [
            "plain",
            "with \"quotes\" and \\",
            "ctrl \u{1} tab\t",
            "café",
        ] {
            let mut doc = String::new();
            append_json_string(&mut doc, text);
            check_json(&doc).unwrap();
            assert_eq!(parse_json(&doc).unwrap().as_str(), Some(text));
        }
    }
}
