//! Operational counters for the serving infrastructure.
//!
//! The rest of this crate observes the *simulation* (simulated time,
//! transactions). This module observes the *infrastructure that runs
//! simulations*: worker respawns, job retries, deadline cancellations,
//! shed submissions. These are wall-clock-world events, so unlike trace
//! spans they are thread-safe and unkeyed.
//!
//! [`OpsCounters`] is a cheap, cloneable handle: named monotonic
//! counters plus a bounded ring of recent annotated events (the last
//! [`EVENT_RING`] `note`s), so a `stats` response can show not just
//! *how many* workers were respawned but *why* the recent ones were.

use std::collections::{BTreeMap, VecDeque};
use std::sync::{Arc, Mutex};

/// Capacity of the recent-event ring; older events are dropped.
pub const EVENT_RING: usize = 256;

/// One annotated counter bump retained in the event ring.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpsEvent {
    /// The counter that was bumped.
    pub counter: String,
    /// Human-readable context ("worker 2 respawned after panic", …).
    pub detail: String,
}

#[derive(Default)]
struct OpsInner {
    counters: BTreeMap<String, u64>,
    events: VecDeque<OpsEvent>,
}

/// Shared, thread-safe named counters with a bounded event ring.
/// Clones share state.
#[derive(Clone, Default)]
pub struct OpsCounters {
    inner: Arc<Mutex<OpsInner>>,
}

impl OpsCounters {
    /// Creates an empty counter set.
    pub fn new() -> Self {
        OpsCounters::default()
    }

    /// Adds `n` to `name` (creating it at 0) and returns the new value.
    pub fn add(&self, name: &str, n: u64) -> u64 {
        let mut inner = self.inner.lock().expect("ops lock poisoned");
        let slot = inner.counters.entry(name.to_string()).or_insert(0);
        *slot += n;
        *slot
    }

    /// Increments `name` by one and returns the new value.
    pub fn incr(&self, name: &str) -> u64 {
        self.add(name, 1)
    }

    /// Increments `name` and retains `detail` in the bounded event ring.
    pub fn note(&self, name: &str, detail: impl Into<String>) -> u64 {
        let mut inner = self.inner.lock().expect("ops lock poisoned");
        let slot = inner.counters.entry(name.to_string()).or_insert(0);
        *slot += 1;
        let value = *slot;
        if inner.events.len() == EVENT_RING {
            inner.events.pop_front();
        }
        inner.events.push_back(OpsEvent {
            counter: name.to_string(),
            detail: detail.into(),
        });
        value
    }

    /// Current value of `name` (0 when never bumped).
    pub fn get(&self, name: &str) -> u64 {
        self.inner
            .lock()
            .expect("ops lock poisoned")
            .counters
            .get(name)
            .copied()
            .unwrap_or(0)
    }

    /// All counters, sorted by name.
    pub fn snapshot(&self) -> Vec<(String, u64)> {
        self.inner
            .lock()
            .expect("ops lock poisoned")
            .counters
            .iter()
            .map(|(k, v)| (k.clone(), *v))
            .collect()
    }

    /// The retained recent events, oldest first.
    pub fn recent_events(&self) -> Vec<OpsEvent> {
        self.inner
            .lock()
            .expect("ops lock poisoned")
            .events
            .iter()
            .cloned()
            .collect()
    }

    /// Renders the counters as a compact JSON object (`{}` when empty),
    /// keys in sorted order — deterministic given the same counts.
    pub fn to_json(&self) -> String {
        let snap = self.snapshot();
        let mut out = String::from("{");
        for (i, (name, value)) in snap.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            crate::append_json_string(&mut out, name);
            out.push_str(&format!(": {value}"));
        }
        out.push('}');
        out
    }
}

impl std::fmt::Debug for OpsCounters {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "OpsCounters{}", self.to_json())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_snapshot_sorted() {
        let ops = OpsCounters::new();
        assert_eq!(ops.incr("b.retries"), 1);
        assert_eq!(ops.add("a.sheds", 2), 2);
        assert_eq!(ops.incr("b.retries"), 2);
        assert_eq!(ops.get("b.retries"), 2);
        assert_eq!(ops.get("missing"), 0);
        assert_eq!(
            ops.snapshot(),
            vec![("a.sheds".to_string(), 2), ("b.retries".to_string(), 2)]
        );
        assert_eq!(ops.to_json(), r#"{"a.sheds": 2, "b.retries": 2}"#);
    }

    #[test]
    fn clones_share_state() {
        let ops = OpsCounters::new();
        let handle = ops.clone();
        handle.incr("x");
        assert_eq!(ops.get("x"), 1);
    }

    #[test]
    fn event_ring_is_bounded() {
        let ops = OpsCounters::new();
        for i in 0..(EVENT_RING + 10) {
            ops.note("respawns", format!("worker {i}"));
        }
        let events = ops.recent_events();
        assert_eq!(events.len(), EVENT_RING);
        assert_eq!(
            events.last().unwrap().detail,
            format!("worker {}", EVENT_RING + 9)
        );
        assert_eq!(ops.get("respawns"), (EVENT_RING + 10) as u64);
    }

    #[test]
    fn empty_counters_render_as_empty_object() {
        assert_eq!(OpsCounters::new().to_json(), "{}");
    }
}
