//! Aggregation: recomputing utilization figures from recorded spans.
//!
//! This deliberately re-implements the windowing and normalization
//! rules of `tve_tlm::UtilizationMonitor` over [`SpanRecord`]s, so a
//! tier-2 test can cross-check the two paths against each other: if
//! either side double-counts or misses a transfer, the figures diverge.

use std::collections::BTreeMap;

use tve_sim::Time;

use crate::span::SpanRecord;

/// Utilization figures recomputed from spans; field-for-field
/// comparable with `UtilizationMonitor` output.
#[derive(Debug, Clone, PartialEq)]
pub struct UtilizationSummary {
    /// The peak-detection window length in cycles.
    pub window: u64,
    /// Sum of span durations in cycles.
    pub total_busy: u64,
    /// Number of spans aggregated.
    pub transfers: u64,
    /// End of the observation span in cycles (max of the supplied
    /// `observed_end` and every span end).
    pub observed_end: u64,
    /// Busy cycles attributed per initiator id (sorted by id; spans
    /// without an initiator are attributed to id 255).
    pub per_initiator: Vec<(u8, u64)>,
    /// Per-window busy cycles `(window index, busy cycles)`, sorted;
    /// windows with no activity are absent.
    pub window_busy: Vec<(u64, u64)>,
}

impl UtilizationSummary {
    /// The busiest window's busy fraction in `[0, 1]`, normalizing the
    /// final partial window by the observed span — the exact rule of
    /// `UtilizationMonitor::peak_utilization`.
    pub fn peak(&self) -> f64 {
        let last = self.observed_end;
        self.window_busy
            .iter()
            .map(|&(w, busy)| {
                let start = w * self.window;
                let len = last.saturating_sub(start).min(self.window).max(1);
                busy as f64 / len as f64
            })
            .fold(0.0, f64::max)
    }

    /// Busy fraction over `[0, observed_end)`; zero for an empty span —
    /// the exact rule of `UtilizationMonitor::average_utilization`.
    pub fn average(&self) -> f64 {
        if self.observed_end == 0 {
            return 0.0;
        }
        self.total_busy as f64 / self.observed_end as f64
    }
}

/// Recomputes windowed utilization from spans, with the same interval
/// splitting as `UtilizationMonitor::record_busy`.
///
/// The caller picks which spans to feed (typically the
/// [`SpanKind::Transfer`](crate::SpanKind::Transfer) spans of one
/// channel track) and supplies the peak-detection `window` and the
/// simulated `observed_end` of the run.
///
/// ```
/// use tve_obs::{utilization_from_spans, SpanKind, SpanRecord};
/// use tve_sim::Time;
///
/// let spans = [SpanRecord::new(
///     SpanKind::Transfer,
///     "bus",
///     "write",
///     Time::from_cycles(0),
///     Time::from_cycles(50),
/// )
/// .with_initiator(0)];
/// let u = utilization_from_spans(spans.iter(), 100, Time::from_cycles(100));
/// assert_eq!(u.total_busy, 50);
/// assert_eq!(u.peak(), 0.5);
/// assert_eq!(u.average(), 0.5);
/// ```
///
/// # Panics
///
/// Panics if `window` is zero.
pub fn utilization_from_spans<'a>(
    spans: impl IntoIterator<Item = &'a SpanRecord>,
    window: u64,
    observed_end: Time,
) -> UtilizationSummary {
    assert!(window > 0, "window must be non-empty");
    let mut windows: BTreeMap<u64, u64> = BTreeMap::new();
    let mut per_initiator: BTreeMap<u8, u64> = BTreeMap::new();
    let mut total_busy = 0u64;
    let mut transfers = 0u64;
    let mut last_end = observed_end.cycles();

    for span in spans {
        let mut t = span.start.cycles();
        let end = t + span.duration().as_cycles();
        transfers += 1;
        total_busy += span.duration().as_cycles();
        *per_initiator
            .entry(span.initiator.unwrap_or(u8::MAX))
            .or_insert(0) += span.duration().as_cycles();
        while t < end {
            let w = t / window;
            let wend = (w + 1) * window;
            let chunk = end.min(wend) - t;
            *windows.entry(w).or_insert(0) += chunk;
            t += chunk;
        }
        last_end = last_end.max(end);
    }

    UtilizationSummary {
        window,
        total_busy,
        transfers,
        observed_end: last_end,
        per_initiator: per_initiator.into_iter().collect(),
        window_busy: windows.into_iter().collect(),
    }
}

/// The earliest end time among spans of `kind` whose name is in `names`,
/// or `None` if no span matches.
///
/// This is the time-to-detection primitive of a fault-injection campaign:
/// feed it the `Test` spans of a traced schedule run and the names of the
/// tests whose outcome deviated from the golden run, and it returns the
/// simulated time at which the first deviating test *completed* — the
/// earliest moment the tester could have flagged the defect.
///
/// ```
/// use tve_obs::{earliest_span_end, SpanKind, SpanRecord};
/// use tve_sim::Time;
///
/// let spans = [
///     SpanRecord::new(SpanKind::Test, "tests", "t1", Time::ZERO, Time::from_cycles(80)),
///     SpanRecord::new(SpanKind::Test, "tests", "t2", Time::ZERO, Time::from_cycles(50)),
/// ];
/// let t = earliest_span_end(spans.iter(), SpanKind::Test, &["t2"]);
/// assert_eq!(t, Some(Time::from_cycles(50)));
/// ```
pub fn earliest_span_end<'a>(
    spans: impl IntoIterator<Item = &'a SpanRecord>,
    kind: crate::SpanKind,
    names: &[&str],
) -> Option<Time> {
    spans
        .into_iter()
        .filter(|s| s.kind == kind && names.iter().any(|n| s.name == *n))
        .map(|s| s.end)
        .min()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::SpanKind;

    fn span(start: u64, end: u64, initiator: u8) -> SpanRecord {
        SpanRecord::new(
            SpanKind::Transfer,
            "bus",
            "xfer",
            Time::from_cycles(start),
            Time::from_cycles(end),
        )
        .with_initiator(initiator)
    }

    #[test]
    fn empty_input_reports_zero() {
        let u = utilization_from_spans([].iter(), 100, Time::ZERO);
        assert_eq!(u.peak(), 0.0);
        assert_eq!(u.average(), 0.0);
        assert_eq!(u.transfers, 0);
    }

    #[test]
    fn splits_across_windows_like_the_monitor() {
        // [5, 25) with window 10: windows 0 gets 5, 1 gets 10, 2 gets 5.
        let spans = [span(5, 25, 0)];
        let u = utilization_from_spans(spans.iter(), 10, Time::from_cycles(25));
        assert_eq!(u.window_busy, vec![(0, 5), (1, 10), (2, 5)]);
        assert_eq!(u.peak(), 1.0);
        assert_eq!(u.total_busy, 20);
    }

    #[test]
    fn final_partial_window_normalized_by_observed_span() {
        let spans = [span(900, 960, 0)];
        let at_end = utilization_from_spans(spans.iter(), 100, Time::from_cycles(960));
        assert_eq!(at_end.peak(), 1.0);
        let idle_tail = utilization_from_spans(spans.iter(), 100, Time::from_cycles(1000));
        assert!((idle_tail.peak() - 0.6).abs() < 1e-12);
    }

    #[test]
    fn earliest_span_end_filters_kind_and_name() {
        let mk = |kind, name: &str, end| {
            SpanRecord::new(kind, "tests", name, Time::ZERO, Time::from_cycles(end))
        };
        let spans = [
            mk(SpanKind::Test, "a", 100),
            mk(SpanKind::Test, "b", 40),
            mk(SpanKind::Phase, "b", 10), // wrong kind, ignored
            mk(SpanKind::Test, "c", 20),  // name not requested
        ];
        assert_eq!(
            earliest_span_end(spans.iter(), SpanKind::Test, &["a", "b"]),
            Some(Time::from_cycles(40))
        );
        assert_eq!(
            earliest_span_end(spans.iter(), SpanKind::Test, &["z"]),
            None
        );
        assert_eq!(earliest_span_end([].iter(), SpanKind::Test, &["a"]), None);
    }

    #[test]
    fn per_initiator_sums_match_total() {
        let spans = [span(0, 30, 1), span(30, 50, 2), span(50, 60, 1)];
        let u = utilization_from_spans(spans.iter(), 100, Time::from_cycles(60));
        assert_eq!(u.per_initiator, vec![(1, 40), (2, 20)]);
        let sum: u64 = u.per_initiator.iter().map(|&(_, b)| b).sum();
        assert_eq!(sum, u.total_busy);
    }
}
