//! Self-validating append-only record journals.
//!
//! A journal is the crash-safe spine of a resumable computation: every
//! completed unit of work appends one record, and after a kill the
//! journal's valid prefix is exactly the work that does not have to be
//! redone. Records are one line each:
//!
//! ```text
//! <16 lowercase hex digits of FNV-1a over the payload> <payload JSON>\n
//! ```
//!
//! The payload is compact single-line JSON written and read with this
//! crate's serde-free [`parse_json`]/[`append_json_string`] machinery —
//! no new dependencies. The checksum prefix makes every record
//! *self-validating*: a truncated tail (the normal artifact of
//! `SIGKILL` mid-append), a flipped bit, or any other corruption is
//! detected on read and reported as a [`JournalDefect`] — never
//! silently absorbed. Reading stops at the first defective record; the
//! valid prefix is returned, and the defect names the line, the reason
//! and how many subsequent lines were dropped with it.

use std::fs::{File, OpenOptions};
use std::io::{self, Write};
use std::path::Path;

use crate::faultio::IoPolicy;
use crate::json::{parse_json, JsonValue};

/// FNV-1a over `bytes` — the workspace's standard 64-bit digest.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h = (h ^ b as u64).wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// An append-only journal writer. Every [`append`](Journal::append) is
/// issued as a single `write` call and flushed to the operating system
/// before returning — flush-before-ack — so a `SIGKILL` or disk-full
/// between appends loses at most the record being written, which the
/// reader then detects as a truncated tail.
///
/// All writes route through an [`IoPolicy`] (a no-op by default), so
/// durability tests can inject short writes and ENOSPC on the real
/// write path instead of mutilating the file afterwards.
pub struct Journal {
    out: Box<dyn Write + Send>,
}

fn ensure_parent(path: &Path) -> io::Result<()> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    Ok(())
}

impl Journal {
    /// Creates (truncating) a journal at `path`.
    ///
    /// # Errors
    ///
    /// Propagates file-creation errors.
    pub fn create(path: impl AsRef<Path>) -> io::Result<Self> {
        Self::create_with(path, &IoPolicy::default())
    }

    /// [`create`](Journal::create) with writes routed through `policy`.
    ///
    /// # Errors
    ///
    /// Propagates file-creation errors.
    pub fn create_with(path: impl AsRef<Path>, policy: &IoPolicy) -> io::Result<Self> {
        ensure_parent(path.as_ref())?;
        Ok(Journal {
            out: Box::new(policy.wrap(File::create(path)?)),
        })
    }

    /// Opens `path` for appending (creating it when missing).
    ///
    /// # Errors
    ///
    /// Propagates file-open errors.
    pub fn append_to(path: impl AsRef<Path>) -> io::Result<Self> {
        Self::append_to_with(path, &IoPolicy::default())
    }

    /// [`append_to`](Journal::append_to) with writes routed through
    /// `policy`.
    ///
    /// # Errors
    ///
    /// Propagates file-open errors.
    pub fn append_to_with(path: impl AsRef<Path>, policy: &IoPolicy) -> io::Result<Self> {
        ensure_parent(path.as_ref())?;
        Ok(Journal {
            out: Box::new(policy.wrap(OpenOptions::new().create(true).append(true).open(path)?)),
        })
    }

    /// Wraps an arbitrary sink (tests, in-memory journals).
    pub fn from_sink(sink: Box<dyn Write + Send>) -> Self {
        Journal { out: sink }
    }

    /// Appends one record and flushes it. `payload` must be single-line
    /// JSON (the caller builds it with [`append_json_string`] and
    /// friends); a payload containing a newline is rejected because it
    /// would corrupt the line framing.
    ///
    /// The full `checksum payload\n` line is issued as one `write`
    /// call, then flushed, so the record either reaches the OS whole or
    /// the caller gets the error — there is no buffered half-record
    /// acknowledged as written.
    ///
    /// # Errors
    ///
    /// `InvalidInput` for a payload with a newline, otherwise I/O
    /// errors from the underlying file.
    ///
    /// [`append_json_string`]: crate::append_json_string
    pub fn append(&mut self, payload: &str) -> io::Result<()> {
        if payload.contains('\n') {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "journal records must be single-line JSON",
            ));
        }
        let line = format!("{:016x} {payload}\n", fnv1a(payload.as_bytes()));
        self.out.write_all(line.as_bytes())?;
        self.out.flush()
    }
}

/// Why (and where) journal reading stopped early.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JournalDefect {
    /// 1-based line number of the first defective record.
    pub line: usize,
    /// What was wrong with it.
    pub reason: String,
    /// How many lines (the defective one included) were dropped.
    pub dropped: usize,
}

impl std::fmt::Display for JournalDefect {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "journal line {}: {} ({} record(s) dropped)",
            self.line, self.reason, self.dropped
        )
    }
}

/// The readable contents of a journal: the valid record prefix, plus
/// the defect that ended reading, if any.
#[derive(Debug)]
pub struct JournalContents {
    /// Parsed payloads of every valid record, in append order.
    pub records: Vec<JsonValue>,
    /// The first defective record, when the journal is damaged or was
    /// truncated by a kill. `None` for a fully valid journal.
    pub defect: Option<JournalDefect>,
}

/// Reads and validates the journal at `path`. Corruption is never an
/// `Err`: the valid prefix always comes back, with the defect reported
/// alongside so the caller can surface it.
///
/// # Errors
///
/// Only I/O errors (missing file, permissions). Checksum and format
/// violations are reported via [`JournalContents::defect`].
pub fn read_journal(path: impl AsRef<Path>) -> io::Result<JournalContents> {
    let text = std::fs::read_to_string(path)?;
    Ok(parse_journal(&text))
}

/// [`read_journal`] over in-memory text (exposed for tests and for
/// callers that already hold the bytes).
pub fn parse_journal(text: &str) -> JournalContents {
    let mut records = Vec::new();
    let mut lines: Vec<&str> = text.split('\n').collect();
    // `split` yields one trailing empty fragment when the text ends in
    // '\n' (the well-formed case). A non-empty final fragment is a
    // record that never got its newline: the truncated-tail artifact.
    let truncated_tail = match lines.last() {
        Some(&"") => {
            lines.pop();
            false
        }
        Some(_) => true,
        None => false,
    };
    let total = lines.len();
    for (i, line) in lines.iter().enumerate() {
        let last = i + 1 == total;
        let defect = |reason: String| {
            Some(JournalDefect {
                line: i + 1,
                reason,
                dropped: total - i,
            })
        };
        if last && truncated_tail {
            return JournalContents {
                records,
                defect: defect(format!(
                    "truncated record (no trailing newline, {} bytes)",
                    line.len()
                )),
            };
        }
        let (crc_text, payload) = match line.split_once(' ') {
            Some(parts) if parts.0.len() == 16 => parts,
            _ => {
                return JournalContents {
                    records,
                    defect: defect("malformed record framing (want '<16-hex> <json>')".into()),
                }
            }
        };
        let Ok(crc) = u64::from_str_radix(crc_text, 16) else {
            return JournalContents {
                records,
                defect: defect(format!("non-hex checksum {crc_text:?}")),
            };
        };
        let actual = fnv1a(payload.as_bytes());
        if crc != actual {
            return JournalContents {
                records,
                defect: defect(format!(
                    "checksum mismatch (recorded {crc:016x}, payload digests to {actual:016x})"
                )),
            };
        }
        match parse_json(payload) {
            Ok(value) => records.push(value),
            Err(e) => {
                return JournalContents {
                    records,
                    defect: defect(format!("checksummed payload is not valid JSON: {e}")),
                }
            }
        }
    }
    JournalContents {
        records,
        defect: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("tve-obs-journal-{tag}-{}.tvj", std::process::id()))
    }

    #[test]
    fn round_trips_records() {
        let path = temp_path("roundtrip");
        let mut journal = Journal::create(&path).unwrap();
        journal.append(r#"{"kind":"header","n":3}"#).unwrap();
        journal.append(r#"{"kind":"cell","index":0}"#).unwrap();
        drop(journal);
        // Re-open for append, like a resumed process would.
        let mut journal = Journal::append_to(&path).unwrap();
        journal.append(r#"{"kind":"cell","index":1}"#).unwrap();
        drop(journal);

        let contents = read_journal(&path).unwrap();
        assert!(contents.defect.is_none());
        assert_eq!(contents.records.len(), 3);
        assert_eq!(
            contents.records[2].get("index").and_then(JsonValue::as_u64),
            Some(1)
        );
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn truncated_tail_is_reported_not_absorbed() {
        let path = temp_path("truncated");
        let mut journal = Journal::create(&path).unwrap();
        journal.append(r#"{"kind":"cell","index":0}"#).unwrap();
        journal.append(r#"{"kind":"cell","index":1}"#).unwrap();
        drop(journal);
        let mut bytes = std::fs::read(&path).unwrap();
        bytes.truncate(bytes.len() - 7); // mid-record, newline gone
        std::fs::write(&path, &bytes).unwrap();

        let contents = read_journal(&path).unwrap();
        assert_eq!(contents.records.len(), 1, "valid prefix survives");
        let defect = contents.defect.expect("truncation must be reported");
        assert_eq!(defect.line, 2);
        assert!(defect.reason.contains("truncated"), "{defect}");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn bit_flip_is_detected_and_drops_the_rest() {
        let path = temp_path("bitflip");
        let mut journal = Journal::create(&path).unwrap();
        for i in 0..3 {
            journal.append(&format!(r#"{{"index":{i}}}"#)).unwrap();
        }
        drop(journal);
        let mut bytes = std::fs::read(&path).unwrap();
        // Flip a payload bit inside record 2 (line 2), past its checksum.
        let line_len = bytes.len() / 3;
        bytes[line_len + 20] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();

        let contents = parse_journal(&String::from_utf8(bytes).unwrap());
        assert_eq!(contents.records.len(), 1);
        let defect = contents.defect.expect("bit flip must be reported");
        assert_eq!((defect.line, defect.dropped), (2, 2));
        assert!(defect.reason.contains("checksum mismatch"), "{defect}");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn framing_and_json_violations_are_defects() {
        let bad_framing = "zzzz {\"a\":1}\n";
        let contents = parse_journal(bad_framing);
        assert!(contents.records.is_empty());
        assert!(contents.defect.unwrap().reason.contains("framing"));

        let payload = "{\"a\":"; // valid checksum over invalid JSON
        let line = format!("{:016x} {payload}\n", fnv1a(payload.as_bytes()));
        let contents = parse_journal(&line);
        assert!(contents.defect.unwrap().reason.contains("not valid JSON"));

        assert!(parse_journal("").defect.is_none());
    }

    #[test]
    fn short_write_injection_leaves_a_detectable_torn_tail() {
        use crate::faultio::{IoPolicy, WriteFault};
        let path = temp_path("shortwrite");
        let policy = IoPolicy::new();
        // Each append is exactly one write; tear the second record after
        // 9 bytes (inside its checksum prefix).
        policy.fail_nth_write(2, WriteFault::Short { keep: 9 });
        let mut journal = Journal::create_with(&path, &policy).unwrap();
        journal.append(r#"{"index":0}"#).unwrap();
        let err = journal.append(r#"{"index":1}"#).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::StorageFull);
        drop(journal);

        let contents = read_journal(&path).unwrap();
        assert_eq!(contents.records.len(), 1, "valid prefix survives");
        let defect = contents.defect.expect("torn tail must be reported");
        assert_eq!(defect.line, 2);
        assert!(defect.reason.contains("truncated"), "{defect}");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn enospc_injection_fails_cleanly_at_a_record_boundary() {
        use crate::faultio::{IoPolicy, WriteFault};
        let path = temp_path("enospc");
        let policy = IoPolicy::new();
        policy.fail_nth_write(2, WriteFault::Enospc);
        let mut journal = Journal::create_with(&path, &policy).unwrap();
        journal.append(r#"{"index":0}"#).unwrap();
        let err = journal.append(r#"{"index":1}"#).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::StorageFull);
        drop(journal);

        // Nothing of the failed record reached the file: no defect.
        let contents = read_journal(&path).unwrap();
        assert_eq!(contents.records.len(), 1);
        assert!(contents.defect.is_none());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn multiline_payloads_are_rejected() {
        let path = temp_path("multiline");
        let mut journal = Journal::create(&path).unwrap();
        let err = journal.append("{\n}").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
        std::fs::remove_file(&path).unwrap();
    }
}
