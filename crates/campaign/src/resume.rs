//! Journaled checkpoint/resume: a killed campaign finishes later with a
//! byte-identical artifact.
//!
//! [`run_campaign_journaled`] wraps [`run_campaign_shard`]'s work in an
//! append-only journal of self-validating records (the `tve-obs`
//! [`Journal`] format): a header naming the campaign fingerprint, one
//! record per completed cell, one per completed diagnosis check. Cells
//! are simulated in worker-sized batches and journaled after each
//! batch, so a `SIGKILL` loses at most one in-flight batch — on the
//! next invocation the valid journal prefix is reused, only the missing
//! cells are simulated, and the assembled report is *identical* to an
//! uninterrupted run: the matrix content is a pure function of the
//! configuration, so it cannot matter which process computed which
//! cell.
//!
//! Damage is never silently absorbed. A truncated or bit-flipped record
//! invalidates the journal from that line on (see
//! [`tve_obs::parse_journal`]); the defect is surfaced in the returned
//! [`ResumeSummary`], the journal file is truncated back to its valid
//! prefix, and the dropped cells are simply resimulated. A journal
//! whose header carries a different fingerprint — a different SoC,
//! plan, schedule set, population or diagnosis configuration, or a
//! different build — is a hard error, because its records describe a
//! different matrix.

use std::collections::BTreeMap;
use std::path::Path;

use tve_obs::{parse_journal, IoPolicy, Journal, JournalDefect, JsonValue};
use tve_sched::Farm;

use crate::engine::{diagnose_scan_fault, run_cell, CampaignConfig};
use crate::fault::FaultSpec;
use crate::matrix::{CellOutcome, CellResult, DiagnosisCheck};
use crate::shard::{
    campaign_fingerprint, effective_schedules, golden_baselines, ShardReport, ShardSpec,
};
use crate::wire::{
    append_cell_result, append_diagnosis, cell_result_from_json, diagnosis_from_json,
};

/// What a journaled run reused versus recomputed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResumeSummary {
    /// Cells taken from the journal's valid prefix.
    pub resumed_cells: usize,
    /// Cells simulated (and journaled) by this invocation.
    pub simulated_cells: usize,
    /// Diagnosis checks taken from the journal.
    pub resumed_diagnosis: usize,
    /// Diagnosis checks run by this invocation.
    pub simulated_diagnosis: usize,
    /// The defect that ended the journal's valid prefix, if the file
    /// was damaged or truncated. The dropped records were resimulated;
    /// this field exists so the damage is *reported*, never absorbed.
    pub defect: Option<JournalDefect>,
}

fn header_payload(fingerprint: u64, shard: ShardSpec, total_cells: usize) -> String {
    format!(
        "{{\"kind\":\"header\",\"version\":1,\"fingerprint\":\"{fingerprint:016x}\",\
         \"shard\":\"{shard}\",\"total_cells\":{total_cells}}}"
    )
}

fn cell_payload(index: usize, cell: &CellResult) -> String {
    let mut out = format!("{{\"kind\":\"cell\",\"index\":{index},\"cell\":");
    append_cell_result(&mut out, cell);
    out.push('}');
    out
}

fn diag_payload(check: &DiagnosisCheck) -> String {
    let mut out = String::from("{\"kind\":\"diag\",\"check\":");
    append_diagnosis(&mut out, check);
    out.push('}');
    out
}

/// The journal's valid prefix, decoded against this campaign.
struct ResumedState {
    cells: BTreeMap<usize, CellResult>,
    diagnosis: BTreeMap<String, DiagnosisCheck>,
    defect: Option<JournalDefect>,
}

/// Reads `path` (which must exist), validates the header against this
/// campaign, truncates the file back to its valid prefix when damaged,
/// and decodes the surviving records.
fn load_journal(
    path: &Path,
    fingerprint: u64,
    shard: ShardSpec,
    total_cells: usize,
) -> Result<ResumedState, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read journal {}: {e}", path.display()))?;
    let contents = parse_journal(&text);
    if let Some(defect) = &contents.defect {
        // Cut the damage out of the file so this run's appends land on
        // a valid prefix. The byte length of the first `line - 1` lines
        // (newlines included) is exactly where the defect begins.
        let keep: usize = text
            .split_inclusive('\n')
            .take(defect.line - 1)
            .map(str::len)
            .sum();
        std::fs::write(path, &text[..keep])
            .map_err(|e| format!("cannot truncate damaged journal {}: {e}", path.display()))?;
    }
    let mut records = contents.records.iter();
    let header = records
        .next()
        .ok_or_else(|| format!("journal {} has no valid header record", path.display()))?;
    if header.get("kind").and_then(JsonValue::as_str) != Some("header")
        || header.get("version").and_then(JsonValue::as_u64) != Some(1)
    {
        return Err(format!(
            "journal {} does not start with a v1 campaign header",
            path.display()
        ));
    }
    let journal_fp = header
        .get("fingerprint")
        .and_then(JsonValue::as_str)
        .and_then(|s| u64::from_str_radix(s, 16).ok())
        .ok_or("journal header missing hex field 'fingerprint'")?;
    if journal_fp != fingerprint {
        return Err(format!(
            "journal {} was written by a different campaign: fingerprint {journal_fp:016x}, \
             this configuration is {fingerprint:016x} — refusing to mix matrices",
            path.display()
        ));
    }
    let journal_shard = ShardSpec::parse(
        header
            .get("shard")
            .and_then(JsonValue::as_str)
            .ok_or("journal header missing field 'shard'")?,
    )?;
    if journal_shard != shard {
        return Err(format!(
            "journal {} belongs to shard {journal_shard}, this run is shard {shard}",
            path.display()
        ));
    }
    let mut cells = BTreeMap::new();
    let mut diagnosis = BTreeMap::new();
    for record in records {
        match record.get("kind").and_then(JsonValue::as_str) {
            Some("cell") => {
                let index = record
                    .get("index")
                    .and_then(JsonValue::as_u64)
                    .ok_or("cell record missing 'index'")? as usize;
                if index >= total_cells || !shard.owns(index) {
                    return Err(format!(
                        "journal cell {index} is outside shard {shard}'s slice of the \
                         {total_cells}-cell matrix"
                    ));
                }
                let cell =
                    cell_result_from_json(record.get("cell").ok_or("cell record missing 'cell'")?)?;
                if cells.insert(index, cell).is_some() {
                    return Err(format!("journal records cell {index} twice"));
                }
            }
            Some("diag") => {
                let check =
                    diagnosis_from_json(record.get("check").ok_or("diag record missing 'check'")?)?;
                if diagnosis.insert(check.fault_id.clone(), check).is_some() {
                    return Err("journal records a diagnosis twice".into());
                }
            }
            other => return Err(format!("unknown journal record kind {other:?}")),
        }
    }
    Ok(ResumedState {
        cells,
        diagnosis,
        defect: contents.defect,
    })
}

/// Runs (or resumes) one shard of the campaign with a checkpoint
/// journal at `path`.
///
/// When `path` does not exist, the journal is created and the shard
/// runs from scratch, checkpointing as it goes. When it exists, its
/// valid records are reused and only the missing cells and diagnosis
/// checks are simulated. Either way the returned report — and therefore
/// the merged campaign artifact — is byte-identical to an uninterrupted
/// [`crate::run_campaign_shard`] of the same configuration.
///
/// # Errors
///
/// I/O failures, a journal written by a different campaign
/// configuration or shard, or semantically invalid (though
/// checksum-valid) records. Checksum damage is *not* an error — see
/// [`ResumeSummary::defect`].
///
/// # Panics
///
/// Same conditions as [`crate::run_campaign_shard`] (golden-baseline
/// failures).
pub fn run_campaign_journaled(
    config: &CampaignConfig,
    farm: &Farm,
    shard: ShardSpec,
    path: impl AsRef<Path>,
) -> Result<(ShardReport, ResumeSummary), String> {
    run_campaign_journaled_with_io(config, farm, shard, path, &IoPolicy::default())
}

/// [`run_campaign_journaled`] with journal writes routed through an
/// explicit [`IoPolicy`].
///
/// This is the injectable-io seam the resilience harness uses to tear
/// journal records *on the write path* (short write, ENOSPC) instead of
/// truncating the file afterwards: a failed append surfaces as a typed
/// error from this function — never a silently absorbed partial record —
/// and the next run recovers the valid prefix.
///
/// # Errors
///
/// As [`run_campaign_journaled`], plus whatever faults `policy` injects.
///
/// # Panics
///
/// Same conditions as [`run_campaign_journaled`].
pub fn run_campaign_journaled_with_io(
    config: &CampaignConfig,
    farm: &Farm,
    shard: ShardSpec,
    path: impl AsRef<Path>,
    policy: &IoPolicy,
) -> Result<(ShardReport, ResumeSummary), String> {
    let path = path.as_ref();
    let fingerprint = campaign_fingerprint(config);
    let (schedules, prescreened) = effective_schedules(config);
    let config = &CampaignConfig {
        schedules,
        ..config.clone()
    };
    let schedule_count = config.schedules.len();
    let total_cells = config.population.len() * schedule_count;

    let (mut state, mut journal) = if path.exists() {
        let state = load_journal(path, fingerprint, shard, total_cells)?;
        let journal = Journal::append_to_with(path, policy)
            .map_err(|e| format!("cannot append to journal {}: {e}", path.display()))?;
        (state, journal)
    } else {
        let mut journal = Journal::create_with(path, policy)
            .map_err(|e| format!("cannot create journal {}: {e}", path.display()))?;
        journal
            .append(&header_payload(fingerprint, shard, total_cells))
            .map_err(|e| format!("cannot write journal header: {e}"))?;
        (
            ResumedState {
                cells: BTreeMap::new(),
                diagnosis: BTreeMap::new(),
                defect: None,
            },
            journal,
        )
    };
    let resumed_cells = state.cells.len();
    let resumed_diagnosis = state.diagnosis.len();

    // Cells this shard owns but the journal does not yet record.
    let pending: Vec<(usize, usize, usize)> = (0..config.population.len())
        .flat_map(|f| (0..schedule_count).map(move |s| (f * schedule_count + s, f, s)))
        .filter(|&(index, _, _)| shard.owns(index) && !state.cells.contains_key(&index))
        .collect();

    if !pending.is_empty() {
        let mut needed: Vec<usize> = pending.iter().map(|&(_, _, s)| s).collect();
        needed.sort_unstable();
        needed.dedup();
        let needed_schedules: Vec<_> = needed
            .iter()
            .map(|&s| config.schedules[s].clone())
            .collect();
        let golden = golden_baselines(config, farm, &needed_schedules);

        // Worker-sized batches: the journal grows roughly once per
        // cell-duration, so a kill loses at most one batch of work.
        for batch in pending.chunks(farm.workers().max(1)) {
            let (outcomes, _, _) = farm.run_map(batch, |&(_, fi, si)| {
                let schedule = &config.schedules[si];
                run_cell(
                    &config.soc,
                    &config.plan,
                    schedule,
                    &config.population[fi],
                    &golden[&schedule.name],
                )
            });
            for (&(index, fi, si), (_, outcome)) in batch.iter().zip(outcomes) {
                let fault = &config.population[fi];
                let cell = CellResult {
                    fault_id: fault.id(),
                    fault_class: fault.class().to_string(),
                    schedule: config.schedules[si].name.clone(),
                    outcome: outcome
                        .unwrap_or_else(|panic_msg| CellOutcome::InfraFailure { error: panic_msg }),
                };
                journal
                    .append(&cell_payload(index, &cell))
                    .map_err(|e| format!("cannot journal cell {index}: {e}"))?;
                state.cells.insert(index, cell);
            }
        }
    }

    // Diagnosis for scan faults detected in this shard's (now complete)
    // cell set, skipping checks the journal already holds.
    let mut simulated_diagnosis = 0;
    if config.diagnosis {
        let pending_scan: Vec<_> = config
            .population
            .iter()
            .filter_map(|f| match f {
                FaultSpec::ScanCell { core, cell } => {
                    let id = f.id();
                    let detected = state.cells.values().any(|r| {
                        r.fault_id == id && matches!(r.outcome, CellOutcome::Detected { .. })
                    });
                    (detected && !state.diagnosis.contains_key(&id)).then_some((*core, *cell))
                }
                _ => None,
            })
            .collect();
        for batch in pending_scan.chunks(farm.workers().max(1)) {
            let (checks, _, _) = farm.run_map(batch, |&(core, cell)| {
                diagnose_scan_fault(config, core, cell)
            });
            for (_, check) in checks {
                let check = check.expect("diagnosis must not panic");
                journal
                    .append(&diag_payload(&check))
                    .map_err(|e| format!("cannot journal diagnosis: {e}"))?;
                state.diagnosis.insert(check.fault_id.clone(), check);
                simulated_diagnosis += 1;
            }
        }
    }

    let report = ShardReport {
        fingerprint,
        shard,
        total_cells,
        schedules: config.schedules.iter().map(|s| s.name.clone()).collect(),
        prescreened,
        cells: state.cells.into_iter().collect(),
        diagnosis: config
            .population
            .iter()
            .filter_map(|f| state.diagnosis.remove(&f.id()))
            .collect(),
    };
    let summary = ResumeSummary {
        resumed_cells,
        simulated_cells: report.cells.len() - resumed_cells,
        resumed_diagnosis,
        simulated_diagnosis,
        defect: state.defect,
    };
    Ok((report, summary))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn journal_payloads_are_single_line_and_parse() {
        let cell = CellResult {
            fault_id: "ring:break@0".into(),
            fault_class: "ring".into(),
            schedule: "s1".into(),
            outcome: CellOutcome::InfraFailure {
                error: "panicked:\nboom".into(),
            },
        };
        for payload in [
            header_payload(0xdead_beef, ShardSpec::full(), 12),
            cell_payload(3, &cell),
        ] {
            assert!(!payload.contains('\n'), "payload {payload:?}");
            tve_obs::check_json(&payload).expect("payload is well-formed JSON");
        }
        let v = tve_obs::parse_json(&cell_payload(3, &cell)).unwrap();
        assert_eq!(v.get("index").and_then(JsonValue::as_u64), Some(3));
        assert_eq!(cell_result_from_json(v.get("cell").unwrap()).unwrap(), cell);
    }
}
