//! Wire serialization of campaign results: [`CellResult`] and
//! [`DiagnosisCheck`] to and from compact JSON objects.
//!
//! Shard reports, resume journals and the `tve-serve` cache all need to
//! move completed cells between processes. They share this one encoding
//! (built on `tve-obs`'s serde-free JSON) so a cell that crossed a
//! process boundary is exactly the cell that was simulated: every
//! serializer here has a parser, and round-tripping is lossless —
//! `from(to(x)) == x` — which is what lets the scale-out paths promise
//! byte-identical artifacts.

use tve_core::{FailingCell, StuckCell};
use tve_obs::{append_json_string, JsonValue};
use tve_soc::WrappedCore;

use crate::matrix::{CellOutcome, CellResult, DiagnosisCheck};

/// Appends `cell` as a compact single-line JSON object.
pub fn append_cell_result(out: &mut String, cell: &CellResult) {
    out.push_str("{\"fault\":");
    append_json_string(out, &cell.fault_id);
    out.push_str(",\"class\":");
    append_json_string(out, &cell.fault_class);
    out.push_str(",\"schedule\":");
    append_json_string(out, &cell.schedule);
    out.push_str(",\"outcome\":");
    append_json_string(out, cell.outcome.tag());
    match &cell.outcome {
        CellOutcome::Detected {
            latency_cycles,
            deviating,
        } => {
            out.push_str(&format!(
                ",\"latency_cycles\":{latency_cycles},\"deviating\":["
            ));
            for (i, name) in deviating.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                append_json_string(out, name);
            }
            out.push(']');
        }
        CellOutcome::Escape => {}
        CellOutcome::InfraFailure { error } => {
            out.push_str(",\"error\":");
            append_json_string(out, error);
        }
    }
    out.push('}');
}

/// [`append_cell_result`] into a fresh string.
pub fn cell_result_to_json(cell: &CellResult) -> String {
    let mut out = String::new();
    append_cell_result(&mut out, cell);
    out
}

fn want_str(v: &JsonValue, key: &str, what: &str) -> Result<String, String> {
    v.get(key)
        .and_then(JsonValue::as_str)
        .map(str::to_string)
        .ok_or_else(|| format!("{what} record missing string field '{key}'"))
}

fn want_u64(v: &JsonValue, key: &str, what: &str) -> Result<u64, String> {
    v.get(key)
        .and_then(JsonValue::as_u64)
        .ok_or_else(|| format!("{what} record missing integer field '{key}'"))
}

fn want_u32(v: &JsonValue, key: &str, what: &str) -> Result<u32, String> {
    u32::try_from(want_u64(v, key, what)?)
        .map_err(|_| format!("{what} record field '{key}' overflows u32"))
}

fn want_bool(v: &JsonValue, key: &str, what: &str) -> Result<bool, String> {
    v.get(key)
        .and_then(JsonValue::as_bool)
        .ok_or_else(|| format!("{what} record missing boolean field '{key}'"))
}

/// Parses a [`CellResult`] from the object [`append_cell_result`] emits.
///
/// # Errors
///
/// A message naming the missing or malformed field.
pub fn cell_result_from_json(v: &JsonValue) -> Result<CellResult, String> {
    let outcome = match v.get("outcome").and_then(JsonValue::as_str) {
        Some("detected") => CellOutcome::Detected {
            latency_cycles: want_u64(v, "latency_cycles", "detected cell")?,
            deviating: v
                .get("deviating")
                .and_then(JsonValue::as_arr)
                .ok_or("detected cell record missing array field 'deviating'")?
                .iter()
                .map(|name| {
                    name.as_str()
                        .map(str::to_string)
                        .ok_or_else(|| "non-string entry in 'deviating'".to_string())
                })
                .collect::<Result<Vec<_>, _>>()?,
        },
        Some("escape") => CellOutcome::Escape,
        Some("infra-failure") => CellOutcome::InfraFailure {
            error: want_str(v, "error", "infra-failure cell")?,
        },
        other => return Err(format!("unknown cell outcome {other:?}")),
    };
    Ok(CellResult {
        fault_id: want_str(v, "fault", "cell")?,
        fault_class: want_str(v, "class", "cell")?,
        schedule: want_str(v, "schedule", "cell")?,
        outcome,
    })
}

/// Appends `check` as a compact single-line JSON object.
pub fn append_diagnosis(out: &mut String, check: &DiagnosisCheck) {
    out.push_str("{\"fault\":");
    append_json_string(out, &check.fault_id);
    out.push_str(",\"core\":");
    append_json_string(out, check.core.label());
    out.push_str(&format!(
        ",\"injected\":{{\"chain\":{},\"position\":{},\"value\":{}}},\"located\":[",
        check.injected.chain, check.injected.position, check.injected.value
    ));
    for (i, cell) in check.located.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"chain\":{},\"position\":{}}}",
            cell.chain, cell.position
        ));
    }
    out.push_str("],\"first_failing_pattern\":");
    match check.first_failing_pattern {
        Some(p) => out.push_str(&p.to_string()),
        None => out.push_str("null"),
    }
    out.push_str(&format!(",\"confirmed\":{}}}", check.confirmed));
}

/// [`append_diagnosis`] into a fresh string.
pub fn diagnosis_to_json(check: &DiagnosisCheck) -> String {
    let mut out = String::new();
    append_diagnosis(&mut out, check);
    out
}

/// The inverse of [`WrappedCore::label`].
fn core_from_label(label: &str) -> Result<WrappedCore, String> {
    match label {
        "proc" => Ok(WrappedCore::Processor),
        "color" => Ok(WrappedCore::ColorConversion),
        "dct" => Ok(WrappedCore::Dct),
        "mem" => Ok(WrappedCore::MemoryPeriphery),
        other => Err(format!("unknown core label {other:?}")),
    }
}

/// Parses a [`DiagnosisCheck`] from the object [`append_diagnosis`] emits.
///
/// # Errors
///
/// A message naming the missing or malformed field.
pub fn diagnosis_from_json(v: &JsonValue) -> Result<DiagnosisCheck, String> {
    let injected = v
        .get("injected")
        .ok_or("diagnosis record missing 'injected'")?;
    let located = v
        .get("located")
        .and_then(JsonValue::as_arr)
        .ok_or("diagnosis record missing array field 'located'")?
        .iter()
        .map(|cell| {
            Ok(FailingCell {
                chain: want_u32(cell, "chain", "located cell")?,
                position: want_u32(cell, "position", "located cell")?,
            })
        })
        .collect::<Result<Vec<_>, String>>()?;
    let first_failing_pattern = match v.get("first_failing_pattern") {
        None | Some(JsonValue::Null) => None,
        Some(p) => Some(
            p.as_u64()
                .ok_or("diagnosis record field 'first_failing_pattern' is not an integer")?,
        ),
    };
    Ok(DiagnosisCheck {
        fault_id: want_str(v, "fault", "diagnosis")?,
        core: core_from_label(&want_str(v, "core", "diagnosis")?)?,
        injected: StuckCell {
            chain: want_u32(injected, "chain", "injected cell")?,
            position: want_u32(injected, "position", "injected cell")?,
            value: want_bool(injected, "value", "injected cell")?,
        },
        located,
        first_failing_pattern,
        confirmed: want_bool(v, "confirmed", "diagnosis")?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use tve_obs::{check_json, parse_json};

    fn round_trip_cell(cell: &CellResult) {
        let json = cell_result_to_json(cell);
        check_json(&json).expect("cell JSON is well-formed");
        assert!(!json.contains('\n'), "cell JSON must be single-line");
        let back = cell_result_from_json(&parse_json(&json).unwrap()).unwrap();
        assert_eq!(&back, cell);
    }

    #[test]
    fn cell_results_round_trip() {
        round_trip_cell(&CellResult {
            fault_id: "scan:proc:c1p30s1".into(),
            fault_class: "scan-cell".into(),
            schedule: "schedule 1 (seq, \"quoted\")".into(),
            outcome: CellOutcome::Detected {
                latency_cycles: 123_456,
                deviating: vec!["T1 proc bist".into(), "T2 proc scan".into()],
            },
        });
        round_trip_cell(&CellResult {
            fault_id: "mem:stuck-at:a3b7".into(),
            fault_class: "memory".into(),
            schedule: "s2".into(),
            outcome: CellOutcome::Escape,
        });
        round_trip_cell(&CellResult {
            fault_id: "ring:break@0".into(),
            fault_class: "ring".into(),
            schedule: "s2".into(),
            outcome: CellOutcome::InfraFailure {
                error: "worker panicked:\n\"boom, with comma\"".into(),
            },
        });
    }

    #[test]
    fn diagnosis_round_trips() {
        for (pattern, located) in [
            (
                Some(3),
                vec![FailingCell {
                    chain: 0,
                    position: 1,
                }],
            ),
            (None, vec![]),
        ] {
            let check = DiagnosisCheck {
                fault_id: "scan:dct:c0p1s1".into(),
                core: WrappedCore::Dct,
                injected: StuckCell {
                    chain: 0,
                    position: 1,
                    value: true,
                },
                located,
                first_failing_pattern: pattern,
                confirmed: pattern.is_some(),
            };
            let json = diagnosis_to_json(&check);
            check_json(&json).expect("diagnosis JSON is well-formed");
            let back = diagnosis_from_json(&parse_json(&json).unwrap()).unwrap();
            assert_eq!(back, check);
        }
    }

    #[test]
    fn parsers_name_the_defective_field() {
        let v =
            parse_json(r#"{"fault":"f","class":"c","schedule":"s","outcome":"detected"}"#).unwrap();
        let err = cell_result_from_json(&v).unwrap_err();
        assert!(err.contains("latency_cycles"), "{err}");
        let v = parse_json(r#"{"outcome":"no-such-tag"}"#).unwrap();
        assert!(cell_result_from_json(&v).is_err());
        assert!(core_from_label("gpu").is_err());
    }
}
