//! Stratified fault sampling and the coverage-guided selector: spend a
//! bounded cell budget instead of enumerating the matrix, without ever
//! hiding what was skipped.
//!
//! Faults are grouped into *strata* — one per wrapped core for scan
//! cells (`scan-cell/proc`, `scan-cell/mem`, …), one per class
//! otherwise — because that is the granularity at which detection
//! behaves homogeneously: a schedule that scans a core tends to catch
//! all of its cells, and one that doesn't catches none.
//!
//! Two selectors share the machinery, both deterministic under a
//! pinned seed and both byte-identical for any `TVE_JOBS`:
//!
//! * [`run_sampled_campaign`] — proportional stratified sampling with a
//!   seeded confidence interval for the union core-fault coverage. The
//!   interval uses the finite-population correction per stratum, so a
//!   fully enumerated stratum contributes zero variance, and the
//!   variance term uses Laplace-smoothed proportions so an all-detected
//!   pilot cannot collapse the interval to a point.
//! * [`run_guided_campaign`] — a pilot per stratum, then greedy
//!   allocation of the remaining budget toward the stratum with the
//!   highest smoothed *escape* rate: simulation effort flows to where
//!   the schedules are weakest, which is how a 50 % budget can still
//!   recover the exhaustive run's full escape set.
//!
//! Every stratum appears in the report with its sampled *and* skipped
//! fault ids — a budget is a visible cut, never a silent cap.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use tve_obs::{append_json_string, fnv1a};
use tve_sched::Farm;

use crate::engine::{diagnose_scan_fault, run_cell, CampaignConfig};
use crate::fault::{FaultSpec, SplitMix};
use crate::matrix::{CampaignReport, CellOutcome, CellResult};
use crate::shard::{effective_schedules, golden_baselines};

/// The stratum a fault is sampled within.
pub fn stratum_of(fault: &FaultSpec) -> String {
    match fault {
        FaultSpec::ScanCell { core, .. } => format!("scan-cell/{}", core.label()),
        other => other.class().to_string(),
    }
}

/// One stratum's slice of a sampled campaign. `sampled + skipped`
/// enumerate the stratum's entire population by fault id.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StratumOutcome {
    /// Stratum name (see [`stratum_of`]).
    pub name: String,
    /// Fault ids sampled and simulated, in population order.
    pub sampled: Vec<String>,
    /// Fault ids the budget skipped, in population order.
    pub skipped: Vec<String>,
    /// Sampled faults detected by the schedule union.
    pub detected: usize,
    /// Sampled faults *no* schedule noticed (neither a detection nor an
    /// infrastructure failure) — the escapes the guided selector chases.
    pub escapes: usize,
}

/// A seeded confidence interval for union core-fault coverage.
#[derive(Debug, Clone, PartialEq)]
pub struct CoverageEstimate {
    /// Point estimate: the stratified mean of per-stratum detection.
    pub coverage: f64,
    /// Lower confidence bound, clamped to `[0, 1]`.
    pub ci_low: f64,
    /// Upper confidence bound, clamped to `[0, 1]`.
    pub ci_high: f64,
    /// The confidence level (0.95).
    pub confidence: f64,
}

/// The result of a budgeted campaign: the sub-campaign's full report,
/// the per-stratum accounting, and (for stratified mode) the estimate.
#[derive(Debug, Clone, PartialEq)]
pub struct SampledCampaign {
    /// `"stratified"` or `"guided"`.
    pub mode: &'static str,
    /// The selection seed.
    pub seed: u64,
    /// The cell budget the selector was allowed.
    pub budget_cells: usize,
    /// Cells actually simulated (sampled faults × schedules).
    pub spent_cells: usize,
    /// Per-stratum accounting, in stratum-name order.
    pub strata: Vec<StratumOutcome>,
    /// The coverage estimate. `None` in guided mode: adaptive selection
    /// biases the estimator, so guided runs report discoveries, not
    /// intervals.
    pub estimate: Option<CoverageEstimate>,
    /// The ordinary campaign report over the sampled sub-population.
    pub report: CampaignReport,
}

/// Standard-normal quantile for the 95 % two-sided interval.
const Z_95: f64 = 1.959_964;

/// Strata as `(name, member population indices)` in name order.
fn strata_of(population: &[FaultSpec]) -> Vec<(String, Vec<usize>)> {
    let mut strata: BTreeMap<String, Vec<usize>> = BTreeMap::new();
    for (i, fault) in population.iter().enumerate() {
        strata.entry(stratum_of(fault)).or_default().push(i);
    }
    strata.into_iter().collect()
}

/// Draws `n` distinct members of `members` with a per-stratum seeded
/// stream, returning ascending population indices.
fn draw(members: &[usize], n: usize, seed: u64, name: &str) -> Vec<usize> {
    let mut rng = SplitMix(seed ^ fnv1a(name.as_bytes()));
    let mut picked: Vec<usize> = Vec::with_capacity(n.min(members.len()));
    while picked.len() < n.min(members.len()) {
        let candidate = members[(rng.next() % members.len() as u64) as usize];
        if !picked.contains(&candidate) {
            picked.push(candidate);
        }
    }
    picked.sort_unstable();
    picked
}

/// Proportional allocation of `budget` faults over the strata, by
/// largest remainder with deterministic name tie-breaks. Every stratum
/// gets at least one fault when the budget allows it.
fn allocate(strata: &[(String, Vec<usize>)], budget: usize) -> Vec<usize> {
    let total: usize = strata.iter().map(|(_, m)| m.len()).sum();
    let budget = budget.min(total);
    let ideal: Vec<f64> = strata
        .iter()
        .map(|(_, m)| budget as f64 * m.len() as f64 / total.max(1) as f64)
        .collect();
    let mut alloc: Vec<usize> = ideal
        .iter()
        .zip(strata)
        .map(|(f, (_, m))| (*f as usize).min(m.len()))
        .collect();
    while alloc.iter().sum::<usize>() < budget {
        // Most-underfilled stratum next, ties to the first by name.
        let next = (0..strata.len())
            .filter(|&h| alloc[h] < strata[h].1.len())
            .max_by(|&a, &b| {
                (ideal[a] - alloc[a] as f64)
                    .partial_cmp(&(ideal[b] - alloc[b] as f64))
                    .unwrap()
                    .then(strata[b].0.cmp(&strata[a].0))
            })
            .expect("budget <= total population");
        alloc[next] += 1;
    }
    // A stratum left empty by rounding steals one fault from the
    // biggest allocation — an interval needs every stratum observed.
    while budget >= strata.len() && alloc.contains(&0) {
        let empty = alloc.iter().position(|&n| n == 0).unwrap();
        let donor = (0..strata.len())
            .max_by_key(|&h| (alloc[h], usize::MAX - h))
            .unwrap();
        if alloc[donor] <= 1 {
            break;
        }
        alloc[donor] -= 1;
        alloc[empty] += 1;
    }
    alloc
}

/// Whether `name` is a core-fault stratum (counted by the coverage
/// criterion) as opposed to test infrastructure.
fn is_core_stratum(name: &str) -> bool {
    name.starts_with("scan-cell/") || name == "memory"
}

/// Whether the sampled fault was detected by / escaped the union of
/// schedules, judged from the sub-campaign report.
fn fault_union(report: &CampaignReport, id: &str) -> (bool, bool) {
    let mut detected = false;
    let mut noticed = false;
    for cell in report.cells.iter().filter(|c| c.fault_id == id) {
        detected |= matches!(cell.outcome, CellOutcome::Detected { .. });
        noticed |= cell.outcome.noticed();
    }
    (detected, !noticed)
}

fn assemble(
    config: &CampaignConfig,
    mode: &'static str,
    seed: u64,
    budget_cells: usize,
    strata: &[(String, Vec<usize>)],
    selected: &[usize],
    report: CampaignReport,
) -> SampledCampaign {
    let schedule_count = report.schedules.len();
    let strata_out: Vec<StratumOutcome> = strata
        .iter()
        .map(|(name, members)| {
            let sampled_ids: Vec<String> = members
                .iter()
                .filter(|m| selected.binary_search(m).is_ok())
                .map(|&m| config.population[m].id())
                .collect();
            let skipped: Vec<String> = members
                .iter()
                .filter(|m| selected.binary_search(m).is_err())
                .map(|&m| config.population[m].id())
                .collect();
            let (mut detected, mut escapes) = (0, 0);
            for id in &sampled_ids {
                let (d, e) = fault_union(&report, id);
                detected += usize::from(d);
                escapes += usize::from(e);
            }
            StratumOutcome {
                name: name.clone(),
                sampled: sampled_ids,
                skipped,
                detected,
                escapes,
            }
        })
        .collect();

    let estimate = (mode == "stratified").then(|| {
        // Stratified mean and FPC variance over the core strata only —
        // infrastructure faults are outside the coverage criterion.
        let core: Vec<(&StratumOutcome, usize)> = strata_out
            .iter()
            .zip(strata)
            .filter(|(s, _)| is_core_stratum(&s.name))
            .map(|(s, (_, members))| (s, members.len()))
            .collect();
        let population: usize = core.iter().map(|(_, n)| n).sum();
        let mut mean = 0.0;
        let mut variance = 0.0;
        for (s, n_total) in &core {
            let (n_total, n_sampled) = (*n_total as f64, s.sampled.len() as f64);
            if n_sampled == 0.0 {
                continue;
            }
            let weight = n_total / population.max(1) as f64;
            let p = s.detected as f64 / n_sampled;
            mean += weight * p;
            // Laplace-smoothed p for the variance term only: an
            // all-detected sample keeps a nonzero width unless the
            // stratum was fully enumerated (FPC = 0).
            let p_var = (s.detected as f64 + 1.0) / (n_sampled + 2.0);
            let fpc = 1.0 - n_sampled / n_total;
            variance += weight * weight * fpc * p_var * (1.0 - p_var) / n_sampled;
        }
        let half = Z_95 * variance.sqrt();
        CoverageEstimate {
            coverage: mean,
            ci_low: (mean - half).max(0.0),
            ci_high: (mean + half).min(1.0),
            confidence: 0.95,
        }
    });

    SampledCampaign {
        mode,
        seed,
        budget_cells,
        spent_cells: selected.len() * schedule_count,
        strata: strata_out,
        estimate,
        report,
    }
}

/// Runs a proportionally stratified sample of `budget_faults` faults
/// (every schedule still runs against each sampled fault) and estimates
/// union core-fault coverage with a 95 % confidence interval.
///
/// Deterministic: the same `(config, budget, seed)` selects the same
/// faults and produces byte-identical artifacts for any worker count.
///
/// # Panics
///
/// Same conditions as [`crate::run_campaign`] over the sampled
/// sub-population.
pub fn run_sampled_campaign(
    config: &CampaignConfig,
    farm: &Farm,
    budget_faults: usize,
    seed: u64,
) -> SampledCampaign {
    let strata = strata_of(&config.population);
    let alloc = allocate(&strata, budget_faults);
    let mut selected: Vec<usize> = strata
        .iter()
        .zip(&alloc)
        .flat_map(|((name, members), &n)| draw(members, n, seed, name))
        .collect();
    selected.sort_unstable();

    let sub = CampaignConfig {
        population: selected
            .iter()
            .map(|&i| config.population[i].clone())
            .collect(),
        ..config.clone()
    };
    let report = crate::engine::run_campaign(&sub, farm);
    let schedule_count = report.schedules.len();
    assemble(
        config,
        "stratified",
        seed,
        budget_faults * schedule_count,
        &strata,
        &selected,
        report,
    )
}

/// Runs the coverage-guided selector: a pilot of `pilot_per_stratum`
/// faults from every stratum, then one fault at a time from whichever
/// stratum currently has the highest Laplace-smoothed escape rate
/// `(escapes + 1) / (sampled + 2)`, until the next fault would exceed
/// `budget_cells` or the population is exhausted.
///
/// Deterministic: selection depends only on simulation outcomes (which
/// are worker-count independent) and the seeded draw order, with
/// stratum-name tie-breaks.
///
/// # Panics
///
/// Same conditions as [`crate::run_campaign_shard`] (golden-baseline
/// failures).
#[allow(clippy::too_many_lines)]
pub fn run_guided_campaign(
    config: &CampaignConfig,
    farm: &Farm,
    budget_cells: usize,
    pilot_per_stratum: usize,
    seed: u64,
) -> SampledCampaign {
    let (schedules, prescreened) = effective_schedules(config);
    let config_eff = &CampaignConfig {
        schedules,
        ..config.clone()
    };
    let schedule_count = config_eff.schedules.len();
    let golden = golden_baselines(config_eff, farm, &config_eff.schedules);
    let strata = strata_of(&config_eff.population);

    // Per-stratum seeded draw order (a full without-replacement
    // permutation), consumed front to back.
    let queues: Vec<Vec<usize>> = strata
        .iter()
        .map(|(name, members)| {
            let mut rng = SplitMix(seed ^ fnv1a(name.as_bytes()));
            let mut order: Vec<usize> = Vec::with_capacity(members.len());
            while order.len() < members.len() {
                let candidate = members[(rng.next() % members.len() as u64) as usize];
                if !order.contains(&candidate) {
                    order.push(candidate);
                }
            }
            order
        })
        .collect();
    let mut cursor = vec![0usize; strata.len()];
    let mut sampled_count = vec![0usize; strata.len()];
    let mut escape_count = vec![0usize; strata.len()];
    let mut results: BTreeMap<usize, Vec<CellResult>> = BTreeMap::new();

    let run_fault = |fi: usize| -> Vec<CellResult> {
        let fault = &config_eff.population[fi];
        let (outcomes, _, _) = farm.run_map(&config_eff.schedules, |schedule| {
            run_cell(
                &config_eff.soc,
                &config_eff.plan,
                schedule,
                fault,
                &golden[&schedule.name],
            )
        });
        config_eff
            .schedules
            .iter()
            .zip(outcomes)
            .map(|(schedule, (_, outcome))| CellResult {
                fault_id: fault.id(),
                fault_class: fault.class().to_string(),
                schedule: schedule.name.clone(),
                outcome: outcome
                    .unwrap_or_else(|panic_msg| CellOutcome::InfraFailure { error: panic_msg }),
            })
            .collect()
    };
    let take = |h: usize,
                cursor: &mut Vec<usize>,
                sampled_count: &mut Vec<usize>,
                escape_count: &mut Vec<usize>,
                results: &mut BTreeMap<usize, Vec<CellResult>>| {
        let fi = queues[h][cursor[h]];
        cursor[h] += 1;
        let cells = run_fault(fi);
        let escaped = !cells.iter().any(|c| c.outcome.noticed());
        sampled_count[h] += 1;
        escape_count[h] += usize::from(escaped);
        results.insert(fi, cells);
    };

    // Pilot: look at every stratum before trusting any score.
    let mut spent_cells = 0usize;
    for (h, queue_len) in queues.iter().map(Vec::len).enumerate().collect::<Vec<_>>() {
        for _ in 0..pilot_per_stratum.min(queue_len) {
            if spent_cells + schedule_count > budget_cells {
                break;
            }
            take(
                h,
                &mut cursor,
                &mut sampled_count,
                &mut escape_count,
                &mut results,
            );
            spent_cells += schedule_count;
        }
    }
    // Adaptive phase: chase the highest smoothed escape rate.
    while spent_cells + schedule_count <= budget_cells {
        let Some(next) = (0..strata.len())
            .filter(|&h| cursor[h] < queues[h].len())
            .max_by(|&a, &b| {
                let score =
                    |h: usize| (escape_count[h] as f64 + 1.0) / (sampled_count[h] as f64 + 2.0);
                score(a)
                    .partial_cmp(&score(b))
                    .unwrap()
                    .then(strata[b].0.cmp(&strata[a].0))
            })
        else {
            break; // population exhausted under budget
        };
        take(
            next,
            &mut cursor,
            &mut sampled_count,
            &mut escape_count,
            &mut results,
        );
        spent_cells += schedule_count;
    }

    let selected: Vec<usize> = results.keys().copied().collect();
    let cells: Vec<CellResult> = results.into_values().flatten().collect();
    // Diagnosis, when configured, mirrors the exhaustive engine over
    // the sampled faults.
    let mut diagnosis = Vec::new();
    if config_eff.diagnosis {
        let detected_scan: Vec<_> = selected
            .iter()
            .filter_map(|&fi| match &config_eff.population[fi] {
                FaultSpec::ScanCell { core, cell } => {
                    let id = config_eff.population[fi].id();
                    cells
                        .iter()
                        .any(|c| {
                            c.fault_id == id && matches!(c.outcome, CellOutcome::Detected { .. })
                        })
                        .then_some((*core, *cell))
                }
                _ => None,
            })
            .collect();
        let (checks, _, _) = farm.run_map(&detected_scan, |&(core, cell)| {
            diagnose_scan_fault(config_eff, core, cell)
        });
        diagnosis = checks
            .into_iter()
            .map(|(_, r)| r.expect("diagnosis must not panic"))
            .collect();
    }
    let report = CampaignReport {
        schedules: config_eff
            .schedules
            .iter()
            .map(|s| s.name.clone())
            .collect(),
        prescreened,
        cells,
        diagnosis,
    };
    assemble(
        config,
        "guided",
        seed,
        budget_cells,
        &strata,
        &selected,
        report,
    )
}

impl SampledCampaign {
    /// The sampling report as JSON: the estimate, and every stratum
    /// with its sampled and skipped fault ids — nothing is silently
    /// capped.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"kind\": \"tve-campaign-sample\",\n  \"version\": 1,\n");
        let _ = writeln!(
            out,
            "  \"mode\": \"{}\",\n  \"seed\": \"{:016x}\",\n  \"budget_cells\": {},\n  \"spent_cells\": {},",
            self.mode, self.seed, self.budget_cells, self.spent_cells
        );
        match &self.estimate {
            Some(e) => {
                let _ = writeln!(
                    out,
                    "  \"estimate\": {{\"coverage\": {:.6}, \"ci_low\": {:.6}, \"ci_high\": {:.6}, \"confidence\": {:.2}}},",
                    e.coverage, e.ci_low, e.ci_high, e.confidence
                );
            }
            None => out.push_str("  \"estimate\": null,\n"),
        }
        out.push_str("  \"union_escapes\": [");
        for (i, id) in self.report.union_escapes().into_iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            append_json_string(&mut out, id);
        }
        out.push_str("],\n  \"strata\": [\n");
        for (i, s) in self.strata.iter().enumerate() {
            out.push_str("    {\"name\": ");
            append_json_string(&mut out, &s.name);
            let _ = write!(
                out,
                ", \"population\": {}, \"detected\": {}, \"escapes\": {}, \"sampled\": [",
                s.sampled.len() + s.skipped.len(),
                s.detected,
                s.escapes
            );
            for (j, id) in s.sampled.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                append_json_string(&mut out, id);
            }
            out.push_str("], \"skipped\": [");
            for (j, id) in s.skipped.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                append_json_string(&mut out, id);
            }
            out.push_str("]}");
            if i + 1 < self.strata.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push_str("  ]\n}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tve_core::{StuckCell, StuckWirBit};
    use tve_soc::WrappedCore;

    fn fake_population() -> Vec<FaultSpec> {
        let mut population = Vec::new();
        for core in [WrappedCore::Processor, WrappedCore::MemoryPeriphery] {
            for position in 0..4 {
                population.push(FaultSpec::ScanCell {
                    core,
                    cell: StuckCell {
                        chain: 0,
                        position,
                        value: false,
                    },
                });
            }
        }
        population.push(FaultSpec::WirStuck {
            core: WrappedCore::Dct,
            fault: StuckWirBit {
                bit: 0,
                value: true,
            },
        });
        population
    }

    #[test]
    fn strata_partition_the_population() {
        let population = fake_population();
        let strata = strata_of(&population);
        let names: Vec<&str> = strata.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, ["scan-cell/mem", "scan-cell/proc", "wir"]);
        let covered: usize = strata.iter().map(|(_, m)| m.len()).sum();
        assert_eq!(covered, population.len());
        assert!(is_core_stratum("scan-cell/mem") && is_core_stratum("memory"));
        assert!(!is_core_stratum("wir"));
    }

    #[test]
    fn allocation_is_proportional_deterministic_and_total() {
        let population = fake_population();
        let strata = strata_of(&population);
        let alloc = allocate(&strata, 5);
        assert_eq!(alloc.iter().sum::<usize>(), 5);
        assert!(
            alloc.iter().all(|&n| n >= 1),
            "every stratum observed: {alloc:?}"
        );
        assert_eq!(alloc, allocate(&strata, 5), "allocation is deterministic");
        // Budget over population clamps.
        assert_eq!(
            allocate(&strata, 100).iter().sum::<usize>(),
            population.len()
        );
        // Tiny budget still allocates without panicking.
        assert_eq!(allocate(&strata, 1).iter().sum::<usize>(), 1);
    }

    #[test]
    fn draw_is_seeded_and_without_replacement() {
        let members: Vec<usize> = (10..30).collect();
        let a = draw(&members, 7, 42, "scan-cell/proc");
        let b = draw(&members, 7, 42, "scan-cell/proc");
        assert_eq!(a, b, "same seed, same draw");
        assert_ne!(a, draw(&members, 7, 43, "scan-cell/proc"), "seed matters");
        assert_ne!(a, draw(&members, 7, 42, "scan-cell/dct"), "stratum matters");
        let mut dedup = a.clone();
        dedup.dedup();
        assert_eq!(dedup.len(), 7, "no replacement: {a:?}");
        assert!(a.iter().all(|i| members.contains(i)));
        assert_eq!(draw(&members, 99, 42, "s").len(), members.len());
    }
}
