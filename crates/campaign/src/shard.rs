//! Deterministic shard partitioning and merge: scale-out that is
//! equivalent to the single-process campaign *by construction*.
//!
//! A campaign's (fault × schedule) matrix is a flat list of cells in
//! fault-major order. A [`ShardSpec`] `k/n` owns every cell whose
//! global index is `≡ k-1 (mod n)` — a pure function of the index, so
//! any process can decide ownership without coordination, and the `n`
//! shards tile the matrix exactly. [`run_campaign_shard`] simulates
//! only the owned cells (plus golden baselines for the schedules those
//! cells touch, plus diagnosis for scan faults the shard itself saw
//! detected); [`merge_shards`] validates that a set of shard reports
//! tiles the matrix exactly once and reassembles the
//! [`CampaignReport`].
//!
//! The equivalence proof is structural: [`crate::run_campaign`] *is*
//! `merge_shards` over the single full shard `1/1` — there is no
//! second code path that sharding could diverge from. Every shard
//! report carries a campaign fingerprint; merging reports from
//! different configurations (or mixing shards of different campaigns)
//! is an error, never a silently wrong artifact.

use std::collections::BTreeMap;
use std::fmt;

use tve_core::{Schedule, StuckCell};
use tve_obs::{append_json_string, fnv1a, parse_json, JsonValue};
use tve_sched::Farm;
use tve_soc::{run_scenario, ScenarioMetrics, WrappedCore};

use crate::engine::{diagnose_scan_fault, run_cell, CampaignConfig};
use crate::fault::FaultSpec;
use crate::matrix::{CampaignReport, CellOutcome, CellResult, DiagnosisCheck, PrescreenedSchedule};
use crate::wire::{
    append_cell_result, append_diagnosis, cell_result_from_json, diagnosis_from_json,
};

/// One shard of a campaign: which residue class of cell indices this
/// process owns.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardSpec {
    /// 0-based shard index, `< count`.
    pub index: usize,
    /// Total shard count, `≥ 1`.
    pub count: usize,
}

impl ShardSpec {
    /// The single shard that owns the whole matrix.
    pub fn full() -> Self {
        ShardSpec { index: 0, count: 1 }
    }

    /// A validated shard from a 0-based index and a count.
    ///
    /// # Errors
    ///
    /// When `count` is zero or `index` is out of range.
    pub fn new(index: usize, count: usize) -> Result<Self, String> {
        if count == 0 {
            return Err("shard count must be at least 1".into());
        }
        if index >= count {
            return Err(format!(
                "shard index {index} out of range for count {count}"
            ));
        }
        Ok(ShardSpec { index, count })
    }

    /// Parses the CLI form `k/n` with a 1-based `k` (so `--shard 1/3`
    /// is the first of three shards).
    ///
    /// # Errors
    ///
    /// When the text is not `k/n` with `1 ≤ k ≤ n`.
    pub fn parse(text: &str) -> Result<Self, String> {
        let (k, n) = text
            .split_once('/')
            .ok_or_else(|| format!("shard spec {text:?} is not of the form k/n"))?;
        let k: usize = k
            .trim()
            .parse()
            .map_err(|_| format!("shard index {k:?} is not a number"))?;
        let n: usize = n
            .trim()
            .parse()
            .map_err(|_| format!("shard count {n:?} is not a number"))?;
        if k == 0 {
            return Err("shard index is 1-based: the first shard is 1/n".into());
        }
        ShardSpec::new(k - 1, n)
    }

    /// Whether this shard owns the cell at `index` in the flat
    /// fault-major matrix.
    pub fn owns(&self, index: usize) -> bool {
        index % self.count == self.index
    }
}

impl fmt::Display for ShardSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.index + 1, self.count)
    }
}

/// A stable digest of everything that determines a campaign's matrix:
/// the SoC, the plan, the schedules, the population and the diagnosis
/// parameters. Two processes agree on the fingerprint iff they would
/// enumerate the identical matrix, which is what makes shard reports
/// and resume journals safe to combine across processes of the same
/// build. (The canonical text is the `Debug` form, so the fingerprint
/// is *not* promised stable across code changes — it guards a run, not
/// an archive format.)
pub fn campaign_fingerprint(config: &CampaignConfig) -> u64 {
    fnv1a(format!("campaign/v1|{config:?}").as_bytes())
}

/// Applies the static pre-screen (when `config.prescreen` is set) and
/// returns the schedules that will actually run plus the rejected ones.
/// Deterministic, so every shard and every resume computes the same
/// partition without coordination.
pub fn effective_schedules(config: &CampaignConfig) -> (Vec<Schedule>, Vec<PrescreenedSchedule>) {
    if !config.prescreen {
        return (config.schedules.clone(), Vec::new());
    }
    let facts = tve_lint::soc_facts(&config.soc, &config.plan);
    let mut prescreened = Vec::new();
    let schedules = config
        .schedules
        .iter()
        .filter(|schedule| {
            let report = tve_lint::lint_schedule_report(schedule, &facts);
            if report.clean() {
                return true;
            }
            prescreened.push(PrescreenedSchedule {
                schedule: schedule.name.clone(),
                codes: report
                    .diagnostics
                    .iter()
                    .filter(|d| d.severity == tve_lint::Severity::Error)
                    .map(|d| d.code.to_string())
                    .collect(),
            });
            false
        })
        .cloned()
        .collect();
    (schedules, prescreened)
}

/// Golden baselines for `schedules`, farmed, with the usual
/// well-formedness panics.
pub(crate) fn golden_baselines(
    config: &CampaignConfig,
    farm: &Farm,
    schedules: &[Schedule],
) -> BTreeMap<String, ScenarioMetrics> {
    let (golden_results, _, _) = farm.run_map(schedules, |schedule| {
        run_scenario(&config.soc, &config.plan, schedule)
            .unwrap_or_else(|e| panic!("golden run of '{}' failed: {e}", schedule.name))
    });
    let mut golden = BTreeMap::new();
    for (schedule, (_, result)) in schedules.iter().zip(golden_results) {
        let metrics = result.expect("golden scenario must not panic");
        assert!(
            metrics.result.clean(),
            "golden run of '{}' reported errors: {}",
            schedule.name,
            metrics.result
        );
        golden.insert(schedule.name.clone(), metrics);
    }
    golden
}

/// The result of one shard: the cells it owned (tagged with their
/// global matrix index), plus diagnosis checks for the scan faults this
/// shard saw detected. Serializes to JSON for the process boundary.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardReport {
    /// [`campaign_fingerprint`] of the producing configuration.
    pub fingerprint: u64,
    /// Which shard this is.
    pub shard: ShardSpec,
    /// Total matrix size (population × effective schedules) — every
    /// shard of one campaign agrees on it.
    pub total_cells: usize,
    /// Names of the effective (post-pre-screen) schedules.
    pub schedules: Vec<String>,
    /// Schedules the static pre-screen rejected.
    pub prescreened: Vec<PrescreenedSchedule>,
    /// Owned cells as `(global index, result)`, in index order.
    pub cells: Vec<(usize, CellResult)>,
    /// Diagnosis checks for scan faults detected within this shard's
    /// own cells. A fault detected by several shards is diagnosed by
    /// each — the checks are deterministic and identical, and the merge
    /// deduplicates them.
    pub diagnosis: Vec<DiagnosisCheck>,
}

impl ShardReport {
    /// The report as a JSON document (one cell per line).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"kind\": \"tve-campaign-shard\",\n  \"version\": 1,\n");
        out.push_str(&format!(
            "  \"fingerprint\": \"{:016x}\",\n  \"shard\": \"{}\",\n  \"total_cells\": {},\n",
            self.fingerprint, self.shard, self.total_cells
        ));
        out.push_str("  \"schedules\": [");
        for (i, name) in self.schedules.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            append_json_string(&mut out, name);
        }
        out.push_str("],\n  \"prescreened\": [");
        for (i, p) in self.prescreened.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str("{\"name\": ");
            append_json_string(&mut out, &p.schedule);
            out.push_str(", \"codes\": [");
            for (j, code) in p.codes.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                append_json_string(&mut out, code);
            }
            out.push_str("]}");
        }
        out.push_str("],\n  \"cells\": [\n");
        for (i, (index, cell)) in self.cells.iter().enumerate() {
            out.push_str(&format!("    {{\"index\": {index}, \"cell\": "));
            append_cell_result(&mut out, cell);
            out.push('}');
            if i + 1 < self.cells.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push_str("  ],\n  \"diagnosis\": [\n");
        for (i, check) in self.diagnosis.iter().enumerate() {
            out.push_str("    ");
            append_diagnosis(&mut out, check);
            if i + 1 < self.diagnosis.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Parses a report emitted by [`ShardReport::to_json`].
    ///
    /// # Errors
    ///
    /// A message naming what was malformed.
    pub fn from_json(text: &str) -> Result<Self, String> {
        let v = parse_json(text).map_err(|e| format!("shard report is not valid JSON: {e}"))?;
        if v.get("kind").and_then(JsonValue::as_str) != Some("tve-campaign-shard") {
            return Err("not a tve-campaign-shard document".into());
        }
        if v.get("version").and_then(JsonValue::as_u64) != Some(1) {
            return Err("unsupported shard report version".into());
        }
        let fingerprint = v
            .get("fingerprint")
            .and_then(JsonValue::as_str)
            .and_then(|s| u64::from_str_radix(s, 16).ok())
            .ok_or("shard report missing hex field 'fingerprint'")?;
        let shard = ShardSpec::parse(
            v.get("shard")
                .and_then(JsonValue::as_str)
                .ok_or("shard report missing string field 'shard'")?,
        )?;
        let total_cells =
            v.get("total_cells")
                .and_then(JsonValue::as_u64)
                .ok_or("shard report missing integer field 'total_cells'")? as usize;
        let schedules = v
            .get("schedules")
            .and_then(JsonValue::as_arr)
            .ok_or("shard report missing array field 'schedules'")?
            .iter()
            .map(|s| {
                s.as_str()
                    .map(str::to_string)
                    .ok_or_else(|| "non-string schedule name".to_string())
            })
            .collect::<Result<Vec<_>, _>>()?;
        let prescreened = v
            .get("prescreened")
            .and_then(JsonValue::as_arr)
            .ok_or("shard report missing array field 'prescreened'")?
            .iter()
            .map(|p| {
                Ok(PrescreenedSchedule {
                    schedule: p
                        .get("name")
                        .and_then(JsonValue::as_str)
                        .ok_or("prescreened entry missing 'name'")?
                        .to_string(),
                    codes: p
                        .get("codes")
                        .and_then(JsonValue::as_arr)
                        .ok_or("prescreened entry missing 'codes'")?
                        .iter()
                        .map(|c| {
                            c.as_str()
                                .map(str::to_string)
                                .ok_or_else(|| "non-string diagnostic code".to_string())
                        })
                        .collect::<Result<Vec<_>, _>>()?,
                })
            })
            .collect::<Result<Vec<_>, String>>()?;
        let cells = v
            .get("cells")
            .and_then(JsonValue::as_arr)
            .ok_or("shard report missing array field 'cells'")?
            .iter()
            .map(|e| {
                let index = e
                    .get("index")
                    .and_then(JsonValue::as_u64)
                    .ok_or("cell entry missing 'index'")? as usize;
                let cell =
                    cell_result_from_json(e.get("cell").ok_or("cell entry missing 'cell'")?)?;
                Ok((index, cell))
            })
            .collect::<Result<Vec<_>, String>>()?;
        let diagnosis = v
            .get("diagnosis")
            .and_then(JsonValue::as_arr)
            .ok_or("shard report missing array field 'diagnosis'")?
            .iter()
            .map(diagnosis_from_json)
            .collect::<Result<Vec<_>, String>>()?;
        Ok(ShardReport {
            fingerprint,
            shard,
            total_cells,
            schedules,
            prescreened,
            cells,
            diagnosis,
        })
    }
}

/// Runs one shard of the campaign on `farm`: golden baselines for the
/// schedules the owned cells touch, then every owned (fault × schedule)
/// cell, then diagnosis for scan faults this shard saw detected.
///
/// Owned cells are reported in global-index order regardless of worker
/// count, so shard reports — like full campaign artifacts — are
/// byte-identical for any `TVE_JOBS`.
///
/// # Panics
///
/// Same conditions as [`crate::run_campaign`]: a golden baseline of a
/// schedule the shard needs fails or reports errors (pre-screening is
/// applied first when configured).
pub fn run_campaign_shard(config: &CampaignConfig, farm: &Farm, shard: ShardSpec) -> ShardReport {
    let fingerprint = campaign_fingerprint(config);
    let (schedules, prescreened) = effective_schedules(config);
    let config = &CampaignConfig {
        schedules,
        ..config.clone()
    };
    let schedule_count = config.schedules.len();
    let total_cells = config.population.len() * schedule_count;

    // Owned cells: (global index, fault index, schedule index).
    let owned: Vec<(usize, usize, usize)> = (0..config.population.len())
        .flat_map(|f| (0..schedule_count).map(move |s| (f * schedule_count + s, f, s)))
        .filter(|&(index, _, _)| shard.owns(index))
        .collect();

    // Golden baselines only for the schedules that actually appear in
    // the owned cells — a shard of a wide matrix skips the rest.
    let mut needed: Vec<usize> = owned.iter().map(|&(_, _, s)| s).collect();
    needed.sort_unstable();
    needed.dedup();
    let needed_schedules: Vec<Schedule> = needed
        .iter()
        .map(|&s| config.schedules[s].clone())
        .collect();
    let golden = golden_baselines(config, farm, &needed_schedules);

    let (outcomes, _, _) = farm.run_map(&owned, |&(_, fi, si)| {
        let schedule = &config.schedules[si];
        run_cell(
            &config.soc,
            &config.plan,
            schedule,
            &config.population[fi],
            &golden[&schedule.name],
        )
    });
    let cells: Vec<(usize, CellResult)> = owned
        .iter()
        .zip(outcomes)
        .map(|(&(index, fi, si), (_, outcome))| {
            let fault = &config.population[fi];
            (
                index,
                CellResult {
                    fault_id: fault.id(),
                    fault_class: fault.class().to_string(),
                    schedule: config.schedules[si].name.clone(),
                    outcome: outcome
                        .unwrap_or_else(|panic_msg| CellOutcome::InfraFailure { error: panic_msg }),
                },
            )
        })
        .collect();

    // Diagnosis for scan faults detected within this shard's cells, in
    // population order. The union over all shards is exactly the
    // unsharded diagnosis set: a fault is detected somewhere iff some
    // shard owns a detected cell for it.
    let mut diagnosis = Vec::new();
    if config.diagnosis {
        let detected_scan: Vec<(WrappedCore, StuckCell)> = config
            .population
            .iter()
            .filter_map(|f| match f {
                FaultSpec::ScanCell { core, cell } => {
                    let detected = cells.iter().any(|(_, r)| {
                        r.fault_id == f.id() && matches!(r.outcome, CellOutcome::Detected { .. })
                    });
                    detected.then_some((*core, *cell))
                }
                _ => None,
            })
            .collect();
        let (checks, _, _) = farm.run_map(&detected_scan, |&(core, cell)| {
            diagnose_scan_fault(config, core, cell)
        });
        diagnosis = checks
            .into_iter()
            .map(|(_, r)| r.expect("diagnosis must not panic"))
            .collect();
    }

    ShardReport {
        fingerprint,
        shard,
        total_cells,
        schedules: config.schedules.iter().map(|s| s.name.clone()).collect(),
        prescreened,
        cells,
        diagnosis,
    }
}

/// Merges shard reports back into the [`CampaignReport`] the unsharded
/// campaign would have produced — byte-identical CSV and JSON.
///
/// Validation is strict: every report must carry this configuration's
/// fingerprint, agree on the matrix size and schedule list, and only
/// claim cells its shard spec owns; the set as a whole must cover every
/// cell exactly once. Anything else is an `Err` naming the violation —
/// a partial or mixed shard set can never masquerade as a complete
/// campaign.
///
/// # Errors
///
/// A message naming the first violated merge invariant.
pub fn merge_shards(
    config: &CampaignConfig,
    reports: &[ShardReport],
) -> Result<CampaignReport, String> {
    let fingerprint = campaign_fingerprint(config);
    let (schedules, prescreened) = effective_schedules(config);
    let schedule_names: Vec<String> = schedules.iter().map(|s| s.name.clone()).collect();
    let total = config.population.len() * schedule_names.len();

    let mut cells: Vec<Option<CellResult>> = vec![None; total];
    let mut diagnosis_by_id: BTreeMap<String, DiagnosisCheck> = BTreeMap::new();
    for report in reports {
        if report.fingerprint != fingerprint {
            return Err(format!(
                "shard {} belongs to a different campaign: fingerprint {:016x}, this configuration is {:016x}",
                report.shard, report.fingerprint, fingerprint
            ));
        }
        if report.total_cells != total {
            return Err(format!(
                "shard {} sized the matrix at {} cells, this configuration has {total}",
                report.shard, report.total_cells
            ));
        }
        if report.schedules != schedule_names {
            return Err(format!(
                "shard {} ran schedules {:?}, this configuration runs {:?}",
                report.shard, report.schedules, schedule_names
            ));
        }
        for (index, cell) in &report.cells {
            if *index >= total {
                return Err(format!(
                    "shard {} reported cell {index} beyond the {total}-cell matrix",
                    report.shard
                ));
            }
            if !report.shard.owns(*index) {
                return Err(format!(
                    "shard {} reported cell {index} it does not own",
                    report.shard
                ));
            }
            if cells[*index].is_some() {
                return Err(format!("cell {index} covered by more than one shard"));
            }
            cells[*index] = Some(cell.clone());
        }
        for check in &report.diagnosis {
            match diagnosis_by_id.get(&check.fault_id) {
                None => {
                    diagnosis_by_id.insert(check.fault_id.clone(), check.clone());
                }
                Some(existing) if existing == check => {}
                Some(_) => {
                    return Err(format!(
                        "two shards diagnosed fault {} differently — determinism violation",
                        check.fault_id
                    ))
                }
            }
        }
    }
    let mut merged = Vec::with_capacity(total);
    for (index, cell) in cells.into_iter().enumerate() {
        merged.push(cell.ok_or_else(|| {
            format!("cell {index} covered by no shard — the shard set is incomplete")
        })?);
    }
    // Diagnosis in population order, like the unsharded campaign.
    let diagnosis: Vec<DiagnosisCheck> = config
        .population
        .iter()
        .filter_map(|f| diagnosis_by_id.remove(&f.id()))
        .collect();
    Ok(CampaignReport {
        schedules: schedule_names,
        prescreened,
        cells: merged,
        diagnosis,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_spec_parses_and_partitions() {
        let s = ShardSpec::parse("2/3").unwrap();
        assert_eq!((s.index, s.count), (1, 3));
        assert_eq!(s.to_string(), "2/3");
        assert!(s.owns(1) && s.owns(4) && !s.owns(0) && !s.owns(2));
        // Any n shards tile any matrix exactly once.
        for n in 1..=5 {
            for cell in 0..17 {
                let owners = (0..n)
                    .filter(|&i| ShardSpec::new(i, n).unwrap().owns(cell))
                    .count();
                assert_eq!(owners, 1, "cell {cell} with {n} shards");
            }
        }
        for bad in ["3", "0/3", "4/3", "x/3", "2/y", "2/0"] {
            assert!(ShardSpec::parse(bad).is_err(), "accepted {bad:?}");
        }
        assert_eq!(ShardSpec::full(), ShardSpec::new(0, 1).unwrap());
    }

    fn tiny_config() -> CampaignConfig {
        let mut cfg = tve_soc::SocConfig::small();
        cfg.memory_words = 64;
        let population = vec![
            FaultSpec::RingBreak { index: 0 },
            FaultSpec::RingBreak { index: 1 },
        ];
        CampaignConfig::new(
            cfg,
            tve_soc::SocTestPlan::small(),
            vec![tve_soc::paper_schedules()[0].clone()],
            population,
        )
    }

    #[test]
    fn fingerprint_tracks_the_configuration() {
        let a = tiny_config();
        let mut b = a.clone();
        assert_eq!(campaign_fingerprint(&a), campaign_fingerprint(&b));
        b.diagnosis_patterns += 1;
        assert_ne!(campaign_fingerprint(&a), campaign_fingerprint(&b));
    }

    fn fake_report(config: &CampaignConfig, shard: ShardSpec) -> ShardReport {
        let schedule = config.schedules[0].name.clone();
        let total = config.population.len() * config.schedules.len();
        let cells = (0..total)
            .filter(|&i| shard.owns(i))
            .map(|i| {
                (
                    i,
                    CellResult {
                        fault_id: config.population[i / config.schedules.len()].id(),
                        fault_class: "ring".into(),
                        schedule: schedule.clone(),
                        outcome: CellOutcome::Escape,
                    },
                )
            })
            .collect();
        ShardReport {
            fingerprint: campaign_fingerprint(config),
            shard,
            total_cells: total,
            schedules: vec![schedule],
            prescreened: Vec::new(),
            cells,
            diagnosis: Vec::new(),
        }
    }

    #[test]
    fn merge_validates_the_shard_set() {
        let config = tiny_config();
        let s1 = fake_report(&config, ShardSpec::new(0, 2).unwrap());
        let s2 = fake_report(&config, ShardSpec::new(1, 2).unwrap());

        let merged = merge_shards(&config, &[s2.clone(), s1.clone()]).expect("complete set merges");
        assert_eq!(merged.cells.len(), 2);

        let err = merge_shards(&config, std::slice::from_ref(&s1)).unwrap_err();
        assert!(err.contains("covered by no shard"), "{err}");
        let err = merge_shards(&config, &[s1.clone(), s1.clone(), s2.clone()]).unwrap_err();
        assert!(err.contains("more than one shard"), "{err}");

        let mut alien = s1.clone();
        alien.fingerprint ^= 1;
        let err = merge_shards(&config, &[alien, s2.clone()]).unwrap_err();
        assert!(err.contains("different campaign"), "{err}");

        let mut liar = s1.clone();
        liar.cells[0].0 = 1; // shard 1/2 does not own cell 1
        let err = merge_shards(&config, &[liar, s2]).unwrap_err();
        assert!(err.contains("does not own"), "{err}");
    }

    #[test]
    fn shard_report_round_trips_through_json() {
        let config = tiny_config();
        let mut report = fake_report(&config, ShardSpec::new(0, 2).unwrap());
        report.prescreened.push(PrescreenedSchedule {
            schedule: "broken".into(),
            codes: vec!["sched-dup-test".into()],
        });
        report.diagnosis.push(DiagnosisCheck {
            fault_id: "scan:proc:c0p1s1".into(),
            core: WrappedCore::Processor,
            injected: StuckCell {
                chain: 0,
                position: 1,
                value: true,
            },
            located: vec![],
            first_failing_pattern: None,
            confirmed: false,
        });
        let json = report.to_json();
        tve_obs::check_json(&json).expect("shard JSON is well-formed");
        let back = ShardReport::from_json(&json).expect("shard JSON parses");
        assert_eq!(back, report);
        assert!(ShardReport::from_json("{}").is_err());
    }
}
