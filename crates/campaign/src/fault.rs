//! The fault population: what a campaign injects, and how the population
//! is enumerated deterministically from a seed.

use std::fmt;

use tve_core::{CoreModel, StuckCell, StuckWirBit};
use tve_memtest::Fault;
use tve_soc::{scan_view, SocConfig, WrappedCore, RING_EBI};
use tve_tlm::FaultyTamPolicy;

/// One injectable fault, as plain data: a spec names *what* to break; the
/// engine applies it to a freshly built SoC before the schedule runs.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultSpec {
    /// A stuck scan cell inside a wrapped core's scan chains.
    ScanCell {
        /// The core carrying the defective cell.
        core: WrappedCore,
        /// The stuck cell.
        cell: StuckCell,
    },
    /// A functional fault in the embedded memory array.
    Memory {
        /// The memory fault model instance.
        fault: Fault,
    },
    /// A corrupting/dropping TAM channel on the ATE path (EBI to bus).
    TamCorruption {
        /// The seeded corruption policy.
        policy: FaultyTamPolicy,
    },
    /// A stuck bit in a wrapper instruction register.
    WirStuck {
        /// The core whose wrapper WIR is defective.
        core: WrappedCore,
        /// The stuck bit.
        fault: StuckWirBit,
    },
    /// A severed configuration-ring wire: clients at `index` and beyond
    /// are unreachable.
    RingBreak {
        /// First unreachable ring client index.
        index: usize,
    },
}

impl FaultSpec {
    /// A short, stable, unique identifier (CSV/JSON key material).
    pub fn id(&self) -> String {
        match self {
            FaultSpec::ScanCell { core, cell } => format!(
                "scan:{}:c{}p{}s{}",
                core.label(),
                cell.chain,
                cell.position,
                u8::from(cell.value)
            ),
            FaultSpec::Memory { fault } => {
                format!("mem:{}:a{}b{}", fault.class(), fault.addr, fault.bit)
            }
            FaultSpec::TamCorruption { policy } => {
                if policy.drop_every > 0 {
                    format!("tam:drop-every-{}", policy.drop_every)
                } else {
                    format!("tam:corrupt-every-{}", policy.corrupt_every)
                }
            }
            FaultSpec::WirStuck { core, fault } => format!(
                "wir:{}:b{}s{}",
                core.label(),
                fault.bit,
                u8::from(fault.value)
            ),
            FaultSpec::RingBreak { index } => format!("ring:break@{index}"),
        }
    }

    /// The coverage-report class of this fault.
    pub fn class(&self) -> &'static str {
        match self {
            FaultSpec::ScanCell { .. } => "scan-cell",
            FaultSpec::Memory { .. } => "memory",
            FaultSpec::TamCorruption { .. } => "tam",
            FaultSpec::WirStuck { .. } => "wir",
            FaultSpec::RingBreak { .. } => "ring",
        }
    }

    /// Whether this fault sits in the test *infrastructure* (TAM, WIR,
    /// configuration ring) rather than in a core under test. The 100 %
    /// detection criterion applies to core faults; infrastructure faults
    /// must be detected *or* appear as named escapes — never vanish.
    pub fn is_infrastructure(&self) -> bool {
        matches!(
            self,
            FaultSpec::TamCorruption { .. }
                | FaultSpec::WirStuck { .. }
                | FaultSpec::RingBreak { .. }
        )
    }
}

impl fmt::Display for FaultSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id())
    }
}

/// Parameters of the deterministic population generator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PopulationSpec {
    /// Seed for all sampling decisions.
    pub seed: u64,
    /// Stuck scan cells sampled per wrapped core (when not exhaustive).
    pub scan_cells_per_core: usize,
    /// When a core's scan-cell count (`chains × max_chain_len`) is at or
    /// under this cap, every cell is enumerated instead of sampled.
    pub exhaustive_cap: u32,
    /// Memory fault instances to sample.
    pub memory_faults: usize,
    /// Whether to include the infrastructure fault set (TAM corruption,
    /// stuck WIR bits, broken ring segments).
    pub infrastructure: bool,
    /// Whether to also sample scan cells in the *unscanned* memory
    /// periphery (whose chains no Table-I test exercises). Those faults
    /// are guaranteed escapes; the sampling benches include them to
    /// give the coverage-guided selector a genuinely escape-prone
    /// stratum to discover. Off by default — a population that asserts
    /// 100 % detection must not contain undetectable faults.
    pub include_unscanned: bool,
}

impl Default for PopulationSpec {
    fn default() -> Self {
        PopulationSpec {
            seed: 0xCA3A_1601,
            scan_cells_per_core: 4,
            exhaustive_cap: 16,
            memory_faults: 4,
            infrastructure: true,
            include_unscanned: false,
        }
    }
}

/// splitmix64: the population sampler. Deterministic, seedable, and
/// stateless between calls given the same counter.
pub(crate) struct SplitMix(pub(crate) u64);

impl SplitMix {
    pub(crate) fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// The wrapped cores whose scan chains the Table-I test plan actually
/// exercises (T1/T2/T3 for the processor, T4 for color conversion, T5 for
/// the DCT). The memory periphery's chains are never scanned by any of
/// the seven tests, so stuck cells there would be guaranteed escapes —
/// they are deliberately not part of the default population.
pub const SCANNED_CORES: [WrappedCore; 3] = [
    WrappedCore::Processor,
    WrappedCore::ColorConversion,
    WrappedCore::Dct,
];

/// Enumerates the fault population for `config` per `spec`, in a stable
/// order: scan cells core by core, then memory faults, then the
/// infrastructure set. Equal inputs yield the identical population.
pub fn generate(spec: &PopulationSpec, config: &SocConfig) -> Vec<FaultSpec> {
    let mut rng = SplitMix(spec.seed);
    let mut population = Vec::new();

    // Appending the unscanned core *after* the scanned three keeps the
    // sampler stream — and therefore the default population — identical
    // when the flag is off.
    let mut cores: Vec<WrappedCore> = SCANNED_CORES.to_vec();
    if spec.include_unscanned {
        cores.push(WrappedCore::MemoryPeriphery);
    }
    for core in cores {
        let scan = scan_view(config, core).scan_config();
        let (chains, len) = (scan.chains(), scan.max_chain_len());
        if chains * len <= spec.exhaustive_cap {
            for chain in 0..chains {
                for position in 0..len {
                    population.push(FaultSpec::ScanCell {
                        core,
                        cell: StuckCell {
                            chain,
                            position,
                            value: (chain + position) % 2 == 1,
                        },
                    });
                }
            }
        } else {
            let mut picked: Vec<(u32, u32)> = Vec::new();
            while picked.len() < spec.scan_cells_per_core {
                let chain = (rng.next() % u64::from(chains)) as u32;
                let position = (rng.next() % u64::from(len)) as u32;
                if picked.contains(&(chain, position)) {
                    continue;
                }
                picked.push((chain, position));
                population.push(FaultSpec::ScanCell {
                    core,
                    cell: StuckCell {
                        chain,
                        position,
                        value: rng.next() % 2 == 1,
                    },
                });
            }
        }
    }

    // Memory faults, restricted to the kinds MATS+ (the plan's march
    // algorithm) guarantees to detect: stuck-at, rising transition and
    // address aliasing. Falling transitions and coupling faults escape
    // MATS+ by construction and belong in a dedicated march study, not in
    // a population that asserts 100 % detection.
    let words = u64::from(config.memory_words.max(2));
    for i in 0..spec.memory_faults {
        let addr = (rng.next() % words) as u32;
        let bit = (rng.next() % 32) as u8;
        let fault = match i % 4 {
            0 => Fault::stuck_at(addr, bit, false),
            1 => Fault::stuck_at(addr, bit, true),
            2 => Fault::transition(addr, bit, true),
            _ => {
                let other = (u64::from(addr) + 1 + rng.next() % (words - 1)) % words;
                Fault::address_alias(addr, other as u32)
            }
        };
        population.push(FaultSpec::Memory { fault });
    }

    if spec.infrastructure {
        population.push(FaultSpec::TamCorruption {
            policy: FaultyTamPolicy::corrupt(rng.next(), 5),
        });
        population.push(FaultSpec::TamCorruption {
            policy: FaultyTamPolicy::drop(rng.next(), 7),
        });
        for core in SCANNED_CORES {
            population.push(FaultSpec::WirStuck {
                core,
                fault: StuckWirBit {
                    bit: 0,
                    value: true,
                },
            });
        }
        population.push(FaultSpec::RingBreak { index: 0 });
        population.push(FaultSpec::RingBreak { index: RING_EBI });
    }

    population
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn population_is_deterministic_and_unique() {
        let spec = PopulationSpec::default();
        let cfg = SocConfig::small();
        let a = generate(&spec, &cfg);
        let b = generate(&spec, &cfg);
        assert_eq!(a, b, "same spec, same population");
        let ids: Vec<String> = a.iter().map(|f| f.id()).collect();
        let mut dedup = ids.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), ids.len(), "fault ids are unique: {ids:?}");
        // 3 cores x 4 cells + 4 memory + (2 tam + 3 wir + 2 ring).
        assert_eq!(a.len(), 12 + 4 + 7);
    }

    #[test]
    fn different_seeds_differ() {
        let cfg = SocConfig::small();
        let a = generate(&PopulationSpec::default(), &cfg);
        let b = generate(
            &PopulationSpec {
                seed: 99,
                ..PopulationSpec::default()
            },
            &cfg,
        );
        assert_ne!(a, b);
    }

    #[test]
    fn tiny_cores_are_enumerated_exhaustively() {
        use tve_tpg::ScanConfig;
        let cfg = SocConfig {
            dct_scan: ScanConfig::new(2, 8), // 16 cells <= cap
            ..SocConfig::small()
        };
        let spec = PopulationSpec {
            scan_cells_per_core: 2,
            exhaustive_cap: 16,
            memory_faults: 0,
            infrastructure: false,
            ..PopulationSpec::default()
        };
        let pop = generate(&spec, &cfg);
        let dct: Vec<_> = pop
            .iter()
            .filter(|f| matches!(f, FaultSpec::ScanCell { core, .. } if *core == WrappedCore::Dct))
            .collect();
        assert_eq!(dct.len(), 16, "every DCT cell enumerated");
        let others = pop.len() - dct.len();
        assert_eq!(others, 4, "sampled cores contribute 2 cells each");
    }

    #[test]
    fn ids_and_classes_are_stable() {
        let f = FaultSpec::ScanCell {
            core: WrappedCore::Processor,
            cell: StuckCell {
                chain: 1,
                position: 30,
                value: true,
            },
        };
        assert_eq!(f.id(), "scan:proc:c1p30s1");
        assert_eq!(f.class(), "scan-cell");
        assert!(!f.is_infrastructure());
        let r = FaultSpec::RingBreak { index: 5 };
        assert_eq!(r.id(), "ring:break@5");
        assert!(r.is_infrastructure());
        let w = FaultSpec::WirStuck {
            core: WrappedCore::Dct,
            fault: StuckWirBit {
                bit: 0,
                value: true,
            },
        };
        assert_eq!(w.id(), "wir:dct:b0s1");
        let t = FaultSpec::TamCorruption {
            policy: FaultyTamPolicy::drop(1, 7),
        };
        assert_eq!(t.id(), "tam:drop-every-7");
    }
}
