#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! # tve-campaign — systematic fault-injection campaigns
//!
//! Validates test schedules the way the paper validates them against
//! *designs*: by confronting every schedule with a systematic population
//! of injected faults and checking that the transaction-level testbench
//! actually notices each one. A campaign crosses a deterministic fault
//! population — stuck scan cells, memory array faults, and *test
//! infrastructure* faults (corrupting TAM channels, stuck WIR bits,
//! broken configuration-ring segments) — with every schedule under
//! study, runs each (fault × schedule) cell on the `tve-sched`
//! validation [`Farm`](tve_sched::Farm), and classifies the result:
//!
//! * **detected** — the scenario's metrics digest deviates from the
//!   golden (fault-free) run, with a time-to-detection taken from the
//!   `tve-obs` span trace;
//! * **escape** — the faulty run is byte-identical to the golden run;
//! * **infra-failure** — the run errors out or panics, i.e. the fault
//!   broke the test *equipment* rather than a verdict.
//!
//! Detected scan-cell faults are then cross-checked by the `tve-core`
//! BIST diagnosis ([`diagnose_bist`](tve_core::diagnose_bist)): the
//! located (chain, position) must equal the injected one.
//!
//! ```
//! use tve_campaign::{generate, run_campaign, CampaignConfig, PopulationSpec};
//! use tve_sched::Farm;
//! use tve_soc::{paper_schedules, SocConfig, SocTestPlan};
//!
//! let mut cfg = SocConfig::small();
//! cfg.memory_words = 64;
//! let spec = PopulationSpec {
//!     scan_cells_per_core: 1,
//!     memory_faults: 1,
//!     infrastructure: false,
//!     ..PopulationSpec::default()
//! };
//! let population = generate(&spec, &cfg);
//! let mut config = CampaignConfig::new(
//!     cfg,
//!     SocTestPlan::small(),
//!     vec![paper_schedules()[0].clone()],
//!     population,
//! );
//! config.diagnosis = false;
//! let report = run_campaign(&config, &Farm::with_workers(1));
//! assert_eq!(report.cells.len(), 4);
//! ```

mod engine;
mod fault;
mod matrix;
mod resume;
mod sample;
mod shard;
mod wire;

pub use engine::{apply_fault, diagnose_scan_fault, run_campaign, run_cell, CampaignConfig};
pub use fault::{generate, FaultSpec, PopulationSpec, SCANNED_CORES};
pub use matrix::{CampaignReport, CellOutcome, CellResult, DiagnosisCheck, PrescreenedSchedule};
pub use resume::{run_campaign_journaled, run_campaign_journaled_with_io, ResumeSummary};
pub use sample::{
    run_guided_campaign, run_sampled_campaign, stratum_of, CoverageEstimate, SampledCampaign,
    StratumOutcome,
};
pub use shard::{
    campaign_fingerprint, effective_schedules, merge_shards, run_campaign_shard, ShardReport,
    ShardSpec,
};
pub use wire::{
    append_cell_result, append_diagnosis, cell_result_from_json, cell_result_to_json,
    diagnosis_from_json, diagnosis_to_json,
};
