//! The detection matrix: per-cell outcomes, the diagnosis cross-check
//! record, and the CSV/JSON artifact emitters.
//!
//! Artifacts contain only simulation-determined values (no wall-clock
//! times, no host details), so the bytes are identical for any farm
//! worker count.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use tve_core::{FailingCell, StuckCell};
use tve_soc::WrappedCore;

/// What happened when one fault met one schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CellOutcome {
    /// The schedule's metrics digest deviated from the golden run.
    Detected {
        /// Simulated cycle of the earliest deviating test's completion —
        /// the first moment the tester could have flagged the part.
        latency_cycles: u64,
        /// Names of the tests whose outcomes deviated.
        deviating: Vec<String>,
    },
    /// The faulty run was byte-identical to the golden run: the fault
    /// slipped through this schedule.
    Escape,
    /// The run itself failed (panic or schedule error) — the test
    /// *infrastructure* broke down rather than reporting a clean verdict.
    InfraFailure {
        /// The captured panic or error message.
        error: String,
    },
}

impl CellOutcome {
    /// The CSV/JSON tag of this outcome.
    pub fn tag(&self) -> &'static str {
        match self {
            CellOutcome::Detected { .. } => "detected",
            CellOutcome::Escape => "escape",
            CellOutcome::InfraFailure { .. } => "infra-failure",
        }
    }

    /// Whether the fault was noticed at all — a digest deviation *or* an
    /// outright infrastructure failure both make the part conspicuous;
    /// only a silent [`CellOutcome::Escape`] ships a defective chip.
    pub fn noticed(&self) -> bool {
        !matches!(self, CellOutcome::Escape)
    }
}

/// One cell of the detection matrix: a fault crossed with a schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CellResult {
    /// Stable fault identifier (see `FaultSpec::id`).
    pub fault_id: String,
    /// Fault class (see `FaultSpec::class`).
    pub fault_class: String,
    /// Schedule name.
    pub schedule: String,
    /// What happened.
    pub outcome: CellOutcome,
}

/// The diagnosis cross-check for one detected scan-cell fault.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DiagnosisCheck {
    /// The fault's stable identifier.
    pub fault_id: String,
    /// The core the fault was injected into.
    pub core: WrappedCore,
    /// The injected stuck cell.
    pub injected: StuckCell,
    /// The cells the diagnosis located.
    pub located: Vec<FailingCell>,
    /// The first failing BIST pattern, if any.
    pub first_failing_pattern: Option<u64>,
    /// Whether diagnosis located exactly the injected (chain, position).
    pub confirmed: bool,
}

/// A schedule the static pre-screen rejected before the campaign: it ran
/// zero simulations, and here is why.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PrescreenedSchedule {
    /// The schedule's name.
    pub schedule: String,
    /// The error-severity diagnostic codes that rejected it.
    pub codes: Vec<String>,
}

/// The complete campaign result: every (fault × schedule) cell plus the
/// diagnosis cross-check, with CSV/JSON emitters and coverage accessors.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignReport {
    /// Schedule names that actually ran, in campaign order.
    pub schedules: Vec<String>,
    /// Schedules the static pre-screen rejected (empty unless
    /// `CampaignConfig::prescreen` was set). Never silently dropped: each
    /// entry records the diagnostic codes that condemned it.
    pub prescreened: Vec<PrescreenedSchedule>,
    /// Matrix cells, fault-major in population order.
    pub cells: Vec<CellResult>,
    /// Diagnosis cross-checks for detected scan-cell faults.
    pub diagnosis: Vec<DiagnosisCheck>,
}

impl CampaignReport {
    /// Detection coverage of `schedule` over core faults (scan-cell and
    /// memory classes): detected / injected, in `[0, 1]`. Returns 1.0
    /// for an empty population.
    pub fn core_coverage(&self, schedule: &str) -> f64 {
        let core_cells: Vec<&CellResult> = self
            .cells
            .iter()
            .filter(|c| c.schedule == schedule)
            .filter(|c| c.fault_class == "scan-cell" || c.fault_class == "memory")
            .collect();
        if core_cells.is_empty() {
            return 1.0;
        }
        let detected = core_cells
            .iter()
            .filter(|c| matches!(c.outcome, CellOutcome::Detected { .. }))
            .count();
        detected as f64 / core_cells.len() as f64
    }

    /// Fault ids that escaped `schedule` (any class), in matrix order.
    pub fn escapes(&self, schedule: &str) -> Vec<&str> {
        self.cells
            .iter()
            .filter(|c| c.schedule == schedule && c.outcome == CellOutcome::Escape)
            .map(|c| c.fault_id.as_str())
            .collect()
    }

    /// `(fault_id, schedule, error)` for every infrastructure failure.
    pub fn infra_failures(&self) -> Vec<(&str, &str, &str)> {
        self.cells
            .iter()
            .filter_map(|c| match &c.outcome {
                CellOutcome::InfraFailure { error } => {
                    Some((c.fault_id.as_str(), c.schedule.as_str(), error.as_str()))
                }
                _ => None,
            })
            .collect()
    }

    /// Fault ids of core faults (scan-cell/memory) that *no* schedule
    /// detected — the union escape list that the campaign's 100 %
    /// criterion is judged on.
    pub fn union_escapes(&self) -> Vec<&str> {
        let mut best: BTreeMap<&str, bool> = BTreeMap::new();
        let mut order: Vec<&str> = Vec::new();
        for c in &self.cells {
            if c.fault_class != "scan-cell" && c.fault_class != "memory" {
                continue;
            }
            let entry = best.entry(c.fault_id.as_str()).or_insert_with(|| {
                order.push(c.fault_id.as_str());
                false
            });
            *entry |= matches!(c.outcome, CellOutcome::Detected { .. });
        }
        order.into_iter().filter(|id| !best[id]).collect()
    }

    /// Whether every diagnosis cross-check confirmed its injected cell.
    pub fn all_diagnoses_confirmed(&self) -> bool {
        self.diagnosis.iter().all(|d| d.confirmed)
    }

    /// The detection matrix as CSV: one row per (fault × schedule) cell.
    pub fn to_csv(&self) -> String {
        let mut out = String::from(
            "fault_id,fault_class,schedule,outcome,latency_cycles,deviating_tests,error\n",
        );
        for c in &self.cells {
            let (latency, deviating, error) = match &c.outcome {
                CellOutcome::Detected {
                    latency_cycles,
                    deviating,
                } => (
                    latency_cycles.to_string(),
                    deviating.join(";"),
                    String::new(),
                ),
                CellOutcome::Escape => (String::new(), String::new(), String::new()),
                CellOutcome::InfraFailure { error } => {
                    (String::new(), String::new(), error.clone())
                }
            };
            let _ = writeln!(
                out,
                "{},{},{},{},{},{},{}",
                csv_field(&c.fault_id),
                csv_field(&c.fault_class),
                csv_field(&c.schedule),
                c.outcome.tag(),
                latency,
                csv_field(&deviating),
                csv_field(&error),
            );
        }
        out
    }

    /// The full report as JSON: per-schedule coverage and escapes, the
    /// matrix cells, and the diagnosis cross-check.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"schedules\": [\n");
        for (i, s) in self.schedules.iter().enumerate() {
            let sep = if i + 1 < self.schedules.len() {
                ","
            } else {
                ""
            };
            let escapes: Vec<String> = self.escapes(s).iter().map(|e| json_string(e)).collect();
            let _ = writeln!(
                out,
                "    {{\"name\": {}, \"core_coverage\": {:.6}, \"escapes\": [{}]}}{}",
                json_string(s),
                self.core_coverage(s),
                escapes.join(", "),
                sep
            );
        }
        out.push_str("  ],\n  \"prescreened\": [\n");
        for (i, p) in self.prescreened.iter().enumerate() {
            let sep = if i + 1 < self.prescreened.len() {
                ","
            } else {
                ""
            };
            let codes: Vec<String> = p.codes.iter().map(|c| json_string(c)).collect();
            let _ = writeln!(
                out,
                "    {{\"name\": {}, \"codes\": [{}]}}{}",
                json_string(&p.schedule),
                codes.join(", "),
                sep
            );
        }
        out.push_str("  ],\n  \"cells\": [\n");
        for (i, c) in self.cells.iter().enumerate() {
            let sep = if i + 1 < self.cells.len() { "," } else { "" };
            let mut extra = String::new();
            match &c.outcome {
                CellOutcome::Detected {
                    latency_cycles,
                    deviating,
                } => {
                    let names: Vec<String> = deviating.iter().map(|d| json_string(d)).collect();
                    let _ = write!(
                        extra,
                        ", \"latency_cycles\": {latency_cycles}, \"deviating\": [{}]",
                        names.join(", ")
                    );
                }
                CellOutcome::Escape => {}
                CellOutcome::InfraFailure { error } => {
                    let _ = write!(extra, ", \"error\": {}", json_string(error));
                }
            }
            let _ = writeln!(
                out,
                "    {{\"fault\": {}, \"class\": {}, \"schedule\": {}, \"outcome\": {}{}}}{}",
                json_string(&c.fault_id),
                json_string(&c.fault_class),
                json_string(&c.schedule),
                json_string(c.outcome.tag()),
                extra,
                sep
            );
        }
        out.push_str("  ],\n  \"diagnosis\": [\n");
        for (i, d) in self.diagnosis.iter().enumerate() {
            let sep = if i + 1 < self.diagnosis.len() {
                ","
            } else {
                ""
            };
            let located: Vec<String> = d
                .located
                .iter()
                .map(|c| format!("{{\"chain\": {}, \"position\": {}}}", c.chain, c.position))
                .collect();
            let pattern = d
                .first_failing_pattern
                .map_or_else(|| "null".to_string(), |p| p.to_string());
            let _ = writeln!(
                out,
                "    {{\"fault\": {}, \"injected\": {{\"chain\": {}, \"position\": {}}}, \
                 \"located\": [{}], \"first_failing_pattern\": {}, \"confirmed\": {}}}{}",
                json_string(&d.fault_id),
                d.injected.chain,
                d.injected.position,
                located.join(", "),
                pattern,
                d.confirmed,
                sep
            );
        }
        out.push_str("  ]\n}\n");
        out
    }
}

/// Quotes a CSV field when it contains a comma, quote or newline.
fn csv_field(s: &str) -> String {
    if s.contains([',', '"', '\n']) {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

/// A JSON string literal with the mandatory escapes.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report() -> CampaignReport {
        CampaignReport {
            schedules: vec!["schedule 1 (seq, uncompressed)".into(), "s2".into()],
            prescreened: vec![PrescreenedSchedule {
                schedule: "broken (dup)".into(),
                codes: vec!["sched-dup-test".into()],
            }],
            cells: vec![
                CellResult {
                    fault_id: "scan:proc:c0p1s1".into(),
                    fault_class: "scan-cell".into(),
                    schedule: "schedule 1 (seq, uncompressed)".into(),
                    outcome: CellOutcome::Detected {
                        latency_cycles: 1234,
                        deviating: vec!["T1 proc bist".into()],
                    },
                },
                CellResult {
                    fault_id: "scan:proc:c0p1s1".into(),
                    fault_class: "scan-cell".into(),
                    schedule: "s2".into(),
                    outcome: CellOutcome::Escape,
                },
                CellResult {
                    fault_id: "ring:break@0".into(),
                    fault_class: "ring".into(),
                    schedule: "s2".into(),
                    outcome: CellOutcome::InfraFailure {
                        error: "worker panicked: \"boom, with comma\"".into(),
                    },
                },
            ],
            diagnosis: vec![DiagnosisCheck {
                fault_id: "scan:proc:c0p1s1".into(),
                core: WrappedCore::Processor,
                injected: StuckCell {
                    chain: 0,
                    position: 1,
                    value: true,
                },
                located: vec![FailingCell {
                    chain: 0,
                    position: 1,
                }],
                first_failing_pattern: Some(3),
                confirmed: true,
            }],
        }
    }

    #[test]
    fn csv_quotes_commas_and_quotes() {
        let csv = sample_report().to_csv();
        assert!(csv.contains("\"schedule 1 (seq, uncompressed)\""));
        assert!(csv.contains("\"worker panicked: \"\"boom, with comma\"\"\""));
        assert_eq!(csv.lines().count(), 4, "header + 3 cells");
        let header_cols = csv.lines().next().unwrap().split(',').count();
        assert_eq!(header_cols, 7);
    }

    #[test]
    fn json_is_well_formed() {
        let json = sample_report().to_json();
        tve_obs::check_json(&json).expect("report JSON parses");
        assert!(json.contains("\"core_coverage\": 1.000000"));
        assert!(json.contains("\\\"boom, with comma\\\""));
        assert!(json.contains("\"prescreened\""));
        assert!(json.contains("sched-dup-test"));
    }

    #[test]
    fn coverage_and_escape_accounting() {
        let r = sample_report();
        assert_eq!(r.core_coverage("schedule 1 (seq, uncompressed)"), 1.0);
        assert_eq!(r.core_coverage("s2"), 0.0);
        assert_eq!(r.escapes("s2"), vec!["scan:proc:c0p1s1"]);
        assert!(r.union_escapes().is_empty(), "detected by schedule 1");
        assert_eq!(r.infra_failures().len(), 1);
        assert!(r.all_diagnoses_confirmed());
        assert!(CellOutcome::Escape.tag() == "escape" && !CellOutcome::Escape.noticed());
    }
}
