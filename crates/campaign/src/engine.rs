//! The campaign engine: golden baselines, the (fault × schedule) matrix
//! fanned over the validation farm, and the diagnosis cross-check.

use std::collections::BTreeMap;
use std::rc::Rc;

use tve_core::{diagnose_bist, CoreModel, Schedule, StuckCell, TestWrapper, WrapperConfig};
use tve_obs::{earliest_span_end, SpanKind, StoragePolicy, TraceLog};
use tve_sched::Farm;
use tve_sim::Simulation;
use tve_soc::{
    run_scenario_prepared_traced, scan_view, JpegEncoderSoc, ScenarioMetrics, SocConfig,
    SocTestPlan, WrappedCore,
};

use crate::fault::FaultSpec;
use crate::matrix::{CampaignReport, CellOutcome, DiagnosisCheck};

/// Everything a campaign run needs, as plain (clonable) data.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// The SoC under campaign.
    pub soc: SocConfig,
    /// The test plan every schedule executes.
    pub plan: SocTestPlan,
    /// The schedules to validate (typically the four Table-I schedules).
    pub schedules: Vec<Schedule>,
    /// The fault population (see [`crate::generate`]).
    pub population: Vec<FaultSpec>,
    /// Whether to run the diagnosis cross-check on detected scan faults.
    pub diagnosis: bool,
    /// BIST patterns per diagnosis run.
    pub diagnosis_patterns: u64,
    /// Signature-window size of the diagnosis phase 1.
    pub diagnosis_window: u64,
    /// Whether to statically pre-screen the schedules (`tve-lint`) and
    /// skip — rather than panic on — statically-rejected ones. Skipped
    /// schedules are recorded in [`CampaignReport::prescreened`].
    pub prescreen: bool,
}

impl CampaignConfig {
    /// A campaign over `schedules` with sensible diagnosis defaults.
    pub fn new(
        soc: SocConfig,
        plan: SocTestPlan,
        schedules: Vec<Schedule>,
        population: Vec<FaultSpec>,
    ) -> Self {
        CampaignConfig {
            soc,
            plan,
            schedules,
            population,
            diagnosis: true,
            diagnosis_patterns: 96,
            diagnosis_window: 16,
            prescreen: false,
        }
    }

    /// The same campaign with the static pre-screen enabled.
    #[must_use]
    pub fn with_prescreen(mut self) -> Self {
        self.prescreen = true;
        self
    }
}

/// Applies `fault` to a freshly built SoC (the `prepare` hook of
/// [`run_scenario_prepared_traced`]). TAM corruption is config-driven
/// (the adaptor must exist before the EBI binds to the bus) and is a
/// no-op here.
pub fn apply_fault(soc: &JpegEncoderSoc, fault: &FaultSpec) {
    match fault {
        FaultSpec::ScanCell { core, cell } => {
            soc.wrapper_of(*core).inject_fault(Some(*cell));
        }
        FaultSpec::Memory { fault } => soc.memory.inject(*fault),
        FaultSpec::TamCorruption { .. } => {}
        FaultSpec::WirStuck { core, fault } => {
            soc.wrapper_of(*core).inject_wir_fault(Some(*fault));
        }
        FaultSpec::RingBreak { index } => soc.ring.break_segment(Some(*index)),
    }
}

/// The per-core BIST seed the plan's pattern sources use — diagnosis
/// replays the same pseudo-random stream.
fn plan_seed(plan: &SocTestPlan, core: WrappedCore) -> u64 {
    match core {
        WrappedCore::Processor => plan.seed ^ 1,
        WrappedCore::ColorConversion => plan.seed ^ 4,
        WrappedCore::Dct => plan.seed ^ 5,
        WrappedCore::MemoryPeriphery => plan.seed ^ 6,
    }
}

fn classify(golden: &ScenarioMetrics, faulty: &ScenarioMetrics, log: &TraceLog) -> CellOutcome {
    if golden.digest() == faulty.digest() {
        return CellOutcome::Escape;
    }
    // Which tests deviated? Prefer data deviations (pattern counts,
    // signatures, mismatches, errors, failing addresses); fall back to
    // timing-only shifts when the data is identical but the digest moved.
    let golden_by_name: BTreeMap<&str, _> = golden
        .result
        .slots
        .iter()
        .map(|s| (s.outcome.name.as_str(), &s.outcome))
        .collect();
    let data_of = |o: &tve_core::TestOutcome| {
        (
            o.patterns,
            o.stimulus_bits,
            o.response_bits,
            o.signature,
            o.mismatches,
            o.errors,
            o.failing_addresses.clone(),
        )
    };
    let mut deviating: Vec<String> = faulty
        .result
        .slots
        .iter()
        .filter(|s| {
            golden_by_name
                .get(s.outcome.name.as_str())
                .is_none_or(|g| data_of(g) != data_of(&s.outcome))
        })
        .map(|s| s.outcome.name.clone())
        .collect();
    if deviating.is_empty() {
        deviating = faulty
            .result
            .slots
            .iter()
            .filter(|s| {
                golden_by_name
                    .get(s.outcome.name.as_str())
                    .is_none_or(|g| (g.start, g.end) != (s.outcome.start, s.outcome.end))
            })
            .map(|s| s.outcome.name.clone())
            .collect();
    }
    // Time-to-detection: the earliest completion of a deviating test —
    // the first simulated moment the tester could have flagged the part.
    let names: Vec<&str> = deviating.iter().map(String::as_str).collect();
    let latency_cycles = earliest_span_end(log.spans.iter(), SpanKind::Test, &names)
        .map(|t| t.cycles())
        .unwrap_or(faulty.total_cycles);
    CellOutcome::Detected {
        latency_cycles,
        deviating,
    }
}

/// Runs one (fault × schedule) cell: builds a fresh SoC from `soc`,
/// injects `fault`, executes `schedule` under `plan`, and classifies the
/// outcome against the `golden` baseline of the same schedule.
///
/// This is exactly the per-cell body [`run_campaign`] fans over the farm,
/// exposed so cache-aware callers (the `tve-serve` daemon) can execute
/// and re-execute individual cells without re-running the whole matrix.
///
/// # Panics
///
/// Panics if `schedule` is not well-formed for the seven-test `plan`.
pub fn run_cell(
    soc: &SocConfig,
    plan: &SocTestPlan,
    schedule: &Schedule,
    fault: &FaultSpec,
    golden: &ScenarioMetrics,
) -> CellOutcome {
    let mut soc = soc.clone();
    if let FaultSpec::TamCorruption { policy } = fault {
        soc.tam_fault = Some(*policy);
    }
    let (metrics, log) =
        run_scenario_prepared_traced(&soc, plan, schedule, StoragePolicy::Unbounded, |soc| {
            apply_fault(soc, fault)
        })
        .unwrap_or_else(|e| panic!("schedule '{}' rejected: {e}", schedule.name));
    classify(golden, &metrics, &log)
}

/// Takes one detected scan-cell fault to the (simulated) diagnosis
/// station: replays the plan's BIST stream against a golden and a faulty
/// wrapper and checks the located cell against the injected one.
///
/// Public for the same reason as [`run_cell`]: cache-aware callers run
/// and re-run diagnosis checks individually.
pub fn diagnose_scan_fault(
    config: &CampaignConfig,
    core: WrappedCore,
    cell: StuckCell,
) -> DiagnosisCheck {
    let mut sim = Simulation::new();
    let handle = sim.handle();
    let model = Rc::new(scan_view(&config.soc, core));
    let scan = model.scan_config();
    let wrapper = |name: &str| {
        Rc::new(TestWrapper::new(
            &handle,
            WrapperConfig {
                name: name.to_string(),
                capture_cycles: config.soc.capture_cycles,
                ..WrapperConfig::default()
            },
            Rc::clone(&model) as Rc<dyn CoreModel>,
        ))
    };
    let golden = wrapper("diag-golden");
    let dut = wrapper("diag-dut");
    dut.inject_fault(Some(cell));
    let seed = plan_seed(&config.plan, core);
    let (patterns, window) = (config.diagnosis_patterns, config.diagnosis_window);
    let h = handle.clone();
    let g = Rc::clone(&golden);
    let d = Rc::clone(&dut);
    let jh =
        sim.spawn(async move { diagnose_bist(&h, &g, &d, scan, seed, patterns, window).await });
    sim.run();
    let report = jh.try_take().expect("diagnosis completes");
    let confirmed = report.failing_cells.len() == 1
        && report.failing_cells[0].chain == cell.chain
        && report.failing_cells[0].position == cell.position;
    DiagnosisCheck {
        fault_id: FaultSpec::ScanCell { core, cell }.id(),
        core,
        injected: cell,
        located: report.failing_cells.clone(),
        first_failing_pattern: report.first_failing_pattern,
        confirmed,
    }
}

/// Runs the full campaign on `farm`: golden baselines per schedule, then
/// every (fault × schedule) cell in parallel, then the diagnosis
/// cross-check on detected scan-cell faults.
///
/// Results are in submission order — fault-major, schedule-minor, exactly
/// the population × schedule order of `config` — regardless of worker
/// count, so the emitted matrix is byte-identical for any `TVE_JOBS`.
///
/// With `config.prescreen` set, every schedule is first linted against
/// the plan's static facts; schedules with error-severity diagnostics run
/// **zero** simulations and are reported in
/// [`CampaignReport::prescreened`] with their diagnostic codes — a
/// defective schedule costs microseconds instead of a golden-run panic.
///
/// This function is literally [`merge_shards`](crate::merge_shards) over
/// the single full shard `1/1` — the sharded scale-out path and the
/// single-process path are the same code, so `--shard k/n` runs merge to
/// artifacts byte-identical to this one by construction.
///
/// # Panics
///
/// Panics if a schedule is not well-formed for the seven-test plan (the
/// golden baseline fails), or if a golden run reports test errors. With
/// `config.prescreen` set, structurally defective schedules are screened
/// out before they can trip those panics.
pub fn run_campaign(config: &CampaignConfig, farm: &Farm) -> CampaignReport {
    let full = crate::shard::run_campaign_shard(config, farm, crate::shard::ShardSpec::full());
    crate::shard::merge_shards(config, std::slice::from_ref(&full))
        .expect("the full shard covers every cell")
}
