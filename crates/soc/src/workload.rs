//! Reusable workload setup: one place that knows how to build the
//! (config, plan) pairs every entry point used to re-implement.
//!
//! `table1`, `campaign`, `lint`, `kernel_bench`, the pinned-digest tests
//! and the `tve-serve` daemon all start from the same three shapes — the
//! paper-scale SoC, the small validation SoC, and the benchmark workload
//! (`--scale 100 --mem-words 2622`). [`Workload`] names those shapes once
//! and layers the common knobs (memory size, pattern-count scale,
//! per-test overrides) on top, so a "workload" is plain, clonable,
//! serializable-by-hand data that can cross a process boundary.

use crate::plan::SocTestPlan;
use crate::soc::SocConfig;

/// The base (config, plan) shape a workload starts from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkloadPreset {
    /// [`SocConfig::paper`] + [`SocTestPlan::paper`]: the full Table I
    /// reproduction.
    Paper,
    /// [`SocConfig::small`] + [`SocTestPlan::small`]: the tiny full-data
    /// validation SoC used by campaigns and most tests.
    Small,
    /// The benchmark workload pinned in `tests/kernel_digests.rs`: paper
    /// config at `memory_words = 2622`, plan scaled by 100.
    Bench,
}

impl WorkloadPreset {
    /// The stable wire name (`paper` / `small` / `bench`).
    pub fn name(self) -> &'static str {
        match self {
            WorkloadPreset::Paper => "paper",
            WorkloadPreset::Small => "small",
            WorkloadPreset::Bench => "bench",
        }
    }

    /// Parses a wire name back into a preset.
    pub fn parse(name: &str) -> Option<Self> {
        match name {
            "paper" => Some(WorkloadPreset::Paper),
            "small" => Some(WorkloadPreset::Small),
            "bench" => Some(WorkloadPreset::Bench),
            _ => None,
        }
    }
}

/// Per-test plan edits layered over a preset's [`SocTestPlan`].
///
/// This is the unit of "the user edited the plan" for incremental
/// re-validation: each field maps to the test sequences that consume it
/// (see [`PlanOverrides::touched_tests`]), so a serving layer can work
/// out which schedule results an edit can possibly change.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PlanOverrides {
    /// Test 1 (processor LBIST) pattern count.
    pub bist_proc_patterns: Option<u64>,
    /// Test 2 (deterministic processor) pattern count.
    pub det_proc_patterns: Option<u64>,
    /// Test 3 (compressed processor) pattern count.
    pub comp_proc_patterns: Option<u64>,
    /// Test 4 (color conversion LBIST) pattern count.
    pub bist_color_patterns: Option<u64>,
    /// Test 5 (deterministic DCT) pattern count.
    pub det_dct_patterns: Option<u64>,
    /// Pattern-generation seed (consumed by every test).
    pub seed: Option<u64>,
}

/// The stable wire/CLI keys of [`PlanOverrides`], in field order.
pub const PLAN_OVERRIDE_KEYS: [&str; 6] = [
    "bist_proc_patterns",
    "det_proc_patterns",
    "comp_proc_patterns",
    "bist_color_patterns",
    "det_dct_patterns",
    "seed",
];

impl PlanOverrides {
    /// True when no field is overridden.
    pub fn is_empty(&self) -> bool {
        *self == PlanOverrides::default()
    }

    /// Sets a field by its wire key; returns false for unknown keys.
    pub fn set(&mut self, key: &str, value: u64) -> bool {
        match key {
            "bist_proc_patterns" => self.bist_proc_patterns = Some(value),
            "det_proc_patterns" => self.det_proc_patterns = Some(value),
            "comp_proc_patterns" => self.comp_proc_patterns = Some(value),
            "bist_color_patterns" => self.bist_color_patterns = Some(value),
            "det_dct_patterns" => self.det_dct_patterns = Some(value),
            "seed" => self.seed = Some(value),
            _ => return false,
        }
        true
    }

    /// The overridden `(key, value)` pairs, in stable field order.
    pub fn entries(&self) -> Vec<(&'static str, u64)> {
        [
            self.bist_proc_patterns,
            self.det_proc_patterns,
            self.comp_proc_patterns,
            self.bist_color_patterns,
            self.det_dct_patterns,
            self.seed,
        ]
        .iter()
        .zip(PLAN_OVERRIDE_KEYS)
        .filter_map(|(v, k)| v.map(|v| (k, v)))
        .collect()
    }

    /// Applies the overrides to `plan`.
    pub fn apply(&self, plan: &mut SocTestPlan) {
        if let Some(v) = self.bist_proc_patterns {
            plan.bist_proc_patterns = v;
        }
        if let Some(v) = self.det_proc_patterns {
            plan.det_proc_patterns = v;
        }
        if let Some(v) = self.comp_proc_patterns {
            plan.comp_proc_patterns = v;
        }
        if let Some(v) = self.bist_color_patterns {
            plan.bist_color_patterns = v;
        }
        if let Some(v) = self.det_dct_patterns {
            plan.det_dct_patterns = v;
        }
        if let Some(v) = self.seed {
            plan.seed = v;
        }
    }

    /// Which of the seven test sequences (indices 0..=6) this edit can
    /// affect: each pattern-count field feeds exactly one test; the seed
    /// feeds every pattern source.
    pub fn touched_tests(&self) -> Vec<usize> {
        if self.seed.is_some() {
            return (0..7).collect();
        }
        [
            self.bist_proc_patterns,
            self.det_proc_patterns,
            self.comp_proc_patterns,
            self.bist_color_patterns,
            self.det_dct_patterns,
        ]
        .iter()
        .enumerate()
        .filter_map(|(i, v)| v.map(|_| i))
        .collect()
    }
}

/// A complete, self-describing workload: preset plus knobs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Workload {
    /// The base shape.
    pub preset: WorkloadPreset,
    /// Pattern-count divisor applied on top of the preset plan (1 = as
    /// is). The bench preset already carries its 1/100 scale; `scale`
    /// multiplies further.
    pub scale: u64,
    /// Memory size override (words).
    pub mem_words: Option<u32>,
    /// Per-test plan edits.
    pub overrides: PlanOverrides,
}

impl Workload {
    /// A workload at `preset` with no knobs turned.
    pub fn new(preset: WorkloadPreset) -> Self {
        Workload {
            preset,
            scale: 1,
            mem_words: None,
            overrides: PlanOverrides::default(),
        }
    }

    /// The full paper-scale Table I workload.
    pub fn paper() -> Self {
        Self::new(WorkloadPreset::Paper)
    }

    /// The small validation workload (campaigns, tests).
    pub fn small() -> Self {
        Self::new(WorkloadPreset::Small)
    }

    /// The benchmark workload of `tests/kernel_digests.rs`
    /// (`--scale 100 --mem-words 2622`).
    pub fn bench() -> Self {
        Self::new(WorkloadPreset::Bench)
    }

    /// The same workload with the memory size overridden.
    #[must_use]
    pub fn with_mem_words(mut self, words: u32) -> Self {
        self.mem_words = Some(words);
        self
    }

    /// The same workload with an extra pattern-count divisor.
    #[must_use]
    pub fn with_scale(mut self, scale: u64) -> Self {
        self.scale = scale.max(1);
        self
    }

    /// The same workload with plan edits layered on.
    #[must_use]
    pub fn with_overrides(mut self, overrides: PlanOverrides) -> Self {
        self.overrides = overrides;
        self
    }

    /// Builds the concrete `(config, plan)` pair.
    pub fn build(&self) -> (SocConfig, SocTestPlan) {
        let (mut config, mut plan) = match self.preset {
            WorkloadPreset::Paper => (SocConfig::paper(), SocTestPlan::paper()),
            WorkloadPreset::Small => (SocConfig::small(), SocTestPlan::small()),
            WorkloadPreset::Bench => {
                let mut c = SocConfig::paper();
                c.memory_words = 2622;
                (c, SocTestPlan::paper_scaled(100))
            }
        };
        if self.scale > 1 {
            plan = SocTestPlan {
                bist_proc_patterns: (plan.bist_proc_patterns / self.scale).max(1),
                det_proc_patterns: (plan.det_proc_patterns / self.scale).max(1),
                comp_proc_patterns: (plan.comp_proc_patterns / self.scale).max(1),
                bist_color_patterns: (plan.bist_color_patterns / self.scale).max(1),
                det_dct_patterns: (plan.det_dct_patterns / self.scale).max(1),
                ..plan
            };
        }
        if let Some(words) = self.mem_words {
            config.memory_words = words;
        }
        self.overrides.apply(&mut plan);
        (config, plan)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_preset_matches_pinned_workload() {
        let (config, plan) = Workload::bench().build();
        let mut want_config = SocConfig::paper();
        want_config.memory_words = 2622;
        assert_eq!(format!("{config:?}"), format!("{want_config:?}"));
        assert_eq!(
            format!("{plan:?}"),
            format!("{:?}", SocTestPlan::paper_scaled(100))
        );
    }

    #[test]
    fn knobs_compose() {
        let mut overrides = PlanOverrides::default();
        assert!(overrides.set("det_dct_patterns", 7));
        assert!(!overrides.set("nope", 1));
        let (config, plan) = Workload::paper()
            .with_scale(100)
            .with_mem_words(64)
            .with_overrides(overrides)
            .build();
        assert_eq!(config.memory_words, 64);
        assert_eq!(plan.det_dct_patterns, 7);
        assert_eq!(
            plan.bist_proc_patterns,
            SocTestPlan::paper_scaled(100).bist_proc_patterns
        );
    }

    #[test]
    fn touched_tests_map_fields_to_sequences() {
        let mut o = PlanOverrides::default();
        o.set("det_dct_patterns", 3);
        assert_eq!(o.touched_tests(), vec![4]);
        o.set("bist_proc_patterns", 3);
        assert_eq!(o.touched_tests(), vec![0, 4]);
        let mut s = PlanOverrides::default();
        s.set("seed", 1);
        assert_eq!(s.touched_tests(), (0..7).collect::<Vec<_>>());
        assert_eq!(o.entries().len(), 2);
        assert!(PlanOverrides::default().is_empty());
    }
}
