//! The functional JPEG encoding math shared by the cores and the software
//! reference: JFIF color conversion, the forward 8×8 DCT, quantization and
//! zigzag ordering.
//!
//! The SoC under test is a JPEG *encoder*; having the real math in the
//! functional TLMs lets integration tests prove that wrappers are fully
//! transparent in functional mode (an encoded block through the wrapped
//! SoC equals the software reference).

/// The standard JPEG luminance quantization table (Annex K), row-major.
pub const LUMA_QUANT: [u16; 64] = [
    16, 11, 10, 16, 24, 40, 51, 61, //
    12, 12, 14, 19, 26, 58, 60, 55, //
    14, 13, 16, 24, 40, 57, 69, 56, //
    14, 17, 22, 29, 51, 87, 80, 62, //
    18, 22, 37, 56, 68, 109, 103, 77, //
    24, 35, 55, 64, 81, 104, 113, 92, //
    49, 64, 78, 87, 103, 121, 120, 101, //
    72, 92, 95, 98, 112, 100, 103, 99,
];

/// JFIF RGB → YCbCr conversion (full range, rounded).
pub fn rgb_to_ycbcr(rgb: [u8; 3]) -> [u8; 3] {
    let (r, g, b) = (rgb[0] as f64, rgb[1] as f64, rgb[2] as f64);
    let y = 0.299 * r + 0.587 * g + 0.114 * b;
    let cb = 128.0 - 0.168_736 * r - 0.331_264 * g + 0.5 * b;
    let cr = 128.0 + 0.5 * r - 0.418_688 * g - 0.081_312 * b;
    [
        y.round().clamp(0.0, 255.0) as u8,
        cb.round().clamp(0.0, 255.0) as u8,
        cr.round().clamp(0.0, 255.0) as u8,
    ]
}

/// The 2-D forward DCT of an 8×8 block (row-major), type-II with
/// orthonormal scaling, as in the JPEG standard.
pub fn fdct8x8(block: &[i32; 64]) -> [f64; 64] {
    let mut out = [0.0f64; 64];
    let c = |k: usize| {
        if k == 0 {
            std::f64::consts::FRAC_1_SQRT_2
        } else {
            1.0
        }
    };
    for v in 0..8 {
        for u in 0..8 {
            let mut sum = 0.0;
            for y in 0..8 {
                for x in 0..8 {
                    sum += block[y * 8 + x] as f64
                        * ((2 * x + 1) as f64 * u as f64 * std::f64::consts::PI / 16.0).cos()
                        * ((2 * y + 1) as f64 * v as f64 * std::f64::consts::PI / 16.0).cos();
                }
            }
            out[v * 8 + u] = 0.25 * c(u) * c(v) * sum;
        }
    }
    out
}

/// Forward DCT followed by quantization: the DCT core's data path.
pub fn fdct_quantize(block: &[i32; 64], quant: &[u16; 64]) -> [i32; 64] {
    let coeffs = fdct8x8(block);
    let mut out = [0i32; 64];
    for i in 0..64 {
        out[i] = (coeffs[i] / quant[i] as f64).round() as i32;
    }
    out
}

/// The JPEG zigzag scan order: `ZIGZAG[k]` is the row-major index of the
/// `k`-th coefficient in zigzag order.
pub const ZIGZAG: [usize; 64] = [
    0, 1, 8, 16, 9, 2, 3, 10, 17, 24, 32, 25, 18, 11, 4, 5, 12, 19, 26, 33, 40, 48, 41, 34, 27, 20,
    13, 6, 7, 14, 21, 28, 35, 42, 49, 56, 57, 50, 43, 36, 29, 22, 15, 23, 30, 37, 44, 51, 58, 59,
    52, 45, 38, 31, 39, 46, 53, 60, 61, 54, 47, 55, 62, 63,
];

/// Reorders quantized coefficients into zigzag order.
pub fn zigzag_scan(coeffs: &[i32; 64]) -> [i32; 64] {
    let mut out = [0i32; 64];
    for (k, &idx) in ZIGZAG.iter().enumerate() {
        out[k] = coeffs[idx];
    }
    out
}

/// Encodes one 8×8 RGB block to quantized, zigzag-ordered luminance
/// coefficients — the software reference against which the SoC-driven
/// pipeline is validated.
pub fn encode_block_reference(rgb_block: &[[u8; 3]; 64]) -> [i32; 64] {
    let mut samples = [0i32; 64];
    for (i, px) in rgb_block.iter().enumerate() {
        let [y, _, _] = rgb_to_ycbcr(*px);
        samples[i] = y as i32 - 128; // level shift
    }
    zigzag_scan(&fdct_quantize(&samples, &LUMA_QUANT))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_color_conversions() {
        assert_eq!(rgb_to_ycbcr([0, 0, 0]), [0, 128, 128]);
        assert_eq!(rgb_to_ycbcr([255, 255, 255]), [255, 128, 128]);
        let [y, cb, cr] = rgb_to_ycbcr([255, 0, 0]);
        assert_eq!(y, 76);
        assert_eq!(cb, 85);
        assert_eq!(cr, 255);
    }

    #[test]
    fn dct_of_flat_block_is_pure_dc() {
        let block = [100i32; 64];
        let coeffs = fdct8x8(&block);
        assert!((coeffs[0] - 800.0).abs() < 1e-9, "DC = 8 * value");
        for (i, &c) in coeffs.iter().enumerate().skip(1) {
            assert!(c.abs() < 1e-9, "AC coefficient {i} = {c}");
        }
    }

    #[test]
    fn dct_parseval_energy_is_preserved() {
        let mut block = [0i32; 64];
        for (i, b) in block.iter_mut().enumerate() {
            *b = ((i as i32 * 37) % 255) - 128;
        }
        let spatial: f64 = block.iter().map(|&x| (x as f64).powi(2)).sum();
        let coeffs = fdct8x8(&block);
        let spectral: f64 = coeffs.iter().map(|&c| c.powi(2)).sum();
        assert!(
            (spatial - spectral).abs() / spatial < 1e-9,
            "orthonormal DCT must preserve energy"
        );
    }

    #[test]
    fn quantization_shrinks_high_frequencies() {
        let mut block = [0i32; 64];
        for (i, b) in block.iter_mut().enumerate() {
            *b = if (i / 8 + i % 8) % 2 == 0 { 100 } else { -100 };
        }
        let q = fdct_quantize(&block, &LUMA_QUANT);
        let nonzero = q.iter().filter(|&&c| c != 0).count();
        assert!(nonzero < 64, "quantization must zero some coefficients");
        assert!(nonzero > 0);
    }

    #[test]
    fn zigzag_is_a_permutation() {
        let mut seen = [false; 64];
        for &i in &ZIGZAG {
            assert!(!seen[i], "duplicate index {i}");
            seen[i] = true;
        }
        // Spot checks against the standard order.
        assert_eq!(ZIGZAG[0], 0);
        assert_eq!(ZIGZAG[1], 1);
        assert_eq!(ZIGZAG[2], 8);
        assert_eq!(ZIGZAG[63], 63);
    }

    #[test]
    fn reference_encoder_flat_block() {
        let block = [[128u8, 128, 128]; 64];
        let coeffs = encode_block_reference(&block);
        // Gray 128 level-shifts to ~0: everything quantizes to zero.
        assert!(coeffs.iter().all(|&c| c == 0), "{coeffs:?}");
    }
}
