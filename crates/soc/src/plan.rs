//! The case study's test plan (paper Section IV): the seven test sequences,
//! the four schedules, and the scenario runner producing Table I's metrics.

use std::fmt;
use std::rc::Rc;

use tve_core::{
    execute_schedule_traced, AteSource, BistSource, CompressedAteSource, DataPolicy,
    MemoryTestPlan, ReadBack, Schedule, ScheduleError, ScheduleResult, TestRun, WrapperMode,
};
use tve_memtest::{MarchTest, PatternTest};
use tve_obs::{Recorder, StoragePolicy, TraceLog};
use tve_sim::{Duration, Simulation};
use tve_tlm::TamIf;

use crate::soc::{
    initiators, JpegEncoderSoc, SocConfig, CODEC_ADDR, COLOR_WRAPPER_ADDR, DCT_WRAPPER_ADDR,
    MEM_BASE, PROC_WRAPPER_ADDR, RING_CODEC, RING_COLOR, RING_DCT, RING_EBI, RING_PROC,
};

/// Pattern counts for the seven test sequences.
///
/// The paper's counts ([`SocTestPlan::paper`]): 100 k pseudo-random
/// patterns for the processor BIST, 20 k deterministic (plain and 50×
/// compressed), 10 k for the color conversion BIST, 10 k for the DCT, and
/// MATS+ plus pattern tests over the full 1 MiB memory, controller- and
/// processor-driven.
#[derive(Debug, Clone)]
pub struct SocTestPlan {
    /// Test 1: processor LBIST pattern count.
    pub bist_proc_patterns: u64,
    /// Test 2: deterministic processor patterns (uncompressed, from ATE).
    pub det_proc_patterns: u64,
    /// Test 3: deterministic processor patterns at 50× compression.
    pub comp_proc_patterns: u64,
    /// Test 4: color conversion LBIST pattern count.
    pub bist_color_patterns: u64,
    /// Test 5: deterministic DCT patterns (from ATE).
    pub det_dct_patterns: u64,
    /// Memory march algorithm (tests 6 and 7).
    pub march: MarchTest,
    /// Memory background pattern tests (tests 6 and 7).
    pub pattern_tests: Vec<PatternTest>,
    /// Data policy for all sequences.
    pub policy: DataPolicy,
    /// Seed for all pattern generation.
    pub seed: u64,
}

impl SocTestPlan {
    /// The paper's pattern counts and memory test composition.
    pub fn paper() -> Self {
        SocTestPlan {
            bist_proc_patterns: 100_000,
            det_proc_patterns: 20_000,
            comp_proc_patterns: 20_000,
            bist_color_patterns: 10_000,
            det_dct_patterns: 10_000,
            march: MarchTest::mats_plus(),
            pattern_tests: vec![
                PatternTest::Checkerboard,
                PatternTest::Solid(0),
                PatternTest::Solid(u32::MAX),
                PatternTest::Solid(0x0F0F_0F0F),
                PatternTest::AddressInData,
            ],
            policy: DataPolicy::Volume,
            seed: 0xDA7E_2009,
        }
    }

    /// A proportionally scaled-down plan (`1/divisor` of every pattern
    /// count) for quick exploration runs.
    ///
    /// # Panics
    ///
    /// Panics if `divisor` is zero.
    pub fn paper_scaled(divisor: u64) -> Self {
        assert!(divisor > 0, "divisor must be positive");
        let p = Self::paper();
        SocTestPlan {
            bist_proc_patterns: (p.bist_proc_patterns / divisor).max(1),
            det_proc_patterns: (p.det_proc_patterns / divisor).max(1),
            comp_proc_patterns: (p.comp_proc_patterns / divisor).max(1),
            bist_color_patterns: (p.bist_color_patterns / divisor).max(1),
            det_dct_patterns: (p.det_dct_patterns / divisor).max(1),
            ..p
        }
    }

    /// A tiny full-data plan for validation runs on [`SocConfig::small`].
    pub fn small() -> Self {
        SocTestPlan {
            bist_proc_patterns: 30,
            det_proc_patterns: 20,
            comp_proc_patterns: 10,
            bist_color_patterns: 20,
            det_dct_patterns: 20,
            march: MarchTest::mats_plus(),
            pattern_tests: vec![PatternTest::Checkerboard, PatternTest::AddressInData],
            policy: DataPolicy::Full,
            seed: 7,
        }
    }
}

/// Builds the seven test sequences of Section IV as schedulable
/// [`TestRun`]s, indexed `0..=6` for tests 1–7.
///
/// Each run first configures its target infrastructure over the
/// configuration scan ring (the step a hand-written test program can get
/// wrong — which the Virtual ATE then catches).
pub fn build_test_runs(soc: &JpegEncoderSoc, plan: &SocTestPlan) -> Vec<TestRun> {
    build_test_runs_traced(soc, plan, None)
}

/// [`build_test_runs`] with observability: when a recorder is given, every
/// pattern source additionally records its run as a
/// [`tve_obs::SpanKind::Burst`] span on its `src/<name>` track.
pub fn build_test_runs_traced(
    soc: &JpegEncoderSoc,
    plan: &SocTestPlan,
    recorder: Option<&Rc<Recorder>>,
) -> Vec<TestRun> {
    let cfg = &soc.config;
    let mut runs = Vec::new();

    // Test 1: BIST of the full-scan processor core.
    {
        let ring = Rc::clone(&soc.ring);
        let mut src = BistSource::new(
            &soc.handle,
            "T1 proc BIST",
            Rc::clone(&soc.bus) as Rc<dyn TamIf>,
            PROC_WRAPPER_ADDR,
            initiators::BIST_PROC,
            cfg.proc_scan,
            plan.bist_proc_patterns,
            plan.policy,
            plan.seed ^ 1,
        );
        if let Some(rec) = recorder {
            src = src.with_recorder(Rc::clone(rec));
        }
        runs.push(TestRun::new("T1 proc BIST", async move {
            ring.write(RING_PROC, WrapperMode::Bist.encode()).await;
            src.run().await
        }));
    }

    // Test 2: deterministic logic test of the processor, patterns in ATE.
    {
        let ring = Rc::clone(&soc.ring);
        let src = AteSource {
            handle: soc.handle.clone(),
            name: "T2 proc det".to_string(),
            port: Rc::clone(&soc.ebi) as Rc<dyn TamIf>,
            wrapper_addr: PROC_WRAPPER_ADDR,
            read_back: ReadBack::Combined,
            initiator: initiators::ATE,
            scan: cfg.proc_scan,
            patterns: plan.det_proc_patterns,
            policy: plan.policy,
            seed: plan.seed ^ 2,
            recorder: recorder.map(Rc::clone),
        };
        runs.push(TestRun::new("T2 proc det", async move {
            ring.write(RING_EBI, 1).await;
            ring.write(RING_PROC, WrapperMode::IntTest.encode()).await;
            src.run().await
        }));
    }

    // Test 3: deterministic logic test with 50x compressed test data.
    {
        let ring = Rc::clone(&soc.ring);
        let src = CompressedAteSource {
            handle: soc.handle.clone(),
            name: "T3 proc det 50x".to_string(),
            port: Rc::clone(&soc.ebi) as Rc<dyn TamIf>,
            codec_addr: CODEC_ADDR,
            compressed_bits: match plan.policy {
                DataPolicy::Volume => soc.codec.compressed_bits(),
                // Full data: the compressed stream is one reseeding seed.
                DataPolicy::Full => 64,
            },
            compacted_bits: soc.codec.compacted_bits(),
            codec: soc
                .reseeding
                .clone()
                .map(|c| c as Rc<dyn tve_tpg::Compressor>),
            cares_per_cube: 24,
            initiator: initiators::ATE,
            scan: cfg.proc_scan,
            patterns: plan.comp_proc_patterns,
            policy: plan.policy,
            seed: plan.seed ^ 3,
            recorder: recorder.map(Rc::clone),
        };
        runs.push(TestRun::new("T3 proc det 50x", async move {
            ring.write(RING_EBI, 1).await;
            ring.write(RING_PROC, WrapperMode::IntTest.encode()).await;
            ring.write(RING_CODEC, 1).await;
            src.run().await
        }));
    }

    // Test 4: BIST of the color conversion core.
    {
        let ring = Rc::clone(&soc.ring);
        let mut src = BistSource::new(
            &soc.handle,
            "T4 color BIST",
            Rc::clone(&soc.bus) as Rc<dyn TamIf>,
            COLOR_WRAPPER_ADDR,
            initiators::BIST_COLOR,
            cfg.color_scan,
            plan.bist_color_patterns,
            plan.policy,
            plan.seed ^ 4,
        );
        if let Some(rec) = recorder {
            src = src.with_recorder(Rc::clone(rec));
        }
        runs.push(TestRun::new("T4 color BIST", async move {
            ring.write(RING_COLOR, WrapperMode::Bist.encode()).await;
            src.run().await
        }));
    }

    // Test 5: deterministic logic test of the DCT core.
    {
        let ring = Rc::clone(&soc.ring);
        let src = AteSource {
            handle: soc.handle.clone(),
            name: "T5 dct det".to_string(),
            port: Rc::clone(&soc.ebi) as Rc<dyn TamIf>,
            wrapper_addr: DCT_WRAPPER_ADDR,
            read_back: ReadBack::Combined,
            initiator: initiators::ATE,
            scan: cfg.dct_scan,
            patterns: plan.det_dct_patterns,
            policy: plan.policy,
            seed: plan.seed ^ 5,
            recorder: recorder.map(Rc::clone),
        };
        runs.push(TestRun::new("T5 dct det", async move {
            ring.write(RING_EBI, 1).await;
            ring.write(RING_DCT, WrapperMode::IntTest.encode()).await;
            src.run().await
        }));
    }

    // Test 6: controller-driven array BIST of the embedded memory.
    {
        let controller = Rc::clone(&soc.controller);
        let p = MemoryTestPlan {
            name: "T6 mem march (ctrl)".to_string(),
            march: plan.march.clone(),
            patterns: plan.pattern_tests.clone(),
            base_addr: MEM_BASE,
            words: cfg.memory_words,
            op_overhead: Duration::cycles(cfg.controller_op_overhead),
            // The dedicated BIST engine pipelines its accesses; the deep
            // posted queue lets it recover bandwidth lost while long scan
            // bursts hold the bus (and thus saturate a contended TAM).
            posted_depth: 128,
            policy: plan.policy,
        };
        runs.push(TestRun::new("T6 mem march (ctrl)", async move {
            controller.run_memory_test(&p).await
        }));
    }

    // Test 7: the processor drives the same array tests from L1 cache.
    {
        let processor = Rc::clone(&soc.processor);
        let p = MemoryTestPlan {
            name: "T7 mem march (proc)".to_string(),
            march: plan.march.clone(),
            patterns: plan.pattern_tests.clone(),
            base_addr: MEM_BASE,
            words: cfg.memory_words,
            op_overhead: Duration::cycles(cfg.processor_op_overhead),
            // Load/store loop: each access completes before the next.
            posted_depth: 1,
            policy: plan.policy,
        };
        runs.push(TestRun::new("T7 mem march (proc)", async move {
            processor.run_memory_test(&p).await
        }));
    }

    runs
}

/// The four test schedules of Section IV (test indices are zero-based:
/// test *k* of the paper is index `k-1`).
pub fn paper_schedules() -> [Schedule; 4] {
    [
        // 1) Sequential: tests 1, 2, 4, 5, 7.
        Schedule::new(
            "schedule 1 (seq, uncompressed)",
            vec![vec![0], vec![1], vec![3], vec![4], vec![6]],
        ),
        // 2) Sequential: tests 1, 3, 4, 5, 6.
        Schedule::new(
            "schedule 2 (seq, compressed)",
            vec![vec![0], vec![2], vec![3], vec![4], vec![5]],
        ),
        // 3) Concurrent {1,5}, then {2,4}, then 7.
        Schedule::new(
            "schedule 3 (conc, uncompressed)",
            vec![vec![0, 4], vec![1, 3], vec![6]],
        ),
        // 4) Concurrent {1,5}, then {3,4,6}.
        Schedule::new(
            "schedule 4 (conc, compressed)",
            vec![vec![0, 4], vec![2, 3, 5]],
        ),
    ]
}

/// Power figures of one simulated scenario (present when the SoC config
/// enables the power model).
#[derive(Debug, Clone)]
pub struct PowerSummary {
    /// Peak windowed power.
    pub peak: f64,
    /// Average power over the schedule.
    pub average: f64,
    /// Total energy (power x cycles).
    pub energy: f64,
    /// Per-component energy, alphabetically.
    pub per_source: Vec<(String, f64)>,
}

/// Table-I-style metrics of one simulated scenario.
#[derive(Debug, Clone)]
pub struct ScenarioMetrics {
    /// Schedule name.
    pub schedule: String,
    /// Peak TAM utilization in `[0, 1]`.
    pub peak_utilization: f64,
    /// Average TAM utilization in `[0, 1]`.
    pub avg_utilization: f64,
    /// Test length in cycles.
    pub total_cycles: u64,
    /// Host CPU time spent simulating.
    pub cpu: std::time::Duration,
    /// Power figures, when metered.
    pub power: Option<PowerSummary>,
    /// The underlying per-test results.
    pub result: ScheduleResult,
}

impl ScenarioMetrics {
    /// FNV-1a digest of every simulation-determined field — everything
    /// except host CPU times, which vary run to run. Two runs of the same
    /// scenario must produce equal digests regardless of host load or
    /// how many farm workers ran alongside; see `tve-sched`'s farm
    /// determinism tests.
    pub fn digest(&self) -> u64 {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x100_0000_01b3;
        let mut h = OFFSET;
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                h = (h ^ b as u64).wrapping_mul(PRIME);
            }
        };
        eat(self.schedule.as_bytes());
        eat(&self.peak_utilization.to_bits().to_le_bytes());
        eat(&self.avg_utilization.to_bits().to_le_bytes());
        eat(&self.total_cycles.to_le_bytes());
        if let Some(p) = &self.power {
            eat(&p.peak.to_bits().to_le_bytes());
            eat(&p.average.to_bits().to_le_bytes());
            eat(&p.energy.to_bits().to_le_bytes());
            for (name, energy) in &p.per_source {
                eat(name.as_bytes());
                eat(&energy.to_bits().to_le_bytes());
            }
        }
        for slot in &self.result.slots {
            let o = &slot.outcome;
            eat(&(slot.phase as u64).to_le_bytes());
            eat(o.name.as_bytes());
            eat(&o.patterns.to_le_bytes());
            eat(&o.stimulus_bits.to_le_bytes());
            eat(&o.response_bits.to_le_bytes());
            eat(&o.signature.unwrap_or(0).to_le_bytes());
            eat(&o.mismatches.to_le_bytes());
            eat(&o.errors.to_le_bytes());
            for addr in &o.failing_addresses {
                eat(&addr.to_le_bytes());
            }
            eat(&o.start.cycles().to_le_bytes());
            eat(&o.end.cycles().to_le_bytes());
        }
        h
    }
}

impl fmt::Display for ScenarioMetrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: peak {:.0}%, avg {:.0}%, {:.1} Mcycles, {:.2?} CPU",
            self.schedule,
            self.peak_utilization * 100.0,
            self.avg_utilization * 100.0,
            self.total_cycles as f64 / 1e6,
            self.cpu
        )
    }
}

/// Builds a fresh SoC, executes `schedule` over the plan's test sequences,
/// and reports the Table I metrics for that scenario.
///
/// # Errors
///
/// Returns [`ScheduleError`] if `schedule` is not well-formed for the
/// seven-test list.
pub fn run_scenario(
    config: &SocConfig,
    plan: &SocTestPlan,
    schedule: &Schedule,
) -> Result<ScenarioMetrics, ScheduleError> {
    run_scenario_impl(config, plan, schedule, None, None, |_| {})
}

/// [`run_scenario`] with an explicit loosely-timed quantum instead of the
/// `TVE_QUANTUM` environment variable: a zero quantum is the default
/// cycle-accurate mode, a nonzero quantum opts into temporal decoupling.
/// Results are deterministic for a fixed quantum; see
/// `tests/kernel_digests.rs` for the pinned digests of both modes.
///
/// # Errors
///
/// Returns [`ScheduleError`] if `schedule` is not well-formed for the
/// seven-test list.
pub fn run_scenario_quantum(
    config: &SocConfig,
    plan: &SocTestPlan,
    schedule: &Schedule,
    quantum: Duration,
) -> Result<ScenarioMetrics, ScheduleError> {
    run_scenario_impl(config, plan, schedule, Some(quantum), None, |_| {})
}

/// [`run_scenario`] with a preparation hook: `prepare` runs on the freshly
/// built SoC before any test sequence is constructed or executed — the
/// injection point of a fault campaign (stuck scan cells, memory faults,
/// WIR faults, broken ring segments).
///
/// With a no-op hook this is exactly [`run_scenario`].
///
/// # Errors
///
/// Returns [`ScheduleError`] if `schedule` is not well-formed for the
/// seven-test list.
pub fn run_scenario_prepared<F: FnOnce(&JpegEncoderSoc)>(
    config: &SocConfig,
    plan: &SocTestPlan,
    schedule: &Schedule,
    prepare: F,
) -> Result<ScenarioMetrics, ScheduleError> {
    run_scenario_impl(config, plan, schedule, None, None, prepare)
}

/// [`run_scenario_prepared`] with observability: the recorder is attached
/// before `prepare` runs, and the recorded [`TraceLog`] is returned — a
/// campaign derives time-to-detection from its `Test` spans.
///
/// # Errors
///
/// Returns [`ScheduleError`] if `schedule` is not well-formed for the
/// seven-test list.
pub fn run_scenario_prepared_traced<F: FnOnce(&JpegEncoderSoc)>(
    config: &SocConfig,
    plan: &SocTestPlan,
    schedule: &Schedule,
    storage: StoragePolicy,
    prepare: F,
) -> Result<(ScenarioMetrics, TraceLog), ScheduleError> {
    let rec = Rc::new(Recorder::new(storage));
    let metrics = run_scenario_impl(config, plan, schedule, None, Some(&rec), prepare)?;
    Ok((metrics, rec.take_log()))
}

/// [`run_scenario`] with observability: builds the SoC with a
/// [`Recorder`] of the given storage policy attached to every block, runs
/// the scenario, and returns the metrics together with the recorded
/// [`TraceLog`] (export it with [`tve_obs::write_chrome_trace`] or
/// [`tve_obs::write_spans_csv`]).
///
/// Tracing is pure observation: the metrics — including
/// [`ScenarioMetrics::digest`] — are identical to an untraced
/// [`run_scenario`] of the same scenario.
///
/// # Errors
///
/// Returns [`ScheduleError`] if `schedule` is not well-formed for the
/// seven-test list.
pub fn run_scenario_traced(
    config: &SocConfig,
    plan: &SocTestPlan,
    schedule: &Schedule,
    storage: StoragePolicy,
) -> Result<(ScenarioMetrics, TraceLog), ScheduleError> {
    let rec = Rc::new(Recorder::new(storage));
    let metrics = run_scenario_impl(config, plan, schedule, None, Some(&rec), |_| {})?;
    Ok((metrics, rec.take_log()))
}

fn run_scenario_impl<F: FnOnce(&JpegEncoderSoc)>(
    config: &SocConfig,
    plan: &SocTestPlan,
    schedule: &Schedule,
    quantum: Option<Duration>,
    recorder: Option<&Rc<Recorder>>,
    prepare: F,
) -> Result<ScenarioMetrics, ScheduleError> {
    // `Simulation::from_env` honors `TVE_QUANTUM`: unset/0 is the default
    // cycle-accurate mode (digest-stable, see `tests/kernel_digests.rs`);
    // a nonzero quantum opts this scenario into loosely-timed temporal
    // decoupling, where timings — and therefore digests — may differ.
    // An explicit `quantum` sidesteps the environment entirely.
    let mut sim = match quantum {
        Some(q) => Simulation::with_quantum(q),
        None => Simulation::from_env(),
    };
    let soc = JpegEncoderSoc::build(&sim.handle(), config.clone());
    if let Some(rec) = recorder {
        soc.attach_recorder(rec);
    }
    prepare(&soc);
    let tests = build_test_runs_traced(&soc, plan, recorder);
    let result = execute_schedule_traced(&mut sim, tests, schedule, recorder)?;
    soc.bus.observe_monitor_until(sim.now());
    if let Some(rec) = recorder {
        // Keep the trace's observation span consistent with the monitor's,
        // so utilization recomputed from spans matches the monitor exactly.
        rec.observe_until(sim.now());
    }
    let monitor = soc.bus.monitor();
    // Average over the full observed activity span (simulation start to
    // last bus activity): consistent with the windows peak detection uses.
    let span = monitor.last_activity_end();
    let power = soc.power_meter.as_ref().map(|meter| {
        let mut m = meter.borrow_mut();
        m.observe_until(sim.now());
        let span = m.last_activity_end();
        PowerSummary {
            peak: m.peak_power(),
            average: m.average_power(span),
            energy: m.total_energy(),
            per_source: m.per_source().map(|(k, v)| (k.to_string(), v)).collect(),
        }
    });
    Ok(ScenarioMetrics {
        schedule: schedule.name.clone(),
        peak_utilization: monitor.peak_utilization(),
        avg_utilization: monitor.average_utilization(span),
        total_cycles: result.total_cycles,
        cpu: result.wall,
        power,
        result,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mini_config() -> SocConfig {
        SocConfig {
            memory_words: 64,
            ..SocConfig::small()
        }
    }

    #[test]
    fn paper_schedules_are_well_formed() {
        for s in paper_schedules() {
            s.validate(7).unwrap();
        }
    }

    #[test]
    fn all_four_scenarios_run_clean_on_miniature() {
        let cfg = mini_config();
        let plan = SocTestPlan::small();
        for schedule in paper_schedules() {
            let m = run_scenario(&cfg, &plan, &schedule).unwrap();
            assert!(m.result.clean(), "{schedule:?}: {}", m.result);
            assert!(m.total_cycles > 0);
            assert!(m.peak_utilization > 0.0 && m.peak_utilization <= 1.0);
            assert!(m.avg_utilization > 0.0 && m.avg_utilization <= 1.0);
            assert!(m.peak_utilization >= m.avg_utilization);
        }
    }

    #[test]
    fn concurrent_schedules_are_shorter_sequential_equal_volume() {
        // On the miniature: schedule 3 must beat schedule 1 (same tests),
        // schedule 4 must beat schedule 2.
        let cfg = mini_config();
        let plan = SocTestPlan {
            policy: DataPolicy::Volume,
            ..SocTestPlan::small()
        };
        let s = paper_schedules();
        let m: Vec<_> = s
            .iter()
            .map(|sched| run_scenario(&cfg, &plan, sched).unwrap())
            .collect();
        assert!(
            m[2].total_cycles < m[0].total_cycles,
            "concurrency must shorten schedule 1: {} vs {}",
            m[2].total_cycles,
            m[0].total_cycles
        );
        assert!(
            m[3].total_cycles < m[1].total_cycles,
            "concurrency must shorten schedule 2: {} vs {}",
            m[3].total_cycles,
            m[1].total_cycles
        );
    }

    #[test]
    fn full_policy_produces_signatures() {
        let cfg = mini_config();
        let plan = SocTestPlan::small();
        let m = run_scenario(&cfg, &plan, &paper_schedules()[0]).unwrap();
        let t1 = m.result.slot("T1 proc BIST").unwrap();
        assert!(t1.outcome.signature.is_some());
        let t2 = m.result.slot("T2 proc det").unwrap();
        assert!(t2.outcome.signature.is_some());
    }

    #[test]
    fn traced_scenario_is_bit_identical_and_captures_spans() {
        use tve_obs::{SpanKind, StoragePolicy};
        let cfg = mini_config();
        let plan = SocTestPlan::small();
        let schedule = &paper_schedules()[2];
        let plain = run_scenario(&cfg, &plan, schedule).unwrap();
        let (traced, log) =
            run_scenario_traced(&cfg, &plan, schedule, StoragePolicy::Unbounded).unwrap();
        assert_eq!(plain.digest(), traced.digest(), "tracing must not perturb");
        // Every instrumented layer shows up: bus transfers, wrapper scans,
        // ring rotations, schedule phases and per-test spans.
        let tracks = log.tracks();
        assert!(tracks.contains(&"system-bus/TAM"), "{tracks:?}");
        assert!(tracks.contains(&"proc-wrapper"), "{tracks:?}");
        assert!(tracks.contains(&"config-ring"), "{tracks:?}");
        assert!(tracks.contains(&"schedule"), "{tracks:?}");
        assert!(tracks.contains(&"tests"), "{tracks:?}");
        assert!(log
            .spans_on("system-bus/TAM", SpanKind::Transfer)
            .next()
            .is_some());
        assert_eq!(
            log.spans_on("schedule", SpanKind::Phase).count(),
            schedule.phases.len()
        );
        // An Off recorder keeps no spans and still changes nothing.
        let (off, off_log) =
            run_scenario_traced(&cfg, &plan, schedule, StoragePolicy::Off).unwrap();
        assert_eq!(off.digest(), plain.digest());
        assert!(off_log.spans.is_empty());
    }

    #[test]
    fn prepared_hook_injects_faults_and_noop_matches_plain() {
        use crate::soc::WrappedCore;
        use tve_core::StuckCell;
        let cfg = mini_config();
        let plan = SocTestPlan::small();
        let schedule = &paper_schedules()[0];
        let plain = run_scenario(&cfg, &plan, schedule).unwrap();
        let noop = run_scenario_prepared(&cfg, &plan, schedule, |_| {}).unwrap();
        assert_eq!(plain.digest(), noop.digest(), "no-op hook must be inert");
        let faulty = run_scenario_prepared(&cfg, &plan, schedule, |soc| {
            soc.wrapper_of(WrappedCore::Processor)
                .inject_fault(Some(StuckCell {
                    chain: 0,
                    position: 3,
                    value: true,
                }));
        })
        .unwrap();
        assert_ne!(
            plain.digest(),
            faulty.digest(),
            "stuck cell must move the digest"
        );
    }

    #[test]
    fn scaled_plan_divides_counts() {
        let p = SocTestPlan::paper_scaled(100);
        assert_eq!(p.bist_proc_patterns, 1000);
        assert_eq!(p.det_dct_patterns, 100);
    }
}
