//! The bus-based JPEG encoder SoC of the paper's Fig. 4, including the test
//! infrastructure (wrappers, decompressor/compactor, test controller, EBI,
//! configuration scan bus), with the system bus reused as TAM.

use std::rc::Rc;

use std::cell::RefCell;

use tve_core::{
    CodecConfig, ConfigClient, ConfigScanRing, DataPolicy, DecompressorCompactor, Ebi,
    ScanPowerProfile, SyntheticLogicCore, TestController, TestWrapper, VirtualAte, WrapperConfig,
};
use tve_obs::Recorder;
use tve_sim::{Duration, SimHandle};
use tve_tlm::{
    AddrRange, ArbiterPolicy, BusConfig, BusTam, FaultyTam, FaultyTamPolicy, InitiatorId,
    PowerMeter, SinkTarget, TamIf,
};
use tve_tpg::{Compressor, ReseedingCodec, ScanConfig};

use crate::cores::{ColorConversionCore, DctCore, MemoryCore};

/// TAM address of the memory window (word `i` at `MEM_BASE + i`).
pub const MEM_BASE: u32 = 0x1000_0000;
/// TAM address of the processor core's test wrapper.
pub const PROC_WRAPPER_ADDR: u32 = 0x2000_0000;
/// TAM address of the color conversion core's test wrapper.
pub const COLOR_WRAPPER_ADDR: u32 = 0x2100_0000;
/// TAM address of the DCT core's test wrapper.
pub const DCT_WRAPPER_ADDR: u32 = 0x2200_0000;
/// TAM address of the decompressor/compactor adaptor.
pub const CODEC_ADDR: u32 = 0x2300_0000;

/// Configuration-ring client index of the processor wrapper.
pub const RING_PROC: usize = 0;
/// Configuration-ring client index of the color conversion wrapper.
pub const RING_COLOR: usize = 1;
/// Configuration-ring client index of the DCT wrapper.
pub const RING_DCT: usize = 2;
/// Configuration-ring client index of the memory wrapper.
pub const RING_MEM: usize = 3;
/// Configuration-ring client index of the decompressor/compactor.
pub const RING_CODEC: usize = 4;
/// Configuration-ring client index of the EBI.
pub const RING_EBI: usize = 5;

/// Well-known initiator identities on the shared bus/TAM.
pub mod initiators {
    use tve_tlm::InitiatorId;
    /// The ATE (through the EBI).
    pub const ATE: InitiatorId = InitiatorId(0);
    /// The processor-core BIST pattern source.
    pub const BIST_PROC: InitiatorId = InitiatorId(1);
    /// The color-conversion BIST pattern source.
    pub const BIST_COLOR: InitiatorId = InitiatorId(2);
    /// The on-chip test controller.
    pub const CONTROLLER: InitiatorId = InitiatorId(3);
    /// The embedded processor (functional mode and test 7).
    pub const PROCESSOR: InitiatorId = InitiatorId(4);
}

/// Power-model parameters (arbitrary consistent units, milliwatt-like).
///
/// Scan power scales with core size: a wrapper's profile is
/// `base × chains/32 + toggle × chains/32 × density` (the processor core is
/// the reference size).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerParams {
    /// Data-independent shift power of a 32-chain core.
    pub wrapper_base: f64,
    /// Toggle-dependent shift power of a 32-chain core at density 1.0.
    pub wrapper_toggle: f64,
    /// Power per accessed memory word.
    pub memory_op: f64,
    /// Bus power per occupied transfer cycle.
    pub bus_active: f64,
    /// Peak-power detection window in cycles.
    pub window: u64,
}

impl Default for PowerParams {
    fn default() -> Self {
        PowerParams {
            wrapper_base: 60.0,
            wrapper_toggle: 120.0,
            memory_op: 70.0,
            bus_active: 25.0,
            window: 65_536,
        }
    }
}

/// Structural and calibration parameters of the SoC model.
///
/// [`SocConfig::paper`] reproduces the case study of Section IV (scan-chain
/// lengths, channel rates and per-operation costs are calibrated so the
/// published pattern counts yield Table I's test lengths and utilizations;
/// see `DESIGN.md`). [`SocConfig::small`] is a fast miniature for tests and
/// full-data validation runs.
#[derive(Debug, Clone)]
pub struct SocConfig {
    /// System bus / TAM word width in bits.
    pub bus_width_bits: u32,
    /// Per-transaction bus overhead cycles.
    pub bus_overhead: u64,
    /// Bus arbitration policy.
    pub arbiter: ArbiterPolicy,
    /// Peak-utilization detection window.
    pub monitor_window: Duration,
    /// Processor core scan geometry (paper: 32 chains).
    pub proc_scan: ScanConfig,
    /// Color conversion core scan geometry.
    pub color_scan: ScanConfig,
    /// DCT core scan geometry (paper: 8 chains).
    pub dct_scan: ScanConfig,
    /// Capture cycles per scan pattern.
    pub capture_cycles: u64,
    /// Embedded memory size in 32-bit words (paper: 1 MiB = 262144).
    pub memory_words: u32,
    /// Spare words for built-in memory repair (Fig. 1's "Repair").
    pub memory_spares: u32,
    /// ATE stimulus channel rate (bits num/den per cycle).
    pub ate_down_rate: (u64, u64),
    /// ATE response channel rate.
    pub ate_up_rate: (u64, u64),
    /// Stimulus compression ratio of the decompressor (paper: 50×).
    pub decompress_ratio: f64,
    /// Spatial response compaction ratio of the compactor.
    pub compact_ratio: u32,
    /// Test-controller overhead per memory operation.
    pub controller_op_overhead: u64,
    /// Processor overhead per memory operation (test 7: march program in
    /// L1 cache).
    pub processor_op_overhead: u64,
    /// Configuration ring clock divider.
    pub ring_clock_div: u64,
    /// Default data policy for built test sequences.
    pub policy: DataPolicy,
    /// Optional power model; `None` disables power metering (faster).
    pub power: Option<PowerParams>,
    /// Bus burst segmentation; see
    /// [`BusConfig::max_burst_bits`](tve_tlm::BusConfig).
    pub max_burst_bits: Option<u64>,
    /// Fault injection: when set, a [`FaultyTam`] adaptor with this policy
    /// is interposed between the EBI and the system bus, corrupting or
    /// dropping ATE-path transactions. `None` (the default) builds a
    /// healthy TAM.
    pub tam_fault: Option<FaultyTamPolicy>,
}

impl SocConfig {
    /// The calibrated case-study configuration (see `DESIGN.md` §
    /// "Calibration notes").
    pub fn paper() -> Self {
        SocConfig {
            bus_width_bits: 48,
            bus_overhead: 1,
            arbiter: ArbiterPolicy::Fcfs,
            monitor_window: Duration::cycles(65_536),
            proc_scan: ScanConfig::new(32, 1296),
            color_scan: ScanConfig::new(32, 996),
            dct_scan: ScanConfig::new(8, 796),
            capture_cycles: 4,
            memory_words: 262_144,
            memory_spares: 8,
            ate_down_rate: (8, 1),
            ate_up_rate: (8, 1),
            decompress_ratio: 50.0,
            compact_ratio: 8,
            controller_op_overhead: 6,
            processor_op_overhead: 6,
            ring_clock_div: 1,
            policy: DataPolicy::Volume,
            power: None,
            max_burst_bits: None,
            tam_fault: None,
        }
    }

    /// A miniature of the same architecture: small scans and memory, suited
    /// to full-data validation runs and unit tests.
    pub fn small() -> Self {
        SocConfig {
            proc_scan: ScanConfig::new(4, 64),
            color_scan: ScanConfig::new(4, 48),
            dct_scan: ScanConfig::new(2, 32),
            memory_words: 256,
            policy: DataPolicy::Full,
            ..SocConfig::paper()
        }
    }
}

/// The four wrapped cores of the case study, in configuration-ring order.
///
/// Used by fault-injection campaigns to name a scan-cell injection site
/// and to rebuild the matching standalone scan view (see [`scan_view`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum WrappedCore {
    /// The full-scan processor core (ring index [`RING_PROC`]).
    Processor,
    /// The color conversion core (ring index [`RING_COLOR`]).
    ColorConversion,
    /// The DCT core (ring index [`RING_DCT`]).
    Dct,
    /// The memory periphery logic (ring index [`RING_MEM`]).
    MemoryPeriphery,
}

impl WrappedCore {
    /// All four wrapped cores, in ring order.
    pub const ALL: [WrappedCore; 4] = [
        WrappedCore::Processor,
        WrappedCore::ColorConversion,
        WrappedCore::Dct,
        WrappedCore::MemoryPeriphery,
    ];

    /// A short stable label (used in campaign fault ids and CSV rows).
    pub fn label(self) -> &'static str {
        match self {
            WrappedCore::Processor => "proc",
            WrappedCore::ColorConversion => "color",
            WrappedCore::Dct => "dct",
            WrappedCore::MemoryPeriphery => "mem",
        }
    }
}

/// The synthetic scan view of `core` under `config` — the same name, scan
/// geometry and response seed [`JpegEncoderSoc::build`] wraps, as a
/// standalone core model.
///
/// This is the single source of truth for the per-core seeds: a diagnosis
/// cross-check can rebuild a golden/faulty wrapper pair for any core and
/// compare signatures against the full-SoC run.
pub fn scan_view(config: &SocConfig, core: WrappedCore) -> SyntheticLogicCore {
    match core {
        WrappedCore::Processor => SyntheticLogicCore::new("processor", config.proc_scan, 0x50C0),
        WrappedCore::ColorConversion => {
            SyntheticLogicCore::new("color-conv", config.color_scan, 0xC010)
        }
        WrappedCore::Dct => SyntheticLogicCore::new("dct", config.dct_scan, 0xDC70),
        WrappedCore::MemoryPeriphery => {
            SyntheticLogicCore::new("memory-periphery", ScanConfig::new(2, 64), 0x3E30)
        }
    }
}

/// The assembled SoC model: every block of Fig. 4, bound and configured
/// for simulation.
pub struct JpegEncoderSoc {
    /// The kernel handle the SoC was built against.
    pub handle: SimHandle,
    /// The configuration in effect.
    pub config: SocConfig,
    /// The system bus, reused as TAM.
    pub bus: Rc<BusTam>,
    /// The embedded memory core.
    pub memory: Rc<MemoryCore>,
    /// The color conversion core (functional data path).
    pub color_core: Rc<ColorConversionCore>,
    /// The DCT core (functional data path).
    pub dct_core: Rc<DctCore>,
    /// The processor core's test wrapper.
    pub proc_wrapper: Rc<TestWrapper>,
    /// The color conversion core's test wrapper.
    pub color_wrapper: Rc<TestWrapper>,
    /// The DCT core's test wrapper.
    pub dct_wrapper: Rc<TestWrapper>,
    /// The memory core's test wrapper.
    pub mem_wrapper: Rc<TestWrapper>,
    /// The decompressor/compactor in front of the processor wrapper.
    pub codec: Rc<DecompressorCompactor>,
    /// The reseeding compressor backing full-data compressed tests
    /// (`None` in volume configurations).
    pub reseeding: Option<Rc<ReseedingCodec>>,
    /// The external bus interface to the ATE.
    pub ebi: Rc<Ebi>,
    /// The fault-injecting TAM adaptor between EBI and bus, present when
    /// [`SocConfig::tam_fault`] is set.
    pub tam_adaptor: Option<Rc<FaultyTam>>,
    /// The configuration scan ring.
    pub ring: Rc<ConfigScanRing>,
    /// The on-chip test controller (drives test 6).
    pub controller: Rc<TestController>,
    /// The embedded processor acting as memory-test engine (test 7).
    pub processor: Rc<TestController>,
    /// The shared power meter, when `config.power` is set.
    pub power_meter: Option<Rc<RefCell<PowerMeter>>>,
}

impl JpegEncoderSoc {
    /// Builds the SoC against `handle`.
    ///
    /// # Panics
    ///
    /// Panics only on internal address-map conflicts, which would be a bug.
    pub fn build(handle: &SimHandle, config: SocConfig) -> Self {
        let bus = Rc::new(BusTam::new(
            handle,
            BusConfig {
                name: "system-bus/TAM".to_string(),
                width_bits: config.bus_width_bits,
                overhead_cycles: config.bus_overhead,
                policy: config.arbiter,
                monitor_window: config.monitor_window,
                max_burst_bits: config.max_burst_bits,
            },
        ));

        let wrapper_cfg = |name: &str| WrapperConfig {
            name: name.to_string(),
            capture_cycles: config.capture_cycles,
            ..WrapperConfig::default()
        };

        // Cores.
        let memory = Rc::new(MemoryCore::with_spares(
            "memory",
            MEM_BASE,
            config.memory_words as usize,
            config.memory_spares as usize,
        ));
        let color_core = Rc::new(ColorConversionCore::new("color-conv"));
        let dct_core = Rc::new(DctCore::new("dct"));

        // Wrappers (scan views are synthetic logic; functional views are
        // the real cores).
        let proc_wrapper = Rc::new(TestWrapper::new(
            handle,
            wrapper_cfg("proc-wrapper"),
            Rc::new(scan_view(&config, WrappedCore::Processor)),
        ));
        proc_wrapper.bind_functional(Rc::new(SinkTarget::new("proc-func")));
        let color_wrapper = Rc::new(TestWrapper::new(
            handle,
            wrapper_cfg("color-wrapper"),
            Rc::new(scan_view(&config, WrappedCore::ColorConversion)),
        ));
        color_wrapper.bind_functional(Rc::clone(&color_core) as Rc<dyn TamIf>);
        let dct_wrapper = Rc::new(TestWrapper::new(
            handle,
            wrapper_cfg("dct-wrapper"),
            Rc::new(scan_view(&config, WrappedCore::Dct)),
        ));
        dct_wrapper.bind_functional(Rc::clone(&dct_core) as Rc<dyn TamIf>);
        let mem_wrapper = Rc::new(TestWrapper::new(
            handle,
            wrapper_cfg("mem-wrapper"),
            Rc::new(scan_view(&config, WrappedCore::MemoryPeriphery)),
        ));
        mem_wrapper.bind_functional(Rc::clone(&memory) as Rc<dyn TamIf>);

        // Decompressor/compactor, privately channelled to the processor
        // wrapper. Full-data configurations get a real reseeding codec so
        // compressed stimuli are bit-true; volume configurations use the
        // static-ratio model (the paper's 50x).
        let reseeding = if config.policy == DataPolicy::Full {
            Some(Rc::new(
                ReseedingCodec::new(config.proc_scan, 64)
                    .expect("degree-64 reseeding codec is always constructible"),
            ))
        } else {
            None
        };
        let codec = Rc::new(DecompressorCompactor::new(
            CodecConfig {
                name: "decomp/compact".to_string(),
                decompress_ratio: config.decompress_ratio,
                compact_ratio: config.compact_ratio,
            },
            Rc::clone(&proc_wrapper),
            reseeding.clone().map(|c| c as Rc<dyn Compressor>),
        ));

        // Bind everything on the bus (the SystemC `bind` of Fig. 2).
        let bind = |range: AddrRange, t: Rc<dyn TamIf>| {
            bus.bind(range, t).expect("address map is conflict-free");
        };
        bind(
            AddrRange::new(MEM_BASE, config.memory_words),
            Rc::clone(&mem_wrapper) as Rc<dyn TamIf>,
        );
        bind(
            AddrRange::new(PROC_WRAPPER_ADDR, 0x1000),
            Rc::clone(&proc_wrapper) as Rc<dyn TamIf>,
        );
        bind(
            AddrRange::new(COLOR_WRAPPER_ADDR, 0x1000),
            Rc::clone(&color_wrapper) as Rc<dyn TamIf>,
        );
        bind(
            AddrRange::new(DCT_WRAPPER_ADDR, 0x1000),
            Rc::clone(&dct_wrapper) as Rc<dyn TamIf>,
        );
        bind(
            AddrRange::new(CODEC_ADDR, 0x1000),
            Rc::clone(&codec) as Rc<dyn TamIf>,
        );

        // EBI in front of the bus, rate-limited by the ATE channels. A
        // configured TAM fault interposes the corrupting adaptor here, so
        // every ATE-path transaction crosses the defective channel.
        let tam_adaptor = config.tam_fault.map(|policy| {
            Rc::new(FaultyTam::new(
                "faulty-tam",
                Rc::clone(&bus) as Rc<dyn TamIf>,
                policy,
            ))
        });
        let ebi_downstream = match &tam_adaptor {
            Some(f) => Rc::clone(f) as Rc<dyn TamIf>,
            None => Rc::clone(&bus) as Rc<dyn TamIf>,
        };
        let ebi = Rc::new(Ebi::new(
            handle,
            "ebi",
            ebi_downstream,
            config.ate_down_rate,
            config.ate_up_rate,
        ));

        // Configuration scan ring through all configurable blocks.
        let ring = Rc::new(ConfigScanRing::new(
            handle,
            vec![
                Rc::clone(&proc_wrapper) as Rc<dyn ConfigClient>,
                Rc::clone(&color_wrapper) as Rc<dyn ConfigClient>,
                Rc::clone(&dct_wrapper) as Rc<dyn ConfigClient>,
                Rc::clone(&mem_wrapper) as Rc<dyn ConfigClient>,
                Rc::clone(&codec) as Rc<dyn ConfigClient>,
                Rc::clone(&ebi) as Rc<dyn ConfigClient>,
            ],
            config.ring_clock_div,
        ));

        let controller = Rc::new(TestController::new(
            handle,
            "test-controller",
            Rc::clone(&bus) as Rc<dyn TamIf>,
            initiators::CONTROLLER,
        ));
        let processor = Rc::new(TestController::new(
            handle,
            "processor-march",
            Rc::clone(&bus) as Rc<dyn TamIf>,
            initiators::PROCESSOR,
        ));

        // Optional power instrumentation.
        let power_meter = config.power.map(|p| {
            let meter = Rc::new(RefCell::new(PowerMeter::new(tve_sim::Duration::cycles(
                p.window,
            ))));
            let profile_for = |w: &TestWrapper| {
                let scale = w.scan_config().chains() as f64 / 32.0;
                ScanPowerProfile {
                    base: p.wrapper_base * scale,
                    toggle_factor: p.wrapper_toggle * scale,
                }
            };
            for w in [&proc_wrapper, &color_wrapper, &dct_wrapper, &mem_wrapper] {
                w.attach_power_meter(Rc::clone(&meter), profile_for(w));
            }
            memory.attach_power_meter(handle, Rc::clone(&meter), p.memory_op);
            bus.attach_power_meter(Rc::clone(&meter), p.bus_active);
            meter
        });

        JpegEncoderSoc {
            handle: handle.clone(),
            config,
            bus,
            memory,
            color_core,
            dct_core,
            proc_wrapper,
            color_wrapper,
            dct_wrapper,
            mem_wrapper,
            codec,
            reseeding,
            ebi,
            tam_adaptor,
            ring,
            controller,
            processor,
            power_meter,
        }
    }

    /// Attaches an observability recorder to every instrumented block of
    /// the SoC — the system bus, all four test wrappers, the
    /// configuration scan ring and both memory-test engines — mirroring
    /// the power-meter fan-out. Call before running test sequences; the
    /// trace is then retrieved with [`tve_obs::Recorder::take_log`].
    pub fn attach_recorder(&self, recorder: &Rc<Recorder>) {
        self.bus.attach_recorder(Rc::clone(recorder));
        for w in [
            &self.proc_wrapper,
            &self.color_wrapper,
            &self.dct_wrapper,
            &self.mem_wrapper,
        ] {
            w.attach_recorder(Rc::clone(recorder));
        }
        self.ring.attach_recorder(Rc::clone(recorder));
        self.controller.attach_recorder(Rc::clone(recorder));
        self.processor.attach_recorder(Rc::clone(recorder));
    }

    /// A Virtual ATE attached to this SoC's ring and wrappers
    /// (wrapper indices match the `RING_*` constants).
    pub fn virtual_ate(&self) -> VirtualAte {
        VirtualAte::new(
            &self.handle,
            Rc::clone(&self.ring),
            vec![
                Rc::clone(&self.proc_wrapper),
                Rc::clone(&self.color_wrapper),
                Rc::clone(&self.dct_wrapper),
                Rc::clone(&self.mem_wrapper),
            ],
        )
    }

    /// The initiator id used by the embedded processor in functional mode.
    pub fn processor_initiator(&self) -> InitiatorId {
        initiators::PROCESSOR
    }

    /// The test wrapper of `core` — the injection point for scan-cell and
    /// WIR faults in a campaign.
    pub fn wrapper_of(&self, core: WrappedCore) -> &Rc<TestWrapper> {
        match core {
            WrappedCore::Processor => &self.proc_wrapper,
            WrappedCore::ColorConversion => &self.color_wrapper,
            WrappedCore::Dct => &self.dct_wrapper,
            WrappedCore::MemoryPeriphery => &self.mem_wrapper,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tve_sim::Simulation;
    use tve_tlm::TamIfExt;

    #[test]
    fn soc_builds_with_paper_and_small_configs() {
        let sim = Simulation::new();
        let soc = JpegEncoderSoc::build(&sim.handle(), SocConfig::paper());
        assert_eq!(soc.bus.target_count(), 5);
        assert_eq!(soc.ring.client_count(), 6);
        assert_eq!(soc.memory.words(), 262_144);
        let sim2 = Simulation::new();
        let small = JpegEncoderSoc::build(&sim2.handle(), SocConfig::small());
        assert_eq!(small.memory.words(), 256);
    }

    #[test]
    fn dmi_chain_grants_in_quantum_mode_and_revokes_on_wir_load() {
        use tve_core::WrapperMode;
        use tve_sim::Duration;

        let mut sim = Simulation::with_quantum(Duration::cycles(4096));
        let soc = JpegEncoderSoc::build(&sim.handle(), SocConfig::small());
        let words = soc.config.memory_words;
        let bus = Rc::clone(&soc.bus);
        let wrapper = Rc::clone(&soc.mem_wrapper);
        let jh = sim.spawn(async move {
            // A window overhanging the memory mapping must not grant.
            assert!(Rc::clone(&bus)
                .dmi_window(MEM_BASE, words + 1, initiators::PROCESSOR)
                .is_none());
            let window = Rc::clone(&bus)
                .dmi_window(MEM_BASE, words, initiators::PROCESSOR)
                .expect("functional-mode memory window grants DMI");
            assert!(window.dmi_write(MEM_BASE + 3, 0xDEAD_BEEF));
            assert_eq!(window.dmi_read(MEM_BASE + 3), Some(0xDEAD_BEEF));
            // A WIR load revokes the outstanding grant...
            wrapper.load_config(WrapperMode::Bist.encode());
            assert!(!window.dmi_write(MEM_BASE + 3, 0));
            assert_eq!(window.dmi_read(MEM_BASE + 3), None);
            // ...and a non-forwarding mode declines fresh requests.
            assert!(Rc::clone(&bus)
                .dmi_window(MEM_BASE, words, initiators::PROCESSOR)
                .is_none());
            wrapper.load_config(WrapperMode::Functional.encode());
            assert!(Rc::clone(&bus)
                .dmi_window(MEM_BASE, words, initiators::PROCESSOR)
                .is_some());
        });
        sim.run();
        jh.try_take().expect("task ran to completion");
        // The two direct accesses hit the memory array and the wrapper's
        // forwarded counter just like transactional ones.
        let (reads, writes) = soc.memory.op_counts();
        assert_eq!((reads, writes), (1, 1));
        assert_eq!(soc.mem_wrapper.stats().forwarded, 2);
    }

    #[test]
    fn dmi_is_never_granted_in_accurate_mode_paths() {
        // In cycle-accurate mode `run_blocking` never even requests a
        // window (`lt_active` is false); the grant itself is still legal
        // but every access declines because no quantum budget exists.
        let mut sim = Simulation::new();
        let soc = JpegEncoderSoc::build(&sim.handle(), SocConfig::small());
        let words = soc.config.memory_words;
        let bus = Rc::clone(&soc.bus);
        let jh = sim.spawn(async move {
            let window = Rc::clone(&bus)
                .dmi_window(MEM_BASE, words, initiators::PROCESSOR)
                .expect("the grant chain itself is mode-independent");
            assert!(!window.dmi_write(MEM_BASE, 1));
            assert_eq!(window.dmi_read(MEM_BASE), None);
        });
        sim.run();
        jh.try_take().expect("task ran to completion");
        let (reads, writes) = soc.memory.op_counts();
        assert_eq!((reads, writes), (0, 0), "declined accesses leave no trace");
    }

    #[test]
    fn functional_memory_access_through_wrapper() {
        let mut sim = Simulation::new();
        let soc = JpegEncoderSoc::build(&sim.handle(), SocConfig::small());
        let bus = Rc::clone(&soc.bus);
        sim.spawn(async move {
            bus.write(initiators::PROCESSOR, MEM_BASE + 10, &[0xFEED], 32)
                .await
                .unwrap();
            let v = bus
                .read(initiators::PROCESSOR, MEM_BASE + 10, 32)
                .await
                .unwrap();
            assert_eq!(v, vec![0xFEED]);
        });
        sim.run();
        let (r, w) = soc.memory.op_counts();
        assert_eq!((r, w), (1, 1));
        assert!(soc.bus.monitor().total_busy_cycles() > 0);
    }

    #[test]
    fn ebi_must_be_enabled_before_ate_access() {
        let mut sim = Simulation::new();
        let soc = JpegEncoderSoc::build(&sim.handle(), SocConfig::small());
        let ebi = Rc::clone(&soc.ebi);
        let ring = Rc::clone(&soc.ring);
        let jh = sim.spawn(async move {
            let first = ebi.read(initiators::ATE, MEM_BASE, 32).await;
            ring.write(RING_EBI, 1).await;
            let second = ebi.read(initiators::ATE, MEM_BASE, 32).await;
            (first.is_err(), second.is_ok())
        });
        sim.run();
        assert_eq!(jh.try_take(), Some((true, true)));
    }

    #[test]
    fn tam_fault_config_interposes_the_adaptor() {
        let mut sim = Simulation::new();
        let cfg = SocConfig {
            tam_fault: Some(FaultyTamPolicy::drop(1, 1)),
            ..SocConfig::small()
        };
        let soc = JpegEncoderSoc::build(&sim.handle(), cfg);
        let adaptor = soc.tam_adaptor.clone().expect("adaptor present");
        let ebi = Rc::clone(&soc.ebi);
        let ring = Rc::clone(&soc.ring);
        let jh = sim.spawn(async move {
            ring.write(RING_EBI, 1).await;
            ebi.read(initiators::ATE, MEM_BASE, 32).await.is_err()
        });
        sim.run();
        assert_eq!(jh.try_take(), Some(true), "every transaction is dropped");
        assert!(adaptor.dropped() >= 1);
        // Healthy config: no adaptor.
        let sim2 = Simulation::new();
        let healthy = JpegEncoderSoc::build(&sim2.handle(), SocConfig::small());
        assert!(healthy.tam_adaptor.is_none());
    }

    #[test]
    fn scan_view_matches_built_wrappers() {
        let sim = Simulation::new();
        let cfg = SocConfig::small();
        let soc = JpegEncoderSoc::build(&sim.handle(), cfg.clone());
        for core in WrappedCore::ALL {
            let view = scan_view(&cfg, core);
            assert_eq!(
                soc.wrapper_of(core).scan_config(),
                tve_core::CoreModel::scan_config(&view),
                "{core:?}"
            );
        }
    }

    #[test]
    fn ring_reconfigures_wrappers() {
        use tve_core::WrapperMode;
        let mut sim = Simulation::new();
        let soc = JpegEncoderSoc::build(&sim.handle(), SocConfig::small());
        let ring = Rc::clone(&soc.ring);
        sim.spawn(async move {
            ring.write(RING_PROC, WrapperMode::Bist.encode()).await;
        });
        sim.run();
        assert_eq!(soc.proc_wrapper.mode(), tve_core::WrapperMode::Bist);
        assert_eq!(soc.color_wrapper.mode(), tve_core::WrapperMode::Functional);
    }
}
