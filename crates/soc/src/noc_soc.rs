//! The case-study SoC re-platformed on a mesh NoC TAM — the other end of
//! the paper's TAM spectrum (Section III.A), at full case-study scale.
//!
//! Same cores, wrappers, codec, EBI, configuration ring and test sequences
//! as [`JpegEncoderSoc`](crate::JpegEncoderSoc), but the test data travels
//! a 3×2 mesh instead of the shared system bus: concurrent tests with
//! disjoint routes no longer contend, and the interesting metric becomes
//! the *hottest link* rather than one channel's utilization.

use std::rc::Rc;

use tve_core::{
    CodecConfig, ConfigClient, ConfigScanRing, DataPolicy, DecompressorCompactor, Ebi,
    MemoryTestPlan, SyntheticLogicCore, TestController, TestRun, TestWrapper, WrapperConfig,
    WrapperMode,
};
use tve_noc::{MeshConfig, MeshNoc, NodeId};
use tve_sim::{Duration, SimHandle};
use tve_tlm::{AddrRange, SinkTarget, TamIf};

use tve_tpg::{Compressor, ReseedingCodec};

use crate::cores::MemoryCore;
use crate::plan::SocTestPlan;
use crate::soc::{
    initiators, SocConfig, CODEC_ADDR, COLOR_WRAPPER_ADDR, DCT_WRAPPER_ADDR, MEM_BASE,
    PROC_WRAPPER_ADDR, RING_CODEC, RING_COLOR, RING_DCT, RING_EBI, RING_PROC,
};

/// Node placement of the NoC-TAM case study (3×2 mesh).
pub mod placement {
    use tve_noc::NodeId;
    /// Where the ATE's EBI injects.
    pub const ATE: NodeId = NodeId { x: 0, y: 0 };
    /// Processor wrapper and its decompressor/compactor.
    pub const PROC: NodeId = NodeId { x: 1, y: 0 };
    /// Embedded memory core.
    pub const MEM: NodeId = NodeId { x: 2, y: 0 };
    /// Color conversion wrapper.
    pub const COLOR: NodeId = NodeId { x: 0, y: 1 };
    /// DCT wrapper.
    pub const DCT: NodeId = NodeId { x: 1, y: 1 };
    /// Test controller and processor-march engine.
    pub const CONTROLLER: NodeId = NodeId { x: 2, y: 1 };
}

/// The JPEG encoder SoC with a mesh NoC as TAM.
pub struct NocJpegSoc {
    /// Kernel handle the SoC was built against.
    pub handle: SimHandle,
    /// The configuration in effect (bus-specific fields are ignored).
    pub config: SocConfig,
    /// The mesh TAM.
    pub noc: Rc<MeshNoc>,
    /// The embedded memory core.
    pub memory: Rc<MemoryCore>,
    /// The processor core's test wrapper.
    pub proc_wrapper: Rc<TestWrapper>,
    /// The color conversion core's test wrapper.
    pub color_wrapper: Rc<TestWrapper>,
    /// The DCT core's test wrapper.
    pub dct_wrapper: Rc<TestWrapper>,
    /// The decompressor/compactor in front of the processor wrapper.
    pub codec: Rc<DecompressorCompactor>,
    /// The reseeding compressor for full-data compressed tests.
    pub reseeding: Option<Rc<ReseedingCodec>>,
    /// The external bus interface to the ATE (downstream = a mesh port).
    pub ebi: Rc<Ebi>,
    /// The configuration scan ring.
    pub ring: Rc<ConfigScanRing>,
    /// The on-chip test controller (test 6).
    pub controller: Rc<TestController>,
    /// The processor as memory-test engine (test 7).
    pub processor: Rc<TestController>,
}

impl NocJpegSoc {
    /// Builds the NoC-TAM SoC. Link width is `config.bus_width_bits / 3`
    /// (the mesh spends its wire budget on several narrower links).
    pub fn build(handle: &SimHandle, config: SocConfig) -> Self {
        let noc = Rc::new(MeshNoc::new(
            handle,
            MeshConfig {
                cols: 3,
                rows: 2,
                link_width_bits: (config.bus_width_bits / 3).max(8),
                hop_overhead: 2,
            },
        ));

        let wrapper_cfg = |name: &str| WrapperConfig {
            name: name.to_string(),
            capture_cycles: config.capture_cycles,
            ..WrapperConfig::default()
        };
        let memory = Rc::new(MemoryCore::with_spares(
            "memory",
            MEM_BASE,
            config.memory_words as usize,
            config.memory_spares as usize,
        ));
        let proc_wrapper = Rc::new(TestWrapper::new(
            handle,
            wrapper_cfg("proc-wrapper"),
            Rc::new(SyntheticLogicCore::new(
                "processor",
                config.proc_scan,
                0x50C0,
            )),
        ));
        proc_wrapper.bind_functional(Rc::new(SinkTarget::new("proc-func")));
        let color_wrapper = Rc::new(TestWrapper::new(
            handle,
            wrapper_cfg("color-wrapper"),
            Rc::new(SyntheticLogicCore::new(
                "color-conv",
                config.color_scan,
                0xC010,
            )),
        ));
        let dct_wrapper = Rc::new(TestWrapper::new(
            handle,
            wrapper_cfg("dct-wrapper"),
            Rc::new(SyntheticLogicCore::new("dct", config.dct_scan, 0xDC70)),
        ));
        let reseeding = if config.policy == DataPolicy::Full {
            Some(Rc::new(
                ReseedingCodec::new(config.proc_scan, 64)
                    .expect("degree-64 reseeding codec is always constructible"),
            ))
        } else {
            None
        };
        let codec = Rc::new(DecompressorCompactor::new(
            CodecConfig {
                name: "decomp/compact".to_string(),
                decompress_ratio: config.decompress_ratio,
                compact_ratio: config.compact_ratio,
            },
            Rc::clone(&proc_wrapper),
            reseeding.clone().map(|c| c as Rc<dyn Compressor>),
        ));

        let bind = |node: NodeId, range: AddrRange, t: Rc<dyn TamIf>| {
            noc.bind(node, range, t)
                .expect("address map is conflict-free");
        };
        bind(
            placement::PROC,
            AddrRange::new(PROC_WRAPPER_ADDR, 0x1000),
            Rc::clone(&proc_wrapper) as Rc<dyn TamIf>,
        );
        bind(
            placement::PROC,
            AddrRange::new(CODEC_ADDR, 0x1000),
            Rc::clone(&codec) as Rc<dyn TamIf>,
        );
        bind(
            placement::COLOR,
            AddrRange::new(COLOR_WRAPPER_ADDR, 0x1000),
            Rc::clone(&color_wrapper) as Rc<dyn TamIf>,
        );
        bind(
            placement::DCT,
            AddrRange::new(DCT_WRAPPER_ADDR, 0x1000),
            Rc::clone(&dct_wrapper) as Rc<dyn TamIf>,
        );
        bind(
            placement::MEM,
            AddrRange::new(MEM_BASE, config.memory_words),
            Rc::clone(&memory) as Rc<dyn TamIf>,
        );

        let ebi = Rc::new(Ebi::new(
            handle,
            "ebi",
            Rc::new(noc.port(placement::ATE)) as Rc<dyn TamIf>,
            config.ate_down_rate,
            config.ate_up_rate,
        ));
        let ring = Rc::new(ConfigScanRing::new(
            handle,
            vec![
                Rc::clone(&proc_wrapper) as Rc<dyn ConfigClient>,
                Rc::clone(&color_wrapper) as Rc<dyn ConfigClient>,
                Rc::clone(&dct_wrapper) as Rc<dyn ConfigClient>,
                Rc::clone(&codec) as Rc<dyn ConfigClient>,
                Rc::clone(&ebi) as Rc<dyn ConfigClient>,
            ],
            config.ring_clock_div,
        ));
        let controller = Rc::new(TestController::new(
            handle,
            "test-controller",
            Rc::new(noc.port(placement::CONTROLLER)) as Rc<dyn TamIf>,
            initiators::CONTROLLER,
        ));
        let processor = Rc::new(TestController::new(
            handle,
            "processor-march",
            // The embedded processor sits at its own node; its march
            // traffic crosses the mesh to the memory.
            Rc::new(noc.port(placement::PROC)) as Rc<dyn TamIf>,
            initiators::PROCESSOR,
        ));

        NocJpegSoc {
            handle: handle.clone(),
            config,
            noc,
            memory,
            proc_wrapper,
            color_wrapper,
            dct_wrapper,
            codec,
            reseeding,
            ebi,
            ring,
            controller,
            processor,
        }
    }
}

/// Ring client index of the codec on the NoC SoC's (shorter) ring.
const NOC_RING_CODEC: usize = 3;
/// Ring client index of the EBI on the NoC SoC's ring.
const NOC_RING_EBI: usize = 4;

/// Builds the seven case-study test sequences against the NoC-TAM SoC
/// (mirrors [`build_test_runs`](crate::build_test_runs); on-chip BIST
/// sources attach at their core's mesh node's neighbors, the ATE enters at
/// its corner).
pub fn build_test_runs_noc(soc: &NocJpegSoc, plan: &SocTestPlan) -> Vec<TestRun> {
    use tve_core::{AteSource, BistSource, CompressedAteSource, ReadBack};
    let cfg = &soc.config;
    let mut runs = Vec::new();

    // T1: processor BIST; the PRPG is co-located at the processor's node
    // (per-core BIST — the NoC TAM's architectural advantage: local test
    // data never crosses a link).
    {
        let ring = Rc::clone(&soc.ring);
        let src = BistSource::new(
            &soc.handle,
            "T1 proc BIST",
            Rc::new(soc.noc.port(placement::PROC)) as Rc<dyn TamIf>,
            PROC_WRAPPER_ADDR,
            initiators::BIST_PROC,
            cfg.proc_scan,
            plan.bist_proc_patterns,
            plan.policy,
            plan.seed ^ 1,
        );
        runs.push(TestRun::new("T1 proc BIST", async move {
            ring.write(RING_PROC, WrapperMode::Bist.encode()).await;
            src.run().await
        }));
    }
    // T2: deterministic external via EBI.
    {
        let ring = Rc::clone(&soc.ring);
        let src = AteSource {
            handle: soc.handle.clone(),
            name: "T2 proc det".to_string(),
            port: Rc::clone(&soc.ebi) as Rc<dyn TamIf>,
            wrapper_addr: PROC_WRAPPER_ADDR,
            read_back: ReadBack::Combined,
            initiator: initiators::ATE,
            scan: cfg.proc_scan,
            patterns: plan.det_proc_patterns,
            policy: plan.policy,
            seed: plan.seed ^ 2,
            recorder: None,
        };
        runs.push(TestRun::new("T2 proc det", async move {
            ring.write(NOC_RING_EBI, 1).await;
            ring.write(RING_PROC, WrapperMode::IntTest.encode()).await;
            src.run().await
        }));
    }
    // T3: compressed external.
    {
        let ring = Rc::clone(&soc.ring);
        let src = CompressedAteSource {
            handle: soc.handle.clone(),
            name: "T3 proc det 50x".to_string(),
            port: Rc::clone(&soc.ebi) as Rc<dyn TamIf>,
            codec_addr: CODEC_ADDR,
            compressed_bits: match plan.policy {
                DataPolicy::Volume => soc.codec.compressed_bits(),
                DataPolicy::Full => 64,
            },
            compacted_bits: soc.codec.compacted_bits(),
            codec: soc
                .reseeding
                .clone()
                .map(|c| c as Rc<dyn tve_tpg::Compressor>),
            cares_per_cube: 24,
            initiator: initiators::ATE,
            scan: cfg.proc_scan,
            patterns: plan.comp_proc_patterns,
            policy: plan.policy,
            seed: plan.seed ^ 3,
            recorder: None,
        };
        runs.push(TestRun::new("T3 proc det 50x", async move {
            ring.write(NOC_RING_EBI, 1).await;
            ring.write(RING_PROC, WrapperMode::IntTest.encode()).await;
            ring.write(NOC_RING_CODEC, 1).await;
            src.run().await
        }));
    }
    // T4: color BIST, likewise co-located.
    {
        let ring = Rc::clone(&soc.ring);
        let src = BistSource::new(
            &soc.handle,
            "T4 color BIST",
            Rc::new(soc.noc.port(placement::COLOR)) as Rc<dyn TamIf>,
            COLOR_WRAPPER_ADDR,
            initiators::BIST_COLOR,
            cfg.color_scan,
            plan.bist_color_patterns,
            plan.policy,
            plan.seed ^ 4,
        );
        runs.push(TestRun::new("T4 color BIST", async move {
            ring.write(RING_COLOR, WrapperMode::Bist.encode()).await;
            src.run().await
        }));
    }
    // T5: DCT deterministic external via EBI.
    {
        let ring = Rc::clone(&soc.ring);
        let src = AteSource {
            handle: soc.handle.clone(),
            name: "T5 dct det".to_string(),
            port: Rc::clone(&soc.ebi) as Rc<dyn TamIf>,
            wrapper_addr: DCT_WRAPPER_ADDR,
            read_back: ReadBack::Combined,
            initiator: initiators::ATE,
            scan: cfg.dct_scan,
            patterns: plan.det_dct_patterns,
            policy: plan.policy,
            seed: plan.seed ^ 5,
            recorder: None,
        };
        runs.push(TestRun::new("T5 dct det", async move {
            ring.write(NOC_RING_EBI, 1).await;
            ring.write(RING_DCT, WrapperMode::IntTest.encode()).await;
            src.run().await
        }));
    }
    // T6/T7: memory marches over the mesh.
    for (engine, name, overhead, posted) in [
        (
            Rc::clone(&soc.controller),
            "T6 mem march (ctrl)",
            cfg.controller_op_overhead,
            128usize,
        ),
        (
            Rc::clone(&soc.processor),
            "T7 mem march (proc)",
            cfg.processor_op_overhead,
            1,
        ),
    ] {
        let p = MemoryTestPlan {
            name: name.to_string(),
            march: plan.march.clone(),
            patterns: plan.pattern_tests.clone(),
            base_addr: MEM_BASE,
            words: cfg.memory_words,
            op_overhead: Duration::cycles(overhead),
            posted_depth: posted,
            policy: plan.policy,
        };
        runs.push(TestRun::new(name, async move {
            engine.run_memory_test(&p).await
        }));
    }
    runs
}

// Quiet the unused-import warnings for constants shared with the bus SoC
// but not needed here.
#[allow(unused_imports)]
use RING_CODEC as _;
#[allow(unused_imports)]
use RING_EBI as _;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::paper_schedules;
    use tve_core::execute_schedule;
    use tve_sim::Simulation;

    fn mini() -> SocConfig {
        let mut c = SocConfig::small();
        c.memory_words = 64;
        c
    }

    #[test]
    fn noc_soc_builds_and_routes() {
        let sim = Simulation::new();
        let soc = NocJpegSoc::build(&sim.handle(), mini());
        assert_eq!(soc.noc.link_count(), 14); // 3x2 mesh: 7 edges x 2
        assert_eq!(soc.ring.client_count(), 5);
        assert!(soc.noc.contains(placement::CONTROLLER));
    }

    #[test]
    fn all_four_schedules_run_clean_on_the_noc() {
        for schedule in paper_schedules() {
            let mut sim = Simulation::new();
            let soc = NocJpegSoc::build(&sim.handle(), mini());
            let tests = build_test_runs_noc(&soc, &SocTestPlan::small());
            let result = execute_schedule(&mut sim, tests, &schedule).unwrap();
            assert!(result.clean(), "{schedule}: {result}");
            assert!(soc.noc.total_busy_cycles() > 0);
            assert!(soc.noc.hottest_link().is_some());
        }
    }

    #[test]
    fn noc_runs_are_deterministic() {
        fn run() -> (u64, u64) {
            let mut sim = Simulation::new();
            let soc = NocJpegSoc::build(&sim.handle(), mini());
            let tests = build_test_runs_noc(&soc, &SocTestPlan::small());
            let result = execute_schedule(&mut sim, tests, &paper_schedules()[3]).unwrap();
            (result.total_cycles, soc.noc.total_busy_cycles())
        }
        assert_eq!(run(), run());
    }
}
