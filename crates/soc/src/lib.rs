#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! # tve-soc — the JPEG encoder SoC case study
//!
//! The approximately-timed TLM of the paper's Section IV (Fig. 4): a
//! bus-based SoC with an embedded processor, a 1 MiB memory core, a color
//! conversion core and a DCT core, whose system bus is reused as the test
//! access mechanism. The crate provides:
//!
//! * functional cores with real data paths ([`MemoryCore`],
//!   [`ColorConversionCore`], [`DctCore`]) and the JPEG math ([`jpeg`]),
//! * the assembled SoC with full test infrastructure
//!   ([`JpegEncoderSoc`], [`SocConfig`]),
//! * the seven test sequences and four schedules of the evaluation
//!   ([`SocTestPlan`], [`build_test_runs`], [`paper_schedules`],
//!   [`run_scenario`] — the Table I generator),
//! * the functional block pipeline over the wrapped SoC ([`pipeline`]),
//! * RTL-granularity scan simulation for the abstraction-level speed
//!   comparison ([`rtl`]).
//!
//! ```
//! use tve_soc::{run_scenario, paper_schedules, SocConfig, SocTestPlan};
//!
//! # fn main() -> Result<(), tve_core::ScheduleError> {
//! let mut cfg = SocConfig::small();
//! cfg.memory_words = 64;
//! let metrics = run_scenario(&cfg, &SocTestPlan::small(), &paper_schedules()[0])?;
//! assert!(metrics.result.clean());
//! # Ok(())
//! # }
//! ```

mod cores;
pub mod cpu;
pub mod jpeg;
pub mod noc_soc;
pub mod pipeline;
mod plan;
pub mod rtl;
mod soc;
mod workload;

pub use cores::{ColorConversionCore, DctCore, MemoryCore};
pub use noc_soc::{build_test_runs_noc, NocJpegSoc};
pub use plan::{
    build_test_runs, build_test_runs_traced, paper_schedules, run_scenario, run_scenario_prepared,
    run_scenario_prepared_traced, run_scenario_quantum, run_scenario_traced, PowerSummary,
    ScenarioMetrics, SocTestPlan,
};
pub use workload::{PlanOverrides, Workload, WorkloadPreset, PLAN_OVERRIDE_KEYS};

pub use soc::{
    initiators, scan_view, JpegEncoderSoc, PowerParams, SocConfig, WrappedCore, CODEC_ADDR,
    COLOR_WRAPPER_ADDR, DCT_WRAPPER_ADDR, MEM_BASE, PROC_WRAPPER_ADDR, RING_CODEC, RING_COLOR,
    RING_DCT, RING_EBI, RING_MEM, RING_PROC,
};
