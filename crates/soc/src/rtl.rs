//! RTL-granularity scan simulation — the baseline of the paper's speed
//! comparison ("simulation of 300 million cycles of the RTL model of the
//! processor core alone already exceeds two days of CPU time").
//!
//! At register-transfer granularity, every clock cycle is a kernel event
//! and every scan flip-flop is state that moves: each cycle shifts every
//! chain by one position. The transaction-level model of the same workload
//! raises the abstraction to one event per *pattern*. Comparing
//! cycles-per-second between the two modes on identical workloads
//! regenerates the paper's orders-of-magnitude claim without needing the
//! authors' RTL netlist.

use std::fmt;

use tve_sim::{Duration, Simulation};
use tve_tpg::{Lfsr, ScanConfig};

/// Bit-true scan chains at register-transfer granularity: per cycle, every
/// chain shifts one position (word-level carries across the packed
/// registers — the dominant per-cycle cost of RTL scan simulation).
pub struct RtlScanChains {
    chains: Vec<Vec<u64>>,
    len: u32,
}

impl fmt::Debug for RtlScanChains {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RtlScanChains")
            .field("chains", &self.chains.len())
            .field("len", &self.len)
            .finish()
    }
}

impl RtlScanChains {
    /// Creates zeroed chains for `config`.
    pub fn new(config: ScanConfig) -> Self {
        let words = (config.max_chain_len() as usize).div_ceil(64);
        RtlScanChains {
            chains: vec![vec![0u64; words]; config.chains() as usize],
            len: config.max_chain_len(),
        }
    }

    /// Number of chains.
    pub fn chain_count(&self) -> usize {
        self.chains.len()
    }

    /// Shifts chain `c` one cell, inserting `bit` and returning the bit
    /// shifted out — one chain's worth of one scan clock.
    ///
    /// # Panics
    ///
    /// Panics if `c` is out of range.
    pub fn shift(&mut self, c: usize, bit: bool) -> bool {
        let chain = &mut self.chains[c];
        let mut carry = bit;
        for w in chain.iter_mut() {
            let out = *w >> 63 & 1 == 1;
            *w = (*w << 1) | carry as u64;
            carry = out;
        }
        // The out-bit is the cell at position len-1.
        let idx = (self.len - 1) as usize;
        (self.chains[c][idx / 64] >> (idx % 64)) & 1 == 1
    }

    /// One full scan clock: shifts every chain, returning the parity of the
    /// shifted-out slice (stands in for the response-observation logic).
    pub fn shift_all(&mut self, in_bits: u64) -> bool {
        let mut parity = false;
        for c in 0..self.chains.len() {
            let bit = (in_bits >> (c % 64)) & 1 == 1;
            parity ^= self.shift(c, bit);
        }
        parity
    }
}

/// Statistics of one abstraction-level simulation run.
#[derive(Debug, Clone, Copy)]
pub struct GranularityRunStats {
    /// Simulated clock cycles.
    pub simulated_cycles: u64,
    /// Kernel timer events actually fired (measured).
    pub kernel_waits: u64,
    /// Host wall-clock time.
    pub wall: std::time::Duration,
    /// Simulated cycles per host second.
    pub cycles_per_second: f64,
}

impl fmt::Display for GranularityRunStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} cycles in {:.3?} ({:.0} cycles/s, {} kernel waits)",
            self.simulated_cycles, self.wall, self.cycles_per_second, self.kernel_waits
        )
    }
}

/// Simulates `patterns` scan patterns of `config` at RTL granularity: one
/// kernel event *per clock cycle*, with bit-true shifting of every chain.
pub fn simulate_rtl_scan(config: ScanConfig, patterns: u64) -> GranularityRunStats {
    let started = std::time::Instant::now();
    let mut sim = Simulation::new();
    let h = sim.handle();
    sim.spawn(async move {
        let mut chains = RtlScanChains::new(config);
        let mut lfsr = Lfsr::maximal(32, 0xF00D).expect("degree 32 tabled");
        let mut observed = false;
        for _ in 0..patterns {
            for _ in 0..config.max_chain_len() {
                h.wait(Duration::cycles(1)).await;
                let stim = lfsr.step_word(32);
                observed ^= chains.shift_all(stim);
            }
            // Capture cycle.
            h.wait(Duration::cycles(1)).await;
        }
        std::hint::black_box(observed);
    });
    let end = sim.run();
    let wall = started.elapsed();
    GranularityRunStats {
        simulated_cycles: end.cycles(),
        kernel_waits: sim.kernel_stats().1,
        wall,
        cycles_per_second: end.cycles() as f64 / wall.as_secs_f64().max(1e-9),
    }
}

/// Simulates `patterns` scan patterns at *gate level*: like
/// [`simulate_rtl_scan`], but every clock additionally evaluates a real
/// combinational netlist of `gates` gates — the extra per-cycle work that
/// makes gate-level simulation "another order of magnitude" slower than
/// RTL in the paper's comparison.
pub fn simulate_gate_level_scan(
    config: ScanConfig,
    patterns: u64,
    gates: u32,
) -> GranularityRunStats {
    use tve_netlist::Netlist;
    let started = std::time::Instant::now();
    let mut sim = Simulation::new();
    let h = sim.handle();
    sim.spawn(async move {
        let netlist = Netlist::random(config.chains().max(2), gates, 1, 0x6A7E);
        let mut chains = RtlScanChains::new(config);
        let mut lfsr = Lfsr::maximal(32, 0xF00D).expect("degree 32 tabled");
        let mut inputs = vec![0u64; netlist.input_count() as usize];
        let mut observed = 0u64;
        for _ in 0..patterns {
            for _ in 0..config.max_chain_len() {
                h.wait(Duration::cycles(1)).await;
                let stim = lfsr.step_word(32);
                chains.shift_all(stim);
                // Combinational logic settles every clock at gate level.
                for (i, w) in inputs.iter_mut().enumerate() {
                    *w = stim.rotate_left(i as u32);
                }
                let values = netlist.eval64(&inputs);
                observed ^= netlist.output_words(&values)[0];
            }
            h.wait(Duration::cycles(1)).await;
        }
        std::hint::black_box(observed);
    });
    let end = sim.run();
    let wall = started.elapsed();
    GranularityRunStats {
        simulated_cycles: end.cycles(),
        kernel_waits: sim.kernel_stats().1,
        wall,
        cycles_per_second: end.cycles() as f64 / wall.as_secs_f64().max(1e-9),
    }
}

/// Simulates the same workload at transaction-level granularity: one
/// wrapper transaction per pattern (volume policy), as in the exploration
/// flow.
pub fn simulate_tlm_scan(config: ScanConfig, patterns: u64) -> GranularityRunStats {
    use std::rc::Rc;
    use tve_core::{
        BistSource, ConfigClient, DataPolicy, SyntheticLogicCore, TestWrapper, WrapperConfig,
        WrapperMode,
    };
    use tve_tlm::{InitiatorId, TamIf};

    let started = std::time::Instant::now();
    let mut sim = Simulation::new();
    let h = sim.handle();
    let core = Rc::new(SyntheticLogicCore::new("rtl-vs-tlm", config, 1));
    let wrapper = Rc::new(TestWrapper::new(
        &h,
        WrapperConfig {
            name: "w".to_string(),
            capture_cycles: 1,
            ..WrapperConfig::default()
        },
        core,
    ));
    wrapper.load_config(WrapperMode::Bist.encode());
    let src = BistSource::new(
        &h,
        "tlm",
        wrapper as Rc<dyn TamIf>,
        0,
        InitiatorId(0),
        config,
        patterns,
        DataPolicy::Volume,
        1,
    );
    sim.spawn(async move {
        let out = src.run().await;
        assert_eq!(out.errors, 0);
    });
    let end = sim.run();
    let wall = started.elapsed();
    GranularityRunStats {
        simulated_cycles: end.cycles(),
        kernel_waits: sim.kernel_stats().1,
        wall,
        cycles_per_second: end.cycles() as f64 / wall.as_secs_f64().max(1e-9),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chains_shift_bits_through() {
        let cfg = ScanConfig::new(2, 8);
        let mut c = RtlScanChains::new(cfg);
        assert_eq!(c.chain_count(), 2);
        // Shift a 1 through chain 0: appears at the output after len shifts.
        assert!(!c.shift(0, true));
        for _ in 0..6 {
            assert!(!c.shift(0, false));
        }
        assert!(
            c.shift(0, false),
            "the injected 1 must emerge after 8 shifts"
        );
    }

    #[test]
    fn rtl_and_tlm_simulate_identical_cycle_counts() {
        let cfg = ScanConfig::new(4, 32);
        let rtl = simulate_rtl_scan(cfg, 10);
        let tlm = simulate_tlm_scan(cfg, 10);
        // Same workload, same simulated time: 10 patterns x 33 cycles.
        assert_eq!(rtl.simulated_cycles, 330);
        assert_eq!(tlm.simulated_cycles, 330);
        // But at vastly different event density.
        assert!(rtl.kernel_waits > 20 * tlm.kernel_waits);
    }

    #[test]
    fn gate_level_is_slower_than_rtl() {
        let cfg = ScanConfig::new(8, 32);
        let rtl = simulate_rtl_scan(cfg, 20);
        let gate = simulate_gate_level_scan(cfg, 20, 1500);
        assert_eq!(gate.simulated_cycles, rtl.simulated_cycles);
        assert!(
            gate.cycles_per_second < rtl.cycles_per_second,
            "gate {:.0} c/s must be below RTL {:.0} c/s",
            gate.cycles_per_second,
            rtl.cycles_per_second
        );
    }

    #[test]
    fn tlm_is_faster_than_rtl_per_simulated_cycle() {
        // A miniature of the paper's speed claim; the bench scales it up.
        let cfg = ScanConfig::new(8, 64);
        let rtl = simulate_rtl_scan(cfg, 50);
        let tlm = simulate_tlm_scan(cfg, 50);
        assert!(
            tlm.cycles_per_second > rtl.cycles_per_second,
            "TLM {:.0} c/s must beat RTL {:.0} c/s",
            tlm.cycles_per_second,
            rtl.cycles_per_second
        );
    }
}
