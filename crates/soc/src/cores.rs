//! Functional TLMs of the case-study cores (paper Fig. 4): the embedded
//! memory, the color conversion core and the DCT core. Each exposes a
//! functional [`TamIf`] interface (reached through its wrapper in
//! functional mode) and real data-path behaviour.

use std::cell::{Cell, RefCell};
use std::collections::VecDeque;
use std::fmt;

use std::rc::Rc;

use tve_memtest::{Fault, RepairableMemory};
use tve_sim::{Duration, SimHandle};
use tve_tlm::{
    Command, DmiAccess, InitiatorId, LocalBoxFuture, PowerMeter, ResponseStatus, TamIf, Transaction,
};

use crate::jpeg;

/// The embedded memory core: a word-addressed window over a real
/// [`RepairableMemory`] (1 MiB in the paper's case study), with fault
/// injection for validating the memory test sequences and spare words for
/// built-in repair.
pub struct MemoryCore {
    name: String,
    base_addr: u32,
    mem: RefCell<RepairableMemory>,
    /// Mirrors `power.is_some()` so the per-access path skips the
    /// `RefCell` borrow on unmetered memories (the common case).
    powered: Cell<bool>,
    power: RefCell<Option<MemPowerSink>>,
}

struct MemPowerSink {
    handle: SimHandle,
    meter: Rc<RefCell<PowerMeter>>,
    op_power: f64,
}

impl fmt::Debug for MemoryCore {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MemoryCore")
            .field("name", &self.name)
            .field("words", &self.mem.borrow().len())
            .field("base_addr", &self.base_addr)
            .finish()
    }
}

impl MemoryCore {
    /// Creates a memory of `words` 32-bit words mapped at `base_addr`
    /// (word `i` at TAM address `base_addr + i`).
    pub fn new(name: impl Into<String>, base_addr: u32, words: usize) -> Self {
        Self::with_spares(name, base_addr, words, 0)
    }

    /// Creates a memory with `spares` redundancy words for built-in repair
    /// (the "Repair" strategy of the paper's Fig. 1).
    pub fn with_spares(
        name: impl Into<String>,
        base_addr: u32,
        words: usize,
        spares: usize,
    ) -> Self {
        MemoryCore {
            name: name.into(),
            base_addr,
            mem: RefCell::new(RepairableMemory::new(words, spares)),
            powered: Cell::new(false),
            power: RefCell::new(None),
        }
    }

    /// Remaps the word at `index` to a spare; see
    /// [`RepairableMemory::repair`]. Returns `false` when out of spares.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn repair(&self, index: u32) -> bool {
        self.mem.borrow_mut().repair(index)
    }

    /// Spares already allocated.
    pub fn spares_used(&self) -> usize {
        self.mem.borrow().spares_used()
    }

    /// Attaches a power meter: every accessed word draws `op_power` for
    /// one cycle, attributed to this memory's name.
    pub fn attach_power_meter(
        &self,
        handle: &SimHandle,
        meter: Rc<RefCell<PowerMeter>>,
        op_power: f64,
    ) {
        *self.power.borrow_mut() = Some(MemPowerSink {
            handle: handle.clone(),
            meter,
            op_power,
        });
        self.powered.set(true);
    }

    fn record_power(&self, words: u64) {
        if let Some(sink) = &*self.power.borrow() {
            sink.meter.borrow_mut().record(
                sink.handle.now(),
                Duration::cycles(words.max(1)),
                sink.op_power,
                &self.name,
            );
        }
    }

    /// The memory size in words.
    pub fn words(&self) -> usize {
        self.mem.borrow().len()
    }

    /// Injects a functional memory fault.
    ///
    /// # Panics
    ///
    /// Panics if the fault is out of range (see
    /// [`tve_memtest::MemoryArray::inject`]).
    pub fn inject(&self, fault: Fault) {
        self.mem.borrow_mut().inject(fault);
    }

    /// Reads and write counters (reads, writes).
    pub fn op_counts(&self) -> (u64, u64) {
        let m = self.mem.borrow();
        (m.read_count(), m.write_count())
    }
}

impl TamIf for MemoryCore {
    fn name(&self) -> &str {
        &self.name
    }

    fn transport<'a>(&'a self, txn: &'a mut Transaction) -> LocalBoxFuture<'a, ()> {
        Box::pin(async move { self.transport_sync(txn) })
    }

    fn transport_is_sync(&self, _txn: &Transaction) -> bool {
        true // a word RAM access never suspends
    }

    fn transport_sync_try(&self, txn: &mut Transaction) -> bool {
        self.transport_sync(txn);
        true
    }

    fn transport_sync(&self, txn: &mut Transaction) {
        let index = txn.addr.wrapping_sub(self.base_addr);
        let words_needed = (txn.bit_len as usize).div_ceil(32).max(1);
        let mut mem = self.mem.borrow_mut();
        let len = mem.len() as u32;
        let last = index.checked_add(words_needed as u32 - 1);
        if last.is_none_or(|l| l >= len) {
            txn.status = ResponseStatus::AddressError;
            return;
        }
        if self.powered.get() {
            self.record_power(words_needed as u64);
        }
        match txn.cmd {
            Command::Write | Command::WriteRead => {
                if txn.is_volume_only() {
                    // Timing-only access still touches the array so
                    // read/write counters stay meaningful.
                    for i in 0..words_needed as u32 {
                        mem.write(index + i, 0);
                    }
                } else {
                    for (i, w) in txn.data.iter().enumerate().take(words_needed) {
                        mem.write(index + i as u32, *w);
                    }
                }
                if txn.cmd == Command::WriteRead {
                    txn.data = (0..words_needed as u32)
                        .map(|i| mem.read(index + i))
                        .collect();
                }
            }
            Command::Read => {
                if txn.is_volume_only() {
                    for i in 0..words_needed as u32 {
                        let _ = mem.read(index + i);
                    }
                } else {
                    txn.data = (0..words_needed as u32)
                        .map(|i| mem.read(index + i))
                        .collect();
                }
            }
        }
        txn.status = ResponseStatus::Ok;
    }

    /// The memory grants direct access to any in-bounds word window; it
    /// is the leaf of the DMI chain (bus → wrapper → here).
    fn dmi_window(
        self: Rc<Self>,
        base: u32,
        words: u32,
        _initiator: InitiatorId,
    ) -> Option<Rc<dyn DmiAccess>> {
        if words == 0 {
            return None;
        }
        let len = self.mem.borrow().len() as u32;
        let index = base.checked_sub(self.base_addr)?;
        let last = index.checked_add(words - 1)?;
        if last >= len {
            return None;
        }
        Some(self)
    }
}

/// Per-word direct access: exactly the side effects of a single-word
/// [`TamIf::transport_sync`] — power recorded before the access when
/// metered, read/write counters bumped by the array itself.
impl DmiAccess for MemoryCore {
    fn dmi_read(&self, addr: u32) -> Option<u32> {
        let index = addr.wrapping_sub(self.base_addr);
        let mut mem = self.mem.borrow_mut();
        if index >= mem.len() as u32 {
            return None;
        }
        if self.powered.get() {
            self.record_power(1);
        }
        Some(mem.read(index))
    }

    fn dmi_write(&self, addr: u32, value: u32) -> bool {
        let index = addr.wrapping_sub(self.base_addr);
        let mut mem = self.mem.borrow_mut();
        if index >= mem.len() as u32 {
            return false;
        }
        if self.powered.get() {
            self.record_power(1);
        }
        mem.write(index, value);
        true
    }
}

/// The color conversion core: converts packed `0x00RRGGBB` pixels to packed
/// `0x00YYCbCr` using the real JFIF RGB → YCbCr transform.
///
/// Functional protocol: `write` pushes input pixels; `read` pops converted
/// pixels (`CommandError` when empty).
pub struct ColorConversionCore {
    name: String,
    out: RefCell<VecDeque<u32>>,
    converted: Cell<u64>,
}

impl fmt::Debug for ColorConversionCore {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ColorConversionCore")
            .field("name", &self.name)
            .field("converted", &self.converted.get())
            .finish()
    }
}

impl ColorConversionCore {
    /// Creates the core.
    pub fn new(name: impl Into<String>) -> Self {
        ColorConversionCore {
            name: name.into(),
            out: RefCell::new(VecDeque::new()),
            converted: Cell::new(0),
        }
    }

    /// Pixels converted so far.
    pub fn converted_count(&self) -> u64 {
        self.converted.get()
    }
}

impl TamIf for ColorConversionCore {
    fn name(&self) -> &str {
        &self.name
    }

    fn transport<'a>(&'a self, txn: &'a mut Transaction) -> LocalBoxFuture<'a, ()> {
        Box::pin(async move {
            match txn.cmd {
                Command::Write => {
                    for &px in &txn.data {
                        let rgb = [(px >> 16) as u8, (px >> 8) as u8, px as u8];
                        let [y, cb, cr] = jpeg::rgb_to_ycbcr(rgb);
                        self.out
                            .borrow_mut()
                            .push_back(((y as u32) << 16) | ((cb as u32) << 8) | cr as u32);
                        self.converted.set(self.converted.get() + 1);
                    }
                    txn.status = ResponseStatus::Ok;
                }
                Command::Read => {
                    let want = (txn.bit_len as usize).div_ceil(32).max(1);
                    let mut out = self.out.borrow_mut();
                    if out.len() < want {
                        txn.status = ResponseStatus::CommandError;
                        return;
                    }
                    txn.data = out.drain(..want).collect();
                    txn.status = ResponseStatus::Ok;
                }
                Command::WriteRead => {
                    txn.status = ResponseStatus::CommandError;
                }
            }
        })
    }
}

/// The DCT core: accepts 8×8 blocks of level-shifted samples (one `i32` per
/// word), computes the real forward DCT with JPEG luminance quantization,
/// and returns the 64 quantized coefficients.
pub struct DctCore {
    name: String,
    input: RefCell<Vec<i32>>,
    output: RefCell<VecDeque<i32>>,
    blocks: Cell<u64>,
}

impl fmt::Debug for DctCore {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DctCore")
            .field("name", &self.name)
            .field("blocks", &self.blocks.get())
            .finish()
    }
}

impl DctCore {
    /// Creates the core.
    pub fn new(name: impl Into<String>) -> Self {
        DctCore {
            name: name.into(),
            input: RefCell::new(Vec::new()),
            output: RefCell::new(VecDeque::new()),
            blocks: Cell::new(0),
        }
    }

    /// Complete blocks transformed so far.
    pub fn block_count(&self) -> u64 {
        self.blocks.get()
    }
}

impl TamIf for DctCore {
    fn name(&self) -> &str {
        &self.name
    }

    fn transport<'a>(&'a self, txn: &'a mut Transaction) -> LocalBoxFuture<'a, ()> {
        Box::pin(async move {
            match txn.cmd {
                Command::Write => {
                    let mut input = self.input.borrow_mut();
                    for &w in &txn.data {
                        input.push(w as i32);
                        if input.len() == 64 {
                            let block: [i32; 64] =
                                input.as_slice().try_into().expect("length checked");
                            let coeffs = jpeg::fdct_quantize(&block, &jpeg::LUMA_QUANT);
                            self.output.borrow_mut().extend(coeffs.iter().copied());
                            input.clear();
                            self.blocks.set(self.blocks.get() + 1);
                        }
                    }
                    txn.status = ResponseStatus::Ok;
                }
                Command::Read => {
                    let want = (txn.bit_len as usize).div_ceil(32).max(1);
                    let mut out = self.output.borrow_mut();
                    if out.len() < want {
                        txn.status = ResponseStatus::CommandError;
                        return;
                    }
                    txn.data = out.drain(..want).map(|c| c as u32).collect();
                    txn.status = ResponseStatus::Ok;
                }
                Command::WriteRead => {
                    txn.status = ResponseStatus::CommandError;
                }
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::rc::Rc;
    use tve_sim::Simulation;
    use tve_tlm::{InitiatorId, TamIfExt};

    #[test]
    fn memory_core_round_trips_words() {
        let mut sim = Simulation::new();
        let mem = Rc::new(MemoryCore::new("mem", 0x1000, 64));
        let m = Rc::clone(&mem);
        sim.spawn(async move {
            m.write(InitiatorId(0), 0x1010, &[0xCAFE], 32)
                .await
                .unwrap();
            let v = m.read(InitiatorId(0), 0x1010, 32).await.unwrap();
            assert_eq!(v, vec![0xCAFE]);
        });
        sim.run();
        let (r, w) = mem.op_counts();
        assert_eq!((r, w), (1, 1));
    }

    #[test]
    fn memory_core_rejects_out_of_window() {
        let mut sim = Simulation::new();
        let mem = Rc::new(MemoryCore::new("mem", 0x1000, 64));
        let m = Rc::clone(&mem);
        let jh = sim.spawn(async move { m.read(InitiatorId(0), 0x1040, 32).await });
        sim.run();
        assert_eq!(
            jh.try_take().unwrap().unwrap_err().status,
            ResponseStatus::AddressError
        );
    }

    #[test]
    fn memory_core_burst_access() {
        let mut sim = Simulation::new();
        let mem = Rc::new(MemoryCore::new("mem", 0, 64));
        let m = Rc::clone(&mem);
        sim.spawn(async move {
            m.write(InitiatorId(0), 4, &[1, 2, 3, 4], 128)
                .await
                .unwrap();
            let v = m.read(InitiatorId(0), 4, 128).await.unwrap();
            assert_eq!(v, vec![1, 2, 3, 4]);
        });
        sim.run();
    }

    #[test]
    fn memory_core_faults_are_visible_functionally() {
        let mut sim = Simulation::new();
        let mem = Rc::new(MemoryCore::new("mem", 0, 64));
        mem.inject(Fault::stuck_at(5, 0, true));
        let m = Rc::clone(&mem);
        sim.spawn(async move {
            m.write(InitiatorId(0), 5, &[0], 32).await.unwrap();
            let v = m.read(InitiatorId(0), 5, 32).await.unwrap();
            assert_eq!(v[0] & 1, 1, "stuck-at-1 must be visible");
        });
        sim.run();
    }

    #[test]
    fn color_core_matches_reference_transform() {
        let mut sim = Simulation::new();
        let core = Rc::new(ColorConversionCore::new("cc"));
        let c = Rc::clone(&core);
        sim.spawn(async move {
            c.write(InitiatorId(0), 0, &[0x00FF_0000], 32)
                .await
                .unwrap();
            let out = c.read(InitiatorId(0), 0, 32).await.unwrap();
            let [y, cb, cr] = jpeg::rgb_to_ycbcr([255, 0, 0]);
            assert_eq!(out[0], ((y as u32) << 16) | ((cb as u32) << 8) | cr as u32);
        });
        sim.run();
        assert_eq!(core.converted_count(), 1);
    }

    #[test]
    fn color_core_read_when_empty_errors() {
        let mut sim = Simulation::new();
        let core = Rc::new(ColorConversionCore::new("cc"));
        let c = Rc::clone(&core);
        let jh = sim.spawn(async move { c.read(InitiatorId(0), 0, 32).await });
        sim.run();
        assert!(jh.try_take().unwrap().is_err());
    }

    #[test]
    fn dct_core_transforms_blocks() {
        let mut sim = Simulation::new();
        let core = Rc::new(DctCore::new("dct"));
        let c = Rc::clone(&core);
        sim.spawn(async move {
            let block: Vec<u32> = (0..64).map(|i| ((i % 16) - 8i32) as u32).collect();
            c.write(InitiatorId(0), 0, &block, 64 * 32).await.unwrap();
            let coeffs = c.read(InitiatorId(0), 0, 64 * 32).await.unwrap();
            let expected: [i32; 64] = {
                let b: [i32; 64] = block
                    .iter()
                    .map(|&w| w as i32)
                    .collect::<Vec<_>>()
                    .try_into()
                    .unwrap();
                jpeg::fdct_quantize(&b, &jpeg::LUMA_QUANT)
            };
            let got: Vec<i32> = coeffs.iter().map(|&w| w as i32).collect();
            assert_eq!(got, expected.to_vec());
        });
        sim.run();
        assert_eq!(core.block_count(), 1);
    }

    #[test]
    fn dct_core_partial_block_yields_no_output() {
        let mut sim = Simulation::new();
        let core = Rc::new(DctCore::new("dct"));
        let c = Rc::clone(&core);
        let jh = sim.spawn(async move {
            c.write(InitiatorId(0), 0, &[0; 32], 32 * 32).await.unwrap();
            c.read(InitiatorId(0), 0, 32).await
        });
        sim.run();
        assert!(jh.try_take().unwrap().is_err());
        assert_eq!(core.block_count(), 0);
    }
}
