//! The embedded processor as a *software* test engine.
//!
//! The paper's Section II: "the software part consists of the test program
//! executed on the ATE, **software modules executed on functional units
//! like embedded processor cores**, and the microcode to program the test
//! controllers" — and case-study test 7 runs the memory march "using a
//! program stored in L1 cache". This module models exactly that: a minimal
//! load/store CPU whose instructions execute from a local program store
//! (the L1 cache), touching the SoC only through bus transactions — so the
//! march becomes genuine software with the instruction-level timing the
//! abstract per-op model approximates.

use std::fmt;
use std::rc::Rc;

use tve_memtest::{MarchOp, MarchOrder, MarchTest};
use tve_sim::{Duration, SimHandle};
use tve_tlm::{InitiatorId, TamIf, TamIfExt};

/// A register index (16 registers; `r0` is an ordinary register).
pub type Reg = u8;

/// The instruction set: just enough for memory-test loops.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Insn {
    /// `rd ← imm`
    Li(Reg, u32),
    /// `rd ← ra + rb`
    Add(Reg, Reg, Reg),
    /// `rd ← ra + imm` (wrapping)
    Addi(Reg, Reg, i32),
    /// `rd ← ra ^ rb`
    Xor(Reg, Reg, Reg),
    /// `rd ← memory[ra]` (a bus read)
    Lw(Reg, Reg),
    /// `memory[ra] ← rs` (a bus write)
    Sw(Reg, Reg),
    /// Branch to `target` when `ra != rb`.
    Bne(Reg, Reg, usize),
    /// Branch to `target` when `ra == rb`.
    Beq(Reg, Reg, usize),
    /// Stop execution.
    Halt,
}

/// Execution record of a program run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CpuOutcome {
    /// Instructions executed.
    pub instructions: u64,
    /// Bus transactions issued (loads + stores).
    pub bus_ops: u64,
    /// Bus errors observed.
    pub bus_errors: u64,
    /// Final register file.
    pub regs: [u32; 16],
    /// Cycles elapsed.
    pub cycles: u64,
}

impl fmt::Display for CpuOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} instructions, {} bus ops in {} cycles",
            self.instructions, self.bus_ops, self.cycles
        )
    }
}

/// A minimal embedded CPU: fixed cycles per instruction, memory access
/// through a [`TamIf`] (the system bus), program in a local store.
pub struct Cpu {
    handle: SimHandle,
    bus: Rc<dyn TamIf>,
    initiator: InitiatorId,
    /// Cycles per executed instruction (pipeline CPI), on top of bus time
    /// for loads/stores.
    pub cycles_per_insn: u64,
    /// Safety limit on executed instructions.
    pub max_instructions: u64,
}

impl Cpu {
    /// Creates a CPU attached to `bus` as `initiator`.
    pub fn new(handle: &SimHandle, bus: Rc<dyn TamIf>, initiator: InitiatorId) -> Self {
        Cpu {
            handle: handle.clone(),
            bus,
            initiator,
            cycles_per_insn: 1,
            max_instructions: 200_000_000,
        }
    }

    /// Executes `program` from instruction 0 until `Halt` (or the
    /// instruction limit) and returns the outcome.
    ///
    /// # Panics
    ///
    /// Panics on a branch target outside the program — an assembler bug,
    /// not a model condition.
    pub async fn run(&self, program: &[Insn]) -> CpuOutcome {
        let start = self.handle.now();
        let mut regs = [0u32; 16];
        let mut pc = 0usize;
        let mut out = CpuOutcome {
            instructions: 0,
            bus_ops: 0,
            bus_errors: 0,
            regs,
            cycles: 0,
        };
        while pc < program.len() && out.instructions < self.max_instructions {
            let insn = program[pc];
            out.instructions += 1;
            self.handle
                .wait(Duration::cycles(self.cycles_per_insn))
                .await;
            pc += 1;
            match insn {
                Insn::Li(rd, imm) => regs[rd as usize] = imm,
                Insn::Add(rd, ra, rb) => {
                    regs[rd as usize] = regs[ra as usize].wrapping_add(regs[rb as usize])
                }
                Insn::Addi(rd, ra, imm) => {
                    regs[rd as usize] = regs[ra as usize].wrapping_add(imm as u32)
                }
                Insn::Xor(rd, ra, rb) => regs[rd as usize] = regs[ra as usize] ^ regs[rb as usize],
                Insn::Lw(rd, ra) => {
                    out.bus_ops += 1;
                    match self.bus.read(self.initiator, regs[ra as usize], 32).await {
                        Ok(words) => regs[rd as usize] = words.first().copied().unwrap_or(0),
                        Err(_) => out.bus_errors += 1,
                    }
                }
                Insn::Sw(ra, rs) => {
                    out.bus_ops += 1;
                    if self
                        .bus
                        .write(self.initiator, regs[ra as usize], &[regs[rs as usize]], 32)
                        .await
                        .is_err()
                    {
                        out.bus_errors += 1;
                    }
                }
                Insn::Bne(ra, rb, target) => {
                    if regs[ra as usize] != regs[rb as usize] {
                        assert!(target <= program.len(), "branch target in range");
                        pc = target;
                    }
                }
                Insn::Beq(ra, rb, target) => {
                    if regs[ra as usize] == regs[rb as usize] {
                        assert!(target <= program.len(), "branch target in range");
                        pc = target;
                    }
                }
                Insn::Halt => break,
            }
        }
        out.regs = regs;
        out.cycles = (self.handle.now() - start).as_cycles();
        out
    }
}

/// Register conventions of the generated march program.
pub mod march_regs {
    /// Error counter (mismatching reads).
    pub const ERRORS: u8 = 15;
    /// Operations performed.
    pub const OPS: u8 = 14;
}

/// Assembles a march test into a CPU program over the memory window at
/// `base_addr` with `words` words: the "program stored in L1 cache" of the
/// paper's test 7. Mismatching reads increment `r15`; total operations are
/// counted in `r14`.
pub fn assemble_march(march: &MarchTest, base_addr: u32, words: u32) -> Vec<Insn> {
    // Register map: r1 = addr cursor, r2 = end sentinel, r3 = background,
    // r4 = loaded value, r5 = step, r6 = scratch-one, r14/r15 counters.
    let mut p: Vec<Insn> = Vec::new();
    p.push(Insn::Li(6, 1));
    for elem in march.elements() {
        let descending = elem.order == MarchOrder::Descending;
        // Cursor setup.
        if descending {
            p.push(Insn::Li(1, base_addr + words - 1));
            p.push(Insn::Li(2, base_addr.wrapping_sub(1)));
            p.push(Insn::Li(5, u32::MAX)); // -1
        } else {
            p.push(Insn::Li(1, base_addr));
            p.push(Insn::Li(2, base_addr + words));
            p.push(Insn::Li(5, 1));
        }
        let loop_top = p.len();
        for op in &elem.ops {
            match op {
                MarchOp::W0 | MarchOp::W1 => {
                    let bg = if *op == MarchOp::W1 { u32::MAX } else { 0 };
                    p.push(Insn::Li(3, bg));
                    p.push(Insn::Sw(1, 3));
                }
                MarchOp::R0 | MarchOp::R1 => {
                    let bg = if *op == MarchOp::R1 { u32::MAX } else { 0 };
                    p.push(Insn::Li(3, bg));
                    p.push(Insn::Lw(4, 1));
                    // if r4 == r3 skip the error increment
                    let skip = p.len() + 2;
                    p.push(Insn::Beq(4, 3, skip));
                    p.push(Insn::Add(15, 15, 6));
                }
            }
            p.push(Insn::Add(14, 14, 6));
        }
        p.push(Insn::Add(1, 1, 5));
        p.push(Insn::Bne(1, 2, loop_top));
    }
    p.push(Insn::Halt);
    p
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::soc::{initiators, JpegEncoderSoc, SocConfig, MEM_BASE};
    use tve_memtest::Fault;
    use tve_sim::Simulation;

    #[test]
    fn arithmetic_and_branches() {
        let mut sim = Simulation::new();
        let soc = JpegEncoderSoc::build(&sim.handle(), SocConfig::small());
        let cpu = Cpu::new(
            &sim.handle(),
            Rc::clone(&soc.bus) as Rc<dyn TamIf>,
            initiators::PROCESSOR,
        );
        // Sum 1..=5 into r2 with a loop.
        let program = vec![
            Insn::Li(1, 5),
            Insn::Li(2, 0),
            Insn::Li(3, 0),
            // loop:
            Insn::Add(2, 2, 1),
            Insn::Addi(1, 1, -1),
            Insn::Bne(1, 3, 3),
            Insn::Halt,
        ];
        let jh = sim.spawn(async move { cpu.run(&program).await });
        sim.run();
        let out = jh.try_take().unwrap();
        assert_eq!(out.regs[2], 15);
        assert_eq!(out.bus_ops, 0);
        assert!(out.instructions > 10);
    }

    #[test]
    fn load_store_through_the_bus() {
        let mut sim = Simulation::new();
        let soc = JpegEncoderSoc::build(&sim.handle(), SocConfig::small());
        let cpu = Cpu::new(
            &sim.handle(),
            Rc::clone(&soc.bus) as Rc<dyn TamIf>,
            initiators::PROCESSOR,
        );
        let program = vec![
            Insn::Li(1, MEM_BASE + 3),
            Insn::Li(2, 0xCAFE),
            Insn::Sw(1, 2),
            Insn::Lw(4, 1),
            Insn::Xor(5, 4, 2), // r5 = 0 iff round-trip worked
            Insn::Halt,
        ];
        let jh = sim.spawn(async move { cpu.run(&program).await });
        sim.run();
        let out = jh.try_take().unwrap();
        assert_eq!(out.regs[4], 0xCAFE);
        assert_eq!(out.regs[5], 0);
        assert_eq!(out.bus_ops, 2);
        assert_eq!(out.bus_errors, 0);
    }

    fn run_march_program(faults: Vec<Fault>) -> CpuOutcome {
        let mut sim = Simulation::new();
        let mut config = SocConfig::small();
        config.memory_words = 64;
        let soc = JpegEncoderSoc::build(&sim.handle(), config);
        for f in faults {
            soc.memory.inject(f);
        }
        let cpu = Cpu::new(
            &sim.handle(),
            Rc::clone(&soc.bus) as Rc<dyn TamIf>,
            initiators::PROCESSOR,
        );
        let program = assemble_march(&MarchTest::mats_plus(), MEM_BASE, 64);
        let jh = sim.spawn(async move { cpu.run(&program).await });
        sim.run();
        jh.try_take().unwrap()
    }

    #[test]
    fn software_march_passes_clean_memory() {
        let out = run_march_program(vec![]);
        assert_eq!(out.regs[march_regs::ERRORS as usize], 0, "{out}");
        // MATS+ = 5 ops/cell over 64 words.
        assert_eq!(out.regs[march_regs::OPS as usize], 5 * 64);
        assert_eq!(out.bus_ops, 5 * 64);
    }

    #[test]
    fn software_march_counts_the_same_mismatches_as_the_hw_engine() {
        // The HW march engine (MATS+ on a stuck-at cell) reports 2
        // mismatching reads; the software march must agree.
        let faults = vec![Fault::stuck_at(17, 9, true)];
        let out = run_march_program(faults.clone());
        let sw_errors = out.regs[march_regs::ERRORS as usize];

        let mut mem = tve_memtest::MemoryArray::new(64);
        for f in faults {
            mem.inject(f);
        }
        let hw = MarchTest::mats_plus().run(&mut mem);
        assert_eq!(sw_errors as usize, hw.mismatches.len(), "{out}");
        assert!(sw_errors > 0);
    }

    #[test]
    fn software_timing_matches_the_abstract_processor_model() {
        // Table I's T7 models the processor at ~8 cycles/op; the actual
        // instruction-level march lands in the same band — the abstraction
        // refinement the paper's methodology promises.
        let out = run_march_program(vec![]);
        let ops = out.regs[march_regs::OPS as usize] as u64;
        let cycles_per_op = out.cycles as f64 / ops as f64;
        assert!(
            (5.0..12.0).contains(&cycles_per_op),
            "cycles/op {cycles_per_op} outside the abstract model's band"
        );
    }
}
