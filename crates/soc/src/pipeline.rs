//! The functional JPEG block pipeline driven over the SoC: the embedded
//! processor moves data RGB → color conversion → level shift → DCT →
//! memory, entirely through the system bus and the (functional-mode) test
//! wrappers — proving the test infrastructure is transparent to the
//! mission function.

use tve_tlm::{TamError, TamIfExt};

use crate::jpeg;
use crate::soc::{JpegEncoderSoc, COLOR_WRAPPER_ADDR, DCT_WRAPPER_ADDR, MEM_BASE};

/// Encodes one 8×8 RGB block through the SoC data path and stores the 64
/// zigzag-ordered quantized coefficients at `MEM_BASE + out_word`.
/// Returns the coefficients.
///
/// # Errors
///
/// Returns a [`TamError`] if any bus transaction fails — e.g. when a
/// wrapper was left in a test mode, which is exactly the misconfiguration
/// this pipeline exposes in validation tests.
pub async fn encode_block_on_soc(
    soc: &JpegEncoderSoc,
    rgb_block: &[[u8; 3]; 64],
    out_word: u32,
) -> Result<[i32; 64], TamError> {
    let init = soc.processor_initiator();
    let bus = &soc.bus;

    // 1. Push the RGB pixels through the color conversion core.
    let pixels: Vec<u32> = rgb_block
        .iter()
        .map(|p| ((p[0] as u32) << 16) | ((p[1] as u32) << 8) | p[2] as u32)
        .collect();
    bus.write(init, COLOR_WRAPPER_ADDR, &pixels, 64 * 32)
        .await?;
    let ycbcr = bus.read(init, COLOR_WRAPPER_ADDR, 64 * 32).await?;

    // 2. Level-shift the luminance samples and feed the DCT core.
    let samples: Vec<u32> = ycbcr
        .iter()
        .map(|w| (((w >> 16) & 0xFF) as i32 - 128) as u32)
        .collect();
    bus.write(init, DCT_WRAPPER_ADDR, &samples, 64 * 32).await?;
    let coeffs = bus.read(init, DCT_WRAPPER_ADDR, 64 * 32).await?;

    // 3. Zigzag in software (the processor's job) and store to memory.
    let row_major: [i32; 64] = coeffs
        .iter()
        .map(|&w| w as i32)
        .collect::<Vec<_>>()
        .try_into()
        .expect("64 coefficients");
    let zz = jpeg::zigzag_scan(&row_major);
    let zz_words: Vec<u32> = zz.iter().map(|&c| c as u32).collect();
    bus.write(init, MEM_BASE + out_word, &zz_words, 64 * 32)
        .await?;
    Ok(zz)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::soc::SocConfig;
    use std::rc::Rc;
    use tve_core::WrapperMode;
    use tve_sim::Simulation;

    fn test_block() -> [[u8; 3]; 64] {
        let mut block = [[0u8; 3]; 64];
        for (i, px) in block.iter_mut().enumerate() {
            let v = (i * 4) as u8;
            *px = [v, 255 - v, 128];
        }
        block
    }

    #[test]
    fn soc_pipeline_matches_software_reference() {
        let mut sim = Simulation::new();
        let soc = Rc::new(JpegEncoderSoc::build(&sim.handle(), SocConfig::small()));
        let block = test_block();
        let s = Rc::clone(&soc);
        let jh = sim.spawn(async move { encode_block_on_soc(&s, &block, 0).await });
        sim.run();
        let got = jh.try_take().unwrap().unwrap();
        let expected = jpeg::encode_block_reference(&block);
        assert_eq!(got, expected, "SoC pipeline must equal the reference");
        assert_eq!(soc.dct_core.block_count(), 1);
        assert_eq!(soc.color_core.converted_count(), 64);
    }

    #[test]
    fn stored_coefficients_are_readable_from_memory() {
        let mut sim = Simulation::new();
        let soc = Rc::new(JpegEncoderSoc::build(&sim.handle(), SocConfig::small()));
        let block = test_block();
        let s = Rc::clone(&soc);
        let jh = sim.spawn(async move {
            let zz = encode_block_on_soc(&s, &block, 16).await.unwrap();
            let stored = s
                .bus
                .read(s.processor_initiator(), MEM_BASE + 16, 64 * 32)
                .await
                .unwrap();
            (zz, stored)
        });
        sim.run();
        let (zz, stored) = jh.try_take().unwrap();
        let as_words: Vec<u32> = zz.iter().map(|&c| c as u32).collect();
        assert_eq!(stored, as_words);
    }

    #[test]
    fn wrapper_left_in_test_mode_breaks_the_function() {
        // The inverse validation: a wrapper stuck in a test mode makes the
        // functional pipeline fail loudly rather than silently.
        let mut sim = Simulation::new();
        let soc = Rc::new(JpegEncoderSoc::build(&sim.handle(), SocConfig::small()));
        use tve_core::ConfigClient;
        soc.dct_wrapper.load_config(WrapperMode::IntTest.encode());
        let block = test_block();
        let s = Rc::clone(&soc);
        let jh = sim.spawn(async move { encode_block_on_soc(&s, &block, 0).await });
        sim.run();
        assert!(jh.try_take().unwrap().is_err());
    }
}
