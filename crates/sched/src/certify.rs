//! Certified exploration: proof-carrying pruning of the
//! explore-then-validate loop.
//!
//! [`explore`] ranks candidates by a coarse estimate and the paper's loop
//! then simulates every finalist, because the estimate is unsound in both
//! directions. The certified variant instead computes the
//! [`tve_lint::ScheduleEnvelope`] of each candidate — a *sound* `[lo, hi]`
//! interval on its simulated test length — and simulates candidates
//! fastest-estimate-first: once a simulated incumbent strictly dominates a
//! candidate's best case `(total.lo, peak_power)`, the candidate's true
//! point is dominated too and it can be discarded **without simulation**,
//! carrying a [`PruneProof`] naming the incumbent, the bound and the
//! margin.
//!
//! Because pruning only ever removes points that are strictly dominated by
//! a *simulated* incumbent, the resulting Pareto front is identical to the
//! exhaustive one — `tests/bounds_contract.rs` checks the two fronts
//! byte-for-byte.

use std::fmt;
use std::time::Instant;

use tve_core::Schedule;
use tve_lint::{schedule_envelope, ScheduleEnvelope};
use tve_soc::{ScenarioMetrics, SocConfig, SocTestPlan};

use crate::explore::{explore, Candidate};
use crate::task::{Constraints, TestTask};

/// The machine-checkable record justifying one pruned candidate: a
/// simulated incumbent strictly dominates the candidate's certified best
/// case, so the candidate cannot reach the Pareto front.
#[derive(Debug, Clone)]
pub struct PruneProof {
    /// Name of the pruned candidate.
    pub candidate: String,
    /// Name of the dominating, already-simulated incumbent.
    pub incumbent: String,
    /// The incumbent's *simulated* total cycles.
    pub incumbent_cycles: u64,
    /// The incumbent's static peak-power coordinate.
    pub incumbent_power: u64,
    /// The candidate's certified lower bound on total cycles
    /// (`ScheduleEnvelope::total.lo`).
    pub bound_cycles: u64,
    /// The candidate's static peak-power coordinate.
    pub candidate_power: u64,
    /// How far the bound sits above the incumbent
    /// (`bound_cycles - incumbent_cycles`; 0 when the power axis decides).
    pub margin_cycles: u64,
}

impl fmt::Display for PruneProof {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: lower bound {:.1} Mcycles (power {}) dominated by {} at {:.1} Mcycles \
             (power {}), margin {:.1} Mcycles",
            self.candidate,
            self.bound_cycles as f64 / 1e6,
            self.candidate_power,
            self.incumbent,
            self.incumbent_cycles as f64 / 1e6,
            self.incumbent_power,
            self.margin_cycles as f64 / 1e6,
        )
    }
}

/// What happened to one candidate of a certified exploration.
#[derive(Debug, Clone)]
pub enum CertifiedOutcome {
    /// The candidate was simulated (it could still have reached the
    /// front when its turn came).
    Simulated(Box<ScenarioMetrics>),
    /// The candidate was discarded without simulation, with proof.
    Pruned(PruneProof),
    /// Simulation failed (a malformed candidate that slipped past
    /// validation — not produced by [`explore_certified`]'s generators).
    Failed(String),
}

/// One candidate of a certified exploration with its envelope and fate.
#[derive(Debug, Clone)]
pub struct CertifiedCandidate {
    /// The explored candidate (schedule, coarse estimate).
    pub candidate: Candidate,
    /// Its certified envelope.
    pub envelope: ScheduleEnvelope,
    /// Simulated, pruned-with-proof, or failed.
    pub outcome: CertifiedOutcome,
    /// Whether the candidate is on the (simulated-cycles × static-power)
    /// Pareto front. Pruned candidates are never on the front — that is
    /// what their proof establishes.
    pub on_front: bool,
}

/// Result of [`explore_certified`], candidates fastest-estimate first.
#[derive(Debug, Clone)]
pub struct CertifiedExploreReport {
    /// All candidates with envelopes and outcomes.
    pub candidates: Vec<CertifiedCandidate>,
    /// Wall time spent computing envelopes, in nanoseconds (the static
    /// analysis cost the pruning buys simulations with).
    pub analysis_ns: u128,
    /// Envelope violations observed on simulated candidates (always empty
    /// unless the bounds model is unsound — the contract tests gate this).
    pub violations: Vec<String>,
}

impl CertifiedExploreReport {
    /// Number of simulated candidates.
    pub fn simulated(&self) -> usize {
        self.candidates
            .iter()
            .filter(|c| matches!(c.outcome, CertifiedOutcome::Simulated(_)))
            .count()
    }

    /// Number of candidates pruned with proof.
    pub fn pruned(&self) -> usize {
        self.candidates
            .iter()
            .filter(|c| matches!(c.outcome, CertifiedOutcome::Pruned(_)))
            .count()
    }

    /// Fraction of candidates discarded without simulation.
    pub fn pruned_fraction(&self) -> f64 {
        if self.candidates.is_empty() {
            0.0
        } else {
            self.pruned() as f64 / self.candidates.len() as f64
        }
    }

    /// The proof records of all pruned candidates, in candidate order.
    pub fn proofs(&self) -> impl Iterator<Item = &PruneProof> {
        self.candidates.iter().filter_map(|c| match &c.outcome {
            CertifiedOutcome::Pruned(p) => Some(p),
            _ => None,
        })
    }

    /// The Pareto front as `(name, simulated_cycles, static_power)`
    /// triples, sorted by cycles then power then name.
    pub fn front_points(&self) -> Vec<(String, u64, u64)> {
        let mut pts: Vec<(String, u64, u64)> = self
            .candidates
            .iter()
            .filter(|c| c.on_front)
            .filter_map(|c| match &c.outcome {
                CertifiedOutcome::Simulated(m) => Some((
                    c.candidate.schedule.name.clone(),
                    m.total_cycles,
                    c.candidate.estimate.peak_power,
                )),
                _ => None,
            })
            .collect();
        pts.sort();
        pts
    }

    /// A canonical one-line rendering of [`Self::front_points`] — two
    /// explorations returned the same front iff the signatures are
    /// byte-identical.
    pub fn front_signature(&self) -> String {
        self.front_points()
            .iter()
            .map(|(n, c, p)| format!("{n}={c}/{p}"))
            .collect::<Vec<_>>()
            .join(";")
    }
}

/// Strict Pareto dominance of `(c1, p1)` over `(c2, p2)` — the exact rule
/// [`explore`] uses for its estimate-based front.
fn dominates(c1: u64, p1: u64, c2: u64, p2: u64) -> bool {
    (c1 < c2 && p1 <= p2) || (c1 <= c2 && p1 < p2)
}

/// Explore-then-validate with certified pruning.
///
/// Candidates come from [`explore`] (sequential, greedy, optimal, plus
/// `extra`), ranked fastest-estimate first. Each is analyzed statically;
/// it is simulated unless `prune` is set and a simulated incumbent
/// strictly dominates its certified best case, in which case it is
/// discarded with a [`PruneProof`]. With `prune = false` every candidate
/// is simulated — the exhaustive baseline the contract tests compare
/// fronts against.
pub fn explore_certified(
    config: &SocConfig,
    plan: &SocTestPlan,
    tasks: &[TestTask],
    constraints: &Constraints,
    extra: &[Schedule],
    prune: bool,
) -> CertifiedExploreReport {
    let report = explore(tasks, constraints, extra);
    let mut out: Vec<CertifiedCandidate> = Vec::with_capacity(report.candidates.len());
    let mut analysis_ns = 0u128;
    let mut violations = Vec::new();
    // (name, simulated cycles, static power) of everything simulated so far.
    let mut incumbents: Vec<(String, u64, u64)> = Vec::new();

    for candidate in report.candidates {
        let started = Instant::now();
        let envelope = schedule_envelope(config, plan, &candidate.schedule, 0);
        analysis_ns += started.elapsed().as_nanos();
        let power = candidate.estimate.peak_power;

        let proof = if prune {
            incumbents
                .iter()
                .find(|(_, ic, ip)| dominates(*ic, *ip, envelope.total.lo, power))
                .map(|(name, ic, ip)| PruneProof {
                    candidate: candidate.schedule.name.clone(),
                    incumbent: name.clone(),
                    incumbent_cycles: *ic,
                    incumbent_power: *ip,
                    bound_cycles: envelope.total.lo,
                    candidate_power: power,
                    margin_cycles: envelope.total.lo.saturating_sub(*ic),
                })
        } else {
            None
        };

        let outcome = match proof {
            Some(p) => CertifiedOutcome::Pruned(p),
            None => match tve_soc::run_scenario(config, plan, &candidate.schedule) {
                Ok(metrics) => {
                    let obs = tve_lint::observe_metrics(
                        &metrics,
                        &tve_lint::task_bounds(config, plan, 0),
                    );
                    violations.extend(envelope.check(&obs));
                    incumbents.push((candidate.schedule.name.clone(), metrics.total_cycles, power));
                    CertifiedOutcome::Simulated(Box::new(metrics))
                }
                Err(e) => CertifiedOutcome::Failed(e.to_string()),
            },
        };

        out.push(CertifiedCandidate {
            candidate,
            envelope,
            outcome,
            on_front: false,
        });
    }

    // Front marking over the simulated points, with the same strict rule
    // the estimate-based front uses.
    let points: Vec<(u64, u64)> = out
        .iter()
        .filter_map(|c| match &c.outcome {
            CertifiedOutcome::Simulated(m) => {
                Some((m.total_cycles, c.candidate.estimate.peak_power))
            }
            _ => None,
        })
        .collect();
    for c in &mut out {
        if let CertifiedOutcome::Simulated(m) = &c.outcome {
            let (cy, pw) = (m.total_cycles, c.candidate.estimate.peak_power);
            c.on_front = !points.iter().any(|&(oc, op)| dominates(oc, op, cy, pw));
        }
    }

    CertifiedExploreReport {
        candidates: out,
        analysis_ns,
        violations,
    }
}

/// Deterministically enumerates valid session partitions of `tasks` (every
/// phase passes [`Constraints::session_is_valid`]), up to `limit`
/// schedules, named `enum 1…n` — the candidate pool that lets certified
/// exploration show its pruning on more than a handful of hand-written
/// schedules. Merge-heavy partitions come first.
pub fn enumerate_schedules(
    tasks: &[TestTask],
    constraints: &Constraints,
    limit: usize,
) -> Vec<Schedule> {
    fn rec(
        tasks: &[TestTask],
        constraints: &Constraints,
        limit: usize,
        next: usize,
        phases: &mut Vec<Vec<usize>>,
        out: &mut Vec<Schedule>,
    ) {
        if out.len() >= limit {
            return;
        }
        if next == tasks.len() {
            out.push(Schedule::new(
                format!("enum {}", out.len() + 1),
                phases.clone(),
            ));
            return;
        }
        for i in 0..phases.len() {
            phases[i].push(next);
            let members: Vec<&TestTask> = phases[i].iter().map(|&t| &tasks[t]).collect();
            if constraints.session_is_valid(&members) {
                rec(tasks, constraints, limit, next + 1, phases, out);
            }
            phases[i].pop();
            if out.len() >= limit {
                return;
            }
        }
        phases.push(vec![next]);
        rec(tasks, constraints, limit, next + 1, phases, out);
        phases.pop();
    }

    let mut out = Vec::new();
    let mut phases = Vec::new();
    rec(tasks, constraints, limit, 0, &mut phases, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::estimate::{estimate_schedule, estimate_tasks};
    use tve_soc::paper_schedules;

    fn mini() -> (SocConfig, SocTestPlan) {
        let mut config = SocConfig::small();
        config.memory_words = 64;
        (config, SocTestPlan::small())
    }

    #[test]
    fn envelopes_bracket_the_coarse_estimate_on_paper_schedules() {
        // Anti-drift: the sound interval and the unsound point estimate
        // are maintained separately; if either model changes shape the
        // estimate must still fall inside the envelope on the reference
        // workload.
        let config = SocConfig::paper();
        let plan = SocTestPlan::paper();
        let tasks = estimate_tasks(&config, &plan);
        for s in paper_schedules() {
            let env = schedule_envelope(&config, &plan, &s, 0);
            let est = estimate_schedule(&tasks, &s).total_cycles;
            assert!(
                env.total.lo <= est && est <= env.total.hi,
                "{}: estimate {est} outside {}",
                s.name,
                env.total
            );
        }
    }

    #[test]
    fn certified_front_matches_exhaustive_and_proofs_hold() {
        let (config, plan) = mini();
        let tasks = estimate_tasks(&config, &plan);
        let extra: Vec<Schedule> = paper_schedules()
            .into_iter()
            .chain(enumerate_schedules(&tasks, &Constraints::default(), 12))
            .collect();
        let exhaustive = explore_certified(
            &config,
            &plan,
            &tasks,
            &Constraints::default(),
            &extra,
            false,
        );
        let certified = explore_certified(
            &config,
            &plan,
            &tasks,
            &Constraints::default(),
            &extra,
            true,
        );
        assert!(
            exhaustive.violations.is_empty(),
            "{:?}",
            exhaustive.violations
        );
        assert!(
            certified.violations.is_empty(),
            "{:?}",
            certified.violations
        );
        assert_eq!(exhaustive.pruned(), 0);
        assert_eq!(
            exhaustive.front_signature(),
            certified.front_signature(),
            "pruning must not change the front"
        );
        assert_eq!(
            certified.simulated() + certified.pruned(),
            certified.candidates.len()
        );
        // Every proof is internally consistent and names a real incumbent.
        for proof in certified.proofs() {
            let incumbent = certified
                .candidates
                .iter()
                .find(|c| c.candidate.schedule.name == proof.incumbent)
                .expect("incumbent is a candidate");
            match &incumbent.outcome {
                CertifiedOutcome::Simulated(m) => {
                    assert_eq!(m.total_cycles, proof.incumbent_cycles)
                }
                other => panic!("incumbent was not simulated: {other:?}"),
            }
            assert!(dominates(
                proof.incumbent_cycles,
                proof.incumbent_power,
                proof.bound_cycles,
                proof.candidate_power
            ));
        }
    }

    #[test]
    fn enumerated_schedules_are_valid_deterministic_and_distinct() {
        let tasks = estimate_tasks(&SocConfig::paper(), &SocTestPlan::paper());
        let a = enumerate_schedules(&tasks, &Constraints::default(), 16);
        let b = enumerate_schedules(&tasks, &Constraints::default(), 16);
        assert_eq!(a.len(), 16);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.phases, y.phases, "enumeration is deterministic");
        }
        for s in &a {
            s.validate(tasks.len()).expect("structurally valid");
            for phase in &s.phases {
                let members: Vec<&TestTask> = phase.iter().map(|&t| &tasks[t]).collect();
                assert!(Constraints::default().session_is_valid(&members));
            }
        }
        let mut shapes: Vec<_> = a.iter().map(|s| s.phases.clone()).collect();
        shapes.sort();
        shapes.dedup();
        assert_eq!(shapes.len(), a.len(), "partitions are distinct");
    }
}
